"""Top-level driver API.

Typical use (see ``examples/quickstart.py``)::

    from repro.core import get_workload, run_alignment

    wl = get_workload("ecoli100x")          # Table-1-exact workload
    result = run_alignment(wl, nodes=16, approach="async")
    print(result.breakdown.fractions())

The engine set is not hardcoded here: :data:`ENGINES` is a live read-only
view of :mod:`repro.engines.registry`, so a newly registered engine (see
``docs/ARCHITECTURE.md``) is immediately runnable through
:func:`run_alignment`, :func:`compare_engines` and :func:`scaling_sweep`
with zero edits to this module.

Workloads are cached per ``(name, seed)`` in a small LRU — rendering the
87.6M-task Human CCS assignment for a given rank count costs tens of
seconds, and every figure benchmark reuses the same object.  The cap
defaults to 8 (override with ``REPRO_WORKLOAD_CACHE_CAP`` or
:func:`set_workload_cache_cap`).
"""

from __future__ import annotations

import os
from collections.abc import Mapping
from typing import Iterable

from repro.engines import registry as _registry
from repro.engines.base import EngineConfig
from repro.engines.registry import available_engines, get_engine
from repro.engines.report import RunResult
from repro.errors import ConfigurationError
from repro.align.cost import MEAN_TASK_COST
from repro.genome.datasets import DATASETS, synthesize_dataset
from repro.machine.config import MachineSpec, cori_knl
from repro.obs import MetricsRegistry, Tracer, set_default_tracer
from repro.pipeline.sharded import DEFAULT_RESIDENT_SHARDS, ShardedWorkload
from repro.pipeline.workload import ConcreteWorkload, StatisticalWorkload
from repro.utils.cache import LruCache

# engine modules self-register on import (bsp, async, bsp-micro,
# async-micro, hybrid); this is the only import the registry needs
import repro.engines  # noqa: F401

__all__ = [
    "ENGINES",
    "get_workload",
    "make_machine",
    "run_alignment",
    "compare_engines",
    "scaling_sweep",
    "run_plan_points",
    "clear_workload_cache",
    "set_workload_cache_cap",
    "workload_cache_stats",
    "clear_machine_cache",
    "machine_cache_stats",
]


def _default_cache_cap() -> int:
    raw = os.environ.get("REPRO_WORKLOAD_CACHE_CAP", "8")
    try:
        return max(1, int(raw))
    except ValueError:
        return 8


_WORKLOAD_CACHE = LruCache(maxsize=_default_cache_cap())


class _EngineView(Mapping):
    """Read-only live view of the engine registry: name -> engine class.

    Kept for back-compat with the old hardcoded ``ENGINES`` dict; iteration
    follows registration order.
    """

    def __getitem__(self, name: str) -> type:
        try:
            return get_engine(name).factory
        except ConfigurationError:
            raise KeyError(name) from None

    def __iter__(self):
        return iter(available_engines())

    def __len__(self) -> int:
        return len(available_engines())


ENGINES = _EngineView()


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


def set_workload_cache_cap(maxsize: int) -> None:
    """Re-bound the workload cache, evicting LRU entries if shrinking."""
    _WORKLOAD_CACHE.resize(maxsize)


def workload_cache_stats() -> dict:
    """Size/cap/hit/miss/eviction counters of the workload cache."""
    return _WORKLOAD_CACHE.stats()


def _calibration_key(spec) -> tuple:
    """The full task-cost calibration identity of a spec.

    Workload construction calibrates the cost mixture to the paper anchor
    in :data:`MEAN_TASK_COST` (falling back to a read-length
    extrapolation), so two specs that differ *only* in their calibration
    target must not share a cache entry.  Keying on ``(name, seed)`` alone
    let them collide — e.g. after registering a variant dataset or
    adjusting an anchor, the cache would happily serve a workload built
    against the old target.
    """
    return (
        MEAN_TASK_COST.get(spec.name),
        spec.mean_read_length,
        spec.length_sigma,
        spec.n_reads,
        spec.n_tasks,
    )


def get_workload(
    name: str,
    seed: int = 0,
    shard_tasks: int = 0,
    max_resident_shards: int = DEFAULT_RESIDENT_SHARDS,
):
    """Build (or fetch from the LRU cache) a named workload.

    Table-1 presets (``ecoli30x``, ``ecoli100x``, ``human_ccs``) become
    :class:`StatisticalWorkload`; sequence-level presets (``*_tiny``,
    ``*_small``) run the real pipeline end-to-end into a
    :class:`ConcreteWorkload`.

    ``shard_tasks > 0`` selects the out-of-core path instead: the task
    table is generated and aggregated in fixed-size shards with at most
    ``max_resident_shards`` resident (see
    :class:`repro.pipeline.sharded.ShardedWorkload`).  Sequence-level
    presets shard their concrete task table (sharing the materialized
    workload's cache entry and staying bit-identical to it); Table-1
    presets generate paper-scale task *rows* shard-by-shard, which is how
    the 10^7–10^8-task sweeps run in bounded memory.
    """
    spec = DATASETS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    # cache identity: spec + seed + full calibration tuple + sharding —
    # the calibration terms keep renamed/retargeted specs from colliding,
    # the shard terms keep each (spec, shard) rendering distinct
    key = (name, seed, _calibration_key(spec),
           int(shard_tasks), int(max_resident_shards) if shard_tasks else 0)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        return cached
    if shard_tasks:
        if spec.sequence_level:
            wl = ShardedWorkload.from_workload(
                get_workload(name, seed),
                shard_tasks=shard_tasks,
                max_resident_shards=max_resident_shards,
            )
        else:
            wl = ShardedWorkload.synthetic(
                spec, seed=seed,
                shard_tasks=shard_tasks,
                max_resident_shards=max_resident_shards,
            )
    elif spec.sequence_level:
        run = synthesize_dataset(spec, seed=seed)
        wl = ConcreteWorkload.from_pipeline(
            name, run.reads, k=13, bounds=(2, 80), seed=seed
        )
    else:
        wl = StatisticalWorkload(spec, seed=seed)
    _WORKLOAD_CACHE.put(key, wl)
    return wl


#: machine specs are frozen and cheap-but-not-free to build; sweep and
#: planner grids request the same (nodes, cores) pair dozens of times
_MACHINE_CACHE = LruCache(maxsize=64)


def make_machine(nodes: int, cores_per_node: int = 64) -> MachineSpec:
    """A Cori-KNL machine allocation (the paper's platform).

    Memoized per ``(nodes, cores_per_node)`` — specs are immutable, and
    sweep/planner grids rebuild the same handful of allocations at every
    grid point.  Counters via :func:`machine_cache_stats`.
    """
    key = (int(nodes), int(cores_per_node))
    cached = _MACHINE_CACHE.get(key)
    if cached is not None:
        return cached
    machine = cori_knl(nodes, app_cores_per_node=cores_per_node)
    _MACHINE_CACHE.put(key, machine)
    return machine


def clear_machine_cache() -> None:
    _MACHINE_CACHE.clear()


def machine_cache_stats() -> dict:
    """Size/cap/hit/miss/eviction counters of the machine-spec cache."""
    return _MACHINE_CACHE.stats()


def _make_faults(fault_plan, fault_seed: int):
    if fault_plan is None:
        return None
    from repro.faults import FaultInjector

    return FaultInjector(fault_plan, fault_seed)


def run_alignment(
    workload,
    nodes: int,
    approach: str = "bsp",
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    machine: MachineSpec | None = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    fault_plan=None,
    fault_seed: int = 0,
    kernel: str = "model",
) -> RunResult:
    """Simulate one engine processing a workload on a machine allocation.

    ``approach`` may be any registered engine.  Macro engines consume the
    workload's per-rank :meth:`assignment`; micro (message-level) engines
    require a :class:`ConcreteWorkload` and accept ``kernel="real"`` to run
    the actual X-drop kernel per task.

    ``tracer``/``metrics`` attach observability (see :mod:`repro.obs`): the
    run emits phase/instant events into the tracer (one Chrome "process"
    per run) and rolls per-rank counters into the registry.  When no tracer
    is passed, the engine falls back to the ambient default tracer, if one
    is installed via :func:`repro.obs.set_default_tracer`.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) subjects the run to
    injected faults, realized deterministically from ``fault_seed`` by a
    fresh :class:`repro.faults.FaultInjector` — fault randomness never
    touches the workload/noise streams (see docs/RESILIENCE.md).

    ``approach="auto"`` consults the cost-model planner
    (:mod:`repro.perf.planner`) instead of naming an engine: the
    top-ranked predicted plan runs, and predicted-vs-actual lands in
    ``result.details["plan"]`` (docs/PLANNER.md).
    """
    if approach == "auto":
        return _run_auto(workload, nodes, config, cores_per_node, machine,
                         tracer, metrics, fault_plan, fault_seed, kernel)
    info = get_engine(approach)
    machine = machine or make_machine(nodes, cores_per_node)
    engine = info.factory(config=config or EngineConfig())
    faults = _make_faults(fault_plan, fault_seed)
    if info.kind == _registry.MICRO:
        concrete = isinstance(workload, ConcreteWorkload) or (
            isinstance(workload, ShardedWorkload) and workload.is_concrete
        )
        if not concrete:
            raise ConfigurationError(
                f"approach {approach!r} is a message-level engine and needs "
                f"a ConcreteWorkload (sequence-level dataset) or a sharded "
                f"workload with a concrete backing, not "
                f"{type(workload).__name__}"
            )
        return engine.run(workload, machine, kernel=kernel, tracer=tracer,
                          metrics=metrics, faults=faults)
    assignment = workload.assignment(machine.total_ranks)
    return engine.run(assignment, machine, tracer=tracer, metrics=metrics,
                      faults=faults)


def _run_auto(workload, nodes, config, cores_per_node, machine,
              tracer, metrics, fault_plan, fault_seed, kernel) -> RunResult:
    """``approach="auto"``: plan, run the top prediction, record regret.

    When no grid point is feasible (every hook raised, or no macro
    engine has a cost hook), falls back to *measuring* every macro
    engine and keeping the winner — slower, but never wrong; the
    fallback is flagged as ``details["plan"]["mode"] == "measured"``.
    """
    from repro.perf.planner import plan

    machine = machine or make_machine(nodes, cores_per_node)
    base = config if config is not None else EngineConfig()
    points = plan(workload, machine=machine, config=base)
    ranked_head = [p.as_dict() for p in points[:5]]
    feasible = [p for p in points if p.feasible]
    if feasible:
        top = feasible[0]
        result = run_alignment(
            workload, nodes, top.engine, top.apply(base), cores_per_node,
            machine=machine, tracer=tracer, metrics=metrics,
            fault_plan=fault_plan, fault_seed=fault_seed, kernel=kernel,
        )
        actual = result.breakdown.wall_time
        result.details["plan"] = {
            "mode": "predicted",
            "engine": top.engine,
            "knobs": dict(top.knobs),
            "predicted_wall": top.predicted_wall,
            "actual_wall": actual,
            "prediction_error": (actual / top.predicted_wall - 1.0
                                 if top.predicted_wall > 0 else 0.0),
            "grid_points": len(points),
            "ranked": ranked_head,
        }
        return result
    measured = {
        name: run_alignment(
            workload, nodes, name, base, cores_per_node, machine=machine,
            tracer=tracer, metrics=metrics,
            fault_plan=fault_plan, fault_seed=fault_seed, kernel=kernel,
        )
        for name in available_engines(kind=_registry.MACRO)
    }
    best = min(measured, key=lambda n: measured[n].breakdown.wall_time)
    result = measured[best]
    result.details["plan"] = {
        "mode": "measured",
        "engine": best,
        "measured_walls": {
            n: r.breakdown.wall_time for n, r in measured.items()
        },
        "grid_points": len(points),
        "ranked": ranked_head,
    }
    return result


# -- parallel grid fan-out ---------------------------------------------------


def _grid_point_worker(payload) -> RunResult:
    """Run one pre-rendered grid point in a pool worker.

    The assignment arrives rendered from the parent (fork shares the
    pages; the per-P LRU cache is *not* silently re-rendered per worker)
    and the ambient tracer is cleared — observability sinks live in the
    parent and cannot aggregate across processes.
    """
    name, assignment, machine, config, fault_plan, fault_seed = payload
    set_default_tracer(None)
    engine = get_engine(name).factory(
        config=config if config is not None else EngineConfig()
    )
    faults = _make_faults(fault_plan, fault_seed)
    return engine.run(assignment, machine, faults=faults)


def _check_parallel_grid(names, tracer, metrics) -> None:
    """Reject grid-parallel requests the fan-out cannot honor."""
    if tracer is not None or metrics is not None:
        raise ConfigurationError(
            "parallel grid execution cannot attach a tracer or metrics "
            "registry: observability sinks aggregate in-process; rerun "
            "with parallel=False to trace or count"
        )
    for name in names:
        if get_engine(name).kind == _registry.MICRO:
            raise ConfigurationError(
                f"approach {name!r} is a message-level (micro) engine; "
                f"the parallel grid fans out macro runs only — run micro "
                f"engines with parallel=False"
            )


def _resolve_workers(parallel, n_points: int) -> int:
    """Worker count from a ``parallel=`` value (True = one per core)."""
    # bool first: isinstance(True, int) is True, so True would int() to 1
    workers = (os.cpu_count() or 1) if parallel is True else int(parallel)
    if workers < 1:
        raise ConfigurationError(
            f"parallel= wants True or a worker count >= 1, got {parallel!r}"
        )
    return min(workers, max(1, n_points))


def compare_engines(
    workload,
    nodes: int,
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    fault_plan=None,
    fault_seed: int = 0,
    approaches: Iterable[str] | None = None,
    parallel: bool | int = False,
) -> dict[str, RunResult]:
    """Run the macro approaches on identical fixed inputs (the paper's
    method).

    ``approaches`` defaults to every registered macro engine (the micro
    engines need concrete workloads and hours, not identical aggregates).
    With a tracer attached, the runs land in one trace as separate Chrome
    "processes" — a side-by-side timeline in Perfetto.  With a
    ``fault_plan``, each engine gets its own injector built from the same
    plan and seed — identical bad luck for all codes.

    ``parallel=True`` (or a worker count) fans the independent engine
    runs over a process pool — bit-identical to the serial path (the
    golden-signature suite pins it), but tracers/metrics cannot attach.
    """
    names = (tuple(approaches) if approaches is not None
             else available_engines(kind=_registry.MACRO))
    for name in names:
        get_engine(name)  # fail fast on typos before running anything
    if parallel:
        from repro.runtime.executor import fanout_map

        _check_parallel_grid(names, tracer, metrics)
        machine = make_machine(nodes, cores_per_node)
        # render once in the parent; workers inherit the pages via fork
        assignment = workload.assignment(machine.total_ranks)
        payloads = [
            (name, assignment, machine, config, fault_plan, fault_seed)
            for name in names
        ]
        results = fanout_map(_grid_point_worker, payloads,
                             _resolve_workers(parallel, len(payloads)))
        return dict(zip(names, results))
    return {
        name: run_alignment(workload, nodes, name, config, cores_per_node,
                            tracer=tracer, metrics=metrics,
                            fault_plan=fault_plan, fault_seed=fault_seed)
        for name in names
    }


def scaling_sweep(
    workload,
    node_counts: Iterable[int],
    approaches: Iterable[str] | None = None,
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    tracer: Tracer | None = None,
    metrics: dict[int, MetricsRegistry] | None = None,
    fault_plan=None,
    fault_seed: int = 0,
    parallel: bool | int = False,
) -> dict[str, dict[int, RunResult]]:
    """Strong-scaling sweep: results[approach][nodes] -> RunResult.

    ``approaches`` defaults to every registered macro engine.  A counter
    registry is sized to one rank count, which varies across the sweep —
    so ``metrics``, when given, is a caller-supplied dict that the sweep
    fills with one :class:`MetricsRegistry` per node count (shared by the
    approaches at that size).  ``fault_plan``/``fault_seed`` build a fresh
    injector per run, exactly as :func:`run_alignment` does — the same
    bad luck at every size, for every approach.

    Each workload assignment is rendered at most once per rank count: all
    approaches at a node count share the workload's per-P LRU cache entry
    (observable through ``workload.assignment_cache.stats()``).

    ``parallel=True`` (or a worker count) fans the engine × node-count
    grid over a process pool.  Assignments are still rendered once per
    rank count — in the parent, before dispatch — and the results are
    bit-identical to the serial sweep (pinned by the golden-signature
    suite); tracers/metrics cannot attach in this mode.
    """
    names = (tuple(approaches) if approaches is not None
             else available_engines(kind=_registry.MACRO))
    for name in names:
        get_engine(name)  # fail fast on typos before running anything
    if parallel:
        from repro.runtime.executor import fanout_map

        _check_parallel_grid(names, tracer, metrics)
        payloads = []
        for nodes in node_counts:
            machine = make_machine(nodes, cores_per_node)
            # one render per rank count, in the parent — the per-P LRU
            # cache is not silently re-rendered inside every worker
            assignment = workload.assignment(machine.total_ranks)
            for name in names:
                payloads.append((name, assignment, machine, config,
                                 fault_plan, fault_seed))
        results = fanout_map(_grid_point_worker, payloads,
                             _resolve_workers(parallel, len(payloads)))
        out = {a: {} for a in names}
        for (name, _a, machine, *_rest), res in zip(payloads, results):
            out[name][machine.nodes] = res
        return out
    out: dict[str, dict[int, RunResult]] = {a: {} for a in names}
    for nodes in node_counts:
        node_metrics = None
        if metrics is not None:
            node_metrics = metrics.get(nodes)
            if node_metrics is None:
                machine = make_machine(nodes, cores_per_node)
                node_metrics = MetricsRegistry(machine.total_ranks)
                metrics[nodes] = node_metrics
        for approach in names:
            out[approach][nodes] = run_alignment(
                workload, nodes, approach, config, cores_per_node,
                tracer=tracer, metrics=node_metrics,
                fault_plan=fault_plan, fault_seed=fault_seed,
            )
    return out


def run_plan_points(
    workload,
    nodes: int,
    points,
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    fault_plan=None,
    fault_seed: int = 0,
    parallel: bool | int = False,
) -> list[RunResult | None]:
    """Execute planner grid points; results align with ``points``.

    The measurement half of the planner's regret methodology
    (``benchmarks/bench_planner.py``): each feasible
    :class:`~repro.perf.planner.PlanPoint` runs through its engine with
    its knobs applied over ``config``; infeasible points yield ``None``.
    ``parallel=`` fans the feasible points over the process pool exactly
    like :func:`scaling_sweep` — one parent-rendered assignment, results
    bit-identical to the serial path.
    """
    machine = make_machine(nodes, cores_per_node)
    base = config if config is not None else EngineConfig()
    runnable = [(i, p) for i, p in enumerate(points)
                if getattr(p, "feasible", True)]
    results: list[RunResult | None] = [None] * len(points)
    if parallel:
        from repro.runtime.executor import fanout_map

        _check_parallel_grid([p.engine for _, p in runnable], None, None)
        assignment = workload.assignment(machine.total_ranks)
        payloads = [
            (p.engine, assignment, machine, p.apply(base),
             fault_plan, fault_seed)
            for _, p in runnable
        ]
        outs = fanout_map(_grid_point_worker, payloads,
                          _resolve_workers(parallel, len(payloads)))
        for (i, _p), res in zip(runnable, outs):
            results[i] = res
        return results
    for i, p in runnable:
        results[i] = run_alignment(
            workload, nodes, p.engine, p.apply(base), cores_per_node,
            machine=machine, fault_plan=fault_plan, fault_seed=fault_seed,
        )
    return results
