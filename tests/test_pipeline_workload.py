"""Tests for concrete and statistical workloads."""

import numpy as np
import pytest

from repro.align.cost import AlignmentCostModel
from repro.errors import ConfigurationError
from repro.genome.datasets import DatasetSpec, DATASETS, synthesize_dataset
from repro.pipeline.tasks import TaskTable
from repro.pipeline.workload import (
    ConcreteWorkload,
    StatisticalWorkload,
    TaskCostDistribution,
)


def tiny_spec(n_reads=3000, n_tasks=40_000):
    return DatasetSpec(
        name="unit_stat",
        species="synthetic",
        n_reads=n_reads,
        n_tasks=n_tasks,
        coverage=20.0,
        error_rate=0.1,
        mean_read_length=2000.0,
        length_sigma=0.3,
    )


@pytest.fixture(scope="module")
def stat_wl():
    return StatisticalWorkload(tiny_spec(), seed=3)


def check_assignment_consistency(a):
    assert a.tasks_per_rank.sum() == a.total_tasks
    assert a.reads_per_rank.sum() == a.total_reads
    assert np.all(a.compute_seconds >= a.local_pair_seconds)
    # requester and server sides of the dedup'd exchange must mirror
    assert a.lookups.sum() == pytest.approx(a.incoming_lookups.sum())
    assert a.lookup_bytes.sum() == pytest.approx(a.incoming_bytes.sum())
    assert np.all(a.lookup_bytes >= 0) and np.all(a.partition_bytes >= 0)


def test_statistical_totals_match_spec(stat_wl):
    assert stat_wl.n_reads == 3000
    assert stat_wl.n_tasks == 40_000
    assert stat_wl.read_lengths.size == 3000


def test_statistical_assignment_consistency(stat_wl):
    for P in (1, 7, 64):
        check_assignment_consistency(stat_wl.assignment(P))


def test_statistical_single_rank_all_local(stat_wl):
    a = stat_wl.assignment(1)
    assert a.lookups[0] == 0
    assert a.lookup_bytes[0] == 0
    assert a.local_pair_seconds[0] == pytest.approx(a.compute_seconds[0])


def test_statistical_deterministic():
    a1 = StatisticalWorkload(tiny_spec(), seed=3).assignment(16)
    a2 = StatisticalWorkload(tiny_spec(), seed=3).assignment(16)
    assert np.array_equal(a1.compute_seconds, a2.compute_seconds)
    assert np.array_equal(a1.lookup_bytes, a2.lookup_bytes)


def test_statistical_seed_changes_draws():
    a1 = StatisticalWorkload(tiny_spec(), seed=3).assignment(16)
    a2 = StatisticalWorkload(tiny_spec(), seed=4).assignment(16)
    assert not np.array_equal(a1.compute_seconds, a2.compute_seconds)


def test_statistical_total_compute_independent_of_p(stat_wl):
    t16 = stat_wl.assignment(16).compute_seconds.sum()
    t64 = stat_wl.assignment(64).compute_seconds.sum()
    # totals drift only by sampling noise (same distributions, same count)
    assert t64 == pytest.approx(t16, rel=0.1)


def test_statistical_lookups_scale_down_with_p(stat_wl):
    a8 = stat_wl.assignment(8)
    a64 = stat_wl.assignment(64)
    assert a64.lookups.mean() < a8.lookups.mean()
    # but total lookups grow with P (less dedup, fewer local partners)
    assert a64.lookups.sum() >= a8.lookups.sum()


def test_statistical_anchor_calibration():
    wl = StatisticalWorkload(DATASETS["ecoli30x"], seed=1)
    # mean task cost calibrated to the 1-hour single-core anchor
    from repro.align.cost import MEAN_TASK_COST

    a = wl.assignment(64)
    assert a.mean_task_cost == pytest.approx(
        MEAN_TASK_COST["ecoli30x"], rel=0.05
    )


def test_statistical_rejects_sequence_level_spec():
    with pytest.raises(ConfigurationError):
        StatisticalWorkload(DATASETS["ecoli30x_tiny"])


def test_single_exchange_estimate(stat_wl):
    a = stat_wl.assignment(16)
    expected = a.lookup_bytes.sum() / 16 + a.partition_bytes.mean()
    assert a.single_exchange_estimate() == pytest.approx(expected)


def test_cost_distribution_calibration():
    rng = np.random.default_rng(0)
    dist = TaskCostDistribution(AlignmentCostModel(), fp_rate=0.3)
    dist.calibrate(2000.0, 0.3, target_mean=1e-3, rng=rng)
    la = rng.lognormal(np.log(2000), 0.3, 100_000)
    lb = rng.lognormal(np.log(2000), 0.3, 100_000)
    mean = dist.sample_seconds(la, lb, rng).mean()
    assert mean == pytest.approx(1e-3, rel=0.05)


def test_concrete_from_pipeline():
    run = synthesize_dataset(DATASETS["ecoli30x_tiny"], seed=5)
    wl = ConcreteWorkload.from_pipeline(
        "tiny", run.reads, k=13, bounds=(2, 60), measure_sample=40
    )
    assert wl.n_tasks > 100
    assert np.all(wl.task_costs > 0)
    a = wl.assignment(8)
    check_assignment_consistency(a)
    # most reads overlap something at 30x coverage
    assert wl.n_tasks > wl.n_reads


def test_concrete_assignment_cached():
    tasks = TaskTable(
        read_a=np.array([0, 1]),
        read_b=np.array([1, 2]),
        pos_a=np.array([0, 0]),
        pos_b=np.array([0, 0]),
        reverse=np.array([False, False]),
        k=5,
    )
    from repro.genome.sequence import ReadSet

    reads = ReadSet.from_strings(["ACGTACGT", "ACGTACGTAA", "GGGGCCCC"])
    wl = ConcreteWorkload("c", reads, tasks, np.array([1.0, 2.0]))
    assert wl.assignment(2) is wl.assignment(2)


def test_concrete_cost_length_mismatch():
    from repro.genome.sequence import ReadSet

    reads = ReadSet.from_strings(["ACGT"])
    tasks = TaskTable(
        read_a=np.array([0]), read_b=np.array([0]),
        pos_a=np.array([0]), pos_b=np.array([0]),
        reverse=np.array([False]), k=3,
    )
    with pytest.raises(ConfigurationError):
        ConcreteWorkload("c", reads, tasks, np.array([1.0, 2.0]))
