"""Kernel throughput: scalar per-pair X-drop vs the batched wavefront.

The paper's cost model counts DP cells (§4.2), but the pure-python
reproduction's wall-clock is dominated by per-pair-per-antidiagonal
dispatch overhead.  This benchmark establishes the perf trajectory of the
batched kernel (:mod:`repro.align.batch`): pairs/sec and cells/sec for the
scalar loop vs one ``align_batch`` call, on the two workload shapes that
drive the paper's load-imbalance story — true overlaps (long extensions)
and false positives (early termination).

Writes ``BENCH_KERNEL.json`` at the repo root.  Also runnable standalone:

    python benchmarks/bench_kernel_batch.py [--tiny]
"""

import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.align.seedextend import SeedExtendAligner
from repro.genome import alphabet
from repro.genome.synth import ErrorModel

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_KERNEL.json"

X_DROP = 15
SEED_K = 17
BATCH_SIZES = (1, 16, 64, 256)

#: tiny smoke size: still >= 64 pairs so the batch-64 row always exists
TINY = (64, 400)


def make_pairs(rng, num_pairs: int, length: int, true_overlap: bool):
    """Synthetic candidate tasks with a planted seed at the midpoint."""
    em = ErrorModel(error_rate=0.15, n_rate=0.0)
    pairs = []
    for _ in range(num_pairs):
        if true_overlap:
            core = alphabet.random_sequence(length, rng)
            a, b = em.apply(core, rng), em.apply(core, rng)
        else:
            a = alphabet.random_sequence(length, rng)
            b = alphabet.random_sequence(length, rng)
        pos = min(a.size, b.size) // 2
        b = b.copy()
        b[pos: pos + SEED_K] = a[pos: pos + SEED_K]
        pairs.append((a, b, pos, pos, SEED_K, False, -1, -1))
    return pairs


def _timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def measure(pairs, batch_size: int) -> dict:
    """Scalar-loop vs batched throughput over the same pairs."""
    aligner = SeedExtendAligner(x_drop=X_DROP)
    scalar, t_scalar = _timed(
        lambda: [aligner.align(*p[:5], reverse=p[5]) for p in pairs])
    batched, t_batch = _timed(
        lambda: [a
                 for i in range(0, len(pairs), batch_size)
                 for a in aligner.align_batch(pairs[i: i + batch_size])])
    if [(a.score, a.cells) for a in scalar] != \
            [(a.score, a.cells) for a in batched]:
        raise AssertionError("batched kernel diverged from scalar kernel")
    cells = sum(a.cells for a in scalar)
    return {
        "batch_size": batch_size,
        "pairs": len(pairs),
        "cells": cells,
        "scalar_pairs_per_sec": len(pairs) / t_scalar,
        "batch_pairs_per_sec": len(pairs) / t_batch,
        "scalar_cells_per_sec": cells / t_scalar,
        "batch_cells_per_sec": cells / t_batch,
        "speedup": t_scalar / t_batch,
    }


def sweep(num_pairs: int = 256, length: int = 1500) -> dict:
    rng = np.random.default_rng(1234)
    workloads = {
        "true_overlap": make_pairs(rng, num_pairs, length, True),
        "false_positive": make_pairs(rng, num_pairs, length, False),
    }
    rows = []
    report: dict = {
        "x_drop": X_DROP,
        "seed_k": SEED_K,
        "pair_length": length,
        "num_pairs": num_pairs,
        "workloads": {},
    }
    for name, pairs in workloads.items():
        runs = [measure(pairs, b) for b in BATCH_SIZES if b <= num_pairs]
        report["workloads"][name] = runs
        for r in runs:
            rows.append([
                name, r["batch_size"],
                round(r["scalar_pairs_per_sec"], 1),
                round(r["batch_pairs_per_sec"], 1),
                round(r["scalar_cells_per_sec"] / 1e6, 2),
                round(r["batch_cells_per_sec"] / 1e6, 2),
                round(r["speedup"], 2),
            ])
    at_64 = [r["speedup"]
             for runs in report["workloads"].values()
             for r in runs if r["batch_size"] >= 64]
    report["min_speedup_at_batch_64"] = min(at_64) if at_64 else None
    return {
        "title": "Kernel throughput: scalar X-drop vs batched wavefront "
                 f"(X={X_DROP}, {length}bp pairs)",
        "columns": ["workload", "batch", "scalar_pairs/s", "batch_pairs/s",
                    "scalar_Mcells/s", "batch_Mcells/s", "speedup"],
        "rows": rows,
        "report": report,
    }


def write_json(fig: dict) -> None:
    JSON_PATH.write_text(json.dumps(fig["report"], indent=2) + "\n")


def test_kernel_batch(benchmark):
    from conftest import FAST, emit, run_once

    fig = run_once(benchmark, sweep, *(TINY if FAST else ()))
    emit("kernel_batch", {k: fig[k] for k in ("title", "columns", "rows")})
    write_json(fig)
    speedup = fig["report"]["min_speedup_at_batch_64"]
    assert speedup is not None
    if not FAST:  # tiny sizes under-amortize; only gate the full run
        assert speedup >= 3.0, f"batched kernel only {speedup:.2f}x scalar"


if __name__ == "__main__":
    tiny = "--tiny" in sys.argv
    fig = sweep(*TINY) if tiny else sweep()
    widths = [max(len(str(r[i])) for r in [fig["columns"]] + fig["rows"])
              for i in range(len(fig["columns"]))]
    print(fig["title"])
    for row in [fig["columns"]] + fig["rows"]:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    write_json(fig)
    print(f"wrote {JSON_PATH}")
