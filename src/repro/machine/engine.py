"""A minimal deterministic discrete-event engine.

Simulated processes are Python generators that ``yield``

* a number — advance this process's simulated clock by that many seconds
  (compute / busy time);
* an :class:`Event` — block until the event fires (its value is returned
  by the ``yield``);
* another :class:`Process` — block until that process finishes (its return
  value is returned by the ``yield``).

The engine executes events in (time, insertion-sequence) order, so runs are
bit-deterministic.  If the event queue drains while processes are still
blocked, a :class:`repro.errors.DeadlockError` is raised naming them — which
turns coordination bugs in the BSP/Async engines into loud failures instead
of silently-truncated simulations.

Design notes: this is deliberately a small subset of SimPy-like semantics —
enough to express SPMD ranks, barriers, RPC futures, and memory-limited
exchanges — with O(log n) scheduling and zero per-yield allocations beyond
the heap entry.  At the macro granularity used for the 32,768-core figures
each rank yields only a handful of times, keeping full-machine simulations
comfortably within a laptop budget.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable

from repro.errors import DeadlockError, SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.obs.tracer import Tracer

__all__ = ["Engine", "Event", "Process"]


class Event:
    """A one-shot level-triggered event carrying an optional value."""

    __slots__ = ("_engine", "_fired", "_value", "_waiters", "name")

    def __init__(self, engine: "Engine", name: str = ""):
        self._engine = engine
        self._fired = False
        self._value: Any = None
        self._waiters: list[Process] = []
        self.name = name

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired")
        return self._value

    def succeed(self, value: Any = None) -> None:
        """Fire the event now; waiting processes resume at the current time."""
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self._engine._schedule(0.0, proc._step, value)

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self._engine._schedule(0.0, proc._step, self._value)
        else:
            self._waiters.append(proc)


class Process:
    """A running simulated process wrapping a generator."""

    __slots__ = ("_engine", "_gen", "_done_event", "name", "blocked_on")

    def __init__(self, engine: "Engine", gen: Generator, name: str = ""):
        self._engine = engine
        self._gen = gen
        self._done_event = Event(engine, name=f"done({name})")
        self.name = name
        self.blocked_on: str | None = None
        engine._processes.append(self)
        engine._live_count += 1
        engine._schedule(0.0, self._step, None)
        engine._trace_instant("process_start", process=name)

    @property
    def finished(self) -> bool:
        return self._done_event.fired

    @property
    def done_event(self) -> Event:
        return self._done_event

    @property
    def result(self) -> Any:
        return self._done_event.value

    def _step(self, send_value: Any) -> None:
        engine = self._engine
        try:
            item = self._gen.send(send_value)
        except StopIteration as stop:
            self.blocked_on = None
            engine._live_count -= 1
            self._done_event.succeed(stop.value)
            engine._trace_instant("process_end", process=self.name)
            return
        if isinstance(item, (int, float)):
            if item < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {item}"
                )
            self.blocked_on = None
            engine._schedule(float(item), self._step, None)
        elif isinstance(item, Event):
            self.blocked_on = f"event {item.name!r}"
            item._add_waiter(self)
        elif isinstance(item, Process):
            self.blocked_on = f"process {item.name!r}"
            item._done_event._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {type(item).__name__}"
            )


class Engine:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Callable, Any]] = []
        self._seq = 0
        self._processes: list[Process] = []
        self._live_count = 0
        #: optional observability hook (set directly or via SpmdContext);
        #: lifecycle events land on the engine lane of the trace
        self.tracer = tracer

    def _trace_instant(self, name: str, **args: Any) -> None:
        if self.tracer is not None:
            from repro.obs.events import ENGINE_LANE

            self.tracer.instant(ENGINE_LANE, name, self.now, **args)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, delay: float, fn: Callable, arg: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, fn, arg))

    def event(self, name: str = "") -> Event:
        return Event(self, name=name)

    def process(self, gen: Generator, name: str = "") -> Process:
        """Start a new simulated process from a generator."""
        return Process(self, gen, name=name)

    def spawn_all(self, gens: Iterable[Generator], prefix: str = "rank") -> list[Process]:
        """Start one process per generator (e.g. one per SPMD rank)."""
        return [self.process(g, name=f"{prefix}{i}") for i, g in enumerate(gens)]

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that fires ``delay`` seconds from now."""
        ev = Event(self, name=f"timeout({delay})")
        self._schedule(delay, ev.succeed, value)
        return ev

    # -- execution ---------------------------------------------------------

    def run(self, until: float | None = None) -> float:
        """Run until the queue drains (or simulated ``until`` is reached).

        Returns the final simulated time.  Raises :class:`DeadlockError` if
        processes remain blocked when the queue drains.
        """
        while self._heap:
            t, _seq, fn, arg = self._heap[0]
            if until is not None and t > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if t < self.now - 1e-15:
                raise SimulationError("event scheduled in the past")
            self.now = t
            fn(arg)
        if self._live_count:
            stuck = [p for p in self._processes if not p.finished]
            blocked = ", ".join(
                f"{p.name} (waiting on {p.blocked_on})" for p in stuck[:8]
            )
            self._trace_instant("deadlock", blocked=len(stuck))
            raise DeadlockError(
                f"{len(stuck)} process(es) still blocked after "
                f"event queue drained: {blocked}"
            )
        return self.now
