"""Pluggable compute backends for the micro engines' kernel batches.

The paper's whole premise is exploiting all 68 cores of a Cori KNL node,
yet the reproduction's micro engines ran every batched X-drop call on a
single Python core.  This module closes that gap with a *compute backend*
abstraction over :meth:`~repro.align.seedextend.SeedExtendAligner.
align_batch`:

* ``serial`` — :class:`SerialExecutor` runs the batch inline, exactly as
  the engines always did;
* ``process`` — :class:`ProcessExecutor` fans the batch out to a pool of
  **persistent** worker processes.  Workers are seeded exactly once, at
  pool start, with the workload's sequence bytes and task descriptors via
  POSIX shared memory (:class:`SharedReadStore` wraps the existing numpy
  arrays — the ``ReadSet`` code buffer / CSR offsets and the flat
  ``TaskTable`` columns).  Per batch, workers receive only
  ``(task_index_chunk, output_offset)`` descriptors — never sequence
  copies — align their chunk with the batched wavefront kernel, and write
  compact ``(n, 7)`` int64 result rows **directly into a preallocated
  shared-memory output array at their chunk offsets**.  Nothing is
  pickled on the return path beyond a ``(pid, seconds, count)`` triple;
  the parent rehydrates :class:`Alignment` objects lazily from the shared
  rows only where a consumer needs objects (:meth:`align_tasks`), or
  hands the raw rows out untouched (:meth:`align_tasks_rows`).
* ``auto`` — :class:`AutoExecutor` measures, then chooses.  The first
  real batches run serial to sample kernel throughput; if the machine has
  spare cores and the batches are big enough to amortize dispatch, the
  next batches probe a process pool, and whichever side measures faster
  wins the rest of the run.  Single-core machines and tiny-batch
  workloads (the async engine's per-callback groups) commit to serial
  without ever paying for a pool, so ``auto`` is a safe default
  everywhere.

Determinism contract: the batched kernel is bit-identical to the scalar
kernel per pair (``repro.align.batch``), so chunk boundaries cannot change
any result; chunks write disjoint row ranges of the output array at their
submission offsets; and simulated time never touches the backend (it only
spends real wall-clock).  A ``process`` or ``auto`` run is therefore
bit-identical to a ``serial`` run for any worker count and chunk size —
locked down by ``tests/test_executor.py`` and the golden-signature suite.

When ``serial`` wins: dispatching a chunk costs roughly a millisecond of
IPC, so tiny per-callback groups only pay off once the kernel work per
chunk dominates — ``auto`` exists precisely to make that call from
measurements instead of folklore; see
``benchmarks/bench_executor_scaling.py`` for the measured crossover and
``docs/PARALLEL.md`` for the design discussion.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import shared_memory

import numpy as np

from repro.align.seedextend import Alignment, SeedExtendAligner
from repro.errors import ConfigurationError, WorkerCrashError

__all__ = [
    "BACKENDS",
    "TaskExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "AutoExecutor",
    "SharedReadStore",
    "SharedShardStore",
    "make_task_executor",
    "active_shm_segments",
    "fanout_map",
]

#: the valid ``EngineConfig.backend`` values
BACKENDS = ("serial", "process", "auto")

#: int64 columns of one result row: score, begin_a, end_a, begin_b, end_b,
#: cells, terminated_early
_ROW_WIDTH = 7

#: names of shared-memory segments created and not yet unlinked by this
#: process — the leak oracle ``tests/test_executor.py`` asserts empties
#: after every run, including fault-aborted ones
_ACTIVE_SEGMENTS: set[str] = set()


def active_shm_segments() -> frozenset[str]:
    """Shared-memory segments currently owned (created, not yet unlinked)."""
    return frozenset(_ACTIVE_SEGMENTS)


def _task_pairs(codes, tasks, task_indices) -> list[tuple]:
    """``align_batch`` argument tuples for the given task indices.

    ``codes`` maps a global read id to its uint8 code array.  Shared by the
    serial backend and the pool workers so both build byte-identical batch
    inputs in identical order.
    """
    k = tasks.k
    return [
        (
            codes(int(tasks.read_a[i])),
            codes(int(tasks.read_b[i])),
            int(tasks.pos_a[i]),
            int(tasks.pos_b[i]),
            k,
            bool(tasks.reverse[i]),
            int(tasks.read_a[i]),
            int(tasks.read_b[i]),
        )
        for i in task_indices
    ]


def _pack_rows(alignments) -> np.ndarray:
    """Compact ``(n, 7)`` int64 rows for a list of alignments."""
    out = np.empty((len(alignments), _ROW_WIDTH), dtype=np.int64)
    for j, al in enumerate(alignments):
        out[j, 0] = al.score
        out[j, 1] = al.begin_a
        out[j, 2] = al.end_a
        out[j, 3] = al.begin_b
        out[j, 4] = al.end_b
        out[j, 5] = al.cells
        out[j, 6] = al.terminated_early
    return out


def _rehydrate(tasks, idx: np.ndarray, rows: np.ndarray) -> list[Alignment]:
    """Alignment objects from result rows + the task columns the parent owns."""
    out: list[Alignment] = []
    for j in range(rows.shape[0]):
        i = int(idx[j])
        out.append(Alignment(
            read_a=int(tasks.read_a[i]),
            read_b=int(tasks.read_b[i]),
            score=int(rows[j, 0]),
            begin_a=int(rows[j, 1]),
            end_a=int(rows[j, 2]),
            begin_b=int(rows[j, 3]),
            end_b=int(rows[j, 4]),
            reverse=bool(tasks.reverse[i]),
            cells=int(rows[j, 5]),
            terminated_early=bool(rows[j, 6]),
        ))
    return out


class TaskExecutor:
    """Common surface of the compute backends.

    ``align_tasks(task_indices)`` returns one
    :class:`~repro.align.seedextend.Alignment` per index, in input order;
    ``align_tasks_rows`` returns the same results as a compact ``(n, 7)``
    int64 array for consumers that never need objects.  ``aligner`` is
    ``None`` in model-kernel runs — engines then skip the call entirely.
    Executors are context managers; :meth:`close` is idempotent and must
    run even when a fault plan aborts the engine mid-run (the engines hold
    the executor in a ``with`` block).
    """

    backend: str = "serial"
    aligner: SeedExtendAligner | None = None

    def align_tasks(self, task_indices) -> list[Alignment]:
        raise NotImplementedError

    def align_tasks_rows(self, task_indices) -> np.ndarray:
        raise NotImplementedError

    def stats(self) -> dict:
        """Wall-clock dispatch/wait/merge accounting (empty for serial)."""
        return {"backend": self.backend}

    def close(self) -> None:
        pass

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(TaskExecutor):
    """Inline execution: one batched wavefront call on the calling core."""

    backend = "serial"

    def __init__(self, workload, aligner: SeedExtendAligner | None,
                 downgraded_from: str | None = None):
        self.workload = workload
        self.aligner = aligner
        #: backend the caller asked for when this serial executor is a
        #: downgrade (model-kernel run requested ``process``) — surfaced
        #: as the ``exec_backend_downgraded`` metric, never silent
        self.downgraded_from = downgraded_from

    def align_tasks(self, task_indices) -> list[Alignment]:
        if len(task_indices) == 0:
            return []
        return self.aligner.align_batch(
            _task_pairs(self.workload.reads.codes, self.workload.tasks,
                        task_indices)
        )

    def align_tasks_rows(self, task_indices) -> np.ndarray:
        return _pack_rows(self.align_tasks(task_indices))

    def stats(self) -> dict:
        s = {"backend": self.backend}
        if self.downgraded_from is not None:
            s["backend_downgraded"] = 1.0
            s["downgraded_from"] = self.downgraded_from
        return s


# -- process backend ---------------------------------------------------------


class _ShmArrayPublisher:
    """Base: publish named numpy arrays as POSIX shared-memory segments."""

    def _publish(self, k: int, arrays: dict) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        self.spec: dict = {"k": int(k), "arrays": {}}
        try:
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                _ACTIVE_SEGMENTS.add(shm.name)
                self._segments.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                self.spec["arrays"][name] = (shm.name, arr.shape, arr.dtype.str)
        except BaseException:
            self.close()
            raise
        self._closed = False

    def close(self) -> None:
        """Unlink every segment (idempotent; safe mid-construction)."""
        if getattr(self, "_closed", False):
            return
        for shm in self._segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _ACTIVE_SEGMENTS.discard(shm.name)
        self._segments = []
        self._closed = True


class SharedReadStore(_ShmArrayPublisher):
    """The workload's read bytes + task columns, in POSIX shared memory.

    Wraps the *existing* numpy arrays — the ``ReadSet``'s flat uint8 code
    buffer and int64 CSR offsets, plus the five flat ``TaskTable`` columns
    — one segment each, copied once at pool start.  Workers attach by name
    and reconstruct zero-copy ndarray views, so per-batch traffic is task
    indices in, rows written straight into the shared output array out.
    """

    def __init__(self, workload):
        self._publish(workload.tasks.k, {
            "buffer": workload.reads.buffer,
            "offsets": workload.reads.offsets,
            "read_a": workload.tasks.read_a,
            "read_b": workload.tasks.read_b,
            "pos_a": workload.tasks.pos_a,
            "pos_b": workload.tasks.pos_b,
            "reverse": workload.tasks.reverse,
        })


class SharedShardStore(_ShmArrayPublisher):
    """One batch's reads + task rows, compacted into shared memory.

    The out-of-core variant of :class:`SharedReadStore` for sharded
    workloads: instead of seeding the pool once with the *whole* read set,
    each batch publishes only the reads its tasks touch — gathered into a
    compact code buffer with local CSR offsets — plus the batch's task
    columns with read ids **remapped to local ids**.  The remap is
    invisible in the results: read ids only select code slices inside the
    worker (the result rows carry no ids; the parent rehydrates from its
    own global columns), so resident shared memory scales with the batch,
    never with the workload.
    """

    def __init__(self, workload, idx: np.ndarray):
        tasks = workload.tasks
        reads = workload.reads
        read_a = tasks.read_a[idx]
        read_b = tasks.read_b[idx]
        uniq, inverse = np.unique(
            np.concatenate([read_a, read_b]), return_inverse=True
        )
        g_off = reads.offsets
        lengths = g_off[uniq + 1] - g_off[uniq]
        offsets = np.concatenate([[0], np.cumsum(lengths)]).astype(np.int64)
        buffer = np.empty(int(offsets[-1]), dtype=np.uint8)
        for j in range(uniq.size):
            r = uniq[j]
            buffer[offsets[j]: offsets[j + 1]] = \
                reads.buffer[g_off[r]: g_off[r + 1]]
        self._publish(tasks.k, {
            "buffer": buffer,
            "offsets": offsets,
            "read_a": inverse[: idx.size].astype(np.int64),
            "read_b": inverse[idx.size:].astype(np.int64),
            "pos_a": tasks.pos_a[idx],
            "pos_b": tasks.pos_b[idx],
            "reverse": tasks.reverse[idx],
        })


class _SharedOutput:
    """Preallocated ``(capacity, 7)`` int64 result array in shared memory.

    Sized from the first batch's task count and **reused across batches**;
    grows geometrically (new segment, old unlinked) when a later batch is
    larger, so reallocation is rare.  Chunks write disjoint row ranges at
    their submission offsets, which is what makes the return path
    zero-copy: the parent reads results where the workers left them.
    """

    def __init__(self):
        self._shm: shared_memory.SharedMemory | None = None
        self.capacity = 0
        self.name: str | None = None
        self.view: np.ndarray | None = None

    def ensure(self, n: int) -> None:
        """Guarantee room for ``n`` rows (contents are batch-scratch)."""
        if n <= self.capacity:
            return
        cap = max(n, 2 * self.capacity)
        self.close()
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, cap * _ROW_WIDTH * 8)
        )
        _ACTIVE_SEGMENTS.add(shm.name)
        self._shm = shm
        self.capacity = cap
        self.name = shm.name
        self.view = np.ndarray((cap, _ROW_WIDTH), dtype=np.int64,
                               buffer=shm.buf)

    def close(self) -> None:
        if self._shm is None:
            return
        self.view = None
        self._shm.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass
        _ACTIVE_SEGMENTS.discard(self._shm.name)
        self._shm = None
        self.capacity = 0
        self.name = None


def _pool_context():
    """Start-method context for the pool: ``fork`` wherever available.

    Forked workers share the parent's resource-tracker process, so their
    attach-time re-registration of the shared segments is an idempotent
    set-add and the parent's ``unlink()`` stays the single owner of the
    cleanup.  (Under ``spawn`` each worker gets its *own* tracker, which
    must be disowned instead — see :class:`_WorkerState`.)
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context()


def _disown_tracker_claim(shm: shared_memory.SharedMemory) -> None:
    """Hand a worker-side attach registration back to the parent.

    On < 3.13, attaching also *registers* the segment with the worker's
    own resource tracker (spawn/forkserver), which would unlink it a
    second time after the parent already has and warn about a leak that
    never happened.  The parent owns the lifecycle.
    """
    try:  # pragma: no cover - exercised only under spawn
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class _WorkerState:
    """Per-worker-process view of the shared store + a private aligner.

    ``spec=None`` is the per-batch (sharded) mode: no pool-lifetime read
    store exists; each chunk call carries its batch's
    :class:`SharedShardStore` spec instead, and the worker caches exactly
    one batch attachment at a time (keyed by the buffer segment name — a
    new batch means new segments, so a name change is the refresh signal).
    """

    def __init__(self, spec: dict | None, x_drop: int, scoring,
                 disown_tracker: bool = False):
        self._disown = disown_tracker
        self._out_shm: shared_memory.SharedMemory | None = None
        self._out_name: str | None = None
        self._out_view: np.ndarray | None = None
        self._batch_name: str | None = None
        self._batch_shms: list[shared_memory.SharedMemory] = []
        self.buffer: np.ndarray | None = None
        self.offsets: np.ndarray | None = None
        self.tasks: _TaskColumns | None = None
        if spec is not None:
            self._shms, arrays = self._attach(spec)
            self.buffer = arrays["buffer"]
            self.offsets = arrays["offsets"]
            self.tasks = _TaskColumns(
                read_a=arrays["read_a"], read_b=arrays["read_b"],
                pos_a=arrays["pos_a"], pos_b=arrays["pos_b"],
                reverse=arrays["reverse"], k=spec["k"],
            )
        self.aligner = SeedExtendAligner(x_drop=x_drop, scoring=scoring)

    def _attach(self, spec: dict):
        shms: list[shared_memory.SharedMemory] = []
        arrays: dict[str, np.ndarray] = {}
        for name, (shm_name, shape, dtype) in spec["arrays"].items():
            shm = shared_memory.SharedMemory(name=shm_name)
            if self._disown:
                _disown_tracker_claim(shm)
            shms.append(shm)
            arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf
            )
        return shms, arrays

    def batch(self, spec: dict):
        """(codes, tasks) view of one batch store; cached until replaced."""
        name = spec["arrays"]["buffer"][0]
        if name != self._batch_name:
            for shm in self._batch_shms:
                shm.close()
            self._batch_shms, arrays = self._attach(spec)
            self._batch_name = name
            self._batch_buffer = arrays["buffer"]
            self._batch_offsets = arrays["offsets"]
            self._batch_tasks = _TaskColumns(
                read_a=arrays["read_a"], read_b=arrays["read_b"],
                pos_a=arrays["pos_a"], pos_b=arrays["pos_b"],
                reverse=arrays["reverse"], k=spec["k"],
            )

        def codes(read_id: int) -> np.ndarray:
            return self._batch_buffer[
                self._batch_offsets[read_id]: self._batch_offsets[read_id + 1]
            ]

        return codes, self._batch_tasks

    def codes(self, read_id: int) -> np.ndarray:
        return self.buffer[self.offsets[read_id]: self.offsets[read_id + 1]]

    def output(self, name: str, capacity: int) -> np.ndarray:
        """Writable view of the parent's shared output array.

        Cached between chunks; re-attaches only when the parent grew the
        array (growth means a fresh segment under a fresh name).
        """
        if name != self._out_name:
            if self._out_shm is not None:
                self._out_shm.close()
            shm = shared_memory.SharedMemory(name=name)
            if self._disown:
                _disown_tracker_claim(shm)
            self._out_shm = shm
            self._out_name = name
            self._out_view = np.ndarray((capacity, _ROW_WIDTH),
                                        dtype=np.int64, buffer=shm.buf)
        return self._out_view


class _TaskColumns:
    """Duck-typed stand-in for :class:`~repro.pipeline.tasks.TaskTable`."""

    def __init__(self, read_a, read_b, pos_a, pos_b, reverse, k):
        self.read_a = read_a
        self.read_b = read_b
        self.pos_a = pos_a
        self.pos_b = pos_b
        self.reverse = reverse
        self.k = k


_WORKER_STATE: _WorkerState | None = None


def _worker_init(spec: dict | None, x_drop: int, scoring,
                 disown_tracker: bool = False) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(spec, x_drop, scoring, disown_tracker)


def _align_chunk(indices: np.ndarray, offset: int, out_name: str,
                 out_capacity: int,
                 batch_spec: dict | None = None) -> tuple[int, float, int]:
    """Worker entry: align one chunk, write rows into the shared output.

    Results land directly in the parent's preallocated output array at
    ``[offset, offset + len(indices))`` — score, begin_a, end_a, begin_b,
    end_b, cells, terminated_early per row — so the only thing pickled
    back is this ``(pid, seconds, count)`` triple.

    ``batch_spec`` selects the per-batch mode: ``indices`` are then
    positions *within* the batch's :class:`SharedShardStore` (whose task
    columns are already batch-sliced) rather than global task indices.
    """
    st = _WORKER_STATE
    if batch_spec is not None:
        codes, tasks = st.batch(batch_spec)
    else:
        codes, tasks = st.codes, st.tasks
    t0 = time.perf_counter()
    alignments = st.aligner.align_batch(
        _task_pairs(codes, tasks, indices)
    )
    out = st.output(out_name, out_capacity)
    out[offset: offset + len(alignments)] = _pack_rows(alignments)
    return os.getpid(), time.perf_counter() - t0, len(alignments)


class ProcessExecutor(TaskExecutor):
    """Persistent worker pool over the shared read store.

    Chunking: ``chunk_tasks`` fixes the tasks per dispatched chunk; 0
    splits each batch evenly across the workers (one chunk per worker).
    Either way, chunks write disjoint output rows at their submission
    offsets, so chunking is invisible in the output.
    """

    backend = "process"

    def __init__(self, workload, aligner: SeedExtendAligner,
                 workers: int, chunk_tasks: int = 0):
        if workers < 1:
            raise ConfigurationError("process backend needs workers >= 1")
        if chunk_tasks < 0:
            raise ConfigurationError("chunk_tasks must be >= 0 (0 = auto)")
        self.workload = workload
        self.aligner = aligner
        self.workers = workers
        self.chunk_tasks = chunk_tasks
        self._stats = {
            "batches": 0, "chunks": 0, "tasks": 0, "failed_batches": 0,
            "dispatch_s": 0.0, "wait_s": 0.0, "merge_s": 0.0,
        }
        self._per_worker: dict[int, dict] = {}
        # sharded workloads get the per-batch store: the pool is seeded
        # with *no* read data at all, and each batch ships only the reads
        # it touches (SharedShardStore) — shared-memory residency tracks
        # the batch size instead of the workload size
        self._per_batch = bool(getattr(workload, "shard_tasks", 0))
        if self._per_batch:
            self._store = None
            self._stats["batch_stores"] = 0
            spec = None
        else:
            self._store = SharedReadStore(workload)
            spec = self._store.spec
        self._out = _SharedOutput()
        try:
            ctx = _pool_context()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(spec, aligner.x_drop, aligner.scoring,
                          ctx.get_start_method() != "fork"),
            )
        except BaseException:
            if self._store is not None:
                self._store.close()
            self._out.close()
            raise
        self._closed = False

    def _chunk_size(self, n: int) -> int:
        if self.chunk_tasks > 0:
            return self.chunk_tasks
        return max(1, -(-n // self.workers))

    def _crash(self, n: int, exc: BrokenProcessPool) -> WorkerCrashError:
        return WorkerCrashError(
            f"a worker process died while aligning a {n}-task batch "
            f"(pool: workers={self.workers}, chunk_tasks={self.chunk_tasks}); "
            f"the pool cannot be reused — rerun with backend='serial' to "
            f"isolate, or backend='auto' to let the run choose"
        )

    def _run_chunks(self, idx: np.ndarray) -> np.ndarray:
        """Fan one batch out; return the filled view of the output rows.

        ``dispatch_s`` counts future submission only, ``wait_s`` the wait
        for worker completion.  On any worker failure the outstanding
        futures are cancelled and awaited (so no straggler writes into a
        reused output array), the batch counters stay untouched except
        ``failed_batches``, and :class:`BrokenProcessPool` is wrapped in
        the typed :class:`~repro.errors.WorkerCrashError`.
        """
        n = int(idx.size)
        self._out.ensure(n)
        chunk = self._chunk_size(n)
        starts = range(0, n, chunk)
        batch_store: SharedShardStore | None = None
        batch_spec = None
        if self._per_batch:
            # per-batch mode: publish this batch's compact store and hand
            # workers batch-local positions; closed in the finally below
            # only after every future settled (success or cancel+wait), so
            # no straggler can touch an unlinked segment
            batch_store = SharedShardStore(self.workload, idx)
            batch_spec = batch_store.spec
            self._stats["batch_stores"] += 1
        t0 = time.perf_counter()
        try:
            try:
                futures = [
                    self._pool.submit(
                        _align_chunk,
                        (idx[s: s + chunk] if batch_spec is None
                         else np.arange(s, min(s + chunk, n),
                                        dtype=np.int64)),
                        s, self._out.name, self._out.capacity, batch_spec,
                    )
                    for s in starts
                ]
            except BrokenProcessPool as exc:
                self._stats["failed_batches"] += 1
                raise self._crash(n, exc) from exc
            t1 = time.perf_counter()
            results: list[tuple[int, float, int]] = []
            try:
                for fut in futures:
                    results.append(fut.result())
            except BaseException as exc:
                for fut in futures:
                    fut.cancel()
                futures_wait(futures)
                self._stats["failed_batches"] += 1
                if isinstance(exc, BrokenProcessPool):
                    raise self._crash(n, exc) from exc
                raise
        finally:
            if batch_store is not None:
                batch_store.close()
        t2 = time.perf_counter()
        for pid, align_s, _count in results:
            w = self._per_worker.setdefault(
                pid, {"chunks": 0, "align_wall_s": 0.0}
            )
            w["chunks"] += 1
            w["align_wall_s"] += align_s
        st = self._stats
        st["batches"] += 1
        st["chunks"] += len(futures)
        st["tasks"] += n
        st["dispatch_s"] += t1 - t0
        st["wait_s"] += t2 - t1
        return self._out.view[:n]

    def align_tasks(self, task_indices) -> list[Alignment]:
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return []
        rows = self._run_chunks(idx)
        t0 = time.perf_counter()
        out = _rehydrate(self.workload.tasks, idx, rows)
        self._stats["merge_s"] += time.perf_counter() - t0
        return out

    def align_tasks_rows(self, task_indices) -> np.ndarray:
        """Raw result rows, skipping object rehydration entirely.

        The returned array is a copy — the shared output array is reused
        by the next batch.
        """
        idx = np.asarray(task_indices, dtype=np.int64)
        if idx.size == 0:
            return np.empty((0, _ROW_WIDTH), dtype=np.int64)
        rows = self._run_chunks(idx)
        t0 = time.perf_counter()
        out = rows.copy()
        self._stats["merge_s"] += time.perf_counter() - t0
        return out

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_tasks": self.chunk_tasks,
            **self._stats,
            "per_worker": {
                pid: dict(w) for pid, w in sorted(self._per_worker.items())
            },
        }

    def close(self) -> None:
        """Stop the pool, then unlink the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        if self._store is not None:
            self._store.close()
        self._out.close()


# -- adaptive backend --------------------------------------------------------

#: real batches sampled per candidate backend before ``auto`` commits
AUTO_PROBE_BATCHES = 2

#: batches below this task count neither advance the probe nor get
#: dispatched to a committed pool — per-chunk IPC (~1 ms) cannot pay for
#: itself under the batched kernel's per-task cost at this size
AUTO_MIN_PROBE_TASKS = 16

#: measured pool throughput must beat serial by this factor to win —
#: hysteresis so measurement noise near the crossover keeps the cheaper
#: (no-pool) configuration
AUTO_ADVANTAGE = 1.05


class AutoExecutor(TaskExecutor):
    """Measure-then-choose backend: probe serial and the pool, keep the winner.

    The chooser is cpu-count- and workload-aware without a model: on a
    single-core machine it commits to serial immediately (a pool can only
    lose); otherwise the first :data:`AUTO_PROBE_BATCHES` meaningfully
    sized batches run serial to sample tasks/sec, the next ones run
    through a lazily started :class:`ProcessExecutor`, and the side that
    measured faster (pool discounted by :data:`AUTO_ADVANTAGE`) executes
    the rest of the run.  Batches smaller than
    :data:`AUTO_MIN_PROBE_TASKS` always run inline — they neither inform
    nor use the pool.  Every path is bit-identical (same kernel, same
    order), so probing is invisible in the results.
    """

    backend = "auto"

    def __init__(self, workload, aligner: SeedExtendAligner,
                 workers: int = 1, chunk_tasks: int = 0):
        self.workload = workload
        self.aligner = aligner
        cpus = os.cpu_count() or 1
        #: pool size the process candidate would use: the explicit
        #: ``workers`` knob when set (> 1), else one worker per core
        #: (capped — beyond 8 the probe itself gets expensive)
        self.workers = workers if workers > 1 else max(1, min(cpus, 8))
        self.chunk_tasks = chunk_tasks
        self._serial = SerialExecutor(workload, aligner)
        self._process: ProcessExecutor | None = None
        self._chosen: TaskExecutor | None = None
        self._reason: str | None = None
        self._serial_samples: list[tuple[int, float]] = []
        self._process_samples: list[tuple[int, float]] = []
        self._pool_start_s = 0.0
        self._closed = False
        if cpus < 2:
            self._commit(self._serial, "single_core")

    # -- decision ------------------------------------------------------------

    @staticmethod
    def decide(serial_pps: float, process_pps: float) -> bool:
        """True when the measured pool throughput justifies the pool."""
        return process_pps >= AUTO_ADVANTAGE * serial_pps

    @staticmethod
    def _pps(samples: list[tuple[int, float]]) -> float:
        tasks = sum(n for n, _ in samples)
        seconds = sum(s for _, s in samples)
        return tasks / seconds if seconds > 0 else float("inf")

    def _commit(self, executor: TaskExecutor, reason: str) -> None:
        self._chosen = executor
        self._reason = reason
        if executor is not self._process and self._process is not None:
            self._process.close()
            self._process = None

    def _probe(self, task_indices, runner):
        """Route one batch while undecided; commit when samples suffice."""
        n = len(task_indices)
        if n < AUTO_MIN_PROBE_TASKS or \
                len(self._serial_samples) < AUTO_PROBE_BATCHES:
            target, samples = self._serial, self._serial_samples
        else:
            if self._process is None:
                t0 = time.perf_counter()
                try:
                    self._process = ProcessExecutor(
                        self.workload, self.aligner,
                        workers=self.workers, chunk_tasks=self.chunk_tasks,
                    )
                except OSError:  # pragma: no cover - resource exhaustion
                    self._commit(self._serial, "pool_unavailable")
                    return runner(self._serial, task_indices)
                self._pool_start_s = time.perf_counter() - t0
            target, samples = self._process, self._process_samples
        t0 = time.perf_counter()
        out = runner(target, task_indices)
        if n >= AUTO_MIN_PROBE_TASKS:
            samples.append((n, time.perf_counter() - t0))
        if len(self._process_samples) >= AUTO_PROBE_BATCHES:
            if self.decide(self._pps(self._serial_samples),
                           self._pps(self._process_samples)):
                self._commit(self._process, "measured_pool_faster")
            else:
                self._commit(self._serial, "pool_cannot_pay")
        return out

    def _route(self, task_indices, runner):
        if len(task_indices) == 0:
            return runner(self._serial, task_indices)
        if self._chosen is not None:
            # committed — but sub-probe-size batches stay inline even when
            # the pool won: per-chunk IPC dominates at that size
            if (self._chosen is self._process
                    and len(task_indices) < AUTO_MIN_PROBE_TASKS):
                return runner(self._serial, task_indices)
            return runner(self._chosen, task_indices)
        return self._probe(task_indices, runner)

    # -- TaskExecutor surface ------------------------------------------------

    def align_tasks(self, task_indices) -> list[Alignment]:
        return self._route(task_indices, lambda ex, t: ex.align_tasks(t))

    def align_tasks_rows(self, task_indices) -> np.ndarray:
        return self._route(task_indices,
                           lambda ex, t: ex.align_tasks_rows(t))

    @property
    def chosen(self) -> str:
        """The committed backend name, or ``"probing"`` while undecided."""
        if self._chosen is None:
            return "probing"
        return "process" if self._chosen is self._process else "serial"

    def stats(self) -> dict:
        s = {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_tasks": self.chunk_tasks,
            "chosen": self.chosen,
            "auto_reason": self._reason or "probing",
            "auto_chose_process": float(self._chosen is not None
                                        and self._chosen is self._process),
            "auto_pool_start_s": self._pool_start_s,
        }
        if self._serial_samples:
            s["auto_probe_serial_pps"] = self._pps(self._serial_samples)
        if self._process_samples:
            s["auto_probe_process_pps"] = self._pps(self._process_samples)
        if self._process is not None:
            inner = self._process.stats()
            inner.pop("backend")
            inner.pop("workers")
            inner.pop("chunk_tasks")
            s.update(inner)
        return s

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._process is not None:
            self._process.close()
            self._process = None


def make_task_executor(workload, aligner: SeedExtendAligner | None, *,
                       backend: str = "serial", workers: int = 1,
                       chunk_tasks: int = 0) -> TaskExecutor:
    """Build the backend an engine run charges its kernel batches through.

    Model-kernel runs (``aligner is None``) never invoke the kernel, so
    they always get the (free) serial backend regardless of ``backend`` —
    spinning up a pool that no batch will ever reach would be pure
    overhead.  An explicit ``backend="process"`` request is downgraded
    *loudly*: a :class:`RuntimeWarning` plus the
    ``exec_backend_downgraded`` metric, so a ``--backend process`` run is
    never mysteriously single-process.  ``auto`` downgrades silently —
    choosing serial for a kernel-free run is its job, not a surprise.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
        )
    if aligner is None:
        if backend == "process":
            warnings.warn(
                "backend='process' requested but this run never invokes "
                "the alignment kernel (kernel='model'); running serial — "
                "use kernel='real' to engage the pool",
                RuntimeWarning, stacklevel=2,
            )
            return SerialExecutor(workload, None, downgraded_from="process")
        return SerialExecutor(workload, None)
    if backend == "serial":
        return SerialExecutor(workload, aligner)
    if backend == "auto":
        return AutoExecutor(workload, aligner, workers=workers,
                            chunk_tasks=chunk_tasks)
    return ProcessExecutor(workload, aligner, workers=workers,
                           chunk_tasks=chunk_tasks)


# -- generic fan-out ---------------------------------------------------------


def fanout_map(fn, payloads, workers: int) -> list:
    """Run ``fn(payload)`` for every payload, fanned over a process pool.

    The grid-parallel primitive behind ``scaling_sweep(parallel=...)`` and
    ``compare_engines(parallel=...)``: payloads are independent, results
    come back **in payload order**, and ``workers=1`` (or a single
    payload) runs inline — no pool, no pickling — so the parallel path
    degenerates to the serial one exactly.  Uses the same ``fork`` pool
    context as the compute backends; a dead worker surfaces as the typed
    :class:`~repro.errors.WorkerCrashError`, mirroring
    :class:`ProcessExecutor`.

    Unlike the compute backends there is no shared-memory plumbing here:
    grid points ship a rendered workload assignment once (fork makes this
    a no-copy page share on POSIX) and return a full ``RunResult``, whose
    pickling cost is negligible next to an engine run.
    """
    payloads = list(payloads)
    if workers < 1:
        raise ConfigurationError(
            f"fanout_map needs workers >= 1, got {workers}"
        )
    if not payloads:
        return []
    if workers == 1 or len(payloads) == 1:
        return [fn(p) for p in payloads]
    try:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(payloads)),
            mp_context=_pool_context(),
        ) as pool:
            futures = [pool.submit(fn, p) for p in payloads]
            return [fut.result() for fut in futures]
    except BrokenProcessPool as exc:
        raise WorkerCrashError(
            f"a worker process died while running a "
            f"{len(payloads)}-point grid (workers={workers}); rerun with "
            f"parallel=False to isolate the failing point"
        ) from exc
