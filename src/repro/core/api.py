"""Top-level driver API.

Typical use (see ``examples/quickstart.py``)::

    from repro.core import get_workload, run_alignment

    wl = get_workload("ecoli100x")          # Table-1-exact workload
    result = run_alignment(wl, nodes=16, approach="async")
    print(result.breakdown.fractions())

Workloads are cached per ``(name, seed)`` — rendering the 87.6M-task Human
CCS assignment for a given rank count costs tens of seconds, and every
figure benchmark reuses the same object.
"""

from __future__ import annotations

from typing import Iterable

from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig
from repro.engines.bsp import BSPEngine
from repro.engines.report import RunResult
from repro.errors import ConfigurationError
from repro.genome.datasets import DATASETS, synthesize_dataset
from repro.machine.config import MachineSpec, cori_knl
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.workload import ConcreteWorkload, StatisticalWorkload

__all__ = [
    "get_workload",
    "make_machine",
    "run_alignment",
    "compare_engines",
    "scaling_sweep",
    "clear_workload_cache",
]

_WORKLOAD_CACHE: dict[tuple[str, int], object] = {}

ENGINES = {"bsp": BSPEngine, "async": AsyncEngine}


def clear_workload_cache() -> None:
    _WORKLOAD_CACHE.clear()


def get_workload(name: str, seed: int = 0):
    """Build (or fetch from cache) a named workload.

    Table-1 presets (``ecoli30x``, ``ecoli100x``, ``human_ccs``) become
    :class:`StatisticalWorkload`; sequence-level presets (``*_tiny``,
    ``*_small``) run the real pipeline end-to-end into a
    :class:`ConcreteWorkload`.
    """
    key = (name, seed)
    cached = _WORKLOAD_CACHE.get(key)
    if cached is not None:
        return cached
    spec = DATASETS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        )
    if spec.sequence_level:
        run = synthesize_dataset(spec, seed=seed)
        wl = ConcreteWorkload.from_pipeline(
            name, run.reads, k=13, bounds=(2, 80), seed=seed
        )
    else:
        wl = StatisticalWorkload(spec, seed=seed)
    _WORKLOAD_CACHE[key] = wl
    return wl


def make_machine(nodes: int, cores_per_node: int = 64) -> MachineSpec:
    """A Cori-KNL machine allocation (the paper's platform)."""
    return cori_knl(nodes, app_cores_per_node=cores_per_node)


def run_alignment(
    workload,
    nodes: int,
    approach: str = "bsp",
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    machine: MachineSpec | None = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
    fault_plan=None,
    fault_seed: int = 0,
) -> RunResult:
    """Simulate one engine processing a workload on a machine allocation.

    ``tracer``/``metrics`` attach observability (see :mod:`repro.obs`): the
    run emits phase/instant events into the tracer (one Chrome "process"
    per run) and rolls per-rank counters into the registry.  When no tracer
    is passed, the engine falls back to the ambient default tracer, if one
    is installed via :func:`repro.obs.set_default_tracer`.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`) subjects the run to
    injected faults, realized deterministically from ``fault_seed`` by a
    fresh :class:`repro.faults.FaultInjector` — fault randomness never
    touches the workload/noise streams (see docs/RESILIENCE.md).
    """
    engine_cls = ENGINES.get(approach)
    if engine_cls is None:
        raise ConfigurationError(
            f"unknown approach {approach!r}; choose from {sorted(ENGINES)}"
        )
    machine = machine or make_machine(nodes, cores_per_node)
    engine = engine_cls(config=config or EngineConfig())
    assignment = workload.assignment(machine.total_ranks)
    faults = None
    if fault_plan is not None:
        from repro.faults import FaultInjector

        faults = FaultInjector(fault_plan, fault_seed)
    return engine.run(assignment, machine, tracer=tracer, metrics=metrics,
                      faults=faults)


def compare_engines(
    workload,
    nodes: int,
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    fault_plan=None,
    fault_seed: int = 0,
) -> dict[str, RunResult]:
    """Run both approaches on identical fixed inputs (the paper's method).

    With a tracer attached, both runs land in one trace as separate
    Chrome "processes" — a side-by-side timeline in Perfetto.  With a
    ``fault_plan``, each engine gets its own injector built from the same
    plan and seed — identical bad luck for both codes.
    """
    return {
        name: run_alignment(workload, nodes, name, config, cores_per_node,
                            tracer=tracer, metrics=metrics,
                            fault_plan=fault_plan, fault_seed=fault_seed)
        for name in ("bsp", "async")
    }


def scaling_sweep(
    workload,
    node_counts: Iterable[int],
    approaches: Iterable[str] = ("bsp", "async"),
    config: EngineConfig | None = None,
    cores_per_node: int = 64,
    tracer: Tracer | None = None,
) -> dict[str, dict[int, RunResult]]:
    """Strong-scaling sweep: results[approach][nodes] -> RunResult.

    No ``metrics`` parameter: a counter registry is sized to one rank
    count, which varies across the sweep — trace instead.
    """
    out: dict[str, dict[int, RunResult]] = {a: {} for a in approaches}
    for nodes in node_counts:
        for approach in approaches:
            out[approach][nodes] = run_alignment(
                workload, nodes, approach, config, cores_per_node,
                tracer=tracer,
            )
    return out
