"""Property-based roundtrip tests across serialization boundaries."""

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.genome import alphabet
from repro.genome.fasta import read_fasta, read_fastq, write_fasta, write_fastq
from repro.genome.sequence import ReadSet

dna_reads = st.lists(
    st.text(alphabet="ACGTN", min_size=1, max_size=300),
    min_size=1,
    max_size=20,
)


@settings(max_examples=40, deadline=None)
@given(dna_reads)
def test_fasta_roundtrip_property(seqs):
    rs = ReadSet.from_strings(seqs)
    buf = io.StringIO()
    write_fasta(rs, buf)
    buf.seek(0)
    back = read_fasta(buf)
    assert [str(r) for r in back] == seqs


@settings(max_examples=40, deadline=None)
@given(dna_reads)
def test_fastq_roundtrip_property(seqs):
    rs = ReadSet.from_strings(seqs)
    buf = io.StringIO()
    write_fastq(rs, buf)
    buf.seek(0)
    back = read_fastq(buf)
    assert [str(r) for r in back] == seqs


@settings(max_examples=40, deadline=None)
@given(dna_reads)
def test_readset_subset_identity(seqs):
    rs = ReadSet.from_strings(seqs)
    sub = rs.subset(np.arange(len(rs)))
    assert [str(r) for r in sub] == seqs
    assert np.array_equal(sub.ids, rs.ids)


@settings(max_examples=40, deadline=None)
@given(dna_reads)
def test_readset_lengths_consistent(seqs):
    rs = ReadSet.from_strings(seqs)
    assert rs.lengths.tolist() == [len(s) for s in seqs]
    assert rs.total_bases == sum(len(s) for s in seqs)
    # offsets are a valid CSR over the buffer
    assert rs.offsets[0] == 0
    assert rs.offsets[-1] == rs.buffer.size
    assert np.all(np.diff(rs.offsets) >= 0)


@settings(max_examples=60, deadline=None)
@given(st.text(alphabet="ACGTN", max_size=200))
def test_double_reverse_complement_via_strings(s):
    codes = alphabet.encode(s)
    rc = alphabet.decode(alphabet.reverse_complement(codes))
    back = alphabet.decode(
        alphabet.reverse_complement(alphabet.encode(rc))
    )
    assert back == s
