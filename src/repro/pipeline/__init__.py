"""DiBELLA pipeline stages 1-2 outputs: partitions, tasks, workloads.

The paper treats "the alignment tasks computed from each dataset, and their
partitioning, as fixed inputs" (§4).  This package produces those fixed
inputs in two interchangeable forms:

* :class:`ConcreteWorkload` — real reads + real candidate tasks from the
  sequence-level pipeline (tests, examples, micro-scale validation);
* :class:`StatisticalWorkload` — Table-1-exact totals with calibrated
  distributions, generated deterministically from a seed (figure benches up
  to 32,768 simulated cores);
* :class:`ShardedWorkload` — either of the above, generated and aggregated
  in fixed-size shards under a bounded resident-shard budget, so
  paper-scale task tables (10^7–10^8 rows) never exist in memory at once.

All render, for any machine size P, a :class:`WorkloadAssignment`: the
per-rank arrays (task counts, compute seconds, exchange volumes, lookup
counts, partition bytes) the BSP and Async engines consume.
"""

from repro.pipeline.partition import (
    partition_reads_by_size,
    assign_tasks_balanced,
    check_ownership_invariant,
)
from repro.pipeline.sharded import ShardedWorkload, ShardStore
from repro.pipeline.tasks import TaskTable
from repro.pipeline.workload import (
    WorkloadAssignment,
    ConcreteWorkload,
    StatisticalWorkload,
)

__all__ = [
    "partition_reads_by_size",
    "assign_tasks_balanced",
    "check_ownership_invariant",
    "TaskTable",
    "WorkloadAssignment",
    "ConcreteWorkload",
    "StatisticalWorkload",
    "ShardedWorkload",
    "ShardStore",
]
