"""Figure 7: absolute communication latency with computation skipped.

Paper's claims checked in shape:
* BSP latency is lower than Async at small scale (aggregation wins when
  per-pair messages are large);
* BSP scales sublinearly from 8-512 nodes (per-pair aggregates shrink into
  the protocol-dominated regime);
* Async scales with the workload (lookups per rank fall as 1/P) with a
  degraded segment at 8-16 nodes (deep incoming queues);
* the curves cross between 32 and 64 nodes.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig7_comm_latency


def test_fig7_comm_latency(benchmark, human_nodes):
    fig = run_once(benchmark, fig7_comm_latency, human_nodes)
    emit("fig7", fig)
    rows = {r[0]: r for r in fig["rows"]}
    nodes = sorted(rows)

    # BSP lower at the smallest scale
    assert rows[nodes[0]][2] < rows[nodes[0]][3]

    if 512 in rows and 32 in rows and 64 in rows:
        # async lower at the largest scale; crossover between 32-64 nodes
        assert rows[512][3] < rows[512][2]
        assert rows[32][2] <= rows[32][3]
        assert rows[64][3] <= rows[64][2]
        # async poor scaling 8->16 (overloaded regime): far from halving
        assert rows[16][3] > 0.55 * rows[8][3]
        # ...but clean scaling once out of overload (64 -> 512: ~8x fewer
        # lookups per rank)
        assert rows[512][3] < 0.25 * rows[64][3]
        # BSP sublinear: 64x more nodes buys less than 64x lower latency
        assert rows[8][2] / rows[512][2] < 63.0
