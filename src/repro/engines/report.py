"""Runtime breakdowns: the paper's measurement vocabulary.

Every run produces per-rank times in four categories, matching the stacked
bars of Figures 3, 4, 8, 9, 10:

* ``compute_align`` — "Computation (Alignment)": the seed-and-extend kernel;
* ``compute_overhead`` — "Computation (Overhead)": data structure traversal
  and kernel invocation overhead (flat arrays vs pointer-based containers,
  §4.6 / Figure 13);
* ``comm`` — visible (unhidden) communication latency;
* ``sync`` — barrier / collective waiting, dominated by load imbalance.

Statistics are min/avg/max/sum reductions across ranks (the paper computes
them with global reductions excluded from timing, §4); memory footprints are
per-rank high-water marks (§4.5).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError
from repro.machine.config import MachineSpec
from repro.utils.stats import Summary, summarize

__all__ = ["PhaseTimers", "RuntimeBreakdown", "RunResult", "CATEGORIES",
           "churn_summary"]


def churn_summary(details: dict) -> str | None:
    """One-line makespan-under-churn statement, or ``None`` without churn.

    Reads the uniform ``details["churn"]`` section every engine emits on a
    churned run (:class:`repro.engines.rebalance.MigrationLedger`) and
    renders the report line the resilience story centers on: the job
    finished despite the membership events, and this is what the
    checkpointed handoffs cost.
    """
    churn = details.get("churn")
    if not churn:
        return None
    ev = churn.get("evictions_honored", [])
    jo = churn.get("joins_honored", [])
    bits = [
        f"job finished despite {len(ev)} eviction(s), {len(jo)} join(s)"
    ]
    if ev:
        bits.append("evicted=" + ",".join(f"r{r}" for r in ev))
    if jo:
        bits.append("joined=" + ",".join(f"r{r}" for r in jo))
    bits.append(
        f"migration overhead {churn.get('migration_seconds', 0.0):.6g} s "
        f"({churn.get('tasks_migrated', 0.0):.0f} tasks, "
        f"{churn.get('migration_bytes', 0.0):.0f} bytes moved)"
    )
    return "; ".join(bits)


def _canonical(value) -> str:
    """Type-tagged, platform-stable rendering of one ``details`` value.

    Floats go through ``float.hex`` (exact bits, no repr rounding), dicts
    in sorted key order, so equal values always render equal and nearly
    equal values never do.
    """
    if isinstance(value, bool):
        return f"b:{int(value)}"
    if isinstance(value, (float, np.floating)):
        return f"f:{float(value).hex()}"
    if isinstance(value, (int, np.integer)):
        return f"i:{int(value)}"
    if isinstance(value, str):
        return f"s:{value}"
    if isinstance(value, dict):
        inner = ",".join(
            f"{k}={_canonical(value[k])}" for k in sorted(value)
        )
        return "{" + inner + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, np.ndarray):
        return "a:" + np.ascontiguousarray(value).tobytes().hex()
    return f"r:{value!r}"

CATEGORIES = ("compute_align", "compute_overhead", "comm", "sync")


class PhaseTimers:
    """Per-rank accumulators for the four timing categories."""

    def __init__(self, num_ranks: int):
        self.num_ranks = num_ranks
        self._t = {c: np.zeros(num_ranks, dtype=np.float64) for c in CATEGORIES}

    def add(self, category: str, rank: int, seconds: float) -> None:
        if category not in self._t:
            raise SimulationError(f"unknown timing category {category!r}")
        if seconds < 0:
            raise SimulationError(f"negative time for {category!r}: {seconds}")
        self._t[category][rank] += seconds

    def add_array(self, category: str, seconds: np.ndarray) -> None:
        if category not in self._t:
            raise SimulationError(f"unknown timing category {category!r}")
        arr = np.asarray(seconds, dtype=np.float64)
        if np.any(arr < -1e-12):
            raise SimulationError(f"negative time array for {category!r}")
        self._t[category] += np.maximum(arr, 0.0)

    def get(self, category: str) -> np.ndarray:
        return self._t[category]

    def per_rank_total(self) -> np.ndarray:
        return sum(self._t.values())


@dataclass(frozen=True)
class RuntimeBreakdown:
    """Per-rank category times plus the run's wall-clock duration."""

    engine: str
    machine: MachineSpec
    workload: str
    wall_time: float
    compute_align: np.ndarray
    compute_overhead: np.ndarray
    comm: np.ndarray
    sync: np.ndarray

    def category(self, name: str) -> np.ndarray:
        if name not in CATEGORIES:
            raise SimulationError(f"unknown timing category {name!r}")
        return getattr(self, name)

    def summary(self, name: str) -> Summary:
        return summarize(self.category(name))

    @property
    def per_rank_total(self) -> np.ndarray:
        return (
            self.compute_align + self.compute_overhead + self.comm + self.sync
        )

    def fractions(self) -> dict[str, float]:
        """Average share of each category in the wall-clock runtime.

        Contract: the returned dict *always* carries every key in
        :data:`CATEGORIES`, so callers may index it unconditionally (the
        CLI's ``_print_result`` does).  A zero or negative wall clock — an
        empty workload, or ``--comm-only`` on inputs too small to register —
        yields all-zero fractions rather than a division error or a bare
        ``None``.
        """
        if self.wall_time <= 0:
            return {c: 0.0 for c in CATEGORIES}
        return {
            c: float(self.category(c).mean()) / self.wall_time
            for c in CATEGORIES
        }

    def visible_comm_fraction(self) -> float:
        """Fraction of runtime visible as communication (Figure 8's story)."""
        return self.fractions()["comm"]

    def compute_imbalance(self) -> float:
        """max/avg of per-rank alignment compute (Figure 5's right axis)."""
        return self.summary("compute_align").imbalance

    def normalized_to(self, other: "RuntimeBreakdown") -> float:
        """This run's wall time as a fraction of ``other``'s (Figure 8-10)."""
        if other.wall_time <= 0:
            raise SimulationError("cannot normalize to zero runtime")
        return self.wall_time / other.wall_time

    def validate(self, rtol: float = 1e-6) -> None:
        """Per-rank categories must tile the wall clock (within tolerance).

        Every rank is always in exactly one state (computing, communicating,
        or waiting), so category sums must equal the wall time.
        """
        totals = self.per_rank_total
        if not np.allclose(totals, self.wall_time, rtol=rtol, atol=1e-9):
            worst = float(np.abs(totals - self.wall_time).max())
            raise SimulationError(
                f"per-rank breakdown does not tile wall time "
                f"(max deviation {worst:.3e}s of {self.wall_time:.3e}s)"
            )


@dataclass(frozen=True)
class RunResult:
    """Everything one engine run produces."""

    breakdown: RuntimeBreakdown
    #: per-rank peak memory footprint, bytes (Figure 11)
    memory_high_water: np.ndarray
    #: number of BSP communication rounds (1 == single superstep); the
    #: async engine reports 0
    exchange_rounds: int = 0
    #: alignments actually computed (micro runs with the real kernel only)
    alignments: list | None = None
    #: extra engine-specific diagnostics
    details: dict = field(default_factory=dict)

    @property
    def wall_time(self) -> float:
        return self.breakdown.wall_time

    @property
    def max_memory_per_rank(self) -> float:
        return float(self.memory_high_water.max(initial=0.0))

    def signature(self) -> str:
        """SHA-256 digest over a canonical serialization of the whole result.

        Covers every field a run produces: engine/workload identity, the
        wall clock and all four per-rank category vectors (exact float64
        bytes), memory high-water marks, exchange rounds, every alignment
        field-by-field, and the ``details`` dict in canonical form.  The
        golden-signature suite (``tests/test_golden_signatures.py``) pins
        one digest per (engine, workload): any behavioral drift — kernel
        results, the timing model, memory accounting, fault bookkeeping —
        changes the digest, while a pure refactor keeps it.
        """
        h = hashlib.sha256()

        def feed(*parts) -> None:
            for p in parts:
                h.update(str(p).encode())
                h.update(b"\x1f")

        b = self.breakdown
        feed("engine", b.engine, "workload", b.workload,
             "nodes", b.machine.nodes, "ranks", b.machine.total_ranks,
             "wall", float(b.wall_time).hex())
        for c in CATEGORIES:
            h.update(c.encode())
            h.update(np.ascontiguousarray(
                b.category(c), dtype=np.float64).tobytes())
        h.update(b"mem")
        h.update(np.ascontiguousarray(
            self.memory_high_water, dtype=np.float64).tobytes())
        feed("rounds", self.exchange_rounds)
        if self.alignments is None:
            feed("alignments", "none")
        else:
            feed("alignments", len(self.alignments))
            for al in self.alignments:
                feed(al.read_a, al.read_b, al.score,
                     al.begin_a, al.end_a, al.begin_b, al.end_b,
                     int(al.reverse), al.cells, int(al.terminated_early))
        for key in sorted(self.details):
            feed("detail", key, _canonical(self.details[key]))
        return h.hexdigest()
