"""Tests for repro.utils.rng: determinism and stream independence."""

import numpy as np

from repro.utils.rng import RngFactory, spawn_rng


def test_same_seed_same_stream():
    a = RngFactory(42).stream("genome").integers(0, 1000, 16)
    b = RngFactory(42).stream("genome").integers(0, 1000, 16)
    assert np.array_equal(a, b)


def test_different_seeds_differ():
    a = RngFactory(42).stream("genome").integers(0, 1000, 16)
    b = RngFactory(43).stream("genome").integers(0, 1000, 16)
    assert not np.array_equal(a, b)


def test_named_streams_are_independent():
    f = RngFactory(7)
    a = f.stream("genome").integers(0, 1000, 16)
    b = f.stream("error-model").integers(0, 1000, 16)
    assert not np.array_equal(a, b)


def test_subkeys_namespace_streams():
    f = RngFactory(7)
    a = f.stream("workload-block", 0).integers(0, 1000, 16)
    b = f.stream("workload-block", 1).integers(0, 1000, 16)
    a2 = RngFactory(7).stream("workload-block", 0).integers(0, 1000, 16)
    assert not np.array_equal(a, b)
    assert np.array_equal(a, a2)


def test_unknown_stream_names_are_stable_and_distinct():
    f = RngFactory(5)
    a = f.stream("my-custom-stream").integers(0, 10**6, 8)
    b = f.stream("my-custom-streaM").integers(0, 10**6, 8)
    a2 = RngFactory(5).stream("my-custom-stream").integers(0, 10**6, 8)
    assert np.array_equal(a, a2)
    assert not np.array_equal(a, b)


def test_child_factory_namespacing():
    f = RngFactory(9)
    c0 = f.child(0).stream("genome").integers(0, 10**6, 8)
    c1 = f.child(1).stream("genome").integers(0, 10**6, 8)
    c0_again = RngFactory(9).child(0).stream("genome").integers(0, 10**6, 8)
    assert not np.array_equal(c0, c1)
    assert np.array_equal(c0, c0_again)


def test_spawn_rng_accepts_int_and_seedsequence():
    a = spawn_rng(3, 1, 2).random(4)
    b = spawn_rng(np.random.SeedSequence(3), 1, 2).random(4)
    assert np.array_equal(a, b)
