"""The shared execution scaffold every engine runs inside.

Before this module existed, each engine re-implemented the same run
prologue (rank validation, ambient-tracer resolution, ``begin_run``,
network/noise-model construction, phase-timer allocation) and the same
epilogue (breakdown assembly, conservation checking, common counter
rollups, fault-detail reporting).  :class:`ExecutionContext` bundles that
wiring once:

* :meth:`ExecutionContext.open` — validated prologue for macro engines;
* tracer/metrics emission helpers that no-op when observability is
  detached, so engine code never guards ``if tracer is not None`` for the
  common cases;
* :meth:`ExecutionContext.finalize` — the one place a macro run becomes a
  :class:`~repro.engines.report.RunResult`: breakdown assembly +
  ``validate()``, the independent trace re-sum
  (``assert_conserved(check_trace(...))``), and the common counters
  (``tasks``, ``lookups``, engine extras, redistribution);
* :func:`resolve_tracer` / :func:`resolve_executor` / :func:`finish_run` —
  the same prologue/epilogue pieces for the micro engines, whose per-rank
  machinery lives in :class:`repro.runtime.context.SpmdContext`.

The context also carries the run's *compute backend*
(:attr:`ExecutionContext.executor`, a
:class:`repro.runtime.executor.TaskExecutor`): engines route real-kernel
batches through it rather than calling the aligner directly, so a run can
fan kernel work out to a process pool with zero engine-code changes
(docs/PARALLEL.md).

New engines (see ``docs/ARCHITECTURE.md``) should never need to touch the
observability or conservation plumbing: open a context, charge phases,
finalize.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.base import EngineConfig
from repro.engines.report import PhaseTimers, RunResult, RuntimeBreakdown
from repro.errors import ConfigurationError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.machine.noise import NoiseModel
from repro.obs import (
    ENGINE_LANE,
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_breakdown,
    check_trace,
    get_default_tracer,
)
from repro.pipeline.workload import WorkloadAssignment
from repro.runtime.executor import TaskExecutor, make_task_executor
from repro.utils.rng import RngFactory

__all__ = ["ExecutionContext", "resolve_tracer", "resolve_executor",
           "finish_run"]


def resolve_tracer(tracer: Tracer | None, engine_name: str,
                   workload_name: str, machine: MachineSpec) -> Tracer | None:
    """Fall back to the ambient tracer and open this run's trace process."""
    tracer = tracer if tracer is not None else get_default_tracer()
    if tracer is not None:
        tracer.begin_run(
            f"{engine_name} {workload_name} nodes={machine.nodes} "
            f"P={machine.total_ranks}"
        )
    return tracer


def resolve_executor(config: EngineConfig, workload, aligner) -> TaskExecutor:
    """Build the kernel-batch backend of one run from its config.

    Engines hold the result in a ``with`` block so the pool and its
    shared-memory segments are torn down even when a fault plan aborts the
    run mid-flight (``tests/test_executor.py`` asserts nothing leaks).
    ``backend="auto"`` resolves to the measure-then-choose
    :class:`~repro.runtime.executor.AutoExecutor`; an explicit
    ``"process"`` request on a model-kernel run downgrades to serial with
    a :class:`RuntimeWarning` plus the ``exec_backend_downgraded`` metric.
    """
    return make_task_executor(
        workload, aligner,
        backend=config.backend,
        workers=config.workers,
        chunk_tasks=config.chunk_tasks,
    )


def finish_run(
    engine_name: str,
    machine: MachineSpec,
    workload_name: str,
    wall: float,
    timers: PhaseTimers,
    tracer: Tracer | None,
    *,
    memory: np.ndarray,
    exchange_rounds: int,
    alignments: list | None = None,
    details: dict | None = None,
    accumulator_check: bool = False,
) -> RunResult:
    """Assemble + conservation-check one run's :class:`RunResult`.

    Per-rank phase sums must tile the wall clock — from the accumulators
    (``accumulator_check=True`` reports through the conservation checker,
    as the micro engines always did; otherwise ``validate()`` raises
    directly) and, when traced, independently from the emitted event
    stream.
    """
    breakdown = RuntimeBreakdown(
        engine=engine_name,
        machine=machine,
        workload=workload_name,
        wall_time=wall,
        compute_align=timers.get("compute_align"),
        compute_overhead=timers.get("compute_overhead"),
        comm=timers.get("comm"),
        sync=timers.get("sync"),
    )
    if accumulator_check:
        assert_conserved(check_breakdown(breakdown))
    else:
        breakdown.validate()
    if tracer is not None:
        # the emitted event stream must independently tile the wall clock
        assert_conserved(
            check_trace(tracer, breakdown.wall_time, machine.total_ranks)
        )
    return RunResult(
        breakdown=breakdown,
        memory_high_water=memory,
        exchange_rounds=exchange_rounds,
        alignments=alignments,
        details=details if details is not None else {},
    )


@dataclass
class ExecutionContext:
    """Machine + tracer + metrics + fault injector + noise RNG, bundled.

    One context per macro run.  Engines read the models (:attr:`net`,
    :attr:`noise`), charge the four categories through :attr:`timers`, and
    use the emission helpers — which swallow detached observability — for
    trace events and counters.
    """

    engine_name: str
    machine: MachineSpec
    config: EngineConfig
    tracer: Tracer | None
    metrics: MetricsRegistry | None
    faults: object | None
    net: NetworkModel
    noise: NoiseModel
    timers: PhaseTimers
    #: compute backend for real-kernel batches; ``None`` for macro engines,
    #: whose analytic models never invoke the kernel
    executor: TaskExecutor | None = None

    @classmethod
    def open(
        cls,
        engine_name: str,
        assignment: WorkloadAssignment,
        machine: MachineSpec,
        config: EngineConfig,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        faults=None,
        executor: TaskExecutor | None = None,
    ) -> "ExecutionContext":
        """Validated prologue of a macro run."""
        if assignment.num_ranks != machine.total_ranks:
            raise ConfigurationError(
                f"assignment is for {assignment.num_ranks} ranks but machine "
                f"has {machine.total_ranks}"
            )
        tracer = resolve_tracer(tracer, engine_name, assignment.name, machine)
        return cls(
            engine_name=engine_name,
            machine=machine,
            config=config,
            tracer=tracer,
            metrics=metrics,
            faults=faults,
            net=NetworkModel(machine),
            noise=NoiseModel(machine, RngFactory(config.seed),
                             noise_fraction=config.noise_fraction),
            timers=PhaseTimers(machine.total_ranks),
            executor=executor,
        )

    @property
    def num_ranks(self) -> int:
        return self.machine.total_ranks

    # -- emission helpers (no-ops when observability is detached) -----------

    def instant(self, lane, name: str, ts: float, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(lane, name, ts, **args)

    def phase(self, rank: int, category: str, ts: float, duration: float,
              name: str = "") -> None:
        """Emit one phase slice on a rank's lane (skips empty slices)."""
        if self.tracer is not None and duration > 0:
            self.tracer.phase(rank, category, ts, duration, name=name)

    def inc(self, counter: str, rank: int, value: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(counter, rank, value)

    def record_kill(self, rank: int, ts: float, **args) -> None:
        """Book one permanent rank death: injector count + trace + counter."""
        self.faults.note_kill(rank)
        self.instant(ENGINE_LANE, "fault_inject", ts,
                     kind="rank_kill", victim=rank, **args)
        self.inc("faults_injected", rank)

    # -- epilogue ------------------------------------------------------------

    def fault_details(self, extra: dict, tasks_redistributed: float,
                      ranks_lost: list[int], ledger=None) -> dict:
        """The uniform fault section of a result's ``details`` dict.

        ``ledger`` (a :class:`~repro.engines.rebalance.MigrationLedger`,
        churn runs only) adds the uniform ``churn`` sub-dict the
        makespan-under-churn report reads.
        """
        d = {
            "fault_plan": self.faults.plan.describe(),
            "faults_injected": self.faults.total_injected,
            "fault_kinds": dict(self.faults.injected),
        }
        d.update(extra)
        d["tasks_redistributed"] = tasks_redistributed
        d["ranks_lost"] = ranks_lost
        if ledger is not None:
            d["churn"] = ledger.churn_details()
        return d

    def finalize(
        self,
        assignment: WorkloadAssignment,
        wall: float,
        *,
        memory: np.ndarray,
        exchange_rounds: int = 0,
        details: dict | None = None,
        extra_counters: tuple = (),
        redist_counts: np.ndarray | None = None,
        tasks_redistributed: float = 0.0,
    ) -> RunResult:
        """Run-exit: breakdown + conservation checks + counter rollups.

        ``extra_counters`` are engine-specific ``(name, per_rank_array)``
        pairs rolled in after the common ``tasks``/``lookups`` counters.
        """
        result = finish_run(
            self.engine_name, self.machine, assignment.name, wall,
            self.timers, self.tracer,
            memory=memory, exchange_rounds=exchange_rounds, details=details,
        )
        if self.metrics is not None:
            self.metrics.add_array("tasks", assignment.tasks_per_rank)
            self.metrics.add_array("lookups", assignment.lookups)
            for name, values in extra_counters:
                self.metrics.add_array(name, values)
            if self.faults is not None and tasks_redistributed:
                self.metrics.add_array("tasks_redistributed", redist_counts)
        return result
