"""Shared helpers for the figure/table benchmarks.

Each benchmark regenerates one of the paper's artifacts via
:mod:`repro.perf.figures`, times the regeneration once with
pytest-benchmark (``pedantic`` with a single round — these are simulations
of hour-long HPC campaigns, not microbenchmarks), prints the rows, and
persists them under ``benchmarks/output/`` for EXPERIMENTS.md.

Workloads are cached inside :mod:`repro.core.api`, so the expensive
statistical renderings (Human CCS at 32K simulated cores) are built once
per pytest session and shared by every figure that needs them.

Tracing: set ``REPRO_BENCH_TRACE=<dir>`` to dump every benchmark's
simulated runs as Chrome trace-format JSON into that directory (one file
per benchmark, one trace "process" per engine run inside it) — open them
in ``chrome://tracing`` or Perfetto.  The ambient default tracer is
installed per test, so the figure builders need no plumbing.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs import Tracer, set_default_tracer
from repro.perf.format import render_table

OUTPUT_DIR = Path(__file__).parent / "output"

#: Set REPRO_BENCH_FAST=1 to shrink the node sweeps (CI smoke runs).
FAST = os.environ.get("REPRO_BENCH_FAST", "") == "1"

#: Set REPRO_BENCH_TRACE=<dir> to write one Chrome trace per benchmark.
TRACE_DIR = os.environ.get("REPRO_BENCH_TRACE", "")

HUMAN_NODES = (8, 16, 32) if FAST else (8, 16, 32, 64, 128, 256, 512)
ECOLI_NODES = (1, 4, 16) if FAST else (1, 2, 4, 8, 16, 32, 64, 128)


def emit(name: str, fig: dict) -> None:
    """Print a figure's table(s) and persist them to benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    text = render_table(fig["title"], fig["columns"], fig["rows"])
    if "scaling" in fig:
        text += "\n\n" + render_table(
            fig["title"] + " — intranode strong scaling",
            fig["scaling"]["columns"],
            fig["scaling"]["rows"],
        )
    print("\n" + text)
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Time one full regeneration of a figure."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture(autouse=True)
def bench_tracer(request):
    """Install the ambient tracer for one benchmark; dump its trace after."""
    if not TRACE_DIR:
        yield None
        return
    tracer = Tracer()
    set_default_tracer(tracer)
    try:
        yield tracer
    finally:
        set_default_tracer(None)
    if tracer.events:
        out = Path(TRACE_DIR)
        out.mkdir(parents=True, exist_ok=True)
        safe = request.node.name.replace("/", "_").replace(":", "_")
        tracer.write_chrome(str(out / f"{safe}.trace.json"))


@pytest.fixture(scope="session")
def human_nodes():
    return HUMAN_NODES


@pytest.fixture(scope="session")
def ecoli_nodes():
    return ECOLI_NODES
