"""The bulk-synchronous (BSP) engine (§3.1).

Reads are exchanged in an irregular all-to-all (``MPI_Alltoall`` +
``MPI_Alltoallv`` in the original), maximally aggregated; pairwise
alignments for each received read are computed when the read is taken from
the message buffer.  When the aggregated exchange does not fit in per-node
memory, the engine performs **multiple dynamically-sized communication and
computation rounds** — the paper's refactoring of DiBELLA's third stage, and
the mechanism behind Figures 9 and 11.

Timeline of one run (macro model, per round ``i`` of ``R``)::

    [ exchange_i (comm) ][ compute_i | wait for slowest (sync) ] ... repeat

The exchange is a blocking collective: every rank experiences the full
round duration, split into its personal send/recv cost (comm) and waiting
on more-loaded ranks (sync) — exchange load imbalance (Figure 6) surfaces
as BSP synchronization/latency.  Compute phases end at the slowest rank
(task-cost load imbalance, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.common import (
    BSP_BASE_MEMORY,
    BSP_TASK_RECORD_BYTES,
    bsp_num_rounds,
    exchange_budget,
    internode_fraction,
    survivor_share,
)
from repro.engines.harness import ExecutionContext
from repro.engines.rebalance import MigrationLedger
from repro.engines.registry import register_cost_hook, register_engine
from repro.engines.report import RunResult
from repro.errors import RankFailureError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.obs import ENGINE_LANE, MetricsRegistry, Tracer
from repro.pipeline.workload import WorkloadAssignment

__all__ = ["BSPEngine"]

#: back-compat aliases — the canonical constants live in engines.common
RUNTIME_BASE_MEMORY = BSP_BASE_MEMORY


@register_engine("bsp", description="bulk-synchronous aggregated exchange "
                                    "(§3.1)")
@dataclass
class BSPEngine:
    """Macro-granularity simulator of the bulk-synchronous implementation."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "bsp"

    # -- round sizing (the §3.1 dynamic superstep logic) --------------------

    def exchange_budget(self, machine: MachineSpec,
                        assignment: WorkloadAssignment) -> float:
        """Receive-buffer bytes one rank may devote to a single round."""
        return exchange_budget(self.config, machine, assignment)

    def num_rounds(self, machine: MachineSpec,
                   assignment: WorkloadAssignment) -> int:
        """Rounds needed so every rank's round receive fits its budget."""
        return bsp_num_rounds(self.config, machine, assignment)

    # -- simulation ----------------------------------------------------------

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        ctx = ExecutionContext.open(self.name, assignment, machine,
                                    self.config, tracer=tracer,
                                    metrics=metrics, faults=faults)
        P = ctx.num_ranks

        rounds = self.num_rounds(machine, assignment)
        send = assignment.send_bytes
        recv = assignment.recv_bytes
        # how many peers a typical rank exchanges nonempty messages with:
        # bounded by its distinct remote reads and by P-1
        avg_sources = float(np.minimum(assignment.lookups, P - 1).mean()) if P > 1 else 1.0

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        compute = np.zeros(P) if comm_only else assignment.compute_seconds
        internode = internode_fraction(machine)
        overhead = (
            assignment.tasks_per_rank * self.config.bsp_task_overhead
            + assignment.lookups * self.config.bsp_read_overhead * internode
        )

        eff_scale = self.config.multiround_efficiency if rounds > 1 else 1.0
        factors = ctx.noise.factors(P)
        wall = 0.0
        exchange_total = 0.0
        # fault bookkeeping: survivors absorb dead ranks' per-round quotas
        alive = np.ones(P, dtype=bool)
        ranks_lost: list[int] = []
        tasks_redistributed = 0.0
        redist_counts = np.zeros(P)
        retry_counts = np.zeros(P)

        # --- membership churn (joins / graced evictions; docs/RESILIENCE.md)
        # Everything below is gated on has_churn so non-churn plans run the
        # exact pre-churn float-op sequence.  BSP reassigns at superstep
        # boundaries: events are honored at the first round start at/after
        # their time, so a single-round run only sees events at t=0.
        churn = faults is not None and faults.plan.has_churn
        ledger = MigrationLedger() if churn else None
        if churn:
            for j in faults.plan.joins:
                alive[j.rank] = False  # absent until the join is honored
            if not alive.any():
                raise RankFailureError(
                    "no initial members: every rank of the machine joins "
                    "mid-run; at least one rank must start the job"
                )
            # one deterministic event stream; kills ride along so same-time
            # ordering is fixed (join < evict < kill, then by rank)
            pending = sorted(
                [(j.time, 0, "join", j.rank, 0.0) for j in faults.plan.joins]
                + [(e.departure, 1, "evict", e.rank, e.grace)
                   for e in faults.plan.evictions]
                + [(k.time, 2, "kill", k.rank, 0.0)
                   for k in faults.plan.kills]
            )
            # ranks whose unfinished quotas are *redone* by survivors
            # (kills and grace-0 evictions); graced evictions hand their
            # remainder off via checkpoint instead, and pre-join rounds of
            # a joiner are simply covered by the members of those rounds
            redist_mask = np.zeros(P, dtype=bool)
        for r in range(rounds):
            t0 = wall  # superstep start
            ctx.instant(ENGINE_LANE, "superstep", t0, round=r, rounds=rounds)
            mig_bytes = 0.0
            mig_tasks = 0.0
            movers: list[int] = []
            if churn:
                remaining = (rounds - r) / rounds
                while pending and pending[0][0] <= t0:
                    t, _, kind, d, grace = pending.pop(0)
                    if kind == "join":
                        alive[d] = True
                        moved = remaining * float(assignment.tasks_per_rank[d])
                        mig_bytes += (float(assignment.partition_bytes[d])
                                      + moved * BSP_TASK_RECORD_BYTES)
                        mig_tasks += moved
                        movers.append(d)
                        ledger.record_join(d)
                        faults.note_join(d)
                        faults.note_migration(int(round(moved)))
                        ctx.instant(ENGINE_LANE, "rank_join", t0,
                                    joiner=d, round=r)
                        ctx.inc("faults_injected", d)
                    elif kind == "evict":
                        alive[d] = False
                        ranks_lost.append(d)
                        ledger.record_evict(d)
                        faults.note_evict(d)
                        ctx.instant(ENGINE_LANE, "rank_evict", t0,
                                    victim=d, grace=grace, round=r)
                        ctx.inc("faults_injected", d)
                        if grace > 0:
                            # the grace window covered a checkpoint: the
                            # remainder migrates instead of being redone
                            moved = remaining * float(
                                assignment.tasks_per_rank[d])
                            mig_bytes += (float(assignment.partition_bytes[d])
                                          + moved * BSP_TASK_RECORD_BYTES)
                            mig_tasks += moved
                            movers.append(d)
                            faults.note_migration(int(round(moved)))
                        else:
                            redist_mask[d] = True
                    else:  # kill — abrupt, still needs the redistribute flag
                        if not faults.plan.redistribute:
                            raise RankFailureError(
                                f"rank {d} died at t={t:.6g}s before BSP "
                                f"round {r}; add 'redistribute' to the "
                                f"fault plan for graceful degradation"
                            )
                        alive[d] = False
                        ranks_lost.append(d)
                        redist_mask[d] = True
                        ctx.record_kill(d, t0, round=r)
                if not alive.any():
                    raise RankFailureError(
                        "every rank died before the run finished; nothing "
                        "left to redistribute to"
                    )
            elif faults is not None:
                for kill in faults.plan.kills:
                    if not (alive[kill.rank] and kill.time <= t0):
                        continue
                    if not faults.plan.redistribute:
                        raise RankFailureError(
                            f"rank {kill.rank} died at t={kill.time:.6g}s "
                            f"before BSP round {r}; add 'redistribute' to "
                            f"the fault plan for graceful degradation"
                        )
                    alive[kill.rank] = False
                    ranks_lost.append(kill.rank)
                    ctx.record_kill(kill.rank, t0, round=r)
                if not alive.any():
                    raise RankFailureError(
                        "every rank died before the run finished; nothing "
                        "left to redistribute to"
                    )
            n_alive = int(alive.sum())

            round_send = survivor_share(send, rounds, alive, n_alive)
            round_recv = survivor_share(recv, rounds, alive, n_alive)
            if n_alive < P:
                lost_mask = redist_mask if churn else ~alive
                moved = float(
                    (assignment.tasks_per_rank / rounds)[lost_mask].sum()
                )
                if moved:
                    tasks_redistributed += moved
                    redist_counts[alive] += moved / n_alive

            # --- migration mini-phase (churn only): the checkpointed
            # remainders and joiner partitions ship before the exchange;
            # members pay comm, everyone else waits it out (sync)
            if churn and mig_bytes > 0.0:
                mig_dur = ctx.net.ptp_time(mig_bytes / n_alive)
                mig_comm = np.where(alive, mig_dur, 0.0)
                ctx.timers.add_array("comm", mig_comm)
                ctx.timers.add_array("sync", mig_dur - mig_comm)
                ledger.record_migration(mig_tasks, mig_bytes,
                                        mig_dur * n_alive)
                ctx.instant(ENGINE_LANE, "migrate", wall, round=r,
                            ranks=movers, nbytes=mig_bytes)
                for i in range(P):
                    if alive[i]:
                        ctx.phase(i, "comm", wall, mig_dur,
                                  name=f"migrate[{r}]")
                    else:
                        ctx.phase(i, "sync", wall, mig_dur,
                                  name=f"migrate-wait[{r}]")
                wall += mig_dur

            # --- exchange phase (blocking collective) ---
            # a rank exchanges with roughly the same peer set every round;
            # splitting volume across rounds shrinks per-source messages
            round_sources = avg_sources
            duration = ctx.net.alltoallv_time(
                round_send.max(initial=0.0),
                round_recv.max(initial=0.0),
                round_sources,
                efficiency_scale=eff_scale,
            )
            personal = np.array([
                ctx.net.alltoallv_rank_time(
                    float(round_send[i]), float(round_recv[i]),
                    round_sources,
                    efficiency_scale=eff_scale,
                )
                for i in range(P)
            ])
            if faults is not None:
                # degraded links dilate the whole exchange window
                dil = faults.mean_link_dilation(t0, t0 + duration)
                duration *= dil
                personal *= dil
            personal = np.minimum(personal, duration)
            comm_round = np.where(alive, personal, 0.0)

            attempts = faults.exchange_attempts(r) if faults is not None else 1
            for a in range(attempts):
                ta = wall
                ctx.timers.add_array("comm", comm_round)
                ctx.timers.add_array("sync", duration - comm_round)
                wall += duration
                exchange_total += duration
                retried = a < attempts - 1
                if retried:
                    retry_counts[alive] += 1
                    if metrics is not None:
                        for i in np.flatnonzero(alive):
                            metrics.inc("exchange_retries", int(i))
                    ctx.instant(ENGINE_LANE, "exchange_retry", ta,
                                round=r, attempt=a + 1)
                label = (f"exchange[{r}]!a{a}" if retried
                         else f"exchange[{r}]")
                for i in range(P):
                    p_comm = float(comm_round[i])
                    ctx.phase(i, "comm", ta, p_comm, name=label)
                    ctx.phase(i, "sync", ta + p_comm, duration - p_comm,
                              name=f"exchange-skew[{r}]")

            # --- compute phase (ends at the slowest rank) ---
            tc = wall
            align_part = factors * survivor_share(compute, rounds,
                                                  alive, n_alive)
            phase = align_part + factors * survivor_share(overhead, rounds,
                                                          alive, n_alive)
            if faults is not None:
                # stragglers dilate busy time inside their windows
                straggle = np.array([
                    faults.mean_straggle_factor(i, tc, tc + float(phase[i]))
                    if alive[i] else 1.0
                    for i in range(P)
                ])
                align_part = align_part * straggle
                phase = phase * straggle
            phase_end = float(phase.max(initial=0.0))
            ctx.timers.add_array("compute_align", align_part)
            ctx.timers.add_array("compute_overhead", phase - align_part)
            ctx.timers.add_array("sync", phase_end - phase)
            wall += phase_end

            for i in range(P):
                a_ = float(align_part[i])
                o = float(phase[i]) - a_
                ctx.phase(i, "compute_align", tc, a_, name=f"align[{r}]")
                ctx.phase(i, "compute_overhead", tc + a_, o,
                          name=f"overhead[{r}]")
                ctx.phase(i, "sync", tc + float(phase[i]),
                          phase_end - float(phase[i]),
                          name=f"compute-wait[{r}]")

        # final barrier closing the last superstep
        bar = ctx.net.barrier_time()
        ctx.timers.add_array("sync", np.full(P, bar))
        for i in range(P):
            ctx.phase(i, "sync", wall, bar, name="exit-barrier")
        wall += bar

        # deaths inside the final superstep surface at the exit barrier:
        # the rank's last contribution already merged, so in redistribute
        # mode there is nothing left to redo — the run just records the loss
        if churn:
            # leftover events landed after the last superstep boundary.
            # Departures inside the final superstep are recorded with no
            # remaining work to move; a join this late is not honored (the
            # work is finished — there is nothing left to hand the joiner).
            for t, _, kind, d, grace in pending:
                if t >= wall or kind == "join":
                    continue
                if kind == "kill":
                    if not faults.plan.redistribute:
                        raise RankFailureError(
                            f"rank {d} died at t={t:.6g}s during the final "
                            f"superstep (detected at the exit barrier); add "
                            f"'redistribute' to the fault plan for graceful "
                            f"degradation"
                        )
                    alive[d] = False
                    ranks_lost.append(d)
                    ctx.record_kill(d, t)
                else:  # eviction departing inside the final superstep
                    alive[d] = False
                    ranks_lost.append(d)
                    ledger.record_evict(d)
                    faults.note_evict(d)
                    ctx.instant(ENGINE_LANE, "rank_evict", t,
                                victim=d, grace=grace)
                    ctx.inc("faults_injected", d)
        elif faults is not None:
            for kill in faults.plan.kills:
                if not (alive[kill.rank] and kill.time < wall):
                    continue
                if not faults.plan.redistribute:
                    raise RankFailureError(
                        f"rank {kill.rank} died at t={kill.time:.6g}s during "
                        f"the final superstep (detected at the exit "
                        f"barrier); add 'redistribute' to the fault plan "
                        f"for graceful degradation"
                    )
                alive[kill.rank] = False
                ranks_lost.append(kill.rank)
                ctx.record_kill(kill.rank, kill.time)

        memory = (
            RUNTIME_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * BSP_TASK_RECORD_BYTES
            + (recv + send) / rounds  # receive buffer + send staging
        )
        details = {
            "exchange_budget": self.exchange_budget(machine, assignment),
            "avg_sources": avg_sources,
            "exchange_time_total": exchange_total,
        }
        if faults is not None:
            details = dict(details, **ctx.fault_details(
                {"exchange_retries": int(retry_counts.max(initial=0.0))},
                tasks_redistributed, ranks_lost, ledger=ledger,
            ))
        return ctx.finalize(
            assignment, wall,
            memory=memory,
            exchange_rounds=rounds,
            details=details,
            extra_counters=(("bytes_sent", send), ("bytes_recv", recv)),
            redist_counts=redist_counts,
            tasks_redistributed=tasks_redistributed,
        )


@register_cost_hook("bsp")
def _predict_bsp(assignment: WorkloadAssignment, machine: MachineSpec,
                 config: EngineConfig) -> dict:
    """Analytic fault-free wall clock of :class:`BSPEngine`.

    Replays the engine's per-round arithmetic (same float operations,
    same association order) without timers, trace, or fault bookkeeping,
    so on a noise-free machine the prediction is bit-equal to the
    engine's measured wall.  Raises ``ConfigurationError`` when the
    partition does not fit per-rank memory — the planner records such
    grid points as infeasible.
    """
    net = NetworkModel(machine)
    P = assignment.num_ranks
    rounds = bsp_num_rounds(config, machine, assignment)
    send = assignment.send_bytes
    recv = assignment.recv_bytes
    avg_sources = (float(np.minimum(assignment.lookups, P - 1).mean())
                   if P > 1 else 1.0)
    comm_only = config.mode is ExecutionMode.COMM_ONLY
    compute = np.zeros(P) if comm_only else assignment.compute_seconds
    overhead = (
        assignment.tasks_per_rank * config.bsp_task_overhead
        + assignment.lookups * config.bsp_read_overhead
        * internode_fraction(machine)
    )
    eff_scale = config.multiround_efficiency if rounds > 1 else 1.0
    duration = net.alltoallv_time(
        (send / rounds).max(initial=0.0),
        (recv / rounds).max(initial=0.0),
        avg_sources,
        efficiency_scale=eff_scale,
    )
    phase = compute / rounds + overhead / rounds
    phase_end = float(phase.max(initial=0.0))
    wall = 0.0
    for _ in range(rounds):
        wall += duration
        wall += phase_end
    wall += net.barrier_time()
    memory = (
        BSP_BASE_MEMORY
        + assignment.partition_bytes
        + assignment.tasks_per_rank * BSP_TASK_RECORD_BYTES
        + (recv + send) / rounds
    )
    return {
        "wall": wall,
        "peak_memory": float(memory.max(initial=0.0)),
        "rounds": rounds,
    }
