"""The time-conservation checker.

Every simulated rank is always in exactly one state — computing (alignment
or overhead), visibly communicating, or waiting — so for any run the four
breakdown categories must *tile* the wall clock on every rank::

    compute_align + compute_overhead + comm + sync == wall_time   (per rank)

This is the invariant the paper's stacked bars (Figures 8–10) depend on;
accounting drift (a phase charged twice, a wait never recorded, a barrier
that silently no-ops) breaks it.  The checker validates the invariant at
two independent levels:

* :func:`check_breakdown` — against a run's :class:`RuntimeBreakdown`
  accumulators (what the engines *summed*);
* :func:`check_trace` — against the emitted :class:`PhaseEvent` stream
  (what the engines *said they did*, re-summed per rank from the trace).

A traced run passing both proves the accumulators and the event stream
agree with each other *and* with the wall clock.  :func:`assert_conserved`
raises :class:`repro.errors.AccountingError` with the worst offender named.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AccountingError
from repro.obs.tracer import Tracer

__all__ = ["ConservationReport", "check_breakdown", "check_trace",
           "assert_conserved"]


@dataclass(frozen=True)
class ConservationReport:
    """Outcome of one conservation check."""

    source: str              #: ``"breakdown"`` or ``"trace"``
    wall_time: float
    per_rank_total: np.ndarray
    max_abs_deviation: float
    worst_rank: int
    ok: bool

    def describe(self) -> str:
        state = "OK" if self.ok else "VIOLATED"
        return (
            f"conservation {state} [{self.source}]: "
            f"{len(self.per_rank_total)} rank(s), wall {self.wall_time:.6g}s, "
            f"max deviation {self.max_abs_deviation:.3e}s "
            f"(rank {self.worst_rank})"
        )


def _report(source: str, wall_time: float, totals: np.ndarray,
            rtol: float, atol: float) -> ConservationReport:
    totals = np.asarray(totals, dtype=np.float64)
    dev = np.abs(totals - wall_time)
    worst = int(dev.argmax()) if len(dev) else 0
    ok = bool(np.allclose(totals, wall_time, rtol=rtol, atol=atol))
    return ConservationReport(
        source=source,
        wall_time=wall_time,
        per_rank_total=totals,
        max_abs_deviation=float(dev.max(initial=0.0)),
        worst_rank=worst,
        ok=ok,
    )


def check_breakdown(breakdown, rtol: float = 1e-6,
                    atol: float = 1e-9) -> ConservationReport:
    """Check category accumulators against the wall clock.

    ``breakdown`` is any object with ``per_rank_total`` and ``wall_time``
    (duck-typed to avoid importing the engines from the observability
    layer) — in practice a :class:`repro.engines.report.RuntimeBreakdown`.
    """
    return _report("breakdown", breakdown.wall_time,
                   breakdown.per_rank_total, rtol, atol)


def check_trace(tracer: Tracer, wall_time: float,
                num_ranks: int | None = None, pid: int | None = None,
                rtol: float = 1e-6, atol: float = 1e-9) -> ConservationReport:
    """Re-sum phase events per rank and check they tile the wall clock.

    ``pid`` restricts the check to one run inside a multi-run tracer
    (default: the tracer's current run).  ``num_ranks`` fixes the expected
    lane count; by default the lanes observed in the trace are used — pass
    it explicitly to also catch ranks that emitted *no* events (their sum,
    zero, only tiles a zero wall clock).
    """
    if pid is None:
        pid = max(tracer.current_pid, 0)
    ranks = tracer.ranks(pid)
    if num_ranks is not None:
        ranks = list(range(num_ranks))
    index = {r: i for i, r in enumerate(ranks)}
    totals = np.zeros(len(ranks), dtype=np.float64)
    for event in tracer.phase_events(pid):
        i = index.get(event.rank)
        if i is not None:
            totals[i] += event.duration
    report = _report("trace", wall_time, totals, rtol, atol)
    if ranks != list(range(len(ranks))):
        # non-contiguous lanes: remap worst_rank to the real lane id
        report = ConservationReport(
            source=report.source, wall_time=report.wall_time,
            per_rank_total=report.per_rank_total,
            max_abs_deviation=report.max_abs_deviation,
            worst_rank=ranks[report.worst_rank] if ranks else 0,
            ok=report.ok,
        )
    return report


def assert_conserved(*reports: ConservationReport) -> None:
    """Raise :class:`AccountingError` naming the first failing report."""
    for report in reports:
        if not report.ok:
            raise AccountingError(report.describe())
