"""Tests for k-mer histogramming and the owner hash."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.genome.sequence import ReadSet
from repro.kmer.histogram import KmerHistogram, count_kmers, owner_of
from repro.kmer.kmers import canonical_kmers


def test_count_kmers_simple():
    rs = ReadSet.from_strings(["ACGT", "ACGT"])
    hist = count_kmers(rs, k=4)
    assert hist.num_distinct == 1  # ACGT is its own revcomp canonical class
    assert hist.total == 2


def test_count_kmers_empty():
    hist = count_kmers(ReadSet.from_strings([]), k=5)
    assert hist.num_distinct == 0 and hist.total == 0


def test_frequency_of_lookup():
    rs = ReadSet.from_strings(["ACGTACGT"])
    hist = count_kmers(rs, k=3)
    km, _ = canonical_kmers(rs.codes(0), 3)
    freqs = hist.frequency_of(km)
    assert np.all(freqs >= 1)
    # absent k-mer
    absent = np.array([np.uint64(2**35)], dtype=np.uint64)
    assert hist.frequency_of(absent).tolist() == [0]


def test_filtered_band():
    hist = KmerHistogram(
        np.array([1, 2, 3, 4], dtype=np.uint64),
        np.array([1, 2, 5, 9], dtype=np.int64),
        k=5,
    )
    f = hist.filtered(2, 5)
    assert f.kmers.tolist() == [2, 3]
    assert f.counts.tolist() == [2, 5]


def test_multiplicity_spectrum():
    hist = KmerHistogram(
        np.array([1, 2, 3], dtype=np.uint64),
        np.array([1, 1, 100], dtype=np.int64),
        k=5,
    )
    spec = hist.multiplicity_spectrum(max_count=8)
    assert spec[1] == 2
    assert spec[8] == 1  # clipped


def test_merge_equals_joint_count():
    rs1 = ReadSet.from_strings(["ACGTACGTAA"])
    rs2 = ReadSet.from_strings(["ACGTACGTAA", "TTTTTTT"])
    joint = ReadSet.from_strings(["ACGTACGTAA", "ACGTACGTAA", "TTTTTTT"])
    h = count_kmers(rs1, k=4).merge(count_kmers(rs2, k=4))
    hj = count_kmers(joint, k=4)
    assert np.array_equal(h.kmers, hj.kmers)
    assert np.array_equal(h.counts, hj.counts)


def test_merge_k_mismatch():
    h1 = count_kmers(ReadSet.from_strings(["ACGT"]), k=3)
    h2 = count_kmers(ReadSet.from_strings(["ACGT"]), k=4)
    with pytest.raises(ValueError):
        h1.merge(h2)


def test_shape_mismatch_rejected():
    with pytest.raises(ValueError):
        KmerHistogram(np.array([1], dtype=np.uint64),
                      np.array([1, 2], dtype=np.int64), k=3)


@given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1, max_size=200),
       st.integers(min_value=1, max_value=64))
def test_owner_of_range_and_determinism(kmer_vals, owners):
    kmers = np.array(kmer_vals, dtype=np.uint64)
    o1 = owner_of(kmers, owners)
    o2 = owner_of(kmers, owners)
    assert np.array_equal(o1, o2)
    assert o1.min() >= 0 and o1.max() < owners


def test_owner_of_spreads_consecutive_kmers():
    kmers = np.arange(10_000, dtype=np.uint64)
    owners = owner_of(kmers, 16)
    counts = np.bincount(owners, minlength=16)
    # multiplicative hashing should spread consecutive values roughly evenly
    assert counts.min() > 0.5 * counts.mean()
    assert counts.max() < 1.5 * counts.mean()
