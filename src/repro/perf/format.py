"""ASCII rendering of figure/table series (what the benchmarks print)."""

from __future__ import annotations

from typing import Sequence

__all__ = ["render_table", "render_breakdown_rows"]


def render_table(title: str, columns: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """Render rows as a fixed-width ASCII table with a title rule."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in cells)) if cells else len(str(col))
        for i, col in enumerate(columns)
    ]
    lines = [title, "=" * max(len(title), sum(widths) + 2 * len(widths))]
    lines.append("  ".join(str(c).rjust(w) for c, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def render_breakdown_rows(results: dict) -> list[list]:
    """Rows of (engine, nodes, wall, comm%, sync%, align%, oh%, rounds).

    ``results`` is the nested dict produced by
    :func:`repro.core.api.scaling_sweep`.
    """
    rows = []
    for engine, per_nodes in results.items():
        for nodes, res in sorted(per_nodes.items()):
            f = res.breakdown.fractions()
            rows.append([
                engine,
                nodes,
                res.wall_time,
                100 * f["comm"],
                100 * f["sync"],
                100 * f["compute_align"],
                100 * f["compute_overhead"],
                res.exchange_rounds,
            ])
    return rows
