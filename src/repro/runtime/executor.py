"""Pluggable compute backends for the micro engines' kernel batches.

The paper's whole premise is exploiting all 68 cores of a Cori KNL node,
yet the reproduction's micro engines ran every batched X-drop call on a
single Python core.  This module closes that gap with a *compute backend*
abstraction over :meth:`~repro.align.seedextend.SeedExtendAligner.
align_batch`:

* ``serial`` — :class:`SerialExecutor` runs the batch inline, exactly as
  the engines always did;
* ``process`` — :class:`ProcessExecutor` fans the batch out to a pool of
  **persistent** worker processes.  Workers are seeded exactly once, at
  pool start, with the workload's sequence bytes and task descriptors via
  POSIX shared memory (:class:`SharedReadStore` wraps the existing numpy
  arrays — the ``ReadSet`` code buffer / CSR offsets and the flat
  ``TaskTable`` columns).  Per batch, workers receive only
  ``(task_index_chunk,)`` descriptors — never sequence copies — align
  their chunk with the batched wavefront kernel, and return compact int64
  result arrays that the parent merges back **in deterministic task
  order**.

Determinism contract: the batched kernel is bit-identical to the scalar
kernel per pair (``repro.align.batch``), so chunk boundaries cannot change
any result; the parent merges chunks in submission order; and simulated
time never touches the backend (it only spends real wall-clock).  A
``process`` run is therefore bit-identical to a ``serial`` run for any
worker count and chunk size — locked down by ``tests/test_executor.py``
and the golden-signature suite.

When ``serial`` wins: dispatching a chunk costs roughly a millisecond of
IPC, so tiny per-callback groups (the async engine's common case) only pay
off once the kernel work per chunk dominates — see
``benchmarks/bench_executor_scaling.py`` for the measured crossover and
``docs/PARALLEL.md`` for the design discussion.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory

import numpy as np

from repro.align.seedextend import Alignment, SeedExtendAligner
from repro.errors import ConfigurationError

__all__ = [
    "BACKENDS",
    "TaskExecutor",
    "SerialExecutor",
    "ProcessExecutor",
    "SharedReadStore",
    "make_task_executor",
    "active_shm_segments",
]

#: the valid ``EngineConfig.backend`` values
BACKENDS = ("serial", "process")

#: names of shared-memory segments created and not yet unlinked by this
#: process — the leak oracle ``tests/test_executor.py`` asserts empties
#: after every run, including fault-aborted ones
_ACTIVE_SEGMENTS: set[str] = set()


def active_shm_segments() -> frozenset[str]:
    """Shared-memory segments currently owned (created, not yet unlinked)."""
    return frozenset(_ACTIVE_SEGMENTS)


def _task_pairs(codes, tasks, task_indices) -> list[tuple]:
    """``align_batch`` argument tuples for the given task indices.

    ``codes`` maps a global read id to its uint8 code array.  Shared by the
    serial backend and the pool workers so both build byte-identical batch
    inputs in identical order.
    """
    k = tasks.k
    return [
        (
            codes(int(tasks.read_a[i])),
            codes(int(tasks.read_b[i])),
            int(tasks.pos_a[i]),
            int(tasks.pos_b[i]),
            k,
            bool(tasks.reverse[i]),
            int(tasks.read_a[i]),
            int(tasks.read_b[i]),
        )
        for i in task_indices
    ]


class TaskExecutor:
    """Common surface of the compute backends.

    ``align_tasks(task_indices)`` returns one
    :class:`~repro.align.seedextend.Alignment` per index, in input order.
    ``aligner`` is ``None`` in model-kernel runs — engines then skip the
    call entirely.  Executors are context managers; :meth:`close` is
    idempotent and must run even when a fault plan aborts the engine
    mid-run (the engines hold the executor in a ``with`` block).
    """

    backend: str = "serial"
    aligner: SeedExtendAligner | None = None

    def align_tasks(self, task_indices) -> list[Alignment]:
        raise NotImplementedError

    def stats(self) -> dict:
        """Wall-clock dispatch/merge accounting (empty for serial)."""
        return {"backend": self.backend}

    def close(self) -> None:
        pass

    def __enter__(self) -> "TaskExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(TaskExecutor):
    """Inline execution: one batched wavefront call on the calling core."""

    backend = "serial"

    def __init__(self, workload, aligner: SeedExtendAligner | None):
        self.workload = workload
        self.aligner = aligner

    def align_tasks(self, task_indices) -> list[Alignment]:
        return self.aligner.align_batch(
            _task_pairs(self.workload.reads.codes, self.workload.tasks,
                        task_indices)
        )


# -- process backend ---------------------------------------------------------


class SharedReadStore:
    """The workload's read bytes + task columns, in POSIX shared memory.

    Wraps the *existing* numpy arrays — the ``ReadSet``'s flat uint8 code
    buffer and int64 CSR offsets, plus the five flat ``TaskTable`` columns
    — one segment each, copied once at pool start.  Workers attach by name
    and reconstruct zero-copy ndarray views, so per-batch traffic is task
    indices in, compact result arrays out.
    """

    def __init__(self, workload):
        self._segments: list[shared_memory.SharedMemory] = []
        self.spec: dict = {"k": int(workload.tasks.k), "arrays": {}}
        arrays = {
            "buffer": workload.reads.buffer,
            "offsets": workload.reads.offsets,
            "read_a": workload.tasks.read_a,
            "read_b": workload.tasks.read_b,
            "pos_a": workload.tasks.pos_a,
            "pos_b": workload.tasks.pos_b,
            "reverse": workload.tasks.reverse,
        }
        try:
            for name, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(
                    create=True, size=max(1, arr.nbytes)
                )
                _ACTIVE_SEGMENTS.add(shm.name)
                self._segments.append(shm)
                view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                view[...] = arr
                self.spec["arrays"][name] = (shm.name, arr.shape, arr.dtype.str)
        except BaseException:
            self.close()
            raise
        self._closed = False

    def close(self) -> None:
        """Unlink every segment (idempotent; safe mid-construction)."""
        if getattr(self, "_closed", False):
            return
        for shm in self._segments:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            _ACTIVE_SEGMENTS.discard(shm.name)
        self._segments = []
        self._closed = True


def _pool_context():
    """Start-method context for the pool: ``fork`` wherever available.

    Forked workers share the parent's resource-tracker process, so their
    attach-time re-registration of the shared segments is an idempotent
    set-add and the parent's ``unlink()`` stays the single owner of the
    cleanup.  (Under ``spawn`` each worker gets its *own* tracker, which
    must be disowned instead — see :class:`_WorkerState`.)
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return multiprocessing.get_context()


class _WorkerState:
    """Per-worker-process view of the shared store + a private aligner."""

    def __init__(self, spec: dict, x_drop: int, scoring,
                 disown_tracker: bool = False):
        self._shms: list[shared_memory.SharedMemory] = []
        arrays: dict[str, np.ndarray] = {}
        for name, (shm_name, shape, dtype) in spec["arrays"].items():
            shm = shared_memory.SharedMemory(name=shm_name)
            if disown_tracker:
                # On < 3.13, attaching also *registers* the segment with
                # the worker's own resource tracker (spawn/forkserver),
                # which would unlink it a second time after the parent
                # already has and warn about a leak that never happened.
                # The parent owns the lifecycle; hand the claim back.
                try:  # pragma: no cover - exercised only under spawn
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(shm._name, "shared_memory")
                except Exception:
                    pass
            self._shms.append(shm)
            arrays[name] = np.ndarray(
                shape, dtype=np.dtype(dtype), buffer=shm.buf
            )
        self.buffer = arrays["buffer"]
        self.offsets = arrays["offsets"]
        self.tasks = _TaskColumns(
            read_a=arrays["read_a"], read_b=arrays["read_b"],
            pos_a=arrays["pos_a"], pos_b=arrays["pos_b"],
            reverse=arrays["reverse"], k=spec["k"],
        )
        self.aligner = SeedExtendAligner(x_drop=x_drop, scoring=scoring)

    def codes(self, read_id: int) -> np.ndarray:
        return self.buffer[self.offsets[read_id]: self.offsets[read_id + 1]]


class _TaskColumns:
    """Duck-typed stand-in for :class:`~repro.pipeline.tasks.TaskTable`."""

    def __init__(self, read_a, read_b, pos_a, pos_b, reverse, k):
        self.read_a = read_a
        self.read_b = read_b
        self.pos_a = pos_a
        self.pos_b = pos_b
        self.reverse = reverse
        self.k = k


_WORKER_STATE: _WorkerState | None = None


def _worker_init(spec: dict, x_drop: int, scoring,
                 disown_tracker: bool = False) -> None:
    global _WORKER_STATE
    _WORKER_STATE = _WorkerState(spec, x_drop, scoring, disown_tracker)


def _align_chunk(indices: np.ndarray) -> tuple[int, float, np.ndarray]:
    """Worker entry: align one chunk, return ``(pid, seconds, results)``.

    Results are a compact ``(len(indices), 7)`` int64 array — score,
    begin_a, end_a, begin_b, end_b, cells, terminated_early — the parent
    rehydrates into :class:`Alignment` objects together with the task
    columns it already holds.
    """
    st = _WORKER_STATE
    t0 = time.perf_counter()
    alignments = st.aligner.align_batch(
        _task_pairs(st.codes, st.tasks, indices)
    )
    out = np.empty((len(alignments), 7), dtype=np.int64)
    for j, al in enumerate(alignments):
        out[j, 0] = al.score
        out[j, 1] = al.begin_a
        out[j, 2] = al.end_a
        out[j, 3] = al.begin_b
        out[j, 4] = al.end_b
        out[j, 5] = al.cells
        out[j, 6] = al.terminated_early
    return os.getpid(), time.perf_counter() - t0, out


class ProcessExecutor(TaskExecutor):
    """Persistent worker pool over the shared read store.

    Chunking: ``chunk_tasks`` fixes the tasks per dispatched chunk; 0
    splits each batch evenly across the workers (one chunk per worker).
    Either way, results are merged in submission order, so chunking is
    invisible in the output.
    """

    backend = "process"

    def __init__(self, workload, aligner: SeedExtendAligner,
                 workers: int, chunk_tasks: int = 0):
        if workers < 1:
            raise ConfigurationError("process backend needs workers >= 1")
        if chunk_tasks < 0:
            raise ConfigurationError("chunk_tasks must be >= 0 (0 = auto)")
        self.workload = workload
        self.aligner = aligner
        self.workers = workers
        self.chunk_tasks = chunk_tasks
        self._stats = {
            "batches": 0, "chunks": 0, "tasks": 0,
            "dispatch_s": 0.0, "merge_s": 0.0,
        }
        self._per_worker: dict[int, dict] = {}
        self._store = SharedReadStore(workload)
        try:
            ctx = _pool_context()
            self._pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(self._store.spec, aligner.x_drop, aligner.scoring,
                          ctx.get_start_method() != "fork"),
            )
        except BaseException:
            self._store.close()
            raise
        self._closed = False

    def _chunk_size(self, n: int) -> int:
        if self.chunk_tasks > 0:
            return self.chunk_tasks
        return max(1, -(-n // self.workers))

    def align_tasks(self, task_indices) -> list[Alignment]:
        idx = np.asarray(task_indices, dtype=np.int64)
        n = int(idx.size)
        if n == 0:
            return []
        chunk = self._chunk_size(n)
        starts = range(0, n, chunk)
        t0 = time.perf_counter()
        futures = [
            self._pool.submit(_align_chunk, idx[s: s + chunk]) for s in starts
        ]
        t1 = time.perf_counter()
        tasks = self.workload.tasks
        out: list[Alignment] = []
        for s, fut in zip(starts, futures):
            pid, align_s, rows = fut.result()
            w = self._per_worker.setdefault(
                pid, {"chunks": 0, "align_wall_s": 0.0}
            )
            w["chunks"] += 1
            w["align_wall_s"] += align_s
            for j in range(rows.shape[0]):
                i = int(idx[s + j])
                out.append(Alignment(
                    read_a=int(tasks.read_a[i]),
                    read_b=int(tasks.read_b[i]),
                    score=int(rows[j, 0]),
                    begin_a=int(rows[j, 1]),
                    end_a=int(rows[j, 2]),
                    begin_b=int(rows[j, 3]),
                    end_b=int(rows[j, 4]),
                    reverse=bool(tasks.reverse[i]),
                    cells=int(rows[j, 5]),
                    terminated_early=bool(rows[j, 6]),
                ))
        t2 = time.perf_counter()
        st = self._stats
        st["batches"] += 1
        st["chunks"] += len(futures)
        st["tasks"] += n
        st["dispatch_s"] += t1 - t0
        st["merge_s"] += t2 - t1
        return out

    def stats(self) -> dict:
        return {
            "backend": self.backend,
            "workers": self.workers,
            "chunk_tasks": self.chunk_tasks,
            **self._stats,
            "per_worker": {
                pid: dict(w) for pid, w in sorted(self._per_worker.items())
            },
        }

    def close(self) -> None:
        """Stop the pool, then unlink the shared segments (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown(wait=True)
        self._store.close()


def make_task_executor(workload, aligner: SeedExtendAligner | None, *,
                       backend: str = "serial", workers: int = 1,
                       chunk_tasks: int = 0) -> TaskExecutor:
    """Build the backend an engine run charges its kernel batches through.

    Model-kernel runs (``aligner is None``) never invoke the kernel, so
    they always get the (free) serial backend regardless of ``backend`` —
    spinning up a pool that no batch will ever reach would be pure
    overhead.
    """
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"unknown backend {backend!r}; choose from {list(BACKENDS)}"
        )
    if backend == "serial" or aligner is None:
        return SerialExecutor(workload, aligner)
    return ProcessExecutor(workload, aligner, workers=workers,
                           chunk_tasks=chunk_tasks)
