"""Asynchronous RPC layer for micro SPMD programs (the UPC++ substitute).

``call`` issues a pull request from a caller rank to a target rank; the
response (whatever the registered handler returns, with its modeled byte
size) is delivered into the caller's inbox :class:`SimQueue`, where the
rank program consumes it and runs the attached computation — the callback
pattern of §3.2.

Timing: the request reaches the target after ``alpha``; the target services
requests serially (``rpc_service_gap`` each, tracked with a busy-until
clock per rank — modeling the GASNet progress path rather than stealing the
target generator's time, a simplification documented in DESIGN.md); the
response reaches the caller after another ``alpha`` plus payload
serialization at the async bandwidth share.  Deep incoming queues enter the
degraded regime via :meth:`NetworkModel.rpc_overload_extra` (amortized per
request), producing the Figure-7 hump in micro runs too.

Callers enforce their outstanding-request window themselves (issue, and
when the window is full consume one response first) — exactly how the
paper's implementation bounds in-flight memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError
from repro.runtime.context import SpmdContext
from repro.runtime.queues import SimQueue

__all__ = ["RpcLayer", "RpcResponse"]


@dataclass(frozen=True)
class RpcResponse:
    """What lands in the caller's inbox when an RPC completes."""

    target: int
    token: Any
    value: Any
    nbytes: float
    issued_at: float
    completed_at: float

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class RpcLayer:
    """Rank-to-rank asynchronous remote procedure calls."""

    def __init__(self, ctx: SpmdContext):
        self.ctx = ctx
        self.inboxes = [
            SimQueue(ctx.engine, name=f"rpc-inbox-{r}")
            for r in range(ctx.num_ranks)
        ]
        self._handlers: list[Callable | None] = [None] * ctx.num_ranks
        self._busy_until = np.zeros(ctx.num_ranks)
        self._served = np.zeros(ctx.num_ranks)
        self.total_calls = 0

    def register(self, rank: int, handler: Callable[[Any], tuple[Any, float]]) -> None:
        """Install rank's handler: ``token -> (value, response_bytes)``."""
        self._handlers[rank] = handler

    def injection_cost(self) -> float:
        """Caller-side CPU cost of issuing one request (charge as comm)."""
        net = self.ctx.machine.network
        return net.msg_gap + net.msg_overhead

    def call(self, caller: int, target: int, token: Any) -> None:
        """Issue an async request; the response will appear in the caller's
        inbox.  The caller should separately advance
        :meth:`injection_cost` seconds (its own injection work)."""
        if self._handlers[target] is None:
            raise SimulationError(f"rank {target} has no RPC handler")
        if caller == target:
            raise SimulationError("RPC to self; local reads need no pull")
        self.total_calls += 1
        net = self.ctx.machine.network
        engine = self.ctx.engine
        issued_at = engine.now
        arrival = engine.now + net.alpha
        tracer = self.ctx.tracer
        metrics = self.ctx.metrics
        if tracer is not None:
            tracer.instant(caller, "rpc_issue", issued_at, target=target,
                           token=token)
        if metrics is not None:
            metrics.inc("rpc_issued", caller)

        # serial service at the target (progress-path clock)
        start = max(arrival, self._busy_until[target])
        service = net.rpc_service_gap + net.msg_overhead
        self._served[target] += 1
        if self._served[target] > net.rpc_overload_threshold:
            service += net.rpc_overload_cost
        self._busy_until[target] = start + service

        value, nbytes = self._handlers[target](token)
        transfer = nbytes / self.ctx.net.async_rank_bw()
        done = start + service + net.alpha + transfer

        if metrics is not None:
            metrics.inc("rpc_served", target)
            metrics.inc("rpc_bytes", caller, nbytes)

        def deliver(_arg) -> None:
            if tracer is not None:
                tracer.instant(caller, "rpc_callback", engine.now,
                               target=target, token=token, nbytes=nbytes,
                               latency=engine.now - issued_at)
            self.inboxes[caller].put(
                RpcResponse(
                    target=target,
                    token=token,
                    value=value,
                    nbytes=nbytes,
                    issued_at=issued_at,
                    completed_at=engine.now,
                )
            )

        engine._schedule(done - engine.now, deliver, None)

    def served(self, rank: int) -> int:
        """Requests this rank has serviced so far."""
        return int(self._served[rank])
