"""Pairwise alignment kernels: X-drop seed-and-extend plus DP references.

The paper computes each task with SeqAn's C++ X-drop implementation
(Zhang et al. 2000); here an equivalent pure-numpy antidiagonal X-drop
extender is provided, validated against full dynamic programming, together
with a cells-to-seconds cost model calibrated to the paper's single-core
anchor points (E. coli 30x in ~1 hour on one KNL core).
"""

from repro.align.scoring import ScoringScheme, DEFAULT_SCORING
from repro.align.xdrop import XDropExtender, ExtensionResult
from repro.align.batch import BatchedXDropExtender
from repro.align.dp import needleman_wunsch, smith_waterman, extension_score_full
from repro.align.seedextend import SeedExtendAligner, Alignment
from repro.align.cost import AlignmentCostModel, KNL_CELL_RATE

__all__ = [
    "ScoringScheme",
    "DEFAULT_SCORING",
    "XDropExtender",
    "BatchedXDropExtender",
    "ExtensionResult",
    "needleman_wunsch",
    "smith_waterman",
    "extension_score_full",
    "SeedExtendAligner",
    "Alignment",
    "AlignmentCostModel",
    "KNL_CELL_RATE",
]
