"""Shared utilities: RNG streams, units, array helpers, summary statistics."""

from repro.utils.rng import RngFactory, spawn_rng
from repro.utils.units import (
    KB,
    MB,
    GB,
    KIB,
    MIB,
    GIB,
    US,
    MS,
    fmt_bytes,
    fmt_time,
)
from repro.utils.stats import Summary, summarize, load_imbalance
from repro.utils.arrays import (
    group_offsets_by_sorted_key,
    counts_to_offsets,
    segment_sums,
    chunked_ranges,
)

__all__ = [
    "RngFactory",
    "spawn_rng",
    "KB",
    "MB",
    "GB",
    "KIB",
    "MIB",
    "GIB",
    "US",
    "MS",
    "fmt_bytes",
    "fmt_time",
    "Summary",
    "summarize",
    "load_imbalance",
    "group_offsets_by_sorted_key",
    "counts_to_offsets",
    "segment_sums",
    "chunked_ranges",
]
