"""The BELLA reliable-k-mer frequency model (Guidi et al., ACDA 2021).

The paper (§4) filters k-mers "according to the BELLA model", which uses the
dataset's sequencing coverage ``d``, per-base error rate ``e``, and k-mer
length ``k`` to choose which k-mer multiplicities mark *reliable* seeds:

* A k-mer drawn from one read is error-free with probability
  ``p = (1 - e)**k``.
* A unique (single-copy) genomic position is covered by ``d`` reads on
  average, so the multiplicity of a correct k-mer from that locus is
  approximately ``Binomial(d, p)``.
* k-mers seen fewer than 2 times are overwhelmingly sequencing errors
  (lower bound ``lo = 2``); k-mers seen far more often than the binomial
  upper tail allows are almost surely genomic repeats, which seed
  false-positive candidates and blow up the task count (upper bound ``hi``
  = the smallest m whose binomial survival probability drops below
  ``tail_prob``).

This module implements that calculation with :mod:`scipy.stats` and exposes
both the bounds and the retention probability curve for tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError

__all__ = ["BellaModel", "reliable_bounds"]


@dataclass(frozen=True)
class BellaModel:
    """Reliable k-mer bounds for one dataset.

    Parameters
    ----------
    coverage : sequencing depth ``d``.
    error_rate : per-base error probability ``e``.
    k : k-mer length (17 in the paper).
    tail_prob : binomial survival probability below which higher
        multiplicities are attributed to repeats (BELLA uses ~0.001).
    min_count : lower reliability bound (2 removes singleton error k-mers).
    """

    coverage: float
    error_rate: float
    k: int = 17
    tail_prob: float = 0.001
    min_count: int = 2

    def __post_init__(self) -> None:
        if self.coverage <= 0:
            raise ConfigurationError("coverage must be positive")
        if not 0 <= self.error_rate < 1:
            raise ConfigurationError("error_rate must be in [0,1)")
        if self.k < 1:
            raise ConfigurationError("k must be >= 1")
        if not 0 < self.tail_prob < 1:
            raise ConfigurationError("tail_prob must be in (0,1)")

    @property
    def p_correct(self) -> float:
        """Probability a length-k window of a read is error-free."""
        return float((1.0 - self.error_rate) ** self.k)

    @property
    def expected_multiplicity(self) -> float:
        """Mean multiplicity of a correct single-copy k-mer: ``d * p``."""
        return self.coverage * self.p_correct

    def upper_bound(self) -> int:
        """Smallest m with ``P[Binomial(d, p) >= m] < tail_prob``.

        k-mers seen ``> hi`` times are treated as repeats and discarded.
        """
        d = max(1, int(round(self.coverage)))
        p = self.p_correct
        # sf(m-1) = P[X >= m]; find smallest m where this drops below tail.
        m = np.arange(0, d + 2)
        sf = stats.binom.sf(m - 1, d, p)
        below = np.nonzero(sf < self.tail_prob)[0]
        if below.size == 0:  # pathological (p ~ 1 and tiny tail_prob)
            return d
        hi = int(below[0])
        return max(hi, self.min_count)

    def bounds(self) -> tuple[int, int]:
        """``(lo, hi)`` multiplicity band of reliable k-mers."""
        return self.min_count, self.upper_bound()

    def retention_probability(self, multiplicity: np.ndarray) -> np.ndarray:
        """Indicator of retention for each multiplicity (vectorized)."""
        lo, hi = self.bounds()
        m = np.asarray(multiplicity)
        return ((m >= lo) & (m <= hi)).astype(float)

    def describe(self) -> dict:
        lo, hi = self.bounds()
        return {
            "coverage": self.coverage,
            "error_rate": self.error_rate,
            "k": self.k,
            "p_correct": self.p_correct,
            "expected_multiplicity": self.expected_multiplicity,
            "lo": lo,
            "hi": hi,
        }


def reliable_bounds(coverage: float, error_rate: float, k: int = 17,
                    tail_prob: float = 0.001) -> tuple[int, int]:
    """Convenience wrapper returning the BELLA ``(lo, hi)`` band."""
    return BellaModel(coverage, error_rate, k, tail_prob).bounds()
