"""Tests for the TaskTable structure-of-arrays container."""

import numpy as np
import pytest

from repro.errors import PartitionError
from repro.kmer.seeds import Candidate
from repro.pipeline.tasks import TaskTable


def make_table():
    return TaskTable(
        read_a=np.array([0, 1, 2, 0]),
        read_b=np.array([1, 2, 3, 3]),
        pos_a=np.array([5, 0, 7, 2]),
        pos_b=np.array([0, 3, 1, 9]),
        reverse=np.array([False, True, False, True]),
        k=13,
    )


def test_len_and_fields():
    t = make_table()
    assert len(t) == 4
    assert t.k == 13
    assert t.reverse.dtype == bool


def test_from_candidates():
    cands = [
        Candidate(read_a=0, read_b=2, pos_a=1, pos_b=3, k=11, reverse=True),
        Candidate(read_a=1, read_b=3, pos_a=0, pos_b=0, k=11),
    ]
    t = TaskTable.from_candidates(cands)
    assert len(t) == 2
    assert t.k == 11
    assert t.read_a.tolist() == [0, 1]
    assert t.reverse.tolist() == [True, False]


def test_from_candidates_empty():
    t = TaskTable.from_candidates([], k=17)
    assert len(t) == 0 and t.k == 17


def test_length_mismatch_rejected():
    with pytest.raises(PartitionError):
        TaskTable(
            read_a=np.array([0, 1]),
            read_b=np.array([1]),
            pos_a=np.array([0, 0]),
            pos_b=np.array([0, 0]),
            reverse=np.array([False, False]),
            k=5,
        )


def test_with_owner_and_cost():
    t = make_table()
    owned = t.with_owner(np.array([0, 1, 0, 1]))
    assert owned.owner.tolist() == [0, 1, 0, 1]
    costed = owned.with_cost(np.array([1.0, 2.0, 3.0, 4.0]))
    assert costed.owner is not None and costed.cost is not None
    with pytest.raises(PartitionError):
        t.with_owner(np.array([0]))


def test_tasks_of_rank_and_grouping():
    t = make_table().with_owner(np.array([1, 0, 1, 0]))
    assert t.tasks_of_rank(1).tolist() == [0, 2]
    order, offsets = t.group_by_owner(2)
    assert offsets.tolist() == [0, 2, 4]
    assert sorted(order[:2].tolist()) == [1, 3]


def test_tasks_of_rank_requires_owner():
    with pytest.raises(PartitionError):
        make_table().tasks_of_rank(0)


def test_remote_read_of():
    t = make_table().with_owner(np.array([0, 1, 1, 1]))
    # reads 0,1 owned by rank 0; reads 2,3 by rank 1
    owner_of = lambda ids: np.where(np.asarray(ids) <= 1, 0, 1)
    # rank 1's tasks: indices 1,2,3
    remote = t.remote_read_of(np.array([1, 2, 3]), owner_of, rank=1)
    # task1 = (1,2): read 1 is remote; task2 = (2,3): both local -> -1;
    # task3 = (0,3): read 0 remote
    assert remote.tolist() == [1, -1, 0]


def test_remote_read_of_invariant_violation():
    t = make_table().with_owner(np.array([0, 0, 0, 0]))
    owner_of = lambda ids: np.full(np.asarray(ids).shape, 5)
    with pytest.raises(PartitionError):
        t.remote_read_of(np.array([0]), owner_of, rank=0)
