"""Full dynamic-programming references: Needleman-Wunsch and Smith-Waterman.

These O(n*m) kernels (paper refs [18], [19]) serve two roles:

* correctness oracles for the X-drop extender (with an unbounded drop
  threshold the extender must reproduce :func:`extension_score_full`);
* the naive-baseline arm of the complexity comparison the paper draws in
  §2 (``O(n^2)`` exact DP vs average-case ``O(n)`` seed-and-extend).

Implementations are numpy row-vectorized: the inner loop is over rows only,
with each row computed as array operations (including an exact
prefix-max formulation of the horizontal-gap dependency).
"""

from __future__ import annotations

import numpy as np

from repro.align.scoring import DEFAULT_SCORING, ScoringScheme

__all__ = ["needleman_wunsch", "smith_waterman", "extension_score_full"]


def _row_update(prev_row: np.ndarray, a_i: int, b: np.ndarray,
                scoring: ScoringScheme, *, local: bool,
                first_cell: int) -> np.ndarray:
    """Compute one DP row given the previous row.

    The horizontal dependency ``row[j] >= row[j-1] + gap`` is resolved
    exactly without a Python inner loop using the identity
    ``row[j] = max_k<=j (cand[k] + gap*(j-k))``, computed via a running
    maximum of ``cand[k] - gap*k`` with ``numpy.maximum.accumulate``.
    """
    n = b.size
    sub = scoring.substitution(np.full(n, a_i, dtype=np.uint8), b)
    cand = np.empty(n + 1, dtype=np.int64)
    cand[0] = first_cell
    # vertical and diagonal moves
    cand[1:] = np.maximum(prev_row[:-1] + sub, prev_row[1:] + scoring.gap)
    if local:
        cand[1:] = np.maximum(cand[1:], 0)
    # Horizontal-gap closure via prefix max:
    # row[j] = max_{k<=j} (cand[k] - g*(j-k)) = max_{k<=j}(cand[k] + g*k) - g*j
    g = -scoring.gap  # positive penalty magnitude
    j = np.arange(n + 1, dtype=np.int64)
    row = np.maximum.accumulate(cand + g * j) - g * j
    if local:
        row = np.maximum(row, 0)
    return row


def needleman_wunsch(a: np.ndarray, b: np.ndarray,
                     scoring: ScoringScheme = DEFAULT_SCORING) -> int:
    """Global alignment score of code arrays ``a`` and ``b``."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    n = b.size
    row = scoring.gap * np.arange(n + 1, dtype=np.int64)
    for i in range(a.size):
        row = _row_update(row, int(a[i]), b, scoring, local=False,
                          first_cell=scoring.gap * (i + 1))
    return int(row[-1])


def smith_waterman(a: np.ndarray, b: np.ndarray,
                   scoring: ScoringScheme = DEFAULT_SCORING) -> int:
    """Best local alignment score between ``a`` and ``b`` (>= 0)."""
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    row = np.zeros(b.size + 1, dtype=np.int64)
    best = 0
    for i in range(a.size):
        row = _row_update(row, int(a[i]), b, scoring, local=True, first_cell=0)
        m = int(row.max())
        if m > best:
            best = m
    return best


def extension_score_full(a: np.ndarray, b: np.ndarray,
                         scoring: ScoringScheme = DEFAULT_SCORING
                         ) -> tuple[int, int, int]:
    """Unpruned extension score: ``max_{i,j} S(i, j)`` with ``S(0,0)=0``.

    ``S(i,j)`` is the global alignment score of prefixes ``a[:i]``/``b[:j]``.
    This is exactly what X-drop extension computes when the drop threshold is
    unbounded, so it is the score oracle for
    :class:`repro.align.xdrop.XDropExtender`.  Returns ``(score, i, j)`` for
    one cell attaining the maximum (tie-breaking is scan-order dependent, so
    only the score is comparable across kernels).
    """
    a = np.asarray(a, dtype=np.uint8)
    b = np.asarray(b, dtype=np.uint8)
    n = b.size
    row = scoring.gap * np.arange(n + 1, dtype=np.int64)
    best, best_i, best_j = 0, 0, 0  # S(0,0) = 0
    # scan row 0
    j0 = int(np.argmax(row))
    if row[j0] > best:
        best, best_i, best_j = int(row[j0]), 0, j0
    for i in range(a.size):
        row = _row_update(row, int(a[i]), b, scoring, local=False,
                          first_cell=scoring.gap * (i + 1))
        m = int(row.max())
        if m > best:
            j = int(np.argmax(row))
            best, best_i, best_j = m, i + 1, j
    return best, best_i, best_j
