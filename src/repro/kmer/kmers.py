"""Vectorized k-mer extraction with 2-bit packing.

k-mers over the ACGT subset are packed into ``uint64`` words (2 bits/base,
so ``k <= 31``; the paper uses k = 17).  Windows containing ``N`` are skipped,
exactly as real long-read pipelines do.  *Canonical* k-mers — the
lexicographic minimum of a k-mer and its reverse complement — make seed
matching strand-insensitive, which is required because a pair of reads can
overlap in either relative orientation (paper Figure 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SequenceError

__all__ = ["KmerExtractor", "canonical_kmers", "pack_kmers", "unpack_kmer"]

MAX_K = 31


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise SequenceError(f"k must be in [1, {MAX_K}], got {k}")


def pack_kmers(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Pack every valid length-``k`` window of ``codes`` into uint64.

    Returns ``(packed, positions)`` where ``positions`` are the window start
    offsets of the *valid* (N-free) windows, in increasing order.
    """
    _check_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    n = codes.size
    if n < k:
        return np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64)

    windows = np.lib.stride_tricks.sliding_window_view(codes, k)
    valid = (windows < 4).all(axis=1)
    positions = np.nonzero(valid)[0].astype(np.int64)
    if positions.size == 0:
        return np.empty(0, dtype=np.uint64), positions

    weights = (np.uint64(4) ** np.arange(k - 1, -1, -1, dtype=np.uint64))
    packed = (windows[positions].astype(np.uint64) * weights).sum(
        axis=1, dtype=np.uint64
    )
    return packed, positions


def revcomp_packed(packed: np.ndarray, k: int) -> np.ndarray:
    """Reverse complement of packed k-mers, vectorized.

    Complementing a 2-bit base is ``base ^ 3``; reversal swaps base order.
    Implemented with bit-fiddling on the uint64 words.
    """
    _check_k(k)
    x = np.asarray(packed, dtype=np.uint64)
    # Complement all bases at once (only the low 2k bits are meaningful).
    mask = np.uint64((1 << (2 * k)) - 1)
    x = (~x) & mask
    # Reverse 2-bit groups within the low 2k bits: classic bit-reversal by
    # swapping progressively larger chunks, then shift down.
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    m8 = np.uint64(0x00FF00FF00FF00FF)
    m16 = np.uint64(0x0000FFFF0000FFFF)
    x = ((x >> np.uint64(2)) & m2) | ((x & m2) << np.uint64(2))
    x = ((x >> np.uint64(4)) & m4) | ((x & m4) << np.uint64(4))
    x = ((x >> np.uint64(8)) & m8) | ((x & m8) << np.uint64(8))
    x = ((x >> np.uint64(16)) & m16) | ((x & m16) << np.uint64(16))
    x = (x >> np.uint64(32)) | (x << np.uint64(32))
    # The reversed word now holds the bases in the top 2k bits of 64.
    return (x >> np.uint64(64 - 2 * k)).astype(np.uint64)


def canonical_kmers(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Canonical (strand-normalized) packed k-mers and their positions."""
    fwd, positions = pack_kmers(codes, k)
    if fwd.size == 0:
        return fwd, positions
    rc = revcomp_packed(fwd, k)
    return np.minimum(fwd, rc), positions


def unpack_kmer(packed: int, k: int) -> str:
    """Decode one packed k-mer back to an ACGT string (for debugging)."""
    _check_k(k)
    out = []
    value = int(packed)
    for _ in range(k):
        out.append("ACGT"[value & 3])
        value >>= 2
    return "".join(reversed(out))


@dataclass(frozen=True)
class KmerExtractor:
    """Extract canonical k-mers from reads.

    Parameters
    ----------
    k : k-mer length (paper uses 17).
    canonical : normalize over strands (default True).
    """

    k: int = 17
    canonical: bool = True

    def __post_init__(self) -> None:
        _check_k(self.k)

    def extract(self, codes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """k-mers and start positions for a single read's code array."""
        if self.canonical:
            return canonical_kmers(codes, self.k)
        return pack_kmers(codes, self.k)

    def extract_readset(self, reads) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All k-mers of a :class:`ReadSet`.

        Returns ``(kmers, read_indices, positions)`` — flat parallel arrays
        across all reads; ``read_indices`` holds *local* read indices.
        """
        all_kmers, all_rids, all_pos = [], [], []
        for i in range(len(reads)):
            km, pos = self.extract(reads.codes(i))
            if km.size:
                all_kmers.append(km)
                all_pos.append(pos)
                all_rids.append(np.full(km.size, i, dtype=np.int64))
        if not all_kmers:
            empty64 = np.empty(0, dtype=np.uint64)
            empty = np.empty(0, dtype=np.int64)
            return empty64, empty, empty
        return (
            np.concatenate(all_kmers),
            np.concatenate(all_rids),
            np.concatenate(all_pos),
        )

    def expected_kmers(self, genome_size: int, coverage: float) -> float:
        """Paper §2: O(genome_size x coverage) k-mers for the whole input."""
        return float(genome_size) * float(coverage)
