"""Exception hierarchy for :mod:`repro`.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with one clause while still distinguishing subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the repro library."""


class ConfigurationError(ReproError):
    """A machine, workload, or engine was configured inconsistently."""


class SequenceError(ReproError):
    """Invalid sequence data (bad alphabet, empty read, malformed FASTA...)."""


class AlignmentError(ReproError):
    """Alignment kernel misuse (bad seed position, invalid scoring...)."""


class SimulationError(ReproError):
    """Discrete-event simulation reached an inconsistent state."""


class DeadlockError(SimulationError):
    """The event queue drained while simulated processes were still blocked."""


class MemoryLimitError(SimulationError):
    """A simulated allocation exceeded the per-node memory budget."""


class AccountingError(SimulationError):
    """Per-rank phase times failed to tile the wall clock (conservation)."""


class FaultError(SimulationError):
    """An injected fault could not be absorbed by the runtime."""


class RpcTimeoutError(FaultError):
    """An RPC exhausted its retry budget without receiving a response."""


class RankFailureError(FaultError):
    """A rank died permanently and the engine could not degrade gracefully."""


class PartitionError(ReproError):
    """Read/task partitioning violated an invariant."""


class ExecutorError(ReproError):
    """The compute backend failed outside the simulation model."""


class ServiceError(ReproError):
    """The job service (queue/cache/HTTP layer) reached an invalid state."""


class JobStateError(ServiceError):
    """A job was driven through an illegal state transition."""


class JobCancelledError(ServiceError):
    """A job was cancelled — by a client, or by queue shutdown.

    Raised *inside* a running job by the progress-tracer sink (the next
    trace event after the cancel request aborts the engine mid-run; the
    engines hold their executors in ``with`` blocks, so pools and shared
    memory tear down cleanly), and recorded as the typed error of jobs
    still QUEUED when the queue shuts down."""


class QueueFullError(ServiceError):
    """The run queue's bounded backlog rejected a submission (HTTP 429)."""


class WorkerCrashError(ExecutorError):
    """A process-backend worker died mid-batch.

    Wraps :class:`concurrent.futures.process.BrokenProcessPool` so callers
    never have to catch a ``concurrent.futures`` internal: the message
    carries the pool shape (workers, chunk size) and the failing batch's
    task count, which is what a reproduction needs.  The pool is unusable
    afterwards; ``close()`` still tears down cleanly (no shm leak)."""
