"""Signature-keyed result cache for the job service.

Keys are :meth:`repro.service.jobs.JobRequest.cache_key` digests — the
canonical hash over every result-affecting request field — and values are
the completed :class:`~repro.engines.report.RunResult` objects themselves.
A served-from-cache job completes instantly with ``cache_hit=True`` and a
:meth:`~repro.engines.report.RunResult.signature` bit-identical to the
fresh run's: the cache stores the *object*, and signatures are pure
functions of it (``tests/test_service_http.py`` pins the equality against
the golden suite).

Thread-safe wrapper over the repo's counted
:class:`~repro.utils.cache.LruCache`: queue workers publish results while
HTTP threads serve hits concurrently.
"""

from __future__ import annotations

import threading

from repro.engines.report import RunResult
from repro.utils.cache import LruCache

__all__ = ["ResultCache", "DEFAULT_CACHE_ENTRIES"]

#: default bound on cached results — entries are whole RunResults (per-rank
#: arrays + alignments), so the cap is deliberately modest
DEFAULT_CACHE_ENTRIES = 64


class ResultCache:
    """Bounded, counted, thread-safe result store."""

    def __init__(self, entries: int = DEFAULT_CACHE_ENTRIES):
        self._lru = LruCache(maxsize=entries)
        self._lock = threading.Lock()

    def get(self, key: str) -> RunResult | None:
        with self._lock:
            return self._lru.get(key)

    def put(self, key: str, result: RunResult) -> None:
        with self._lock:
            self._lru.put(key, result)

    def clear(self) -> None:
        with self._lock:
            self._lru.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._lru)

    def stats(self) -> dict:
        """Size/cap/hit/miss/eviction counters (hits = served-from-cache)."""
        with self._lock:
            return self._lru.stats()
