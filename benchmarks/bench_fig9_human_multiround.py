"""Figure 9: Human CCS 8-32 nodes — the memory-limited multi-round regime.

Paper's claims checked in shape:
* per-node memory cannot hold the aggregated exchange: BSP needs multiple
  communication+computation rounds at 8-32 nodes;
* BSP's visible communication overhead is substantial (paper: 17-34%);
* the async code hides its latency and is more efficient (paper: up to
  20%);
* synchronization time is practically the same between the codes.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig9_10_human_scaling


def test_fig9_human_multiround(benchmark, human_nodes):
    nodes = tuple(n for n in human_nodes if n <= 32)
    fig = run_once(benchmark, fig9_10_human_scaling, nodes)
    emit("fig9", fig)
    rows = {(r[0], r[1]): r for r in fig["rows"]}

    for n in nodes:
        bsp, asy = rows[("bsp", n)], rows[("async", n)]
        assert bsp[8] > 1                 # forced multi-round
        assert bsp[6] > 10.0              # visible comm substantial
        assert asy[6] < 7.0               # async hides latency
        assert asy[9] < 100.0             # async more efficient
        # sync fractions practically the same (both dominated by the same
        # compute imbalance)
        assert abs(bsp[7] - asy[7]) < 6.0
