"""Machine specifications, with the Cori KNL preset used throughout §4.

Numbers for :func:`cori_knl` come from the paper and public NERSC/Cray
documentation:

* 68-core Intel Xeon Phi 7250 (KNL) @ 1.4 GHz per node, 4-way hyperthreaded
  (hyperthreads gave "negligible or no benefit", §4.1, so ranks map to full
  cores);
* 96 GB DDR4 + 16 GB MCDRAM per node; roughly **1.4 GB application-available
  memory per core** with 64 application cores (Figure 11's solid line);
* Cray Aries interconnect, dragonfly topology: ~1.3 us one-sided latency,
  ~10 GB/s injection bandwidth per NIC (shared by all ranks on the node),
  with a global-bandwidth taper for traffic crossing dragonfly groups;
* default run configuration: 64 application cores per node, 4 cores left to
  the OS ("system overhead isolation", §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.utils.units import GB, GIB, US

__all__ = ["NodeSpec", "NetworkSpec", "MachineSpec", "cori_knl"]


@dataclass(frozen=True)
class NodeSpec:
    """One compute node."""

    total_cores: int = 68
    core_ghz: float = 1.4
    memory_bytes: float = 96 * GIB
    mcdram_bytes: float = 16 * GIB
    #: memory a rank can actually use for application data once the OS,
    #: runtime, and buffers take their share (paper: "roughly 1.4GB").
    app_memory_per_core: float = 1.4 * GB
    #: effective aggregate throughput of an intranode rank-to-rank exchange
    #: (MPI alltoallv through shared memory on KNL: pack/unpack on 1.4 GHz
    #: in-order cores, far below raw STREAM bandwidth).  Calibrated to the
    #: paper's single-node anchor: BSP communication is "just over 1%" of
    #: the E. coli 100x single-node runtime (Figure 8).
    intranode_bw: float = 8 * GB

    def __post_init__(self) -> None:
        if self.total_cores <= 0:
            raise ConfigurationError("node must have cores")
        if self.memory_bytes <= 0 or self.app_memory_per_core <= 0:
            raise ConfigurationError("node memory must be positive")


@dataclass(frozen=True)
class NetworkSpec:
    """LogGP-style parameters of the interconnect.

    alpha : one-way small-message latency (seconds).
    rtt : remote-procedure-call round trip (2x alpha plus handler entry).
    injection_bw : NIC bandwidth per node (bytes/s), shared by its ranks.
    msg_overhead : CPU send/recv overhead per message (the *o* of LogGP).
    msg_gap : minimum gap between message injections per rank (the *g*).
    rpc_service_gap : time for a rank to service one incoming RPC
        (lookup + enqueue response), paid serially at the callee.
    bisection_taper : global (cross-group) bandwidth as a fraction of the
        aggregate injection bandwidth — dragonfly global links tapered.
    barrier_latency : per-hop latency of a log2(P) barrier/reduction tree.
    outstanding_limit : runtime cap on in-flight RPCs per rank (UPC++/
        GASNet-EX tuning knob the paper speculates about in §4.3).
    msg_half_size : the per-source aggregated-message size at which the
        irregular all-to-all reaches half its peak bandwidth.
    alltoallv_peak_efficiency : ceiling on the fraction of the schedulable
        (bisection/NIC) share an *irregular* all-to-all ever achieves —
        irregular personalized exchanges never reach the bisection bound
        (unbalanced routes, pack/unpack on slow KNL cores).  Small
        per-pair messages (an E. coli-sized workload spread over 8K ranks)
        are protocol-dominated; multi-MB aggregates stream at full rate —
        this is what makes BSP latency scale *sublinearly* at scale
        (Figure 7) while staying cheap when aggregation is effective.
    async_bw_efficiency : fraction of the schedulable (collective) bandwidth
        that unscheduled fine-grained RPC traffic achieves — pulls arrive
        unpaced, so the async code pays this on its payload movement; it is
        the bandwidth-side price of skipping aggregation (§5's
        aggregation-vs-latency trade-off).
    rpc_overload_threshold : incoming lookups per rank beyond which the RPC
        runtime enters a degraded regime (deep queues, retries) — the
        8-16-node latency hump of Figure 7 the paper attributes to untuned
        outgoing-request limits (§4.3).
    rpc_overload_cost : extra seconds per excess incoming lookup in the
        degraded regime.
    rpc_overload_entry : fixed recovery time once a rank's incoming queue
        saturates — retransmission/backoff storms are governed by runtime
        timeout constants rather than queue depth, which is why the paper
        sees *poor scaling* (not just higher latency) between 8 and 16
        nodes (§4.3) before the regime clears.
    """

    alpha: float = 1.3 * US
    injection_bw: float = 10 * GB
    msg_overhead: float = 0.5 * US
    msg_gap: float = 0.4 * US
    rpc_service_gap: float = 0.8 * US
    bisection_taper: float = 0.5
    barrier_latency: float = 1.8 * US
    outstanding_limit: int = 64
    msg_half_size: float = 24_000.0
    alltoallv_peak_efficiency: float = 0.5
    async_bw_efficiency: float = 0.5
    rpc_overload_threshold: float = 25_000.0
    rpc_overload_cost: float = 450.0 * US
    rpc_overload_entry: float = 40.0

    @property
    def rtt(self) -> float:
        return 2.0 * self.alpha + self.msg_overhead

    def __post_init__(self) -> None:
        if min(self.alpha, self.injection_bw, self.msg_overhead,
               self.msg_gap, self.rpc_service_gap, self.barrier_latency) <= 0:
            raise ConfigurationError("network parameters must be positive")
        if not 0 < self.bisection_taper <= 1:
            raise ConfigurationError("bisection_taper must be in (0,1]")
        if not 0 < self.async_bw_efficiency <= 1:
            raise ConfigurationError("async_bw_efficiency must be in (0,1]")
        if self.outstanding_limit < 1:
            raise ConfigurationError("outstanding_limit must be >= 1")
        if self.msg_half_size < 0 or self.rpc_overload_cost < 0:
            raise ConfigurationError("msg_half_size/rpc_overload_cost must be >= 0")


@dataclass(frozen=True)
class MachineSpec:
    """A whole machine allocation: nodes x ranks-per-node plus the network."""

    nodes: int
    node: NodeSpec = field(default_factory=NodeSpec)
    network: NetworkSpec = field(default_factory=NetworkSpec)
    #: ranks running application code per node (64 on Cori KNL by default,
    #: with the remaining cores isolating system overhead; 68 disables
    #: isolation and exposes OS noise, Figure 3).
    app_cores_per_node: int = 64

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("machine needs at least one node")
        if not 0 < self.app_cores_per_node <= self.node.total_cores:
            raise ConfigurationError(
                "app_cores_per_node must be in (0, total_cores]"
            )

    @property
    def total_ranks(self) -> int:
        return self.nodes * self.app_cores_per_node

    @property
    def system_isolated(self) -> bool:
        """True when some cores are left free to absorb OS interference."""
        return self.app_cores_per_node < self.node.total_cores

    @property
    def app_memory_per_rank(self) -> float:
        return self.node.app_memory_per_core

    def node_of_rank(self, rank: int) -> int:
        """Block mapping of ranks to nodes (rank r runs on node r // cpn)."""
        return rank // self.app_cores_per_node

    def with_nodes(self, nodes: int) -> "MachineSpec":
        """Same machine scaled to a different node count (strong scaling)."""
        return replace(self, nodes=nodes)

    def describe(self) -> str:
        return (
            f"{self.nodes} node(s) x {self.app_cores_per_node} app cores "
            f"({self.node.total_cores}-core nodes, "
            f"{self.total_ranks} ranks total)"
        )


def cori_knl(nodes: int, app_cores_per_node: int = 64) -> MachineSpec:
    """The Cori KNL (Cray XC40) configuration of the paper's experiments."""
    return MachineSpec(
        nodes=nodes,
        node=NodeSpec(),
        network=NetworkSpec(),
        app_cores_per_node=app_cores_per_node,
    )
