"""The HTTP API over a live localhost server.

Everything here drives a real :class:`~repro.service.http.ServiceServer`
bound to an ephemeral port — submission, polling, SSE streaming,
cancellation, backpressure, and the PR's acceptance criterion: two
clients submitting the same workload concurrently see one engine
execution and bit-identical results whose signature equals the pinned
golden, with a tracer-derived ``phase`` event on the stream before
completion.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.service import JobRequest, RunQueue, ServiceServer

WAIT = 120.0

GOLDENS = json.loads(
    (Path(__file__).parent / "goldens" / "signatures.json").read_text()
)

#: the golden-matrix case the service must reproduce bit-identically
GOLDEN_REQUEST = {"workload": "micro", "seed": 11, "engine": "bsp",
                  "nodes": 2, "cores_per_node": 4}
GOLDEN_SIGNATURE = GOLDENS["bsp/micro@11"]


@pytest.fixture()
def server():
    srv = ServiceServer(slots=2).start()
    yield srv
    srv.stop()


def _request(url: str, method: str = "GET", body: dict | None = None):
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        req.add_header("Content-Type", "application/json")
    return urllib.request.urlopen(req, timeout=WAIT)


def _json(url: str, method: str = "GET", body: dict | None = None):
    with _request(url, method, body) as resp:
        return resp.status, json.load(resp)


def _submit(server, body: dict) -> dict:
    status, payload = _json(server.url("/jobs"), "POST", body)
    assert status == 201
    return payload


def _poll_done(server, job_id: str) -> dict:
    deadline = time.monotonic() + WAIT
    while time.monotonic() < deadline:
        _, payload = _json(server.url(f"/jobs/{job_id}"))
        if payload["state"] in ("DONE", "FAILED", "CANCELLED"):
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} never reached a terminal state")


def _sse_events(server, job_id: str, since: int = 0) -> list[dict]:
    """Consume the job's SSE stream to its end; parse every frame."""
    events = []
    url = server.url(f"/jobs/{job_id}/events?since={since}")
    with urllib.request.urlopen(url, timeout=WAIT) as stream:
        assert stream.headers["Content-Type"] == "text/event-stream"
        frame: dict = {}
        for raw in stream:
            line = raw.decode().rstrip("\n")
            if not line:
                if frame:
                    events.append(frame)
                frame = {}
            elif line.startswith("event: "):
                frame["event_field"] = line[len("event: "):]
            elif line.startswith("data: "):
                frame["data"] = json.loads(line[len("data: "):])
        if frame:
            events.append(frame)
    return events


# -- lifecycle over a live server --------------------------------------------

def test_submit_poll_result_roundtrip(server):
    job = _submit(server, GOLDEN_REQUEST)
    assert job["id"].startswith("job-")
    assert job["state"] in ("QUEUED", "ADMITTED", "RUNNING", "DONE")
    final = _poll_done(server, job["id"])
    assert final["state"] == "DONE" and final["error"] is None
    status, result = _json(server.url(f"/jobs/{job['id']}/result"))
    assert status == 200
    assert result["signature"] == GOLDEN_SIGNATURE
    assert result["engine"] == "bsp" and result["workload"] == "micro"
    assert result["wall_time"] > 0
    assert abs(sum(result["fractions"].values()) - 1.0) < 1e-6
    # the listing shows it too
    status, listing = _json(server.url("/jobs"))
    assert status == 200
    assert job["id"] in [j["id"] for j in listing["jobs"]]
    assert listing["stats"]["executed"] == 1


def test_sse_stream_orders_lifecycle_and_carries_phases(server):
    job = _submit(server, GOLDEN_REQUEST)
    events = _sse_events(server, job["id"])
    kinds = [e["event_field"] for e in events]
    # SSE framing matches the payload's own event kind
    assert all(e["event_field"] == e["data"]["event"] for e in events)
    seqs = [e["data"]["seq"] for e in events]
    assert seqs == sorted(seqs)
    states = [e["data"]["state"] for e in events
              if e["data"]["event"] == "state"]
    assert states == ["QUEUED", "ADMITTED", "RUNNING", "DONE"]
    # >=1 tracer-derived phase event lands before the terminal done
    assert "phase" in kinds[:-1]
    first_phase = next(e["data"] for e in events
                       if e["data"]["event"] == "phase")
    assert {"rank", "category", "name", "sim_start",
            "sim_end"} <= set(first_phase)
    assert kinds[-1] == "done"
    assert events[-1]["data"]["state"] == "DONE"


def test_sse_since_replays_from_cursor(server):
    job = _submit(server, GOLDEN_REQUEST)
    _poll_done(server, job["id"])
    full = _sse_events(server, job["id"])
    resumed = _sse_events(server, job["id"],
                          since=full[2]["data"]["seq"])
    assert [e["data"]["seq"] for e in resumed] == \
        [e["data"]["seq"] for e in full[2:]]


def test_cache_hit_signature_is_bit_identical_to_fresh(server):
    first = _submit(server, GOLDEN_REQUEST)
    _poll_done(server, first["id"])
    second = _submit(server, GOLDEN_REQUEST)
    final = _poll_done(server, second["id"])
    assert final["cache_hit"] and final["cache_source"] == "cache"
    _, fresh = _json(server.url(f"/jobs/{first['id']}/result"))
    _, cached = _json(server.url(f"/jobs/{second['id']}/result"))
    assert cached["signature"] == fresh["signature"] == GOLDEN_SIGNATURE
    assert cached["cache_hit"] and not fresh["cache_hit"]
    # a cached job's stream still carries the full lifecycle contract
    events = _sse_events(server, second["id"])
    assert events[-1]["data"]["state"] == "DONE"


def test_delete_cancels_and_result_reports_gone(server):
    job = _submit(server, dict(GOLDEN_REQUEST, seed=77))
    status, body = _json(server.url(f"/jobs/{job['id']}"), "DELETE")
    assert status == 202
    final = _poll_done(server, job["id"])
    assert final["state"] == "CANCELLED"
    assert final["error"]["type"] == "JobCancelledError"
    with pytest.raises(urllib.error.HTTPError) as err:
        _request(server.url(f"/jobs/{job['id']}/result"))
    assert err.value.code == 410
    assert json.load(err.value)["error"]["type"] == "JobCancelledError"


def test_failed_job_result_carries_typed_error(server):
    job = _submit(server, {"workload": "ecoli30x", "seed": 0,
                           "cores_per_node": 4, "faults": "kill=r1@1"})
    final = _poll_done(server, job["id"])
    assert final["state"] == "FAILED"
    with pytest.raises(urllib.error.HTTPError) as err:
        _request(server.url(f"/jobs/{job['id']}/result"))
    assert err.value.code == 500
    assert json.load(err.value)["error"]["type"] == "RankFailureError"


# -- error surfaces ----------------------------------------------------------

def test_backlog_full_maps_to_429():
    queue = RunQueue(slots=1, backlog=1, start=False)  # nothing admits
    srv = ServiceServer(queue=queue).start()
    try:
        _submit(srv, GOLDEN_REQUEST)
        with pytest.raises(urllib.error.HTTPError) as err:
            _request(srv.url("/jobs"), "POST",
                     dict(GOLDEN_REQUEST, seed=99))
        assert err.value.code == 429
        assert err.value.headers["Retry-After"] == "1"
        assert json.load(err.value)["error"] == "QueueFullError"
    finally:
        srv.stop()
        queue.shutdown()


def test_result_before_terminal_is_409():
    queue = RunQueue(slots=1, start=False)  # job stays QUEUED
    srv = ServiceServer(queue=queue).start()
    try:
        job = _submit(srv, GOLDEN_REQUEST)
        with pytest.raises(urllib.error.HTTPError) as err:
            _request(srv.url(f"/jobs/{job['id']}/result"))
        assert err.value.code == 409
    finally:
        srv.stop()
        queue.shutdown()


@pytest.mark.parametrize("method,path,body,code", [
    ("GET", "/jobs/job-999999", None, 404),
    ("GET", "/jobs/job-999999/result", None, 404),
    ("DELETE", "/jobs/job-999999", None, 404),
    ("GET", "/nope", None, 404),
    ("POST", "/nope", {}, 404),
    ("POST", "/jobs", {"workload": "no-such-preset"}, 400),
    ("POST", "/jobs", {"engin": "bsp"}, 400),
    ("POST", "/jobs", {"engine": "bsp", "kernel": "real"}, 400),
])
def test_error_statuses(server, method, path, body, code):
    with pytest.raises(urllib.error.HTTPError) as err:
        _request(server.url(path), method, body)
    assert err.value.code == code
    assert "error" in json.load(err.value)


def test_malformed_json_is_400(server):
    req = urllib.request.Request(server.url("/jobs"), data=b"{not json",
                                 method="POST")
    with pytest.raises(urllib.error.HTTPError) as err:
        urllib.request.urlopen(req, timeout=10)
    assert err.value.code == 400


def test_healthz(server):
    status, body = _json(server.url("/healthz"))
    assert status == 200 and body["ok"] is True


# -- the acceptance criterion ------------------------------------------------

def test_e2e_two_concurrent_clients_one_execution_identical_bits(server):
    """Two clients submit the same workload concurrently: the engine runs
    once, both receive bit-identical results equal to the pinned golden,
    and each SSE stream carried a phase event before completion."""
    barrier = threading.Barrier(2)
    outcomes: list[dict] = [None, None]

    def client(i: int):
        barrier.wait()
        job = _submit(server, GOLDEN_REQUEST)
        events = _sse_events(server, job["id"])  # blocks until done
        _, result = _json(server.url(f"/jobs/{job['id']}/result"))
        outcomes[i] = {"job": job["id"], "events": events,
                       "result": result}

    threads = [threading.Thread(target=client, args=(i,)) for i in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(WAIT)
    assert all(outcomes), "a client never completed"
    sigs = {o["result"]["signature"] for o in outcomes}
    assert sigs == {GOLDEN_SIGNATURE}
    key = JobRequest(**{k: v for k, v in GOLDEN_REQUEST.items()}).cache_key()
    assert server.queue.executions(key) == 1
    fresh = [o for o in outcomes if not o["result"]["cache_hit"]]
    assert len(fresh) == 1
    # the fresh run's stream carried tracer-derived phases pre-completion
    fresh_kinds = [e["event_field"] for e in fresh[0]["events"]]
    assert "phase" in fresh_kinds[:-1] and fresh_kinds[-1] == "done"


# -- the CLI entry point -----------------------------------------------------

def test_serve_cli_boots_serves_and_stops_cleanly():
    """``python -m repro serve`` over a real subprocess: boots, answers
    /healthz, runs one job, and exits 0 on SIGINT."""
    repo = Path(__file__).parents[1]
    env = {**os.environ, "PYTHONPATH": str(repo / "src")}
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--slots", "1"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        cwd=repo, env=env, text=True,
    )
    try:
        banner = proc.stdout.readline()
        assert "listening on http://" in banner
        base = banner.split("listening on ")[1].split()[0]
        status, body = _json(f"{base}/healthz")
        assert status == 200 and body["ok"] is True
        status, job = _json(f"{base}/jobs", "POST", GOLDEN_REQUEST)
        assert status == 201
        deadline = time.monotonic() + WAIT
        state = None
        while time.monotonic() < deadline:
            _, payload = _json(f"{base}/jobs/{job['id']}")
            state = payload["state"]
            if state == "DONE":
                break
            time.sleep(0.05)
        assert state == "DONE"
        _, result = _json(f"{base}/jobs/{job['id']}/result")
        assert result["signature"] == GOLDEN_SIGNATURE
    finally:
        proc.send_signal(signal.SIGINT)
        try:
            rc = proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise AssertionError("serve did not exit on SIGINT")
    assert rc == 0
