"""RunQueue contracts: admission, dedup, cancellation, clean teardown.

What docs/SERVICE.md promises and the service relies on:

* the backlog is bounded — overflow is a typed ``QueueFullError``;
* admission is FIFO-with-priority and budgeted against worker slots and
  a :class:`~repro.machine.memory.NodeMemory` ledger;
* identical in-flight submissions run the engine **once** (single-flight
  coalescing + result cache), every submitter getting bit-identical
  results — pinned here as a hypothesis property;
* shutdown cancels still-QUEUED jobs with the typed
  :class:`~repro.errors.JobCancelledError` instead of hanging (the PR's
  pinned fix), and a ≥16-job mixed stress run over 2 slots terminates
  every job and leaks no shared-memory segments.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, QueueFullError, ServiceError
from repro.runtime.executor import active_shm_segments
from repro.service import JobRequest, JobState, RunQueue

WAIT = 120.0  # generous terminal-wait bound; loaded CI boxes are slow


def _drain(queue, jobs):
    for job in jobs:
        assert job.wait(WAIT), f"{job.id} stuck in {job.state}"


# -- lifecycle ---------------------------------------------------------------

def test_submit_runs_to_done_with_full_lifecycle_events():
    with RunQueue(slots=1) as q:
        job = q.submit(JobRequest(seed=21))
        assert job.wait(WAIT)
        assert job.state == JobState.DONE and job.error is None
        states = [e["state"] for e in job.events.snapshot()
                  if e["event"] == "state"]
        assert states == [JobState.QUEUED, JobState.ADMITTED,
                          JobState.RUNNING, JobState.DONE]
        assert job.result.signature()
        assert q.admission_order == [job.id]


def test_failed_job_captures_typed_engine_error():
    with RunQueue(slots=1) as q:
        # kill without redistribute: the engine raises RankFailureError
        # (ecoli30x@2n/4c runs past t=1.0 — pinned by test_faults)
        job = q.submit(JobRequest(workload="ecoli30x", seed=0,
                                  cores_per_node=4, faults="kill=r1@1"))
        assert job.wait(WAIT)
        assert job.state == JobState.FAILED
        assert job.error["type"] == "RankFailureError"
        assert "rank 1" in job.error["message"]
        assert q.stats()["failed"] == 1


def test_auto_engine_jobs_carry_the_plan():
    with RunQueue(slots=1) as q:
        job = q.submit(JobRequest(seed=23, engine="auto"))
        assert job.wait(WAIT)
        assert job.state == JobState.DONE
        assert "plan" in job.result.details


def test_cache_hit_completes_instantly_with_identical_result():
    with RunQueue(slots=1) as q:
        req = JobRequest(seed=24)
        first = q.submit(req)
        assert first.wait(WAIT) and first.state == JobState.DONE
        second = q.submit(req)
        assert second.wait(5.0)  # no engine run: effectively instant
        assert second.cache_hit and second.cache_source == "cache"
        assert second.result is first.result
        assert second.result.signature() == first.result.signature()
        assert q.executions(req.cache_key()) == 1
        # cache-equivalent knobs (sharding) also hit
        third = q.submit(JobRequest(seed=24, shard_tasks=50,
                                    max_resident_shards=2))
        assert third.wait(5.0) and third.cache_hit


# -- admission control -------------------------------------------------------

def test_backlog_overflow_is_a_typed_rejection():
    q = RunQueue(slots=1, backlog=2, start=False)
    try:
        q.submit(JobRequest(seed=30))
        q.submit(JobRequest(seed=31))
        with pytest.raises(QueueFullError, match="backlog full"):
            q.submit(JobRequest(seed=32))
        assert q.stats()["rejected"] == 1
        # coalescing does not consume backlog: a duplicate still lands
        dup = q.submit(JobRequest(seed=30))
        assert dup.coalesced_into is not None
    finally:
        q.shutdown()


def test_never_admittable_requests_fail_at_submit():
    q = RunQueue(start=False, memory_bytes=1024.0)
    with pytest.raises(ConfigurationError, match="never"):
        q.submit(JobRequest(seed=33))
    q.shutdown()
    q2 = RunQueue(start=False, total_workers=1)
    with pytest.raises(ConfigurationError, match="pool workers"):
        q2.submit(JobRequest(engine="bsp-micro", kernel="real",
                             config={"backend": "process", "workers": 4}))
    q2.shutdown()


def test_admission_order_respects_priority_then_fifo():
    q = RunQueue(slots=1, start=False)
    low_a = q.submit(JobRequest(seed=40, priority=0))
    high = q.submit(JobRequest(seed=41, priority=5))
    low_b = q.submit(JobRequest(seed=42, priority=0))
    mid = q.submit(JobRequest(seed=43, priority=2))
    q.start()
    try:
        _drain(q, [low_a, high, low_b, mid])
        assert q.admission_order == [high.id, mid.id, low_a.id, low_b.id]
    finally:
        q.shutdown()


def test_memory_ledger_balances_after_the_queue_drains():
    with RunQueue(slots=2) as q:
        jobs = [q.submit(JobRequest(seed=50 + i)) for i in range(4)]
        _drain(q, jobs)
        stats = q.stats()
        assert stats["memory_used"] == 0.0
        assert stats["memory_high_water"] > 0.0
        assert stats["workers_free"] == stats["workers_total"]
        assert stats["executed"] == 4


def test_submit_after_shutdown_is_refused():
    q = RunQueue(slots=1)
    q.shutdown()
    with pytest.raises(ServiceError, match="shut down"):
        q.submit(JobRequest(seed=60))


# -- cancellation ------------------------------------------------------------

def test_cancel_queued_job_is_immediate_and_typed():
    q = RunQueue(slots=1, start=False)
    job = q.submit(JobRequest(seed=70))
    cancelled = q.cancel(job.id)
    assert cancelled is job and job.state == JobState.CANCELLED
    assert job.error["type"] == "JobCancelledError"
    q.shutdown()


def test_cancel_mid_run_aborts_via_the_tracer():
    with RunQueue(slots=1) as q:
        job = q.submit(JobRequest(seed=71))
        # flag before the engine's first trace event: the job is admitted
        # normally, starts RUNNING, then aborts at its first record call
        job.request_cancel()
        assert job.wait(WAIT)
        assert job.state == JobState.CANCELLED
        assert job.error["type"] == "JobCancelledError"
        assert "cancelled while running" in job.error["message"]
        # an aborted run must not poison the cache
        retry = q.submit(JobRequest(seed=71))
        assert retry.wait(WAIT)
        assert retry.state == JobState.DONE and not retry.cache_hit


def test_cancelling_a_queued_leader_promotes_its_follower():
    q = RunQueue(slots=1, start=False)
    leader = q.submit(JobRequest(seed=72))
    follower = q.submit(JobRequest(seed=72))
    assert follower.coalesced_into == leader.id
    q.cancel(leader.id)
    assert leader.state == JobState.CANCELLED
    assert follower.state == JobState.QUEUED
    assert follower.coalesced_into is None  # promoted to fresh leader
    q.start()
    try:
        assert follower.wait(WAIT)
        assert follower.state == JobState.DONE and not follower.cache_hit
    finally:
        q.shutdown()


def test_cancelling_a_follower_leaves_the_leader_running():
    q = RunQueue(slots=1, start=False)
    leader = q.submit(JobRequest(seed=73))
    follower = q.submit(JobRequest(seed=73))
    q.cancel(follower.id)
    assert follower.state == JobState.CANCELLED
    assert leader.state == JobState.QUEUED
    q.start()
    try:
        assert leader.wait(WAIT) and leader.state == JobState.DONE
        assert q.executions(JobRequest(seed=73).cache_key()) == 1
    finally:
        q.shutdown()


def test_cancel_unknown_job_raises():
    with RunQueue(slots=1) as q:
        with pytest.raises(ConfigurationError, match="unknown job"):
            q.cancel("job-999999")


# -- shutdown (the pinned fix) -----------------------------------------------

def test_shutdown_cancels_queued_jobs_with_typed_error_not_a_hang():
    """The PR's pinned regression: jobs still QUEUED at shutdown must be
    moved to CANCELLED with JobCancelledError — a client blocked in
    ``wait()`` (or streaming events) unblocks instead of hanging."""
    q = RunQueue(slots=1, start=False)  # nothing ever admits
    jobs = [q.submit(JobRequest(seed=80 + i)) for i in range(3)]
    follower = q.submit(JobRequest(seed=80))  # coalesced onto jobs[0]

    waiter_done = threading.Event()

    def waiter():
        jobs[0].wait(WAIT)
        waiter_done.set()

    threading.Thread(target=waiter, daemon=True).start()
    q.shutdown()  # must return promptly, not hang on the backlog
    assert waiter_done.wait(10.0), "client still blocked after shutdown"
    for job in (*jobs, follower):
        assert job.state == JobState.CANCELLED
        assert job.error["type"] == "JobCancelledError"
        assert "shut down" in job.error["message"]
        assert job.events.closed
    assert q.stats()["cancelled"] == 4
    q.shutdown()  # idempotent


# -- concurrency stress ------------------------------------------------------

def test_stress_sixteen_mixed_jobs_over_two_slots():
    """≥16 mixed jobs (micro/macro, faulty/clean, model/real kernels,
    mixed priorities) over a 2-slot queue: every job terminates, the
    admission order respects priority, and no shared-memory segment
    survives."""
    baseline = active_shm_segments()
    requests = []
    for i in range(4):  # clean macro spread
        requests.append(JobRequest(workload="ecoli30x", seed=100 + i,
                                   engine=("bsp", "async", "hybrid",
                                           "bsp")[i], priority=i % 3))
    for i in range(4):  # micro engines, model kernel
        requests.append(JobRequest(seed=110 + i,
                                   engine=("bsp-micro", "async-micro",
                                           "bsp-micro", "async-micro")[i],
                                   priority=(3 - i) % 3))
    for i in range(2):  # real kernel over the process pool (shm oracle)
        requests.append(JobRequest(seed=120 + i, engine="bsp-micro",
                                   kernel="real",
                                   config={"backend": "process",
                                           "workers": 2}, priority=1))
    for i in range(3):  # fault-injected but recoverable
        requests.append(JobRequest(seed=130 + i, engine="async",
                                   faults="drop=0.05,straggle=2@r1:0:1",
                                   fault_seed=i, priority=i))
    requests.append(JobRequest(workload="ecoli30x", seed=0,
                               cores_per_node=4,
                               faults="kill=r1@1"))  # will FAIL
    requests.append(JobRequest(seed=141, engine="auto", priority=2))
    requests.append(JobRequest(workload="ecoli30x", seed=142,
                               engine="hybrid", priority=0))
    assert len(requests) == 16
    assert len({r.cache_key() for r in requests}) == 16  # all distinct

    # total_workers=4 keeps the real-kernel pool jobs admittable on
    # single-core CI boxes; with 2 slots at most 2x2 workers are held
    q = RunQueue(slots=2, start=False, total_workers=4)
    jobs = [q.submit(r) for r in requests]
    q.start()
    try:
        _drain(q, jobs)
        terminal = {j.state for j in jobs}
        assert terminal <= {JobState.DONE, JobState.FAILED}
        failed = [j for j in jobs if j.state == JobState.FAILED]
        assert [j.request.faults for j in failed] == ["kill=r1@1"]
        assert failed[0].error["type"] == "RankFailureError"
        # everything was admitted exactly once, highest priority first
        assert sorted(q.admission_order) == sorted(j.id for j in jobs)
        admitted_prio = [q.get(i).priority for i in q.admission_order]
        assert admitted_prio == sorted(admitted_prio, reverse=True)
        stats = q.stats()
        assert stats["executed"] + stats["failed"] == 16
        assert stats["memory_used"] == 0.0
        assert stats["workers_free"] == stats["workers_total"]
    finally:
        q.shutdown()
    assert active_shm_segments() == baseline


# -- the dedup property ------------------------------------------------------

@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(n=st.integers(min_value=2, max_value=6),
       seed=st.integers(min_value=0, max_value=10_000))
def test_property_concurrent_identical_submissions_run_once(n, seed):
    """N concurrent identical submissions yield exactly one engine
    execution and N bit-identical results — whether they coalesce onto
    the in-flight leader or land as cache hits."""
    req = JobRequest(seed=seed)
    with RunQueue(slots=2) as q:
        barrier = threading.Barrier(n)
        jobs, errors = [None] * n, []

        def submit(i):
            barrier.wait()
            try:
                jobs[i] = q.submit(req)
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)
        assert not errors
        _drain(q, jobs)
        assert q.executions(req.cache_key()) == 1
        signatures = {j.result.signature() for j in jobs}
        assert len(signatures) == 1
        fresh = [j for j in jobs if not j.cache_hit]
        assert len(fresh) == 1  # exactly one job actually ran
        assert {j.cache_source for j in jobs if j.cache_hit} <= {
            "cache", "coalesced"
        }
