"""The ``--faults`` spec mini-grammar.

A spec is a comma-separated list of clauses::

    drop=P                 drop each RPC response with probability P
    delay=P:D              delay a response by duration D with probability P
    dup=P                  deliver a response twice with probability P
    xchg_drop=P            a BSP exchange round attempt fails with prob. P
    degrade=F@T0:T1        link bandwidth scaled by F in [T0, T1)   (F in (0,1])
    lag=L@T0:T1            message latency scaled by L in [T0, T1)  (L >= 1)
    straggle=F@rR:T0:T1    rank R busy time dilated by F in [T0, T1)
    kill=rR@T              rank R dies permanently at time T
    redistribute           survivors absorb a dead rank's remaining work
    timeout=D              RPC retransmission timeout
    retries=N              max RPC retransmissions before RpcTimeoutError
    backoff=D              base retry backoff (doubles per attempt)
    jitter=F               +/- fraction of seeded jitter on each backoff

Durations accept ``s``/``ms``/``us`` suffixes (default seconds); ``degrade``,
``lag``, ``straggle`` and ``kill`` clauses may repeat.  Errors raise
:class:`repro.errors.ConfigurationError` with the offending clause named —
the CLI turns that into a clean exit-code-2 message, never a traceback.

Example::

    --faults "drop=0.02,delay=0.05:2ms,degrade=0.5@10:20,kill=r3@30,redistribute"
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.machine.degradation import LinkWindow, RankKill, StraggleWindow
from repro.utils.units import MS, US

__all__ = ["parse_fault_spec"]

_KNOWN_KEYS = (
    "drop", "delay", "dup", "xchg_drop", "degrade", "lag", "straggle",
    "kill", "redistribute", "timeout", "retries", "backoff", "jitter",
)


def _seconds(text: str, clause: str) -> float:
    """Parse a duration with an optional s/ms/us suffix."""
    t = text.strip()
    scale = 1.0
    for suffix, s in (("us", US), ("ms", MS), ("s", 1.0)):
        if t.endswith(suffix):
            t = t[: -len(suffix)]
            scale = s
            break
    try:
        value = float(t)
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause!r}: {text!r} is not a duration "
            f"(use e.g. 0.5, 2ms, 30us)"
        ) from None
    return value * scale


def _number(text: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause!r}: {text!r} is not a number"
        ) from None


def _rank(text: str, clause: str) -> int:
    t = text.strip()
    if not t.startswith("r"):
        raise ConfigurationError(
            f"fault spec clause {clause!r}: expected a rank like 'r3', "
            f"got {text!r}"
        )
    try:
        return int(t[1:])
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause!r}: {text!r} is not a rank"
        ) from None


def _split(text: str, sep: str, n: int, clause: str, what: str) -> list[str]:
    parts = text.split(sep)
    if len(parts) != n:
        raise ConfigurationError(
            f"fault spec clause {clause!r}: expected {what}"
        )
    return parts


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``--faults`` spec string into a validated :class:`FaultPlan`."""
    kwargs: dict = {}
    links: list[LinkWindow] = []
    stragglers: list[StraggleWindow] = []
    kills: list[RankKill] = []

    if not spec.strip():
        raise ConfigurationError(
            "empty fault spec; expected comma-separated clauses like "
            "'drop=0.02,kill=r3@30' (known keys: "
            f"{', '.join(_KNOWN_KEYS)})"
        )

    for raw in spec.split(","):
        clause = raw.strip()
        if not clause:
            continue
        key, _, value = clause.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in _KNOWN_KEYS:
            raise ConfigurationError(
                f"unknown fault spec key {key!r} in clause {clause!r}; "
                f"known keys: {', '.join(_KNOWN_KEYS)}"
            )
        if key == "redistribute":
            if value:
                raise ConfigurationError(
                    f"fault spec clause {clause!r}: 'redistribute' takes "
                    f"no value"
                )
            kwargs["redistribute"] = True
            continue
        if not value:
            raise ConfigurationError(
                f"fault spec clause {clause!r}: {key!r} needs a value"
            )
        if key == "drop":
            kwargs["drop_prob"] = _number(value, clause)
        elif key == "dup":
            kwargs["dup_prob"] = _number(value, clause)
        elif key == "xchg_drop":
            kwargs["exchange_drop_prob"] = _number(value, clause)
        elif key == "delay":
            prob, dur = _split(value, ":", 2, clause, "delay=P:D (e.g. 0.05:2ms)")
            kwargs["delay_prob"] = _number(prob, clause)
            kwargs["delay_seconds"] = _seconds(dur, clause)
        elif key in ("degrade", "lag"):
            factor, _, window = value.partition("@")
            t0, t1 = _split(window, ":", 2, clause,
                            f"{key}=F@T0:T1 (e.g. {key}=0.5@10:20)")
            f = _number(factor, clause)
            links.append(
                LinkWindow(
                    start=_seconds(t0, clause), end=_seconds(t1, clause),
                    bandwidth_factor=f if key == "degrade" else 1.0,
                    latency_factor=f if key == "lag" else 1.0,
                )
            )
        elif key == "straggle":
            factor, _, window = value.partition("@")
            rank_s, t0, t1 = _split(window, ":", 3, clause,
                                    "straggle=F@rR:T0:T1 (e.g. 3@r2:5:15)")
            stragglers.append(
                StraggleWindow(
                    rank=_rank(rank_s, clause),
                    start=_seconds(t0, clause), end=_seconds(t1, clause),
                    factor=_number(factor, clause),
                )
            )
        elif key == "kill":
            rank_s, _, when = value.partition("@")
            if not when:
                raise ConfigurationError(
                    f"fault spec clause {clause!r}: expected kill=rR@T "
                    f"(e.g. kill=r3@30)"
                )
            kills.append(
                RankKill(rank=_rank(rank_s, clause),
                         time=_seconds(when, clause))
            )
        elif key == "timeout":
            kwargs["rpc_timeout"] = _seconds(value, clause)
        elif key == "retries":
            n = _number(value, clause)
            if n != int(n):
                raise ConfigurationError(
                    f"fault spec clause {clause!r}: retries must be an integer"
                )
            kwargs["rpc_max_retries"] = int(n)
        elif key == "backoff":
            kwargs["rpc_backoff"] = _seconds(value, clause)
        elif key == "jitter":
            kwargs["rpc_backoff_jitter"] = _number(value, clause)

    return FaultPlan(
        links=tuple(links), stragglers=tuple(stragglers), kills=tuple(kills),
        source=spec.strip(), **kwargs,
    )
