"""Decorator-driven engine registry: the extension point of the engine layer.

The paper's method is running *interchangeable* parallelization strategies
over the same fixed inputs (§3), and §5 explicitly anticipates further
variants.  The registry makes "add a strategy" a one-file change: decorate
the engine class with :func:`register_engine` and import the module from
:mod:`repro.engines` — the driver API (``repro.core.api.ENGINES``,
``run_alignment``, ``compare_engines``, ``scaling_sweep``) and the CLI's
``--approach`` choices all derive their engine sets from here, with zero
edits elsewhere.  ``docs/ARCHITECTURE.md`` walks through adding one.

Engines come in two kinds:

* ``macro`` — analytic per-rank phase models consuming a
  :class:`~repro.pipeline.workload.WorkloadAssignment` (scales to 32K
  ranks);
* ``micro`` — message-level SPMD programs consuming a
  :class:`~repro.pipeline.workload.ConcreteWorkload` (validation and real
  alignment output).

Both expose ``run(...) -> RunResult`` and a ``config: EngineConfig`` field;
the driver dispatches on :attr:`EngineInfo.kind`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "EngineInfo",
    "register_engine",
    "get_engine",
    "available_engines",
    "create_engine",
]

MACRO = "macro"
MICRO = "micro"

_REGISTRY: dict[str, "EngineInfo"] = {}


@dataclass(frozen=True)
class EngineInfo:
    """One registered parallelization strategy."""

    name: str
    factory: type
    #: ``"macro"`` (assignment-driven analytic model) or ``"micro"``
    #: (message-level SPMD program over a concrete workload)
    kind: str
    description: str = ""

    @property
    def is_micro(self) -> bool:
        """Whether the engine executes concrete workloads (and so can run
        the real kernel behind a compute backend, docs/PARALLEL.md)."""
        return self.kind == MICRO


def register_engine(name: str, *, kind: str = MACRO, description: str = ""):
    """Class decorator adding an engine to the registry under ``name``.

    Names are unique: re-registering an existing name raises, so a typo'd
    copy-paste cannot silently shadow a built-in engine.
    """
    if kind not in (MACRO, MICRO):
        raise ConfigurationError(
            f"engine kind must be 'macro' or 'micro', got {kind!r}"
        )

    def deco(cls):
        if name in _REGISTRY:
            raise ConfigurationError(
                f"engine {name!r} is already registered "
                f"(by {_REGISTRY[name].factory.__qualname__})"
            )
        _REGISTRY[name] = EngineInfo(
            name=name, factory=cls, kind=kind, description=description
        )
        return cls

    return deco


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine, with a helpful error on unknown names."""
    info = _REGISTRY.get(name)
    if info is None:
        raise ConfigurationError(
            f"unknown approach {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return info


def available_engines(kind: str | None = None) -> tuple[str, ...]:
    """Registered engine names (registration order), optionally by kind."""
    return tuple(
        name for name, info in _REGISTRY.items()
        if kind is None or info.kind == kind
    )


def create_engine(name: str, config=None):
    """Instantiate a registered engine with the given config."""
    from repro.engines.base import EngineConfig

    info = get_engine(name)
    return info.factory(config=config if config is not None else EngineConfig())
