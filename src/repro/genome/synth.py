"""Synthetic genome and long-read sequencer simulation.

The paper evaluates on real SRA datasets (Table 1) that are unavailable
offline, so we substitute a simulator that reproduces the properties the
study actually exercises (DESIGN.md §2):

* a reference genome of configurable size with tandem/interspersed repeats
  (repeats are what make k-mer filtering necessary — they create
  high-frequency k-mers and false-positive overlap candidates);
* reads sampled at a target *coverage* (depth) with lognormal lengths in the
  paper's :math:`[10^3, 10^5]` range (scaled down for pure-Python runs);
* a sequencer error model applying insertions, deletions, substitutions at
  configurable rates (paper: 5–35% historically), plus ``N`` emission for
  low-confidence calls, which makes the alphabet 5 characters;
* optional reverse-strand sampling, since overlap detection must handle both
  orientations (Figure 2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.genome import alphabet
from repro.genome.sequence import Read, ReadSet

__all__ = [
    "GenomeSimulator",
    "ReadLengthModel",
    "ErrorModel",
    "LongReadSequencer",
    "SequencingRun",
]


@dataclass
class GenomeSimulator:
    """Generate a synthetic reference genome.

    Parameters
    ----------
    size : genome length in base pairs.
    gc_content : fraction of G+C bases.
    repeat_fraction : fraction of the genome covered by copies of repeat
        elements (copied from earlier positions, with light mutation), giving
        realistic repetitive k-mer spectra.
    repeat_length : mean length of one repeat element.
    """

    size: int
    gc_content: float = 0.5
    repeat_fraction: float = 0.1
    repeat_length: int = 500

    def generate(self, rng: np.random.Generator) -> np.ndarray:
        if self.size <= 0:
            raise ConfigurationError("genome size must be positive")
        genome = alphabet.random_sequence(self.size, rng, self.gc_content)
        if self.repeat_fraction > 0 and self.size > 4 * self.repeat_length:
            self._plant_repeats(genome, rng)
        return genome

    def _plant_repeats(self, genome: np.ndarray, rng: np.random.Generator) -> None:
        """Overwrite random windows with mutated copies of earlier windows."""
        target = int(self.repeat_fraction * self.size)
        planted = 0
        while planted < target:
            length = max(
                50, int(rng.normal(self.repeat_length, self.repeat_length / 4))
            )
            length = min(length, self.size // 4)
            src = int(rng.integers(0, self.size - length))
            dst = int(rng.integers(0, self.size - length))
            copy = genome[src: src + length].copy()
            # ~2% divergence between repeat copies.
            nmut = rng.binomial(length, 0.02)
            if nmut:
                pos = rng.integers(0, length, nmut)
                copy[pos] = rng.integers(0, 4, nmut).astype(np.uint8)
            genome[dst: dst + length] = copy
            planted += length


@dataclass
class ReadLengthModel:
    """Lognormal read-length distribution clipped to ``[min_len, max_len]``.

    Defaults give a mean around ``mean_length`` with a heavy right tail, the
    shape long-read sequencers produce; the paper stresses that this length
    variability drives both computation and communication imbalance.
    """

    mean_length: float = 3000.0
    sigma: float = 0.35
    min_len: int = 200
    max_len: int = 60_000

    def __post_init__(self) -> None:
        if self.mean_length <= 0 or self.min_len <= 0:
            raise ConfigurationError("lengths must be positive")
        if self.min_len > self.max_len:
            raise ConfigurationError("min_len > max_len")

    @property
    def mu(self) -> float:
        """Underlying normal mean so that E[length] == mean_length."""
        return float(np.log(self.mean_length) - 0.5 * self.sigma**2)

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        lengths = rng.lognormal(self.mu, self.sigma, size=n)
        return np.clip(lengths, self.min_len, self.max_len).astype(np.int64)


@dataclass
class ErrorModel:
    """Long-read sequencer error model.

    ``error_rate`` is the total per-base error probability, split between
    insertions, deletions, and substitutions by the given mix (defaults match
    the indel-dominated profile of raw PacBio/ONT reads). ``n_rate`` is the
    probability of emitting ``N`` on an otherwise-correct base (low-confidence
    calls, paper §2).
    """

    error_rate: float = 0.15
    insertion_frac: float = 0.4
    deletion_frac: float = 0.35
    substitution_frac: float = 0.25
    n_rate: float = 0.002

    def __post_init__(self) -> None:
        total = self.insertion_frac + self.deletion_frac + self.substitution_frac
        if not np.isclose(total, 1.0):
            raise ConfigurationError("error type fractions must sum to 1")
        if not 0 <= self.error_rate < 1:
            raise ConfigurationError("error_rate must be in [0,1)")

    def apply(self, codes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return a corrupted copy of ``codes``.

        Vectorized: draws one edit-type label per template base, then builds
        the output with numpy repeats (deletion -> 0 copies, insertion -> the
        base plus one random base).
        """
        n = codes.size
        if n == 0 or self.error_rate == 0:
            out = codes.copy()
        else:
            p_ins = self.error_rate * self.insertion_frac
            p_del = self.error_rate * self.deletion_frac
            p_sub = self.error_rate * self.substitution_frac
            u = rng.random(n)
            is_del = u < p_del
            is_sub = (u >= p_del) & (u < p_del + p_sub)
            is_ins = (u >= p_del + p_sub) & (u < p_del + p_sub + p_ins)

            base = codes.copy()
            nsub = int(is_sub.sum())
            if nsub:
                # substitute with one of the three *other* bases
                shift = rng.integers(1, 4, nsub).astype(np.uint8)
                base[is_sub] = (base[is_sub] + shift) % 4

            repeats = np.ones(n, dtype=np.int64)
            repeats[is_del] = 0
            repeats[is_ins] = 2
            out = np.repeat(base, repeats)
            if is_ins.any():
                # the second copy of each inserted position becomes random
                ins_out_pos = np.cumsum(repeats)[is_ins] - 1
                out[ins_out_pos] = rng.integers(0, 4, ins_out_pos.size).astype(
                    np.uint8
                )
        if self.n_rate > 0 and out.size:
            nmask = rng.random(out.size) < self.n_rate
            out[nmask] = alphabet.N
        return out


@dataclass
class SequencingRun:
    """Output of the sequencer simulator: reads plus ground truth."""

    reads: ReadSet
    genome: np.ndarray
    coverage: float
    error_model: ErrorModel

    @property
    def depth_achieved(self) -> float:
        """Actual bases-of-reads / genome-size coverage."""
        return self.reads.total_bases / max(1, self.genome.size)


@dataclass
class LongReadSequencer:
    """Sample error-laden long reads from a genome at a target coverage."""

    length_model: ReadLengthModel = field(default_factory=ReadLengthModel)
    error_model: ErrorModel = field(default_factory=ErrorModel)
    both_strands: bool = True

    def sequence(
        self,
        genome: np.ndarray,
        coverage: float,
        rng: np.random.Generator,
    ) -> SequencingRun:
        """Draw reads until cumulative template bases reach ``coverage``×genome.

        Reads are sampled uniformly along the genome (clipped at the end —
        a linear chromosome, so terminal coverage tapers, as in real data).
        """
        if coverage <= 0:
            raise ConfigurationError("coverage must be positive")
        gsize = int(genome.size)
        target_bases = int(coverage * gsize)
        # Draw an estimate then trim/extend to hit the target closely.
        est = max(1, int(target_bases / self.length_model.mean_length))
        lengths = self.length_model.sample(int(est * 1.3) + 8, rng)
        cum = np.cumsum(lengths)
        count = int(np.searchsorted(cum, target_bases) + 1)
        lengths = lengths[:count]
        lengths = np.minimum(lengths, gsize)

        starts = rng.integers(0, np.maximum(1, gsize - lengths + 1))
        strands = (
            rng.choice(np.array([1, -1], dtype=np.int8), size=count)
            if self.both_strands
            else np.ones(count, dtype=np.int8)
        )

        reads = []
        for i in range(count):
            s, ln = int(starts[i]), int(lengths[i])
            template = genome[s: s + ln]
            if strands[i] < 0:
                template = alphabet.reverse_complement(template)
            observed = self.error_model.apply(template, rng)
            reads.append(
                Read(
                    id=i,
                    codes=observed,
                    name=f"read_{i}",
                    origin=s,
                    origin_end=s + ln,
                    strand=int(strands[i]),
                )
            )
        return SequencingRun(
            reads=ReadSet.from_reads(reads),
            genome=genome,
            coverage=coverage,
            error_model=self.error_model,
        )
