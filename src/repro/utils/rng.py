"""Deterministic random-number stream management.

Every stochastic component of the library draws from a stream derived from a
single root seed via :class:`numpy.random.SeedSequence` spawning, so that

* the whole reproduction is bit-reproducible from one seed, and
* independent components (genome synthesis, error model, per-block task
  attributes, OS-noise model...) never share a stream, which keeps results
  stable when one component changes how many numbers it draws.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["RngFactory", "spawn_rng"]


def spawn_rng(seed: int | np.random.SeedSequence, *key: int) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for a namespaced child stream.

    ``key`` is a tuple of integers identifying the consumer (for example
    ``(BLOCK_DOMAIN, block_id)``).  The same ``(seed, key)`` always yields the
    same stream, independent of any other stream the program creates.
    """
    if isinstance(seed, np.random.SeedSequence):
        root = seed
    else:
        root = np.random.SeedSequence(seed)
    child = np.random.SeedSequence(
        entropy=root.entropy,
        spawn_key=tuple(root.spawn_key) + tuple(int(k) for k in key),
    )
    return np.random.Generator(np.random.PCG64(child))


class RngFactory:
    """Factory handing out independent named random streams from one seed.

    Examples
    --------
    >>> f = RngFactory(1234)
    >>> g1 = f.stream("genome")
    >>> g2 = f.stream("errors", 7)
    >>> f2 = RngFactory(1234)
    >>> bool(np.all(f2.stream("genome").integers(0, 100, 5)
    ...             == g1.integers(0, 100, 5)))
    True
    """

    #: stable mapping from well-known stream names to integer domains
    _DOMAINS = {
        "genome": 1,
        "read-sampler": 2,
        "error-model": 3,
        "workload-block": 4,
        "noise": 5,
        "partition": 6,
        "network": 7,
        "misc": 8,
    }

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)

    def stream(self, name: str, *subkeys: int) -> np.random.Generator:
        """Return the generator for stream ``name`` (+ optional subkeys).

        Unknown names are hashed into a stable integer domain so user code can
        introduce new streams without registering them.
        """
        domain = self._DOMAINS.get(name)
        if domain is None:
            # Stable, platform-independent 31-bit hash of the name.
            domain = 1000 + (sum((i + 1) * ord(c) for i, c in enumerate(name)) % (2**31 - 1000))
        return spawn_rng(self._root, domain, *subkeys)

    def child(self, *key: int) -> "RngFactory":
        """Return a factory whose streams are all namespaced under ``key``."""
        sub = RngFactory(self.seed)
        sub._root = np.random.SeedSequence(
            entropy=self._root.entropy,
            spawn_key=tuple(self._root.spawn_key) + tuple(int(k) for k in key),
        )
        return sub

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngFactory(seed={self.seed})"


def _root_with_spawn_key(seed: int, key: Iterable[int]) -> np.random.SeedSequence:
    return np.random.SeedSequence(entropy=seed, spawn_key=tuple(key))
