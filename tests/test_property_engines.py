"""Property-based tests on engine/workload invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig
from repro.engines.bsp import BSPEngine
from repro.genome.datasets import DatasetSpec
from repro.machine.config import cori_knl
from repro.pipeline.workload import StatisticalWorkload

SLOW = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_wl(n_reads, n_tasks, mean_len, seed):
    spec = DatasetSpec(
        name="prop", species="synthetic",
        n_reads=n_reads, n_tasks=n_tasks,
        coverage=15.0, error_rate=0.1,
        mean_read_length=float(mean_len), length_sigma=0.3,
    )
    return StatisticalWorkload(spec, seed=seed)


@SLOW
@given(
    n_reads=st.integers(min_value=64, max_value=2000),
    n_tasks=st.integers(min_value=200, max_value=20_000),
    mean_len=st.integers(min_value=300, max_value=5000),
    ranks=st.sampled_from([1, 3, 16, 64]),
    seed=st.integers(min_value=0, max_value=10),
)
def test_assignment_invariants(n_reads, n_tasks, mean_len, ranks, seed):
    wl = make_wl(n_reads, n_tasks, mean_len, seed)
    a = wl.assignment(ranks)
    # conservation
    assert int(a.tasks_per_rank.sum()) == n_tasks
    assert int(a.reads_per_rank.sum()) == n_reads
    assert a.partition_bytes.sum() == pytest.approx(wl.read_lengths.sum())
    # requester/server mirror
    assert a.lookups.sum() == pytest.approx(a.incoming_lookups.sum())
    assert a.lookup_bytes.sum() == pytest.approx(a.incoming_bytes.sum())
    # local-pair compute is a subset of total compute
    assert np.all(a.local_pair_seconds <= a.compute_seconds + 1e-12)
    # everything nonnegative
    for arr in (a.compute_seconds, a.lookups, a.lookup_bytes,
                a.incoming_lookups, a.incoming_bytes, a.partition_bytes):
        assert np.all(arr >= 0)


@SLOW
@given(
    n_tasks=st.integers(min_value=500, max_value=20_000),
    nodes=st.sampled_from([1, 2, 4]),
    seed=st.integers(min_value=0, max_value=5),
)
def test_breakdowns_always_tile_wall_time(n_tasks, nodes, seed):
    wl = make_wl(500, n_tasks, 1000, seed)
    machine = cori_knl(nodes, app_cores_per_node=16)
    a = wl.assignment(machine.total_ranks)
    for engine in (BSPEngine(), AsyncEngine()):
        res = engine.run(a, machine)
        res.breakdown.validate()  # raises on violation
        assert res.wall_time > 0
        assert np.all(res.memory_high_water > 0)


@SLOW
@given(seed=st.integers(min_value=0, max_value=20))
def test_async_never_slower_than_serial_sum(seed):
    """Overlap can only help: wall <= compute + comm + overhead + barriers."""
    wl = make_wl(400, 5000, 1500, seed)
    machine = cori_knl(2, app_cores_per_node=8)
    a = wl.assignment(machine.total_ranks)
    res = AsyncEngine(config=EngineConfig(noise_fraction=0.0)).run(a, machine)
    raw = res.details["raw_comm"]
    serial_bound = float(
        (a.compute_seconds + raw).max()
        + res.breakdown.summary("compute_overhead").max
        + 1.0  # barriers and ramp slack
    )
    assert res.wall_time <= serial_bound


@SLOW
@given(
    frac=st.floats(min_value=0.01, max_value=1.0),
    seed=st.integers(min_value=0, max_value=5),
)
def test_bsp_rounds_monotone_in_budget(frac, seed):
    wl = make_wl(800, 8000, 4000, seed)
    machine = cori_knl(2, app_cores_per_node=8)
    a = wl.assignment(machine.total_ranks)
    tight = BSPEngine(config=EngineConfig(exchange_memory_fraction=frac))
    loose = BSPEngine(config=EngineConfig(exchange_memory_fraction=1.0))
    assert tight.num_rounds(machine, a) >= loose.num_rounds(machine, a)
    # and the rounds actually respect the budget
    rounds = tight.num_rounds(machine, a)
    assert (a.recv_bytes.max() / rounds
            <= tight.exchange_budget(machine, a) * (1 + 1e-9))


@SLOW
@given(nodes=st.sampled_from([2, 4, 8]), seed=st.integers(min_value=0, max_value=5))
def test_comm_only_is_a_lower_bound(nodes, seed):
    wl = make_wl(600, 10_000, 2000, seed)
    machine = cori_knl(nodes, app_cores_per_node=8)
    a = wl.assignment(machine.total_ranks)
    for engine_cls in (BSPEngine, AsyncEngine):
        full = engine_cls(config=EngineConfig(noise_fraction=0.0)).run(a, machine)
        comm = engine_cls(
            config=EngineConfig(noise_fraction=0.0).comm_only()
        ).run(a, machine)
        assert comm.wall_time <= full.wall_time + 1e-9
