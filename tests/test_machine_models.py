"""Tests for machine config, network model, memory tracker, noise model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, MemoryLimitError
from repro.machine.config import MachineSpec, NetworkSpec, NodeSpec, cori_knl
from repro.machine.memory import MemoryTracker
from repro.machine.network import NetworkModel
from repro.machine.noise import NoiseModel
from repro.utils.rng import RngFactory
from repro.utils.units import GB, MB


def test_cori_defaults():
    m = cori_knl(4)
    assert m.total_ranks == 256
    assert m.node.total_cores == 68
    assert m.system_isolated
    assert m.app_memory_per_rank == pytest.approx(1.4 * GB)
    assert m.describe().startswith("4 node(s)")


def test_cori_68_cores_not_isolated():
    m = cori_knl(1, app_cores_per_node=68)
    assert not m.system_isolated
    assert m.total_ranks == 68


def test_node_of_rank():
    m = cori_knl(2)
    assert m.node_of_rank(0) == 0
    assert m.node_of_rank(63) == 0
    assert m.node_of_rank(64) == 1


def test_with_nodes():
    m = cori_knl(2).with_nodes(8)
    assert m.nodes == 8 and m.total_ranks == 512


def test_spec_validation():
    with pytest.raises(ConfigurationError):
        MachineSpec(nodes=0)
    with pytest.raises(ConfigurationError):
        MachineSpec(nodes=1, app_cores_per_node=100)
    with pytest.raises(ConfigurationError):
        NodeSpec(total_cores=0)
    with pytest.raises(ConfigurationError):
        NetworkSpec(bisection_taper=0.0)
    with pytest.raises(ConfigurationError):
        NetworkSpec(async_bw_efficiency=1.5)


def test_network_ptp_monotone_in_size():
    net = NetworkModel(cori_knl(2))
    assert net.ptp_time(1000) < net.ptp_time(10_000_000)


def test_network_single_node_uses_intranode_bw():
    one = NetworkModel(cori_knl(1))
    many = NetworkModel(cori_knl(64))
    assert one.schedulable_rank_bw() == pytest.approx(
        one.machine.node.intranode_bw / 64
    )
    assert many.schedulable_rank_bw() <= many.rank_bw


def test_message_size_efficiency_saturates():
    net = NetworkModel(cori_knl(8))
    small = net.message_size_efficiency(1_000)
    big = net.message_size_efficiency(100 * MB)
    assert small < big
    assert big <= net.machine.network.alltoallv_peak_efficiency
    # intranode exchanges bypass the message-size model
    assert NetworkModel(cori_knl(1)).message_size_efficiency(10) == 1.0


def test_barrier_grows_with_ranks():
    assert (NetworkModel(cori_knl(64)).barrier_time()
            > NetworkModel(cori_knl(2)).barrier_time())
    assert NetworkModel(cori_knl(1, app_cores_per_node=1)).barrier_time() == 0.0


def test_alltoallv_skew_makes_collective_slower_than_rank():
    net = NetworkModel(cori_knl(8))
    duration = net.alltoallv_time(100 * MB, 100 * MB, 100)
    personal = net.alltoallv_rank_time(10 * MB, 10 * MB, 100)
    assert personal < duration


def test_rpc_pull_time_regimes():
    net = NetworkModel(cori_knl(8))
    # volume-bound when payload large (full duplex: the larger direction)
    t_vol = net.rpc_pull_time(100, 1 * GB, 100, 0.5 * GB)
    assert t_vol >= 1 * GB / net.async_rank_bw()
    # cpu-bound when many tiny messages
    t_cpu = net.rpc_pull_time(1_000_000, 1.0, 1_000_000, 1.0)
    assert t_cpu > net.rpc_pull_time(10, 1.0, 10, 1.0)
    # empty pull costs nothing
    assert net.rpc_pull_time(0, 0, 0, 0) == 0.0


def test_rpc_overload_regime():
    net = NetworkModel(cori_knl(8))
    threshold = net.machine.network.rpc_overload_threshold
    below = net.rpc_overload_extra(threshold * 0.9)
    above = net.rpc_overload_extra(threshold * 2)
    assert below == 0.0
    assert above > 0.0


def test_memory_tracker_budget_and_high_water():
    m = cori_knl(1, app_cores_per_node=4)
    tracker = MemoryTracker(m)
    tracker.allocate(0, "buf", 100 * MB)
    tracker.allocate(0, "buf2", 50 * MB)
    tracker.free(0, "buf")
    assert tracker.rank_high_water()[0] == pytest.approx(150 * MB)
    assert tracker.max_rank_high_water() == pytest.approx(150 * MB)


def test_memory_tracker_overflow():
    m = cori_knl(1, app_cores_per_node=4)
    tracker = MemoryTracker(m)
    with pytest.raises(MemoryLimitError):
        tracker.allocate(0, "huge", 100 * GB)


def test_memory_tracker_bad_free():
    m = cori_knl(1, app_cores_per_node=4)
    tracker = MemoryTracker(m)
    tracker.allocate(1, "x", 10 * MB)
    with pytest.raises(MemoryLimitError):
        tracker.free(1, "x", 20 * MB)


def test_memory_shared_within_node():
    """Ranks on one node share the node budget."""
    m = cori_knl(1, app_cores_per_node=4)  # node budget = 4 * 1.4 GB
    tracker = MemoryTracker(m)
    tracker.allocate(0, "big", 3 * GB)  # > per-rank, < node budget
    with pytest.raises(MemoryLimitError):
        tracker.allocate(1, "big", 3 * GB)


def test_noise_inactive_when_isolated():
    m = cori_knl(1, app_cores_per_node=64)
    noise = NoiseModel(m, RngFactory(0))
    x = np.ones(64)
    assert np.array_equal(noise.dilate(x, 0), x)


def test_noise_active_and_deterministic():
    m = cori_knl(1, app_cores_per_node=68)
    noise = NoiseModel(m, RngFactory(0), noise_fraction=0.05)
    x = np.ones(68)
    d1 = noise.dilate(x, 0)
    d2 = NoiseModel(m, RngFactory(0), noise_fraction=0.05).dilate(x, 0)
    assert np.array_equal(d1, d2)
    assert np.all(d1 >= 1.0)
    assert d1.max() > 1.0
    # different phases draw different noise
    assert not np.array_equal(d1, noise.dilate(x, 1))


def test_noise_scalar():
    m = cori_knl(1, app_cores_per_node=68)
    noise = NoiseModel(m, RngFactory(0), noise_fraction=0.05)
    v = noise.dilate_scalar(1.0, rank=3, phase_key=0)
    assert v >= 1.0
    assert v == noise.dilate_scalar(1.0, rank=3, phase_key=0)
