"""Message-level SPMD runtime on the discrete-event engine (micro mode).

This package provides the programming-model primitives the paper's two
codes are written against — MPI-style collectives (barrier, allreduce,
irregular alltoallv) and UPC++-style asynchronous RPCs with callbacks,
windows, and a split-phase barrier — executing real data movement between
simulated ranks with modeled timing.  The micro engines in
:mod:`repro.engines.micro` are genuine SPMD generator programs over these
primitives; they validate the macro models and, with the real kernel,
actually compute alignments.
"""

from repro.runtime.queues import SimQueue
from repro.runtime.collectives import Collectives
from repro.runtime.rpc import RpcLayer
from repro.runtime.context import SpmdContext
from repro.runtime.executor import (
    BACKENDS,
    ProcessExecutor,
    SerialExecutor,
    SharedReadStore,
    TaskExecutor,
    active_shm_segments,
    make_task_executor,
)

__all__ = [
    "SimQueue", "Collectives", "RpcLayer", "SpmdContext",
    "BACKENDS", "TaskExecutor", "SerialExecutor", "ProcessExecutor",
    "SharedReadStore", "active_shm_segments", "make_task_executor",
]
