"""Alignment cost model: DP cells -> seconds on one Cori KNL core.

The discrete-event simulation needs per-task compute times without actually
running 87.6M pure-Python alignments.  This module provides

* a **cell rate** for the SeqAn X-drop kernel on a KNL core, calibrated so
  the paper's absolute anchors hold: *E. coli* 30x takes ~1 hour on one KNL
  core (2,270,260 tasks, §4.1) and *E. coli* 100x ~7 hours (24,869,171
  tasks);
* an analytic **cells-per-task estimator** from task geometry (read lengths,
  true-overlap length, X-drop band width, early termination), validated
  against the real numpy kernel on synthetic data in the test suite;
* per-dataset **mean task costs** derived from the anchors, used to scale
  the statistical workloads' cost distributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.units import HOUR, US

__all__ = ["AlignmentCostModel", "KNL_CELL_RATE", "MEAN_TASK_COST"]

#: DP cells per second for the SeqAn X-drop kernel on one KNL core.
#: Chosen with the band model below so that the E. coli anchors hold.
KNL_CELL_RATE = 45.0e6

#: Paper §4.1 absolute anchors: (total single-core seconds, task count).
_ANCHORS = {
    "ecoli30x": (1.0 * HOUR, 2_270_260),
    "ecoli100x": (7.0 * HOUR, 24_869_171),
}

#: Mean per-task alignment cost (seconds, one KNL core) per dataset.
#: E. coli values follow directly from the anchors; Human CCS is
#: extrapolated from its longer (~12.4 kb), more accurate CCS reads, whose
#: X-drop extensions run further before dropping.
MEAN_TASK_COST = {
    "ecoli30x": _ANCHORS["ecoli30x"][0] / _ANCHORS["ecoli30x"][1],    # ~1.59 ms
    "ecoli100x": _ANCHORS["ecoli100x"][0] / _ANCHORS["ecoli100x"][1],  # ~1.01 ms
    "human_ccs": 2.3e-3,
}


@dataclass(frozen=True)
class AlignmentCostModel:
    """Map alignment work to simulated KNL-core seconds.

    Parameters
    ----------
    cell_rate : DP cells/second of the production (SeqAn) kernel.
    x_drop, match_score : kernel parameters; the live antidiagonal window of
        a well-matching extension is ~``x_drop / match_score`` cells wide
        (score must fall X below best, and each off-path step loses at least
        the match reward), so band width grows linearly with X (§4.2 calls
        X out as a cost driver).
    per_task_overhead : data structure traversal + kernel invocation
        overhead per task ("Computation (Overhead)" in Figures 3-4, 13);
        engine-specific values override this (flat arrays vs pointer-based
        containers, §4.6).
    """

    cell_rate: float = KNL_CELL_RATE
    x_drop: int = 15
    match_score: int = 1
    per_task_overhead: float = 8.0 * US

    @property
    def band_width(self) -> float:
        """Approximate live-window width (cells) of an on-track extension.

        The 1.2 factor is an empirical fit against the numpy X-drop kernel
        on synthetic true overlaps at raw-long-read error rates (validated
        in ``tests/test_align_cost.py``); the width scales linearly with
        ``X`` as §4.2 of the paper implies.
        """
        return 1.2 * self.x_drop / self.match_score + 3.0

    def cells_to_seconds(self, cells: float | np.ndarray) -> float | np.ndarray:
        """Pure kernel time for a given number of DP cells."""
        return np.asarray(cells, dtype=np.float64) / self.cell_rate

    def estimate_cells(
        self,
        overlap_len: float | np.ndarray,
        early_terminated: bool | np.ndarray = False,
        false_positive_cells: float = 600.0,
    ) -> np.ndarray:
        """Estimated DP cells for a task.

        True overlaps sweep the band along the overlap: ``band * overlap``
        cells (both directions combined — ``overlap_len`` is the total
        aligned length).  False positives die after a few antidiagonals:
        a small constant (``false_positive_cells``).
        """
        overlap_len = np.asarray(overlap_len, dtype=np.float64)
        true_cells = self.band_width * overlap_len
        return np.where(np.asarray(early_terminated, dtype=bool),
                        false_positive_cells, true_cells)

    def task_seconds(
        self,
        overlap_len: float | np.ndarray,
        early_terminated: bool | np.ndarray = False,
    ) -> np.ndarray:
        """Total simulated seconds for tasks (kernel only, no overhead)."""
        cells = self.estimate_cells(overlap_len, early_terminated)
        return np.asarray(self.cells_to_seconds(cells), dtype=np.float64)

    def mean_task_cost(self, dataset: str) -> float:
        """Calibrated mean per-task cost for a named dataset."""
        return MEAN_TASK_COST[dataset]

    def implied_mean_overlap(self, dataset: str) -> float:
        """Overlap length whose band sweep costs the dataset's mean task.

        Used by the statistical workloads to anchor their overlap-length
        distributions to the single-core runtime anchors.
        """
        mean_cost = self.mean_task_cost(dataset)
        return mean_cost * self.cell_rate / self.band_width
