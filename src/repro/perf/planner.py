"""Cost-model planner: predict the winning engine, then run only it.

The machine model already prices every phase of every engine analytically
— that is how the macro engines work at all.  This module *inverts* it:
instead of running the full engine × knob grid through
:func:`repro.core.api.scaling_sweep` to find the winner (the slowest path
in the repo), :func:`predict` evaluates each engine's registered cost
hook (:func:`repro.engines.registry.register_cost_hook`) on the workload
assignment, and :func:`plan` returns the candidate grid ranked by
predicted wall clock.  ``run_alignment(..., approach="auto")`` executes
the top-ranked plan and records predicted-vs-actual in
``RunResult.details["plan"]``; the ``repro plan`` CLI prints the table
without running anything.

On the default (noise-isolated) Cori configuration the hooks replay the
engines' float operations in the same association order, so predictions
are *bit-equal* to the fault-free measured walls and top-1 regret is
zero; ``benchmarks/bench_planner.py`` measures the regret empirically
and ``docs/PLANNER.md`` documents the methodology.

The knob grid covers the knobs that change an engine's predicted wall:
BSP round sizing (``exchange_memory_fraction``), async and hybrid
aggregation.  The execution ``backend`` is deliberately *not* swept —
the determinism contract pins every backend to identical simulated
results, so it cannot change the predicted wall; the planner records the
caller's backend as a pass-through knob instead.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.engines.base import EngineConfig
from repro.engines.registry import (
    MACRO,
    available_engines,
    get_cost_hook,
    get_engine,
)
from repro.errors import ConfigurationError
from repro.machine.config import MachineSpec
from repro.pipeline.workload import WorkloadAssignment

__all__ = [
    "DEFAULT_KNOB_GRID",
    "WorkloadStats",
    "PlanPoint",
    "knob_grid_points",
    "predict",
    "plan",
]

#: engine -> {knob name -> candidate values}.  Only knobs that feed the
#: engine's cost hook belong here; the grid is the cross product per
#: engine (engines ignore other engines' knobs).
DEFAULT_KNOB_GRID: dict[str, dict[str, tuple]] = {
    "bsp": {"exchange_memory_fraction": (0.1, 0.25, 0.4, 0.8)},
    "async": {"async_aggregation": (1, 4, 16)},
    "hybrid": {"hybrid_aggregation": (1, 4, 16, 64)},
}


@dataclass(frozen=True)
class WorkloadStats:
    """The workload summary the planner predicts from.

    Carries the rendered per-rank assignment (the cost hooks are exact
    analytic replays, so they want the real per-rank arrays, not just
    scalar aggregates) plus the scalar headline numbers that the plan
    table and ``details["plan"]`` report.
    """

    name: str
    num_ranks: int
    assignment: WorkloadAssignment = field(repr=False)
    total_tasks: float
    total_lookup_bytes: float
    max_compute_seconds: float

    @classmethod
    def from_workload(cls, workload, machine: MachineSpec) -> "WorkloadStats":
        """Render (or fetch from the workload's per-P LRU cache) the
        assignment for this machine's rank count and summarize it."""
        assignment = workload.assignment(machine.total_ranks)
        return cls(
            name=getattr(workload, "name", "workload"),
            num_ranks=assignment.num_ranks,
            assignment=assignment,
            total_tasks=float(assignment.tasks_per_rank.sum()),
            total_lookup_bytes=float(assignment.lookup_bytes.sum()),
            max_compute_seconds=float(
                assignment.compute_seconds.max(initial=0.0)
            ),
        )


@dataclass(frozen=True)
class PlanPoint:
    """One ranked candidate: an engine plus the knobs to run it with."""

    engine: str
    #: sorted ``(knob, value)`` pairs — hashable and deterministic
    knobs: tuple
    predicted_wall: float
    predicted_memory: float
    predicted_rounds: int
    backend: str
    feasible: bool = True
    #: why the point cannot be (or was not) predicted, when infeasible
    reason: str = ""

    def apply(self, base: EngineConfig | None = None) -> EngineConfig:
        """The engine config that executes this plan point."""
        return replace(base if base is not None else EngineConfig(),
                       **dict(self.knobs))

    def describe_knobs(self) -> str:
        if not self.knobs:
            return "-"
        return ", ".join(f"{k}={v}" for k, v in self.knobs)

    def as_dict(self) -> dict:
        """JSON-ready row (bench report and ``details["plan"]``)."""
        return {
            "engine": self.engine,
            "knobs": dict(self.knobs),
            "predicted_wall": self.predicted_wall,
            "predicted_memory": self.predicted_memory,
            "predicted_rounds": self.predicted_rounds,
            "backend": self.backend,
            "feasible": self.feasible,
            "reason": self.reason,
        }


def knob_grid_points(engine: str,
                     grid: dict[str, dict[str, tuple]] | None = None):
    """The knob combinations to predict for ``engine`` (cross product).

    Engines absent from the grid get a single empty point — predicted at
    the base config.  Knob names iterate sorted so the grid order (and
    hence tie-breaking in :func:`plan`) is deterministic.
    """
    g = DEFAULT_KNOB_GRID if grid is None else grid
    knobs = g.get(engine)
    if not knobs:
        return [()]
    names = sorted(knobs)
    return [
        tuple(zip(names, values))
        for values in itertools.product(*(knobs[n] for n in names))
    ]


def predict(
    stats: WorkloadStats,
    machine: MachineSpec,
    engine: str,
    config: EngineConfig | None = None,
    knobs: tuple = (),
) -> PlanPoint:
    """Predict one grid point through the engine's registered cost hook.

    Raises :class:`ConfigurationError` when the engine has no cost hook
    (micro engines: measure instead).  A hook that itself raises
    ``ConfigurationError`` (e.g. the BSP partition not fitting memory)
    yields an *infeasible* point with the reason recorded, not an
    exception — an infeasible corner of the grid must not kill the plan.
    """
    get_engine(engine)  # fail fast on typos, same error text as run
    hook = get_cost_hook(engine)
    if hook is None:
        raise ConfigurationError(
            f"engine {engine!r} has no registered cost hook; run it to "
            f"measure (see docs/PLANNER.md)"
        )
    base = config if config is not None else EngineConfig()
    point_config = replace(base, **dict(knobs)) if knobs else base
    try:
        cost = hook(stats.assignment, machine, point_config)
    except ConfigurationError as exc:
        return PlanPoint(
            engine=engine, knobs=tuple(knobs),
            predicted_wall=float("inf"), predicted_memory=float("inf"),
            predicted_rounds=0, backend=base.backend,
            feasible=False, reason=str(exc),
        )
    return PlanPoint(
        engine=engine,
        knobs=tuple(knobs),
        predicted_wall=float(cost["wall"]),
        predicted_memory=float(cost.get("peak_memory", 0.0)),
        predicted_rounds=int(cost.get("rounds", 0)),
        backend=base.backend,
    )


def plan(
    workload=None,
    nodes: int | None = None,
    *,
    machine: MachineSpec | None = None,
    cores_per_node: int = 64,
    config: EngineConfig | None = None,
    engines=None,
    grid: dict[str, dict[str, tuple]] | None = None,
    stats: WorkloadStats | None = None,
) -> list[PlanPoint]:
    """Rank the engine × knob grid by predicted wall clock.

    Returns every grid point, best first; ties break on
    ``(engine, knobs)`` so the ranking is deterministic for equal
    predictions.  Points whose hook raised come back infeasible
    (``predicted_wall=inf``) and sort last; engines *without* a hook
    (the micro engines, or any engine registered without
    :func:`~repro.engines.registry.register_cost_hook`) come back as a
    single infeasible point marked ``"no cost hook: measure instead"``.

    Pass either a ``workload`` + ``nodes`` (the usual path) or a
    pre-built ``stats`` + ``machine`` (the bench path, avoiding repeated
    assignment renders).
    """
    if machine is None:
        if nodes is None:
            raise ConfigurationError(
                "plan() needs either machine= or nodes="
            )
        from repro.core.api import make_machine

        machine = make_machine(nodes, cores_per_node)
    if stats is None:
        if workload is None:
            raise ConfigurationError(
                "plan() needs either workload= or stats="
            )
        stats = WorkloadStats.from_workload(workload, machine)
    base = config if config is not None else EngineConfig()
    names = (tuple(engines) if engines is not None
             else available_engines(kind=MACRO))
    for name in names:
        get_engine(name)  # fail fast on typos before predicting anything
    points: list[PlanPoint] = []
    for name in names:
        if get_cost_hook(name) is None:
            points.append(PlanPoint(
                engine=name, knobs=(),
                predicted_wall=float("inf"), predicted_memory=float("inf"),
                predicted_rounds=0, backend=base.backend,
                feasible=False, reason="no cost hook: measure instead",
            ))
            continue
        for knobs in knob_grid_points(name, grid):
            points.append(predict(stats, machine, name,
                                  config=base, knobs=knobs))
    points.sort(key=lambda p: (p.predicted_wall, p.engine, p.knobs))
    return points
