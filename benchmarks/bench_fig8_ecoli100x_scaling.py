"""Figure 8: strong-scaling runtime breakdown, E. coli 100x, 1-128 nodes.

Paper's claims checked in shape:
* BSP exchanges in a single superstep at every scale (workload chosen so);
* BSP visible communication grows from ~1% (1 node) to >15-25% (128);
* Async hides most latency (visible <7% of its runtime at 128 nodes);
* Async is more efficient at scale (paper: up to 12%);
* ~40-70x speedup at 128 nodes over the single-node run.
"""

from conftest import emit, ecoli_nodes, run_once

from repro.perf.figures import fig8_ecoli_scaling


def test_fig8_ecoli_scaling(benchmark, ecoli_nodes):
    fig = run_once(benchmark, fig8_ecoli_scaling, ecoli_nodes)
    emit("fig8", fig)
    rows = {(r[0], r[1]): r for r in fig["rows"]}
    nodes = sorted({r[1] for r in fig["rows"]})
    first, last = nodes[0], nodes[-1]

    # single superstep everywhere
    assert all(r[8] == 1 for r in fig["rows"] if r[0] == "bsp")

    # BSP comm fraction rises ~1% -> substantial at scale
    assert rows[("bsp", first)][6] < 2.5
    assert rows[("bsp", last)][6] > (12.0 if last >= 64 else 4.0)
    # async hides most latency at scale
    assert rows[("async", last)][6] < 7.0
    # async at least as efficient at scale (normalized_to_bsp_% <= 100)
    assert rows[("async", last)][9] < 100.0
    # strong scaling speedup at the largest node count
    speedup = rows[("bsp", first)][3] / rows[("bsp", last)][3] * (first / 1)
    assert speedup > 25 * (last / 128)
