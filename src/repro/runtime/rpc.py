"""Asynchronous RPC layer for micro SPMD programs (the UPC++ substitute).

``call`` issues a pull request from a caller rank to a target rank; the
response (whatever the registered handler returns, with its modeled byte
size) is delivered into the caller's inbox :class:`SimQueue`, where the
rank program consumes it and runs the attached computation — the callback
pattern of §3.2.

Timing: the request reaches the target after ``alpha``; the target services
requests serially (``rpc_service_gap`` each, tracked with a busy-until
clock per rank — modeling the GASNet progress path rather than stealing the
target generator's time, a simplification documented in DESIGN.md); the
response reaches the caller after another ``alpha`` plus payload
serialization at the async bandwidth share.  Deep incoming queues enter the
degraded regime via :meth:`NetworkModel.rpc_overload_extra` (amortized per
request), producing the Figure-7 hump in micro runs too.

Handlers run at *service* time, not issue time: a handler that reads
mutable simulated state observes it as of the moment the target's progress
engine reaches the request (the historical bug evaluated handlers at issue
time, seeing state from before queued-ahead requests were served).

Fault tolerance: when the owning :class:`SpmdContext` carries a
:class:`repro.faults.FaultInjector`, each response may be dropped, delayed,
or duplicated.  The layer then arms a per-attempt timeout; an unanswered
call is retransmitted with exponential backoff and deterministic seeded
jitter, up to ``rpc_max_retries`` times before a typed
:class:`repro.errors.RpcTimeoutError` (or :class:`RankFailureError` when
the target is permanently dead).  Every call carries an idempotency token
(``call_id``); whichever response copy arrives first wins and later
duplicates are dropped, so a caller consumes *exactly one* response per
call no matter how messy the network was — alignment results under any
fault plan match the fault-free run.

Callers enforce their outstanding-request window themselves (issue, and
when the window is full consume one response first) — exactly how the
paper's implementation bounds in-flight memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.errors import RankFailureError, RpcTimeoutError, SimulationError
from repro.runtime.context import SpmdContext
from repro.runtime.queues import SimQueue

__all__ = ["RpcLayer", "RpcResponse"]


@dataclass(frozen=True)
class RpcResponse:
    """What lands in the caller's inbox when an RPC completes."""

    target: int
    token: Any
    value: Any
    nbytes: float
    issued_at: float
    completed_at: float
    #: how many transmissions this call needed (1 = no retries)
    attempts: int = 1

    @property
    def latency(self) -> float:
        return self.completed_at - self.issued_at


class RpcLayer:
    """Rank-to-rank asynchronous remote procedure calls."""

    def __init__(self, ctx: SpmdContext, faults: object | None = None):
        self.ctx = ctx
        self.inboxes = [
            SimQueue(ctx.engine, name=f"rpc-inbox-{r}")
            for r in range(ctx.num_ranks)
        ]
        self._handlers: list[Callable | None] = [None] * ctx.num_ranks
        self._busy_until = np.zeros(ctx.num_ranks)
        self._served = np.zeros(ctx.num_ranks)
        self.total_calls = 0
        self.faults = faults if faults is not None else ctx.faults
        plan = getattr(self.faults, "plan", None)
        net = ctx.machine.network
        self.timeout = (
            plan.rpc_timeout
            if plan is not None and plan.rpc_timeout is not None
            else ctx.net.suggested_rpc_timeout()
        )
        self.max_retries = plan.rpc_max_retries if plan is not None else 0
        self.backoff_base = (
            plan.rpc_backoff
            if plan is not None and plan.rpc_backoff is not None
            else 10.0 * net.rtt
        )
        self._watchdogs_armed = bool(
            plan is not None and plan.message_faults_possible
        )
        #: under membership churn a departed rank's partition stays
        #: readable (the grace-window checkpoint, or a surviving delegate,
        #: keeps serving it) — reads must not starve on the owner's death
        self.serve_departed = bool(
            plan is not None and getattr(plan, "has_churn", False)
        )
        self._next_call_id = 0
        self._completed: set[int] = set()
        #: aggregate fault-path statistics (surfaced in RunResult.details)
        self.retries = 0
        self.timeouts = 0
        self.dups_dropped = 0

    def register(self, rank: int, handler: Callable[[Any], tuple[Any, float]]) -> None:
        """Install rank's handler: ``token -> (value, response_bytes)``."""
        self._handlers[rank] = handler

    def injection_cost(self) -> float:
        """Caller-side CPU cost of issuing one request (charge as comm)."""
        net = self.ctx.machine.network
        return net.msg_gap + net.msg_overhead

    def call(self, caller: int, target: int, token: Any) -> None:
        """Issue an async request; the response will appear in the caller's
        inbox.  The caller should separately advance
        :meth:`injection_cost` seconds (its own injection work)."""
        if self._handlers[target] is None:
            raise SimulationError(f"rank {target} has no RPC handler")
        if caller == target:
            raise SimulationError("RPC to self; local reads need no pull")
        self.total_calls += 1
        call_id = self._next_call_id
        self._next_call_id += 1
        engine = self.ctx.engine
        issued_at = engine.now
        if self.ctx.tracer is not None:
            self.ctx.tracer.instant(caller, "rpc_issue", issued_at,
                                    target=target, token=token)
        if self.ctx.metrics is not None:
            self.ctx.metrics.inc("rpc_issued", caller)
        self._attempt(caller, target, token, call_id, issued_at, attempt=0)

    # -- one transmission attempt ------------------------------------------

    def _attempt(self, caller: int, target: int, token: Any,
                 call_id: int, issued_at: float, attempt: int) -> None:
        net = self.ctx.machine.network
        engine = self.ctx.engine
        faults = self.faults
        tracer = self.ctx.tracer
        metrics = self.ctx.metrics
        now = engine.now

        latency_scale = faults.latency_factor(now) if faults is not None else 1.0
        arrival = now + net.alpha * latency_scale

        # serial service at the target (progress-path clock)
        start = max(arrival, self._busy_until[target])
        service = net.rpc_service_gap + net.msg_overhead
        if faults is not None:
            service *= faults.straggle_factor(target, start)
        self._served[target] += 1
        if self._served[target] > net.rpc_overload_threshold:
            service += net.rpc_overload_cost
        self._busy_until[target] = start + service

        def deliver(payload: tuple[Any, float]) -> None:
            value, nbytes = payload
            if call_id in self._completed:
                # duplicate or late copy: dropped by the idempotency token
                self.dups_dropped += 1
                if metrics is not None:
                    metrics.inc("rpc_dup_dropped", caller)
                if tracer is not None:
                    tracer.instant(caller, "rpc_dup_dropped", engine.now,
                                   target=target, call_id=call_id)
                return
            self._completed.add(call_id)
            inbox = self.inboxes[caller]
            if inbox.closed:
                return  # the caller is gone (killed rank); drop quietly
            if tracer is not None:
                tracer.instant(caller, "rpc_callback", engine.now,
                               target=target, token=token, nbytes=nbytes,
                               latency=engine.now - issued_at)
            inbox.put(
                RpcResponse(
                    target=target,
                    token=token,
                    value=value,
                    nbytes=nbytes,
                    issued_at=issued_at,
                    completed_at=engine.now,
                    attempts=attempt + 1,
                )
            )

        def do_service(_arg) -> None:
            # a dead target never services the request; the caller's
            # watchdog notices via the timeout path (under churn the
            # checkpointed partition remains readable — keep serving)
            if (faults is not None and not self.serve_departed
                    and faults.dead(target, engine.now)):
                return
            # the handler observes simulated state *at service time*
            value, nbytes = self._handlers[target](token)
            if metrics is not None:
                metrics.inc("rpc_served", target)
                metrics.inc("rpc_bytes", caller, nbytes)
            transfer = nbytes / self.ctx.net.async_rank_bw()
            if faults is not None:
                transfer *= faults.link_dilation(engine.now)
            reply_delay = (
                service
                + net.alpha * (faults.latency_factor(engine.now)
                               if faults is not None else 1.0)
                + transfer
            )
            fate, extra = ("deliver", 0.0)
            if faults is not None:
                fate, extra = faults.rpc_fate()
            if fate != "deliver":
                if tracer is not None:
                    tracer.instant(caller, "fault_inject", engine.now,
                                   kind=f"rpc_{fate}", target=target,
                                   call_id=call_id, attempt=attempt)
                if metrics is not None:
                    metrics.inc("faults_injected", caller)
            if fate == "drop":
                return  # lost in the network; the watchdog retransmits
            if fate == "delay":
                reply_delay += extra
            copies = 2 if fate == "duplicate" else 1
            for _copy in range(copies):
                engine._schedule(reply_delay, deliver, (value, nbytes))

        engine._schedule(start - now, do_service, None)

        if self._watchdogs_armed:
            self._arm_watchdog(caller, target, token, call_id,
                               issued_at, attempt)

    # -- timeout / retry ----------------------------------------------------

    def _arm_watchdog(self, caller: int, target: int, token: Any,
                      call_id: int, issued_at: float, attempt: int) -> None:
        engine = self.ctx.engine
        tracer = self.ctx.tracer
        metrics = self.ctx.metrics
        faults = self.faults

        def watchdog(_arg) -> None:
            if call_id in self._completed:
                return  # answered in time; nothing to do
            if self.inboxes[caller].closed:
                return  # the caller itself died; no one to retry for
            self.timeouts += 1
            if tracer is not None:
                tracer.instant(caller, "rpc_timeout", engine.now,
                               target=target, call_id=call_id,
                               attempt=attempt)
            if metrics is not None:
                metrics.inc("rpc_timeouts", caller)
            if (faults is not None and not self.serve_departed
                    and faults.dead(target, engine.now)):
                death = faults.death_time(target)
                raise RankFailureError(
                    f"rank {target} died at t={death:.6g}s; RPC call "
                    f"{call_id} from rank {caller} timed out with no "
                    f"possible responder"
                )
            if attempt >= self.max_retries:
                raise RpcTimeoutError(
                    f"RPC call {call_id} (rank {caller} -> rank {target}) "
                    f"exhausted {self.max_retries} retries "
                    f"(timeout {self.timeout:.6g}s per attempt)"
                )
            backoff = (
                faults.backoff(self.backoff_base, attempt)
                if faults is not None
                else self.backoff_base * (2.0 ** attempt)
            )
            self.retries += 1
            if tracer is not None:
                tracer.instant(caller, "rpc_retry", engine.now,
                               target=target, call_id=call_id,
                               attempt=attempt + 1,
                               backoff=backoff)
            if metrics is not None:
                metrics.inc("rpc_retries", caller)

            def reissue(_arg) -> None:
                if call_id in self._completed:
                    return  # a late copy arrived during the backoff
                self._attempt(caller, target, token, call_id,
                              issued_at, attempt + 1)

            engine._schedule(backoff, reissue, None)

        engine._schedule(self.timeout, watchdog, None)

    def served(self, rank: int) -> int:
        """Requests this rank has serviced so far."""
        return int(self._served[rank])
