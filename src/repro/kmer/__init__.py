"""Seed analysis: k-mer extraction, histogramming, BELLA filtering, candidates.

This package implements the data analysis DiBELLA performs between its first
and second pipeline stages (paper §3): compute a k-mer histogram over all
reads, filter k-mers by frequency using the BELLA reliability model, and emit
candidate overlap pairs (alignment tasks) for every pair of reads sharing a
retained k-mer — one seed per candidate pair, as in the paper's experiments.
"""

from repro.kmer.kmers import (
    KmerExtractor,
    canonical_kmers,
    pack_kmers,
    unpack_kmer,
)
from repro.kmer.histogram import KmerHistogram, count_kmers
from repro.kmer.bella import BellaModel, reliable_bounds
from repro.kmer.seeds import SeedIndex, CandidateGenerator, Candidate

__all__ = [
    "KmerExtractor",
    "canonical_kmers",
    "pack_kmers",
    "unpack_kmer",
    "KmerHistogram",
    "count_kmers",
    "BellaModel",
    "reliable_bounds",
    "SeedIndex",
    "CandidateGenerator",
    "Candidate",
]
