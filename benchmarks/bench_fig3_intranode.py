"""Figure 3: single-node BSP vs Async on E. coli 30x, 64 vs 68 cores.

Paper's claims checked in shape:
* at both core counts the two codes differ by well under 1% of runtime;
* the 4 extra cores buy slightly more compute but lose it to OS-noise
  synchronization (isolation off), so 68 cores gain nothing overall;
* intranode strong scaling is near-perfect to 32 cores and tapers to
  ~60x at 64 cores (paper: ~62x);
* absolute time-to-solution drops from ~1 hour (1 core) to ~1 minute.
"""

from conftest import emit, run_once

from repro.perf.figures import fig3_intranode
from repro.utils.units import MINUTE, HOUR


def test_fig3_intranode(benchmark):
    fig = run_once(benchmark, fig3_intranode)
    emit("fig3", fig)
    by = {(r[0], r[2]): r for r in fig["rows"]}

    for cores in (64, 68):
        bsp, asy = by[("bsp", cores)], by[("async", cores)]
        # the two codes are comparable on one node (paper: < 0.1%-1s)
        assert abs(bsp[3] - asy[3]) / bsp[3] < 0.02

    scaling = {r[0]: r for r in fig["scaling"]["rows"]}
    assert scaling[32][2] >= 25      # near-perfect to 32 cores
    assert 45 <= scaling[64][2] < 64  # tapering at 64 (paper ~62x)
    # ~1 hour on 1 core -> ~1 minute on 64 cores
    assert 0.6 * HOUR < scaling[1][1] < 1.6 * HOUR
    assert scaling[64][1] < 2.5 * MINUTE
