"""Tests for the top-level driver API and report machinery."""

import numpy as np
import pytest

from repro.core.api import (
    clear_workload_cache,
    compare_engines,
    get_workload,
    make_machine,
    run_alignment,
    scaling_sweep,
)
from repro.engines.report import PhaseTimers, RuntimeBreakdown
from repro.errors import ConfigurationError, SimulationError
from repro.machine.config import cori_knl
from repro.pipeline.workload import ConcreteWorkload, StatisticalWorkload


def test_get_workload_statistical_vs_concrete():
    stat = get_workload("ecoli30x", seed=0)
    assert isinstance(stat, StatisticalWorkload)
    conc = get_workload("micro", seed=0)
    assert isinstance(conc, ConcreteWorkload)


def test_get_workload_cached():
    clear_workload_cache()
    a = get_workload("ecoli30x", seed=0)
    b = get_workload("ecoli30x", seed=0)
    assert a is b
    c = get_workload("ecoli30x", seed=1)
    assert c is not a


def test_get_workload_unknown():
    with pytest.raises(ConfigurationError):
        get_workload("nonexistent")


def test_run_alignment_and_compare():
    wl = get_workload("micro", seed=0)
    res = run_alignment(wl, nodes=2, approach="bsp")
    assert res.wall_time > 0
    both = compare_engines(wl, nodes=2)
    assert set(both) == {"bsp", "async", "hybrid"}
    for r in both.values():
        r.breakdown.validate()
    pinned = compare_engines(wl, nodes=2, approaches=("bsp", "async"))
    assert set(pinned) == {"bsp", "async"}


def test_run_alignment_unknown_approach():
    wl = get_workload("micro", seed=0)
    with pytest.raises(ConfigurationError):
        run_alignment(wl, 2, approach="mpi")


def test_run_alignment_explicit_machine():
    wl = get_workload("micro", seed=0)
    machine = cori_knl(2, app_cores_per_node=8)
    res = run_alignment(wl, nodes=99, machine=machine, approach="async")
    assert res.breakdown.machine is machine


def test_scaling_sweep_structure():
    # a compute-dominated workload actually strong-scales
    wl = get_workload("ecoli30x", seed=0)
    out = scaling_sweep(wl, [1, 2], approaches=("bsp",))
    assert set(out) == {"bsp"}
    assert set(out["bsp"]) == {1, 2}
    assert out["bsp"][2].wall_time < out["bsp"][1].wall_time


def test_make_machine():
    m = make_machine(4, cores_per_node=32)
    assert m.total_ranks == 128


def test_phase_timers_validation():
    t = PhaseTimers(4)
    t.add("comm", 0, 1.0)
    with pytest.raises(SimulationError):
        t.add("bogus", 0, 1.0)
    with pytest.raises(SimulationError):
        t.add("comm", 0, -1.0)
    with pytest.raises(SimulationError):
        t.add_array("comm", np.array([1.0, -2.0, 0.0, 0.0]))
    assert t.per_rank_total()[0] == 1.0


def test_breakdown_validate_and_fractions():
    m = cori_knl(1, app_cores_per_node=2)
    good = RuntimeBreakdown(
        engine="x", machine=m, workload="w", wall_time=2.0,
        compute_align=np.array([1.0, 1.5]),
        compute_overhead=np.array([0.5, 0.2]),
        comm=np.array([0.3, 0.2]),
        sync=np.array([0.2, 0.1]),
    )
    good.validate()
    f = good.fractions()
    assert sum(f.values()) == pytest.approx(1.0)
    bad = RuntimeBreakdown(
        engine="x", machine=m, workload="w", wall_time=5.0,
        compute_align=np.array([1.0, 1.0]),
        compute_overhead=np.zeros(2),
        comm=np.zeros(2),
        sync=np.zeros(2),
    )
    with pytest.raises(SimulationError):
        bad.validate()


def test_breakdown_normalized_to():
    m = cori_knl(1, app_cores_per_node=1)
    mk = lambda wall: RuntimeBreakdown(
        engine="x", machine=m, workload="w", wall_time=wall,
        compute_align=np.array([wall]), compute_overhead=np.zeros(1),
        comm=np.zeros(1), sync=np.zeros(1),
    )
    assert mk(5.0).normalized_to(mk(10.0)) == pytest.approx(0.5)
    with pytest.raises(SimulationError):
        mk(1.0).normalized_to(mk(0.0))


def test_breakdown_category_access():
    m = cori_knl(1, app_cores_per_node=1)
    b = RuntimeBreakdown(
        engine="x", machine=m, workload="w", wall_time=1.0,
        compute_align=np.array([1.0]), compute_overhead=np.zeros(1),
        comm=np.zeros(1), sync=np.zeros(1),
    )
    assert b.category("compute_align")[0] == 1.0
    with pytest.raises(SimulationError):
        b.category("nope")
    assert b.compute_imbalance() == 1.0
