"""Tests for the discrete-event engine."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.machine.engine import Engine


def test_single_process_advances_time():
    eng = Engine()
    log = []

    def proc():
        yield 1.5
        log.append(eng.now)
        yield 2.5
        log.append(eng.now)

    eng.process(proc())
    assert eng.run() == pytest.approx(4.0)
    assert log == [pytest.approx(1.5), pytest.approx(4.0)]


def test_process_return_value():
    eng = Engine()

    def child():
        yield 1.0
        return 42

    def parent():
        result = yield eng.process(child(), name="child")
        assert result == 42
        return result * 2

    p = eng.process(parent(), name="parent")
    eng.run()
    assert p.result == 84


def test_event_wait_and_value():
    eng = Engine()
    ev = eng.event("data")
    got = []

    def waiter():
        value = yield ev
        got.append((eng.now, value))

    def firer():
        yield 3.0
        ev.succeed("hello")

    eng.process(waiter())
    eng.process(firer())
    eng.run()
    assert got == [(pytest.approx(3.0), "hello")]


def test_wait_on_already_fired_event():
    eng = Engine()
    ev = eng.event()
    ev.succeed(7)

    def waiter():
        v = yield ev
        return v

    p = eng.process(waiter())
    eng.run()
    assert p.result == 7


def test_event_fires_once():
    eng = Engine()
    ev = eng.event("x")
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_value_before_fire_raises():
    eng = Engine()
    ev = eng.event("y")
    with pytest.raises(SimulationError):
        _ = ev.value


def test_timeout():
    eng = Engine()

    def proc():
        v = yield eng.timeout(5.0, "late")
        assert v == "late"

    eng.process(proc())
    assert eng.run() == pytest.approx(5.0)


def test_deterministic_ordering_at_same_time():
    eng = Engine()
    order = []

    def proc(i):
        yield 1.0
        order.append(i)

    for i in range(5):
        eng.process(proc(i))
    eng.run()
    assert order == [0, 1, 2, 3, 4]


def test_deadlock_detection():
    eng = Engine()
    ev = eng.event("never")

    def stuck():
        yield ev

    eng.process(stuck(), name="stuck-proc")
    with pytest.raises(DeadlockError, match="stuck-proc"):
        eng.run()


def test_negative_delay_rejected():
    eng = Engine()

    def bad():
        yield -1.0

    eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_bad_yield_type_rejected():
    eng = Engine()

    def bad():
        yield "nope"

    eng.process(bad())
    with pytest.raises(SimulationError):
        eng.run()


def test_run_until():
    eng = Engine()

    def proc():
        yield 10.0

    eng.process(proc())
    assert eng.run(until=4.0) == pytest.approx(4.0)
    assert eng.run() == pytest.approx(10.0)


def test_spawn_all_names():
    eng = Engine()

    def proc():
        yield 1.0

    procs = eng.spawn_all([proc() for _ in range(3)], prefix="r")
    assert [p.name for p in procs] == ["r0", "r1", "r2"]
    eng.run()
    assert all(p.finished for p in procs)


def test_many_processes_scale():
    eng = Engine()

    def proc():
        yield 1.0
        yield 1.0

    eng.spawn_all([proc() for _ in range(5000)])
    assert eng.run() == pytest.approx(2.0)
