"""Compute-backend tests: determinism, chunking invariance, clean shutdown.

The contract under test (docs/PARALLEL.md): the ``process`` backend is
bit-identical to ``serial`` for *any* worker count and chunk size, and a
run — finished or fault-aborted — leaves behind no worker processes and no
shared-memory segments.
"""

from __future__ import annotations

import dataclasses
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.align.seedextend import Alignment, SeedExtendAligner
from repro.core.api import get_workload, run_alignment
from repro.engines.base import EngineConfig
from repro.errors import ConfigurationError, RankFailureError
from repro.faults import parse_fault_spec
from repro.machine.config import cori_knl
from repro.runtime.executor import (
    ProcessExecutor,
    SerialExecutor,
    active_shm_segments,
    make_task_executor,
)

N_TASK_CAP = 120  # plenty of chunk boundaries, still fast per example


@pytest.fixture(scope="module")
def workload():
    return get_workload("micro", seed=11)


@pytest.fixture(scope="module")
def serial(workload):
    return SerialExecutor(workload, SeedExtendAligner())


@pytest.fixture(scope="module")
def pools(workload):
    """One persistent pool per worker count, shared across examples."""
    executors = {
        w: ProcessExecutor(workload, SeedExtendAligner(), workers=w)
        for w in (1, 2, 4)
    }
    yield executors
    for ex in executors.values():
        ex.close()


def _fields(al: Alignment) -> dict:
    return dataclasses.asdict(al)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(
    workers=st.sampled_from([1, 2, 4]),
    chunk_tasks=st.integers(min_value=0, max_value=17),
    indices=st.lists(st.integers(min_value=0, max_value=N_TASK_CAP - 1),
                     min_size=0, max_size=48),
)
def test_process_backend_matches_serial_fieldwise(
        serial, pools, workers, chunk_tasks, indices):
    """Any (worker count, chunk size, task subset) is bit-identical."""
    ex = pools[workers]
    ex.chunk_tasks = chunk_tasks  # plain attribute read by _chunk_size
    got = ex.align_tasks(indices)
    want = serial.align_tasks(indices)
    assert len(got) == len(want)
    for g, w in zip(got, want):
        assert _fields(g) == _fields(w)


def test_empty_batch(serial, pools):
    assert serial.align_tasks([]) == []
    assert pools[2].align_tasks([]) == []


def test_chunk_size_policy(workload):
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=4)
    try:
        # 0 = split evenly across workers (ceiling division)
        assert ex._chunk_size(10) == 3
        assert ex._chunk_size(4) == 1
        # explicit chunk_tasks wins
        ex.chunk_tasks = 5
        assert ex._chunk_size(1000) == 5
    finally:
        ex.close()


def test_stats_shape(workload):
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    try:
        ex.align_tasks(range(9))
        s = ex.stats()
        assert s["backend"] == "process"
        assert s["batches"] == 1
        assert s["tasks"] == 9
        assert s["chunks"] >= 1
        assert s["dispatch_s"] >= 0 and s["merge_s"] >= 0
        total_chunks = sum(w["chunks"] for w in s["per_worker"].values())
        assert total_chunks == s["chunks"]
    finally:
        ex.close()


def test_model_kernel_always_gets_serial(workload):
    """No aligner -> no kernel batches -> a pool would be pure overhead."""
    ex = make_task_executor(workload, None, backend="process", workers=4)
    assert isinstance(ex, SerialExecutor)


def test_unknown_backend_rejected(workload):
    with pytest.raises(ConfigurationError):
        make_task_executor(workload, SeedExtendAligner(), backend="threads")


# -- shutdown hygiene --------------------------------------------------------


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except OSError:
        return False
    return True


def test_close_reaps_workers_and_segments(workload):
    baseline = active_shm_segments()  # other fixtures may hold segments
    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    ex.align_tasks(range(6))
    assert active_shm_segments() - baseline  # store is live while running
    pids = list(ex._pool._processes)
    assert pids and all(_alive(p) for p in pids)
    ex.close()
    ex.close()  # idempotent
    assert active_shm_segments() == baseline
    assert not any(_alive(p) for p in pids)


def test_resource_tracker_claims_balance(workload, monkeypatch):
    """Every parent-side tracker registration is released exactly once.

    Guards the fork-context subtlety: workers share the parent's resource
    tracker, so an extra worker-side unregister (or a missing parent-side
    unlink) would unbalance the tracker's cache and spew KeyError noise at
    interpreter exit.
    """
    from multiprocessing import resource_tracker

    events: list[tuple[str, str]] = []
    real_register = resource_tracker.register
    real_unregister = resource_tracker.unregister

    def register(name, rtype):
        if rtype == "shared_memory":
            events.append(("+", name))
        return real_register(name, rtype)

    def unregister(name, rtype):
        if rtype == "shared_memory":
            events.append(("-", name))
        return real_unregister(name, rtype)

    monkeypatch.setattr(resource_tracker, "register", register)
    monkeypatch.setattr(resource_tracker, "unregister", unregister)

    ex = ProcessExecutor(workload, SeedExtendAligner(), workers=2)
    ex.align_tasks(range(5))
    ex.close()

    registered = [n for op, n in events if op == "+"]
    unregistered = [n for op, n in events if op == "-"]
    assert sorted(registered) == sorted(unregistered)
    assert len(set(registered)) == len(registered)


def test_fault_abort_leaves_no_leaks(workload):
    """A rank death mid-run still tears the pool + segments down."""
    baseline = active_shm_segments()
    machine = cori_knl(1, app_cores_per_node=4)
    cfg = EngineConfig(backend="process", workers=2)
    with pytest.raises(RankFailureError):
        run_alignment(workload, 1, "bsp-micro", config=cfg, machine=machine,
                      kernel="real", fault_plan=parse_fault_spec("kill=r1@0"))
    assert active_shm_segments() == baseline


def test_engine_results_identical_across_backends(workload):
    """Whole-run lockdown at the engine level (field-by-field)."""
    baseline = active_shm_segments()
    machine = cori_knl(1, app_cores_per_node=4)
    base = run_alignment(workload, 1, "async-micro", config=EngineConfig(),
                         machine=machine, kernel="real")
    par = run_alignment(
        workload, 1, "async-micro",
        config=EngineConfig(backend="process", workers=4, chunk_tasks=3),
        machine=machine, kernel="real")
    assert base.wall_time == par.wall_time
    assert np.array_equal(base.memory_high_water, par.memory_high_water)
    assert len(base.alignments) == len(par.alignments)
    for a, b in zip(base.alignments, par.alignments):
        assert _fields(a) == _fields(b)
    assert active_shm_segments() == baseline
