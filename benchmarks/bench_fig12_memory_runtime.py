"""Figure 12: absolute memory footprint and runtime overlay, Human CCS.

Paper's claims checked in shape: async maintains a lower runtime via
communication-computation overlap and a (typically much) lower memory
footprint; at the largest scale the two codes' footprints converge.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig11_12_memory


def test_fig12_memory_runtime(benchmark, human_nodes):
    fig = run_once(benchmark, fig11_12_memory, human_nodes)
    emit("fig12", fig)
    rows = {r[0]: r for r in fig["rows"]}

    for n, r in rows.items():
        bsp_mb, async_mb = r[2], r[3]
        bsp_wall, async_wall = r[7], r[8]
        assert async_wall <= bsp_wall * 1.005
        assert async_mb <= bsp_mb * 1.2

    # footprints converge at scale: ratio shrinks from first to last
    first, last = rows[min(rows)], rows[max(rows)]
    assert last[2] / last[3] < first[2] / first[3]
    # runtimes strong-scale
    assert last[7] < first[7] and last[8] < first[8]
