"""Figure 10: Human CCS 64-512 nodes — single-superstep regime.

Paper's claims checked in shape: with enough per-rank memory the BSP code
exchanges in one superstep; the efficiency gap between the codes narrows
relative to the multi-round regime (paper: 13% at 64 nodes down to 4% at
512 — ours stays within a ~15% band and shrinks versus Figure 9's).
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig9_10_human_scaling


def test_fig10_human_singlestep(benchmark, human_nodes):
    nodes = tuple(n for n in human_nodes if n >= 64)
    if not nodes:  # fast mode trims the sweep
        import pytest

        pytest.skip("fast mode: 64+ node sweep disabled")
    fig = run_once(benchmark, fig9_10_human_scaling, nodes)
    emit("fig10", fig)
    rows = {(r[0], r[1]): r for r in fig["rows"]}

    gaps = []
    for n in nodes:
        bsp, asy = rows[("bsp", n)], rows[("async", n)]
        assert bsp[8] == 1                # single superstep
        assert asy[9] <= 100.5            # async at least on par
        gaps.append(100.0 - asy[9])
    # the gap stays moderate in the single-superstep regime
    assert max(gaps) < 18.0
