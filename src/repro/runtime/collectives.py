"""Rendezvous-based collectives for micro (message-level) SPMD programs.

Semantics match the blocking MPI collectives of the paper's BSP code:

* :meth:`Collectives.barrier` — all ranks wait for the last arrival plus
  the dissemination-tree latency;
* :meth:`Collectives.allreduce` — barrier-shaped rendezvous carrying a
  value reduced with a user operator;
* :meth:`Collectives.alltoallv` — irregular personalized exchange of real
  payload lists with modeled timing: the collective starts when the last
  rank arrives and completes for everyone after the modeled exchange
  duration; each rank's *personal* send/recv cost counts as communication
  and the remainder (skew + waiting on the slowest) as synchronization —
  the same accounting the macro BSP engine uses;
* :meth:`Collectives.split_barrier_enter` / :meth:`split_barrier_wait` —
  the UPC++ split-phase barrier of the async code (§3.2): enter is
  non-blocking, wait completes once all ranks have entered.

All generators are driven with ``yield from`` inside rank programs.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.errors import SimulationError
from repro.runtime.context import SpmdContext

__all__ = ["Collectives"]


class _Rendezvous:
    """One reusable all-ranks meeting point (per tag)."""

    def __init__(self, ctx: SpmdContext, tag: str):
        self.ctx = ctx
        self.tag = tag
        self.reset()

    def reset(self) -> None:
        self.arrived = 0
        self.payloads: dict[int, Any] = {}
        self.event = self.ctx.engine.event(f"rendezvous-{self.tag}")

    def arrive(self, rank: int, payload: Any = None):
        """Generator: deposit payload, wait for the last arrival.

        Returns ``(wait_seconds, all_payloads, release_event_value)``.
        """
        if rank in self.payloads:
            raise SimulationError(
                f"rank {rank} entered rendezvous {self.tag!r} twice"
            )
        self.payloads[rank] = payload
        self.arrived += 1
        arrival_time = self.ctx.engine.now
        if self.arrived == self.ctx.num_ranks:
            payloads = self.payloads
            event = self.event
            self.reset()
            event.succeed((self.ctx.engine.now, payloads))
            _last, payloads = event.value
            return 0.0, payloads
        event = self.event
        yield event
        t_last, payloads = event.value
        return t_last - arrival_time, payloads


class Collectives:
    """Collective operations bound to one SPMD context."""

    def __init__(self, ctx: SpmdContext):
        self.ctx = ctx
        self._points: dict[str, _Rendezvous] = {}
        self._split_state: dict[str, Any] = {}

    def _point(self, tag: str) -> _Rendezvous:
        point = self._points.get(tag)
        if point is None:
            point = _Rendezvous(self.ctx, tag)
            self._points[tag] = point
        return point

    # -- barrier -------------------------------------------------------------

    def barrier(self, rank: int, tag: str = "barrier"):
        """Blocking barrier; waiting time is charged as synchronization."""
        wait, _ = yield from self._point(tag).arrive(rank)
        # `wait` already elapsed while blocked in the rendezvous: record it
        # without advancing the clock again, then pay the tree latency
        self.ctx.timers.add("sync", rank, wait)
        yield self.ctx.charge("sync", rank, self.ctx.net.barrier_time())

    # -- allreduce -------------------------------------------------------------

    def allreduce(self, rank: int, value: Any,
                  op: Callable[[Any, Any], Any] = lambda a, b: a + b,
                  tag: str = "allreduce"):
        """Reduce ``value`` across ranks; returns the reduction everywhere."""
        wait, payloads = yield from self._point(tag).arrive(rank, value)
        self.ctx.timers.add("sync", rank, wait)
        yield self.ctx.charge("sync", rank, self.ctx.net.allreduce_time())
        result = None
        for r in sorted(payloads):
            result = payloads[r] if result is None else op(result, payloads[r])
        return result

    # -- split-phase barrier ----------------------------------------------------

    def split_barrier_enter(self, rank: int, tag: str = "split") -> None:
        """Non-blocking barrier entry (phase 1 of the UPC++ split barrier)."""
        state = self._split_state.setdefault(
            tag, {"count": 0, "event": self.ctx.engine.event(f"split-{tag}")}
        )
        state["count"] += 1
        if state["count"] == self.ctx.num_ranks:
            state["event"].succeed(self.ctx.engine.now)

    def split_barrier_wait(self, rank: int, tag: str = "split"):
        """Phase 2: wait until every rank has entered; wait time is sync."""
        state = self._split_state.get(tag)
        if state is None or state["count"] == 0:
            raise SimulationError(f"split barrier {tag!r} waited before enter")
        t0 = self.ctx.engine.now
        if not state["event"].fired:
            yield state["event"]
        self.ctx.timers.add("sync", rank, self.ctx.engine.now - t0)
        yield self.ctx.charge("sync", rank, self.ctx.net.barrier_time())

    # -- irregular all-to-all -----------------------------------------------------

    def alltoallv(self, rank: int, send: dict[int, list], send_bytes: float,
                  recv_bytes_hint: float | None = None,
                  tag: str = "alltoallv",
                  efficiency_scale: float = 1.0):
        """Exchange per-destination payload lists; returns received items.

        ``send`` maps destination rank -> list of (item, nbytes) tuples.
        Returns the flat list of (item, nbytes) this rank received.  The
        timing model is shared with the macro engine: the collective ends
        ``alltoallv_time(max_send, max_recv, sources)`` after the last
        arrival; this rank's personal volume cost is communication, the
        rest synchronization.
        """
        wait, payloads = yield from self._point(tag).arrive(rank, send)

        # gather what everyone sent to whom (identical result on all ranks
        # because payloads are shared through the rendezvous)
        recv_items: list = []
        recv_bytes = 0.0
        per_rank_send = np.zeros(self.ctx.num_ranks)
        per_rank_recv = np.zeros(self.ctx.num_ranks)
        source_counts = np.zeros(self.ctx.num_ranks)
        for src, mapping in payloads.items():
            for dst, items in mapping.items():
                if not items:
                    continue
                nbytes = float(sum(b for _, b in items))
                per_rank_send[src] += nbytes
                per_rank_recv[dst] += nbytes
                source_counts[dst] += 1
                if dst == rank:
                    recv_items.extend(items)
                    recv_bytes += nbytes

        avg_sources = max(1.0, float(source_counts.mean()))
        duration = self.ctx.net.alltoallv_time(
            per_rank_send.max(initial=0.0),
            per_rank_recv.max(initial=0.0),
            avg_sources,
            efficiency_scale=efficiency_scale,
        )
        personal = min(
            duration,
            self.ctx.net.alltoallv_rank_time(
                send_bytes, recv_bytes, avg_sources,
                efficiency_scale=efficiency_scale,
            ),
        )
        self.ctx.timers.add("sync", rank, wait)  # elapsed in rendezvous
        yield self.ctx.charge("comm", rank, personal)
        yield self.ctx.charge("sync", rank, duration - personal)
        return recv_items
