"""Tests for the 5-letter alphabet codec."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import SequenceError
from repro.genome import alphabet

dna = st.text(alphabet="ACGTN", max_size=200)


def test_encode_decode_roundtrip_simple():
    s = "ACGTNACGT"
    assert alphabet.decode(alphabet.encode(s)) == s


def test_encode_lowercase():
    assert alphabet.decode(alphabet.encode("acgtn")) == "ACGTN"


def test_encode_invalid_char():
    with pytest.raises(SequenceError):
        alphabet.encode("ACGX")


def test_decode_invalid_code():
    with pytest.raises(SequenceError):
        alphabet.decode(np.array([9], dtype=np.uint8))


@given(dna)
def test_roundtrip_property(s):
    assert alphabet.decode(alphabet.encode(s)) == s


@given(dna)
def test_reverse_complement_involution(s):
    codes = alphabet.encode(s)
    rc = alphabet.reverse_complement(codes)
    assert np.array_equal(alphabet.reverse_complement(rc), codes)


def test_complement_pairs():
    codes = alphabet.encode("ACGTN")
    comp = alphabet.complement_codes(codes)
    assert alphabet.decode(comp) == "TGCAN"


def test_random_sequence_gc_content():
    rng = np.random.default_rng(0)
    seq = alphabet.random_sequence(200_000, rng, gc_content=0.7)
    gc = np.isin(seq, [alphabet.C, alphabet.G]).mean()
    assert gc == pytest.approx(0.7, abs=0.01)
    assert alphabet.is_valid_codes(seq)
    assert not np.any(seq == alphabet.N)


def test_random_sequence_bad_gc():
    rng = np.random.default_rng(0)
    with pytest.raises(SequenceError):
        alphabet.random_sequence(10, rng, gc_content=1.5)
