"""Cross-validation: the macro engines must agree with the message-level
simulations on the same concrete workload.

Exact agreement is not expected — macro aggregates per-rank phases while
micro schedules every message — but the quantities the paper's conclusions
rest on must match: total alignment work exactly, wall time and the
BSP round count closely, and the Async < BSP memory ordering.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core.api import get_workload
from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig
from repro.engines.bsp import BSPEngine
from repro.engines.hybrid import HybridEngine
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.machine.config import cori_knl
from repro.obs import MetricsRegistry

CONFIG = EngineConfig(noise_fraction=0.0)


@pytest.fixture(scope="module")
def wl():
    return get_workload("micro", seed=3)


@pytest.fixture(scope="module")
def machine():
    return cori_knl(2, app_cores_per_node=8)


def test_total_alignment_work_identical(wl, machine):
    a = wl.assignment(machine.total_ranks)
    macro = BSPEngine(config=CONFIG).run(a, machine)
    micro = MicroBSPEngine(config=CONFIG).run(wl, machine)
    assert micro.breakdown.summary("compute_align").sum == pytest.approx(
        macro.breakdown.summary("compute_align").sum, rel=1e-9
    )


def test_bsp_round_count_identical(wl, machine):
    a = wl.assignment(machine.total_ranks)
    macro = BSPEngine(config=CONFIG).run(a, machine)
    micro = MicroBSPEngine(config=CONFIG).run(wl, machine)
    assert micro.exchange_rounds == macro.exchange_rounds


def test_bsp_wall_time_agreement(wl, machine):
    a = wl.assignment(machine.total_ranks)
    macro = BSPEngine(config=CONFIG).run(a, machine)
    micro = MicroBSPEngine(config=CONFIG).run(wl, machine)
    assert micro.wall_time == pytest.approx(macro.wall_time, rel=0.25)


def test_async_wall_time_agreement(wl, machine):
    a = wl.assignment(machine.total_ranks)
    macro = AsyncEngine(config=CONFIG).run(a, machine)
    micro = MicroAsyncEngine(config=CONFIG).run(wl, machine)
    assert micro.wall_time == pytest.approx(macro.wall_time, rel=0.25)


def test_engine_ordering_consistent(wl, machine):
    """If macro says async is faster, micro must agree (and vice versa)."""
    a = wl.assignment(machine.total_ranks)
    macro_gap = (
        BSPEngine(config=CONFIG).run(a, machine).wall_time
        - AsyncEngine(config=CONFIG).run(a, machine).wall_time
    )
    micro_gap = (
        MicroBSPEngine(config=CONFIG).run(wl, machine).wall_time
        - MicroAsyncEngine(config=CONFIG).run(wl, machine).wall_time
    )
    # same sign, or both negligible (< 2% of runtime)
    scale = BSPEngine(config=CONFIG).run(a, machine).wall_time
    if abs(macro_gap) > 0.02 * scale or abs(micro_gap) > 0.02 * scale:
        assert np.sign(macro_gap) == np.sign(micro_gap)


def test_memory_ordering_consistent(wl, machine):
    micro_bsp = MicroBSPEngine(config=CONFIG).run(wl, machine)
    micro_async = MicroAsyncEngine(config=CONFIG).run(wl, machine)
    a = wl.assignment(machine.total_ranks)
    macro_bsp = BSPEngine(config=CONFIG).run(a, machine)
    macro_async = AsyncEngine(config=CONFIG).run(a, machine)
    # both granularities agree on which engine is more memory-hungry once
    # the exchange dominates; for this small workload fixed state dominates,
    # so just require macro and micro to be within 2x of each other per
    # engine
    assert micro_bsp.max_memory_per_rank == pytest.approx(
        macro_bsp.max_memory_per_rank, rel=1.0
    )
    assert micro_async.max_memory_per_rank == pytest.approx(
        macro_async.max_memory_per_rank, rel=1.0
    )


# -- hybrid vs async: the §5 aggregation deltas -----------------------------

def test_hybrid_degenerates_to_async_at_aggregation_one(wl, machine):
    """At batch size 1 the hybrid model has no aggregation win and no batch
    fill stall: it must not beat the plain async engine (it is the async
    engine, to the last bit)."""
    a = wl.assignment(machine.total_ranks)
    cfg = replace(CONFIG, hybrid_aggregation=1)
    asy = AsyncEngine(config=cfg).run(a, machine)
    hyb = HybridEngine(config=cfg).run(a, machine)
    assert hyb.wall_time >= asy.wall_time
    assert hyb.wall_time == pytest.approx(asy.wall_time, rel=1e-12)
    np.testing.assert_allclose(
        hyb.breakdown.comm, asy.breakdown.comm, rtol=1e-12
    )


def test_hybrid_sends_fewer_rpc_messages(wl, machine):
    """At aggregation > 1 the hybrid issues ~1/agg the RPCs of async for
    the same pulled bytes."""
    a = wl.assignment(machine.total_ranks)
    m_async = MetricsRegistry(machine.total_ranks)
    m_hyb = MetricsRegistry(machine.total_ranks)
    AsyncEngine(config=CONFIG).run(a, machine, metrics=m_async)
    hyb = HybridEngine(config=CONFIG).run(a, machine, metrics=m_hyb)
    async_msgs = m_async.get("rpc_issued").sum()
    hybrid_msgs = m_hyb.get("rpc_issued").sum()
    assert CONFIG.hybrid_aggregation > 1
    assert hybrid_msgs < async_msgs
    assert hyb.details["rpc_messages"] == pytest.approx(hybrid_msgs)
    # same bytes travel either way — aggregation divides messages, not data
    np.testing.assert_allclose(
        m_hyb.get("rpc_bytes"), m_async.get("rpc_bytes")
    )


def test_hybrid_conserves_and_reports_aggregation(wl, machine):
    a = wl.assignment(machine.total_ranks)
    res = HybridEngine(config=CONFIG).run(a, machine)
    res.breakdown.validate()
    assert res.details["aggregation"] == CONFIG.hybrid_aggregation
    assert res.exchange_rounds == 0  # no supersteps: still an async engine
