#!/usr/bin/env python3
"""Strong-scaling study: E. coli 100x from 1 to 128 simulated nodes.

Reproduces the experiment behind Figure 8 of the paper: both engines
process the same fixed task set while the machine grows from 64 to 8,192
cores; the bulk-synchronous code's visible communication fraction grows
with scale while the asynchronous code hides its latency behind the
alignment computation.

Run:  python examples/strong_scaling_study.py  [--nodes 1 4 16 64]
"""

import argparse

from repro.core import get_workload, scaling_sweep
from repro.perf.format import render_breakdown_rows, render_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=[1, 4, 16, 64, 128])
    parser.add_argument("--workload", default="ecoli100x",
                        choices=["ecoli30x", "ecoli100x", "human_ccs"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = get_workload(args.workload, seed=args.seed)
    print(f"strong scaling {args.workload}: {workload.n_reads:,} reads, "
          f"{workload.n_tasks:,} tasks\n")

    results = scaling_sweep(workload, args.nodes)
    rows = render_breakdown_rows(results)
    print(render_table(
        f"Strong scaling {args.workload} on simulated Cori KNL",
        ["engine", "nodes", "wall_s", "comm%", "sync%", "align%",
         "overhead%", "rounds"],
        rows,
    ))

    print("\nAsync efficiency vs BSP:")
    for nodes in args.nodes:
        bsp = results["bsp"][nodes].wall_time
        asy = results["async"][nodes].wall_time
        print(f"  {nodes:4d} nodes: async is {100 * (bsp / asy - 1):+5.1f}% "
              f"{'faster' if asy < bsp else 'slower'}")


if __name__ == "__main__":
    main()
