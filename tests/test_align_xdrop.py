"""Tests for the X-drop extension kernel."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.dp import extension_score_full
from repro.align.xdrop import XDropExtender
from repro.errors import AlignmentError
from repro.genome import alphabet

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


def test_perfect_match_extension():
    a = alphabet.encode("ACGTACGTAC")
    res = XDropExtender(x_drop=5).extend(a, a.copy())
    assert res.score == 10
    assert res.length_a == 10 and res.length_b == 10
    assert not res.terminated_early


def test_empty_inputs():
    e = alphabet.encode("")
    res = XDropExtender().extend(e, e)
    assert res.score == 0 and res.cells == 0


def test_mismatch_tail_is_dropped():
    a = alphabet.encode("ACGTACGT" + "A" * 20)
    b = alphabet.encode("ACGTACGT" + "T" * 20)
    res = XDropExtender(x_drop=4).extend(a, b)
    assert res.score == 8
    assert res.length_a == 8 and res.length_b == 8
    assert res.terminated_early


def test_false_positive_terminates_fast():
    rng = np.random.default_rng(0)
    a = alphabet.random_sequence(2000, rng)
    b = alphabet.random_sequence(2000, rng)
    res = XDropExtender(x_drop=10).extend(a, b)
    assert res.terminated_early
    # early termination must keep the work tiny relative to full DP
    assert res.cells < 0.01 * 2000 * 2000


def test_cells_grow_with_x():
    rng = np.random.default_rng(1)
    a = alphabet.random_sequence(500, rng)
    b = a.copy()
    # sprinkle ~10% errors on b
    pos = rng.choice(500, 50, replace=False)
    b[pos] = (b[pos] + 1) % 4
    small = XDropExtender(x_drop=5).extend(a, b)
    large = XDropExtender(x_drop=50).extend(a, b)
    assert large.cells > small.cells
    assert large.score >= small.score


@settings(max_examples=50, deadline=None)
@given(dna, dna)
def test_unbounded_x_matches_full_dp(sa, sb):
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    res = XDropExtender(x_drop=10_000).extend(a, b)
    full_score, _, _ = extension_score_full(a, b)
    assert res.score == full_score
    assert not res.terminated_early


@settings(max_examples=50, deadline=None)
@given(dna, dna, st.integers(min_value=0, max_value=30))
def test_xdrop_score_is_lower_bound_of_full(sa, sb, x):
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    res = XDropExtender(x_drop=x).extend(a, b)
    full_score, _, _ = extension_score_full(a, b)
    assert 0 <= res.score <= full_score


@settings(max_examples=30, deadline=None)
@given(dna, dna)
def test_extension_lengths_within_inputs(sa, sb):
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    res = XDropExtender(x_drop=7).extend(a, b)
    assert 0 <= res.length_a <= a.size
    assert 0 <= res.length_b <= b.size


def test_extension_score_is_achievable():
    # the reported (length_a, length_b) must reproduce the score via full DP
    rng = np.random.default_rng(2)
    a = alphabet.random_sequence(100, rng)
    b = a.copy()
    b[10] = (b[10] + 1) % 4
    res = XDropExtender(x_drop=20).extend(a, b)
    from repro.align.dp import needleman_wunsch

    prefix_score = needleman_wunsch(a[: res.length_a], b[: res.length_b])
    assert prefix_score == res.score


def test_extend_left_mirrors_extend():
    a = alphabet.encode("TTTTACGT")
    b = alphabet.encode("GGACGT")
    left = XDropExtender(x_drop=3).extend_left(a, b)
    right = XDropExtender(x_drop=3).extend(
        alphabet.encode("TGCA"[::-1]) if False else a[::-1].copy(), b[::-1].copy()
    )
    assert left.score == right.score
    assert (left.length_a, left.length_b) == (right.length_a, right.length_b)


def test_gap_handling():
    # b has one deletion relative to a; x large enough to bridge it
    a = alphabet.encode("ACGTACGTAC")
    b = alphabet.encode("ACGTCGTAC")  # 'A' at index 4 deleted
    res = XDropExtender(x_drop=10).extend(a, b)
    # 9 matches - one -2 gap = 7
    assert res.score == 7
    assert res.length_a == 10 and res.length_b == 9


def test_negative_x_rejected():
    with pytest.raises(AlignmentError):
        XDropExtender(x_drop=-1)


def test_antidiagonal_count_bounded():
    a = alphabet.encode("ACGT" * 10)
    res = XDropExtender(x_drop=1000).extend(a, a.copy())
    assert res.antidiagonals <= 2 * a.size
