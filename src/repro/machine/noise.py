"""OS / system-overhead noise model.

Figure 3 compares 64 application cores (4 cores isolating system overhead)
against all 68 cores: the extra cores buy slightly more compute throughput,
but the OS then preempts application ranks, and the induced straggling is
absorbed as extra *synchronization* time, cancelling the gain.

The model: when no cores are isolated, every timed phase of every rank is
dilated by an independent random factor ``1 + E`` where ``E`` is
exponentially distributed with mean ``noise_fraction``; bulk-synchronous
phases then complete at the *max* dilation across ranks, which grows with
rank count — exactly the mechanics of OS jitter on Cori described in the
paper and in Ellis et al. 2017 [10].  With isolation on, phases pass
through unperturbed (deterministic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.config import MachineSpec
from repro.utils.rng import RngFactory

__all__ = ["NoiseModel"]


@dataclass
class NoiseModel:
    """Per-rank multiplicative phase dilation for non-isolated runs."""

    machine: MachineSpec
    rngs: RngFactory
    #: mean fractional dilation per phase when the OS shares app cores.
    noise_fraction: float = 0.03

    @property
    def active(self) -> bool:
        return not self.machine.system_isolated

    def factors(self, num_ranks: int, phase_key: int = 0) -> np.ndarray:
        """Per-rank dilation factors (all ones when isolation is on).

        Both engines apply the *same* factor realization for a given
        ``phase_key``: the OS interference pattern belongs to the machine
        allocation, not to the programming model, which is what makes the
        two codes comparable within 0.1% on one node (Figure 3).
        """
        if not self.active or self.noise_fraction <= 0:
            return np.ones(num_ranks)
        rng = self.rngs.stream("noise", phase_key)
        return 1.0 + rng.exponential(self.noise_fraction, size=num_ranks)

    def dilate(self, durations: np.ndarray, phase_key: int) -> np.ndarray:
        """Dilate a per-rank phase-duration vector.

        ``phase_key`` namespaces the random draw so repeated phases get
        independent noise but reruns are bit-reproducible.
        """
        durations = np.asarray(durations, dtype=np.float64)
        if not self.active or self.noise_fraction <= 0:
            return durations
        return durations * self.factors(durations.shape[0], phase_key)

    def dilate_scalar(self, duration: float, rank: int, phase_key: int) -> float:
        """Dilate a single rank's phase duration."""
        if not self.active or self.noise_fraction <= 0:
            return duration
        rng = self.rngs.stream("noise", phase_key, rank)
        return duration * (1.0 + float(rng.exponential(self.noise_fraction)))
