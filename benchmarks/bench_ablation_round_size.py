"""Ablation: BSP superstep sizing vs the memory budget (DESIGN.md §5).

Sweeps the fraction of free memory the BSP engine may devote to exchange
buffers on a memory-tight Human CCS run (16 nodes). Smaller budgets force
more rounds; each extra round pays setup, a barrier, and worse buffering
efficiency — quantifying the paper's §3.1 memory/bandwidth-utilization
coupling.
"""

from conftest import emit, run_once

from repro.core.api import get_workload, make_machine
from repro.engines.base import EngineConfig
from repro.engines.bsp import BSPEngine

FRACTIONS = (0.05, 0.1, 0.2, 0.4, 0.8, 1.0)
NODES = 16


def sweep():
    wl = get_workload("human_ccs", seed=0)
    machine = make_machine(NODES)
    assignment = wl.assignment(machine.total_ranks)
    rows = []
    for frac in FRACTIONS:
        engine = BSPEngine(config=EngineConfig(exchange_memory_fraction=frac))
        res = engine.run(assignment, machine)
        rows.append([
            frac, res.exchange_rounds, round(res.wall_time, 2),
            round(100 * res.breakdown.fractions()["comm"], 1),
            round(res.max_memory_per_rank / 1e6, 0),
        ])
    return {
        "title": f"Ablation: BSP round sizing, Human CCS on {NODES} nodes",
        "columns": ["memory_fraction", "rounds", "wall_s", "comm_%",
                    "max_mem_MB"],
        "rows": rows,
    }


def test_ablation_round_size(benchmark):
    fig = run_once(benchmark, sweep)
    emit("ablation_round_size", fig)
    rows = fig["rows"]
    rounds = [r[1] for r in rows]
    walls = [r[2] for r in rows]
    mems = [r[4] for r in rows]
    # smaller budget -> more rounds, slower, but less memory
    assert rounds[0] > rounds[-1]
    assert walls[0] > walls[-1]
    assert mems[0] < mems[-1]
