"""A single-consumer queue for simulated processes (RPC response inboxes)."""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.machine.engine import Engine, Event

__all__ = ["SimQueue"]


class SimQueue:
    """FIFO queue connecting event-scheduled producers to one consumer.

    ``put`` may be called from plain callbacks (e.g. RPC response
    delivery); ``get`` is a generator to be used as ``item = yield from
    q.get()`` inside a simulated process.  Only one consumer may wait at a
    time — each rank owns its own inbox.

    When the consumer is gone for good (its rank finished, or died to an
    injected fault), :meth:`close` marks the queue; a later ``put`` is a
    producer delivering into the void — a latent lost-message bug — and
    raises :class:`SimulationError` naming the queue instead of silently
    buffering forever.
    """

    def __init__(self, engine: Engine, name: str = ""):
        self._engine = engine
        self._items: deque[Any] = deque()
        self._waiter: Event | None = None
        self._closed = False
        self.name = name

    def __len__(self) -> int:
        return len(self._items)

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Mark the consumer as gone; subsequent ``put``/``get`` raise."""
        self._closed = True

    def put(self, item: Any) -> None:
        if self._closed:
            raise SimulationError(
                f"put on queue {self.name!r} after its consumer was closed "
                f"(the item would never be consumed)"
            )
        self._items.append(item)
        if self._waiter is not None:
            waiter, self._waiter = self._waiter, None
            waiter.succeed()

    def get(self):
        """Generator: yields until an item is available, then returns it."""
        if self._closed:
            raise SimulationError(f"get on closed queue {self.name!r}")
        while not self._items:
            if self._waiter is not None:
                raise SimulationError(
                    f"queue {self.name!r} already has a waiting consumer"
                )
            self._waiter = self._engine.event(f"queue-{self.name}")
            yield self._waiter
        return self._items.popleft()
