"""The task table: alignment tasks in structure-of-arrays layout.

A *task* is one pairwise seed-and-extend alignment: two global read ids, the
seed positions, orientation, and (once known) a cost estimate.  The BSP code
of the paper stores tasks in flat arrays for locality (§4.6); this container
is that flat layout, shared by both engines (the Async engine's
pointer-based-container overhead is *modeled*, §4.6 / Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PartitionError
from repro.kmer.seeds import Candidate
from repro.utils.arrays import counts_to_offsets

__all__ = ["TaskTable"]


@dataclass
class TaskTable:
    """Parallel arrays describing all alignment tasks of a workload.

    ``read_a``/``read_b`` are *global* read ids; ``pos_a``/``pos_b`` seed
    offsets; ``reverse`` orientation flags; ``k`` the (single) seed length.
    ``owner`` (assigned rank) and ``cost`` (estimated seconds) are filled in
    by the partitioner / cost model and default to -1 / NaN.
    """

    read_a: np.ndarray
    read_b: np.ndarray
    pos_a: np.ndarray
    pos_b: np.ndarray
    reverse: np.ndarray
    k: int
    owner: np.ndarray | None = None
    cost: np.ndarray | None = None

    def __post_init__(self) -> None:
        self.read_a = np.asarray(self.read_a, dtype=np.int64)
        self.read_b = np.asarray(self.read_b, dtype=np.int64)
        self.pos_a = np.asarray(self.pos_a, dtype=np.int64)
        self.pos_b = np.asarray(self.pos_b, dtype=np.int64)
        self.reverse = np.asarray(self.reverse, dtype=bool)
        n = self.read_a.size
        for name in ("read_b", "pos_a", "pos_b", "reverse"):
            if getattr(self, name).size != n:
                raise PartitionError(f"task array {name} length mismatch")
        if self.owner is not None:
            self.owner = np.asarray(self.owner, dtype=np.int64)
            if self.owner.size != n:
                raise PartitionError("owner array length mismatch")
        if self.cost is not None:
            self.cost = np.asarray(self.cost, dtype=np.float64)
            if self.cost.size != n:
                raise PartitionError("cost array length mismatch")

    def __len__(self) -> int:
        return int(self.read_a.size)

    @classmethod
    def from_candidates(cls, candidates: list[Candidate], k: int | None = None) -> "TaskTable":
        if candidates:
            kk = candidates[0].k if k is None else k
        else:
            kk = 17 if k is None else k
        return cls(
            read_a=np.array([c.read_a for c in candidates], dtype=np.int64),
            read_b=np.array([c.read_b for c in candidates], dtype=np.int64),
            pos_a=np.array([c.pos_a for c in candidates], dtype=np.int64),
            pos_b=np.array([c.pos_b for c in candidates], dtype=np.int64),
            reverse=np.array([c.reverse for c in candidates], dtype=bool),
            k=kk,
        )

    def with_owner(self, owner: np.ndarray) -> "TaskTable":
        return TaskTable(
            self.read_a, self.read_b, self.pos_a, self.pos_b, self.reverse,
            self.k, owner=owner, cost=self.cost,
        )

    def with_cost(self, cost: np.ndarray) -> "TaskTable":
        return TaskTable(
            self.read_a, self.read_b, self.pos_a, self.pos_b, self.reverse,
            self.k, owner=self.owner, cost=cost,
        )

    def tasks_of_rank(self, rank: int) -> np.ndarray:
        """Indices of tasks assigned to ``rank``."""
        if self.owner is None:
            raise PartitionError("tasks have no owner assignment yet")
        return np.nonzero(self.owner == rank)[0]

    def remote_read_of(self, task_indices: np.ndarray, owner_of_read, rank: int
                       ) -> np.ndarray:
        """Global id of the remotely-owned read of each task (-1 if both local).

        ``owner_of_read`` maps global read ids to owner ranks (callable on
        arrays).  For tasks with both reads remote the partitioner's
        invariant is violated and an error is raised.
        """
        a = self.read_a[task_indices]
        b = self.read_b[task_indices]
        owner_a = owner_of_read(a)
        owner_b = owner_of_read(b)
        a_local = owner_a == rank
        b_local = owner_b == rank
        if not np.all(a_local | b_local):
            raise PartitionError("task with both reads remote (invariant broken)")
        out = np.where(a_local & b_local, -1, np.where(a_local, b, a))
        return out.astype(np.int64)

    def group_by_owner(self, num_ranks: int) -> tuple[np.ndarray, np.ndarray]:
        """(sorted task indices, CSR offsets per rank)."""
        if self.owner is None:
            raise PartitionError("tasks have no owner assignment yet")
        order = np.argsort(self.owner, kind="stable")
        counts = np.bincount(self.owner, minlength=num_ranks)
        return order, counts_to_offsets(counts)
