"""Tests for shared-seed candidate generation."""

import numpy as np
import pytest

from repro.genome import alphabet
from repro.genome.sequence import ReadSet
from repro.kmer.seeds import CandidateGenerator, SeedIndex, extract_with_orientation


def overlapping_reads(k=9):
    """Two reads sharing a 30 bp region, plus one unrelated read."""
    rng = np.random.default_rng(0)
    core = alphabet.decode(alphabet.random_sequence(30, rng))
    left = alphabet.decode(alphabet.random_sequence(20, rng))
    right = alphabet.decode(alphabet.random_sequence(20, rng))
    other = alphabet.decode(alphabet.random_sequence(60, rng))
    return ReadSet.from_strings([left + core, core + right, other])


def test_candidates_found_for_overlap():
    reads = overlapping_reads()
    gen = CandidateGenerator(k=9, bounds=(1, 64))
    cands = gen.generate(reads)
    pairs = {(c.read_a, c.read_b) for c in cands}
    assert (0, 1) in pairs


def test_candidate_pair_normalized_and_deduplicated():
    reads = overlapping_reads()
    cands = CandidateGenerator(k=9, bounds=(1, 64)).generate(reads)
    seen = set()
    for c in cands:
        assert c.read_a < c.read_b
        assert (c.read_a, c.read_b) not in seen
        seen.add((c.read_a, c.read_b))


def test_candidate_counts_shared_seeds():
    reads = overlapping_reads()
    cands = CandidateGenerator(k=9, bounds=(1, 64)).generate(reads)
    c01 = next(c for c in cands if (c.read_a, c.read_b) == (0, 1))
    # a 30bp shared region has 30-9+1=22 shared 9-mers
    assert c01.shared_seeds >= 15


def test_seed_positions_actually_match():
    reads = overlapping_reads()
    cands = CandidateGenerator(k=9, bounds=(1, 64)).generate(reads)
    c01 = next(c for c in cands if (c.read_a, c.read_b) == (0, 1))
    a = reads.codes(0)[c01.pos_a: c01.pos_a + 9]
    b = reads.codes(1)[c01.pos_b: c01.pos_b + 9]
    if c01.reverse:
        b = alphabet.reverse_complement(b)
    assert np.array_equal(a, b)


def test_reverse_orientation_detected():
    rng = np.random.default_rng(1)
    core = alphabet.random_sequence(40, rng)
    a = alphabet.decode(core)
    b = alphabet.decode(alphabet.reverse_complement(core))
    reads = ReadSet.from_strings([a + "ACGTACGTACGT", "TTTGGGCCCAAA" + b])
    cands = CandidateGenerator(k=11, bounds=(1, 64)).generate(reads)
    c01 = next(c for c in cands if (c.read_a, c.read_b) == (0, 1))
    assert c01.reverse
    # mapped seed must match after flipping
    sa = reads.codes(0)[c01.pos_a: c01.pos_a + 11]
    sb = reads.codes(1)[c01.pos_b: c01.pos_b + 11]
    assert np.array_equal(sa, alphabet.reverse_complement(sb))


def test_frequency_band_filters_repeats():
    # k-mer shared by 3 reads; with hi=2 its occurrence list (3) > hi is cut
    rng = np.random.default_rng(2)
    core = alphabet.decode(alphabet.random_sequence(20, rng))
    pads = [alphabet.decode(alphabet.random_sequence(20, rng)) for _ in range(3)]
    reads = ReadSet.from_strings([p + core for p in pads])
    none = CandidateGenerator(k=11, bounds=(2, 2)).generate(reads)
    some = CandidateGenerator(k=11, bounds=(2, 8)).generate(reads)
    assert len(none) == 0
    assert len(some) >= 3


def test_max_occurrences_cap():
    rng = np.random.default_rng(3)
    core = alphabet.decode(alphabet.random_sequence(20, rng))
    pads = [alphabet.decode(alphabet.random_sequence(20, rng)) for _ in range(6)]
    reads = ReadSet.from_strings([p + core for p in pads])
    gen = CandidateGenerator(k=11, bounds=(1, 1000), max_occurrences=2)
    capped = gen.generate(reads)
    # occurrence lists longer than 2 are skipped entirely
    assert all(c.shared_seeds <= 2 or True for c in capped)


def test_generator_requires_model_or_bounds():
    reads = overlapping_reads()
    with pytest.raises(ValueError):
        CandidateGenerator(k=9).generate(reads)


def test_seed_index_build_counts():
    reads = ReadSet.from_strings(["ACGTACGT", "ACGT"])
    idx = SeedIndex.build(reads, k=4, retained=None)
    assert idx.num_occurrences == 5 + 1
    assert idx.num_distinct >= 1
    # offsets are CSR over distinct kmers
    assert idx.group_offsets[-1] == idx.num_occurrences


def test_extract_with_orientation_consistency():
    codes = alphabet.encode("ACGTTGCA")
    canon, pos, is_fwd = extract_with_orientation(codes, 4)
    from repro.kmer.kmers import pack_kmers, revcomp_packed

    fwd, _ = pack_kmers(codes, 4)
    rc = revcomp_packed(fwd, 4)
    assert np.array_equal(canon, np.minimum(fwd, rc))
    assert np.array_equal(is_fwd, fwd <= rc)


def test_no_self_pairs():
    # a read with an internal tandem repeat shares k-mers with itself only
    reads = ReadSet.from_strings(["ACGTACGTACGTACGT"])
    cands = CandidateGenerator(k=5, bounds=(1, 64)).generate(reads)
    assert cands == []
