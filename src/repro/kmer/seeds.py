"""Shared-seed detection: from reliable k-mers to candidate overlap pairs.

Every pair of reads sharing a retained (reliable) k-mer becomes a *candidate
overlap*, i.e. one pairwise-alignment task.  Following the paper's
experimental setup, exactly **one seed is extended per candidate pair** ("one
per candidate overlap", Table 1), "simulating expected advances in
seed-selection techniques" — so the candidate generator deduplicates pairs
and keeps the first shared seed's positions.

Orientation: k-mers are canonicalized over strands, and each occurrence
records whether the canonical form equals the read-local forward form.  A
candidate whose two occurrences disagree is a *reverse-strand* candidate; the
aligner then extends against the reverse complement of the second read
(paper Figure 2 shows both orientations must be handled).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome.sequence import ReadSet
from repro.kmer.bella import BellaModel
from repro.kmer.histogram import KmerHistogram, count_kmers
from repro.kmer.kmers import pack_kmers, revcomp_packed
from repro.utils.arrays import counts_to_offsets

__all__ = ["Candidate", "SeedIndex", "CandidateGenerator"]


@dataclass(frozen=True)
class Candidate:
    """One candidate overlap: a read pair plus a single seed.

    ``pos_a`` / ``pos_b`` are the seed start offsets in each read (``pos_b``
    is on read b's forward strand even for reverse candidates; the aligner
    performs the coordinate flip).  ``reverse`` marks opposite orientation.
    """

    read_a: int
    read_b: int
    pos_a: int
    pos_b: int
    k: int
    reverse: bool = False
    shared_seeds: int = 1


def extract_with_orientation(codes: np.ndarray, k: int):
    """Canonical k-mers + positions + forward-form flags for one read."""
    fwd, positions = pack_kmers(codes, k)
    if fwd.size == 0:
        return fwd, positions, np.empty(0, dtype=bool)
    rc = revcomp_packed(fwd, k)
    canon = np.minimum(fwd, rc)
    is_fwd = fwd <= rc
    return canon, positions, is_fwd


class SeedIndex:
    """Occurrence lists of retained k-mers across a read set.

    Flat parallel arrays sorted by k-mer: ``kmers``, ``read_idx``, ``pos``,
    ``is_fwd``; ``group_offsets`` delimits each distinct k-mer's occurrence
    run (CSR layout over distinct k-mers in ``distinct``).
    """

    def __init__(self, kmers, read_idx, pos, is_fwd):
        order = np.argsort(kmers, kind="stable")
        self.kmers = np.asarray(kmers)[order]
        self.read_idx = np.asarray(read_idx)[order]
        self.pos = np.asarray(pos)[order]
        self.is_fwd = np.asarray(is_fwd)[order]
        if self.kmers.size:
            self.distinct, counts = np.unique(self.kmers, return_counts=True)
            self.group_offsets = counts_to_offsets(counts)
        else:
            self.distinct = np.empty(0, dtype=np.uint64)
            self.group_offsets = np.zeros(1, dtype=np.int64)

    @classmethod
    def build(
        cls,
        reads: ReadSet,
        k: int,
        retained: KmerHistogram | None = None,
    ) -> "SeedIndex":
        """Extract per-read canonical k-mers, keep those in ``retained``."""
        all_k, all_r, all_p, all_f = [], [], [], []
        for i in range(len(reads)):
            km, pos, fwd = extract_with_orientation(reads.codes(i), k)
            if km.size == 0:
                continue
            if retained is not None:
                keep = retained.frequency_of(km) > 0
                km, pos, fwd = km[keep], pos[keep], fwd[keep]
            if km.size:
                all_k.append(km)
                all_r.append(np.full(km.size, i, dtype=np.int64))
                all_p.append(pos)
                all_f.append(fwd)
        if not all_k:
            return cls(
                np.empty(0, dtype=np.uint64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=np.int64),
                np.empty(0, dtype=bool),
            )
        return cls(
            np.concatenate(all_k),
            np.concatenate(all_r),
            np.concatenate(all_p),
            np.concatenate(all_f),
        )

    @property
    def num_occurrences(self) -> int:
        return int(self.kmers.size)

    @property
    def num_distinct(self) -> int:
        return int(self.distinct.size)


@dataclass
class CandidateGenerator:
    """Generate alignment tasks from shared reliable k-mers.

    Parameters
    ----------
    k : seed length (paper: 17).
    model : BELLA reliability model providing the multiplicity band; when
        None, ``bounds`` must be given explicitly.
    bounds : explicit ``(lo, hi)`` multiplicity band (overrides ``model``).
    max_occurrences : safety cap on per-k-mer occurrence-list length
        (normally redundant with the BELLA ``hi`` bound).
    """

    k: int = 17
    model: BellaModel | None = None
    bounds: tuple[int, int] | None = None
    max_occurrences: int = 256

    def _band(self) -> tuple[int, int]:
        if self.bounds is not None:
            return self.bounds
        if self.model is not None:
            return self.model.bounds()
        raise ValueError("CandidateGenerator needs either a model or bounds")

    def histogram(self, reads: ReadSet) -> KmerHistogram:
        return count_kmers(reads, k=self.k, canonical=True)

    def generate(
        self, reads: ReadSet, histogram: KmerHistogram | None = None
    ) -> list[Candidate]:
        """All candidate pairs with one seed each (deduplicated).

        Pairs are normalized to ``read_a < read_b`` (local indices); for each
        pair the first shared seed in k-mer-sorted order is kept and the
        total number of shared retained seeds is recorded.
        """
        hist = histogram if histogram is not None else self.histogram(reads)
        lo, hi = self._band()
        retained = hist.filtered(lo, hi)
        index = SeedIndex.build(reads, self.k, retained)

        pair_first: dict[tuple[int, int], Candidate] = {}
        offs = index.group_offsets
        for g in range(index.num_distinct):
            start, stop = int(offs[g]), int(offs[g + 1])
            size = stop - start
            if size < 2 or size > self.max_occurrences:
                continue
            rids = index.read_idx[start:stop]
            poss = index.pos[start:stop]
            fwds = index.is_fwd[start:stop]
            for i in range(size):
                for j in range(i + 1, size):
                    a, b = int(rids[i]), int(rids[j])
                    if a == b:
                        continue  # same read sharing a k-mer with itself
                    pa, pb = int(poss[i]), int(poss[j])
                    fa, fb = bool(fwds[i]), bool(fwds[j])
                    if a > b:
                        a, b = b, a
                        pa, pb = pb, pa
                        fa, fb = fb, fa
                    key = (a, b)
                    existing = pair_first.get(key)
                    if existing is None:
                        pair_first[key] = Candidate(
                            read_a=a,
                            read_b=b,
                            pos_a=pa,
                            pos_b=pb,
                            k=self.k,
                            reverse=(fa != fb),
                        )
                    else:
                        pair_first[key] = Candidate(
                            read_a=existing.read_a,
                            read_b=existing.read_b,
                            pos_a=existing.pos_a,
                            pos_b=existing.pos_b,
                            k=existing.k,
                            reverse=existing.reverse,
                            shared_seeds=existing.shared_seeds + 1,
                        )
        return [pair_first[key] for key in sorted(pair_first)]
