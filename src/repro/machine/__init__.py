"""Distributed-machine simulator (the Cori KNL substitute).

A deterministic discrete-event simulator of a Cray-XC40-like machine:
rank-level simulated processes (generators) advance simulated time through
compute, communication, and synchronization operations, with a LogGP-style
network model calibrated to Cori KNL / Aries numbers, per-node memory
tracking, and an OS-noise model for non-isolated cores (DESIGN.md §2).
"""

from repro.machine.engine import Engine, Event, Process
from repro.machine.config import (
    NodeSpec,
    NetworkSpec,
    MachineSpec,
    cori_knl,
)
from repro.machine.network import NetworkModel
from repro.machine.memory import MemoryTracker, NodeMemory
from repro.machine.noise import NoiseModel

__all__ = [
    "Engine",
    "Event",
    "Process",
    "NodeSpec",
    "NetworkSpec",
    "MachineSpec",
    "cori_knl",
    "NetworkModel",
    "MemoryTracker",
    "NodeMemory",
    "NoiseModel",
]
