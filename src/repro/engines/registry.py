"""Decorator-driven engine registry: the extension point of the engine layer.

The paper's method is running *interchangeable* parallelization strategies
over the same fixed inputs (§3), and §5 explicitly anticipates further
variants.  The registry makes "add a strategy" a one-file change: decorate
the engine class with :func:`register_engine` and import the module from
:mod:`repro.engines` — the driver API (``repro.core.api.ENGINES``,
``run_alignment``, ``compare_engines``, ``scaling_sweep``) and the CLI's
``--approach`` choices all derive their engine sets from here, with zero
edits elsewhere.  ``docs/ARCHITECTURE.md`` walks through adding one.

Engines come in two kinds:

* ``macro`` — analytic per-rank phase models consuming a
  :class:`~repro.pipeline.workload.WorkloadAssignment` (scales to 32K
  ranks);
* ``micro`` — message-level SPMD programs consuming a
  :class:`~repro.pipeline.workload.ConcreteWorkload` (validation and real
  alignment output).

Both expose ``run(...) -> RunResult`` and a ``config: EngineConfig`` field;
the driver dispatches on :attr:`EngineInfo.kind`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "EngineInfo",
    "register_engine",
    "register_cost_hook",
    "get_engine",
    "get_cost_hook",
    "available_engines",
    "engines_with_cost_hooks",
    "create_engine",
]

MACRO = "macro"
MICRO = "micro"

_REGISTRY: dict[str, "EngineInfo"] = {}

#: engine name -> analytic cost predictor (see :func:`register_cost_hook`)
_COST_HOOKS: dict[str, object] = {}


@dataclass(frozen=True)
class EngineInfo:
    """One registered parallelization strategy."""

    name: str
    factory: type
    #: ``"macro"`` (assignment-driven analytic model) or ``"micro"``
    #: (message-level SPMD program over a concrete workload)
    kind: str
    description: str = ""

    @property
    def is_micro(self) -> bool:
        """Whether the engine executes concrete workloads (and so can run
        the real kernel behind a compute backend, docs/PARALLEL.md)."""
        return self.kind == MICRO


def register_engine(name: str, *, kind: str = MACRO, description: str = ""):
    """Class decorator adding an engine to the registry under ``name``.

    Names are unique: re-registering an existing name raises, so a typo'd
    copy-paste cannot silently shadow a built-in engine.
    """
    if kind not in (MACRO, MICRO):
        raise ConfigurationError(
            f"engine kind must be 'macro' or 'micro', got {kind!r}"
        )

    def deco(cls):
        if name in _REGISTRY:
            raise ConfigurationError(
                f"engine {name!r} is already registered "
                f"(by {_REGISTRY[name].factory.__qualname__})"
            )
        _REGISTRY[name] = EngineInfo(
            name=name, factory=cls, kind=kind, description=description
        )
        return cls

    return deco


def register_cost_hook(name: str):
    """Function decorator attaching an analytic cost predictor to engine
    ``name`` (the planner's extension point, mirroring
    :func:`register_engine`).

    A cost hook has the signature ``fn(assignment, machine, config) ->
    dict`` and returns at least ``{"wall": seconds}`` — the engine's
    predicted fault-free, noise-free wall clock on that assignment and
    machine under that :class:`~repro.engines.base.EngineConfig` — plus
    optional ``"peak_memory"`` (bytes) and ``"rounds"`` keys.  It may
    raise :class:`~repro.errors.ConfigurationError` for infeasible
    configurations (e.g. the BSP partition not fitting per-rank memory);
    the planner records such grid points as infeasible instead of
    crashing the plan.

    Engines without a hook (the micro SPMD engines) are simply not
    rankable analytically: ``repro.perf.planner`` lists them as
    "measure instead" and ``run --engine auto`` falls back to exhaustive
    measurement when no hook-backed plan is feasible.
    """

    def deco(fn):
        if name in _COST_HOOKS:
            raise ConfigurationError(
                f"cost hook for engine {name!r} is already registered "
                f"(by {_COST_HOOKS[name].__qualname__})"
            )
        _COST_HOOKS[name] = fn
        return fn

    return deco


def get_cost_hook(name: str):
    """The cost predictor registered for ``name``, or ``None``.

    ``None`` means the engine cannot be ranked analytically (no
    :func:`register_cost_hook` call) — callers should fall back to
    measuring it.
    """
    return _COST_HOOKS.get(name)


def engines_with_cost_hooks() -> tuple[str, ...]:
    """Registered engine names that have a cost hook (registration order)."""
    return tuple(name for name in _REGISTRY if name in _COST_HOOKS)


def get_engine(name: str) -> EngineInfo:
    """Look up a registered engine, with a helpful error on unknown names."""
    info = _REGISTRY.get(name)
    if info is None:
        raise ConfigurationError(
            f"unknown approach {name!r}; choose from {sorted(_REGISTRY)}"
        )
    return info


def available_engines(kind: str | None = None) -> tuple[str, ...]:
    """Registered engine names (registration order), optionally by kind."""
    return tuple(
        name for name, info in _REGISTRY.items()
        if kind is None or info.kind == kind
    )


def create_engine(name: str, config=None):
    """Instantiate a registered engine with the given config."""
    from repro.engines.base import EngineConfig

    info = get_engine(name)
    return info.factory(config=config if config is not None else EngineConfig())
