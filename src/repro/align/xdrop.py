"""X-drop alignment extension (Zhang, Schwartz, Wagner, Miller 2000).

The kernel the paper runs per task: starting from a seed, extend the
alignment over antidiagonals of the DP matrix, pruning any cell whose score
falls more than ``X`` below the best score seen so far.  On true overlaps the
live window stays narrow and tracks the overlap (average-case ``O(n)``
work); on false-positive candidates the score decays immediately and the
extension terminates early — the paper's "early-termination heuristics
triggered by false positives", one of the two sources of task-cost
variability driving load imbalance (§4.2).

The extender is numpy-vectorized per antidiagonal and reports the number of
DP cells it computed, which feeds the KNL cost model
(:mod:`repro.align.cost`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import DEFAULT_SCORING, ScoringScheme
from repro.errors import AlignmentError

__all__ = ["XDropExtender", "ExtensionResult"]

#: Effectively -infinity for int64 score arithmetic (no overflow when a few
#: substitution scores are added on top).
_NEG = np.int64(-(2**40))


@dataclass(frozen=True)
class ExtensionResult:
    """Outcome of one directional extension.

    Attributes
    ----------
    score : best extension score found (>= 0; empty extension scores 0).
    length_a, length_b : prefix lengths of each sequence consumed by the
        best-scoring extension.
    cells : DP cells computed (the kernel's work, for the cost model).
    antidiagonals : antidiagonals processed before termination.
    terminated_early : True when the X-drop window died before either
        sequence was exhausted — the false-positive fast path.
    """

    score: int
    length_a: int
    length_b: int
    cells: int
    antidiagonals: int
    terminated_early: bool


def _gather(arr: np.ndarray, arr_lo: int, want_lo: int, count: int,
            out: np.ndarray | None = None) -> np.ndarray:
    """Values of a diagonal array at indices [want_lo, want_lo+count), NEG-filled.

    ``out`` is an optional scratch buffer (capacity >= count) reused across
    antidiagonals; without it a fresh array is allocated.
    """
    out = np.empty(count, dtype=np.int64) if out is None else out[:count]
    out[:] = _NEG
    src_lo = max(arr_lo, want_lo)
    src_hi = min(arr_lo + arr.size, want_lo + count)
    if src_hi > src_lo:
        out[src_lo - want_lo: src_hi - want_lo] = arr[src_lo - arr_lo: src_hi - arr_lo]
    return out


@dataclass(frozen=True)
class XDropExtender:
    """Directional X-drop extension with a given scoring scheme.

    Parameters
    ----------
    x_drop : the drop threshold ``X`` >= 0; cells scoring below
        ``best - X`` are pruned.  Larger X explores more cells (more work,
        potentially better alignments) — the paper notes X as a runtime
        parameter affecting task cost (§4.2).
    scoring : match/mismatch/gap weights.
    """

    x_drop: int = 15
    scoring: ScoringScheme = DEFAULT_SCORING

    def __post_init__(self) -> None:
        if self.x_drop < 0:
            raise AlignmentError("x_drop must be nonnegative")

    def extend(self, a: np.ndarray, b: np.ndarray) -> ExtensionResult:
        """Extend rightward from position 0 of ``a`` and ``b``.

        ``a`` and ``b`` are the *suffix* code arrays beyond the seed (or the
        reversed prefixes, for leftward extension).  Returns the best
        extension found under X-drop pruning.
        """
        a = np.asarray(a, dtype=np.uint8)
        b = np.asarray(b, dtype=np.uint8)
        m, n = a.size, b.size
        if m == 0 or n == 0:
            # Only pure-gap extensions exist and they score negatively, so
            # the empty extension (score 0 at the seed boundary) is optimal.
            return ExtensionResult(0, 0, 0, 0, 0, False)

        scoring = self.scoring
        table = scoring.substitution_table
        gap = np.int64(scoring.gap)
        x = np.int64(self.x_drop)

        best = np.int64(0)
        best_i, best_j = 0, 0

        # Shifted sequence lookups: a_ext[i] == a[max(i - 1, 0)] for
        # i in [0, m], so per-diagonal base gathers are plain slices
        # instead of np.arange-driven fancy indexing.
        a_ext = np.concatenate((a[:1], a))
        b_ext = np.concatenate((b[:1], b))

        # Scratch buffers reused across antidiagonals: three rotating
        # wavefront rows (cur / d-1 / d-2) plus gather and mask temporaries.
        # No antidiagonal window is ever wider than min(m, n) + 1.
        cap = min(m, n) + 1
        row_a = np.zeros(cap, dtype=np.int64)
        row_b = np.empty(cap, dtype=np.int64)
        row_c = np.empty(cap, dtype=np.int64)
        t_up = np.empty(cap, dtype=np.int64)
        t_left = np.empty(cap, dtype=np.int64)
        t_diag = np.empty(cap, dtype=np.int64)
        t_live = np.empty(cap, dtype=bool)

        # Diagonal d=0 holds only S(0,0)=0.
        prev, prev_lo, prev_len = row_a, 0, 1      # diagonal d-1
        prev2, prev2_lo, prev2_len = row_b, 0, 0   # diagonal d-2
        free = row_c

        # Live window bounds (in i) allowed for the next diagonal.
        win_lo, win_hi = 0, 1
        cells = 0
        d = 0
        terminated_early = False

        while True:
            d += 1
            if d > m + n:
                break
            lo = max(win_lo, 0, d - n)
            hi = min(win_hi, d, m)
            if lo > hi:
                terminated_early = True
                break
            count = hi - lo + 1

            # Moves: up (i-1, j) and left (i, j-1) live on diagonal d-1 at
            # indices i-1 and i; diagonal (i-1, j-1) lives on d-2 at i-1.
            up = _gather(prev[:prev_len], prev_lo, lo - 1, count, out=t_up)
            up += gap
            left = _gather(prev[:prev_len], prev_lo, lo, count, out=t_left)
            left += gap
            diag = _gather(prev2[:prev2_len], prev2_lo, lo - 1, count, out=t_diag)

            # i runs lo..hi; j = d - i runs d-lo down to d-hi.
            ai = a_ext[lo: hi + 1]
            bj = b_ext[d - hi: d - lo + 1][::-1]
            diag += table[ai, bj]

            cur = free[:count]
            np.maximum(up, left, out=cur)
            np.maximum(cur, diag, out=cur)
            cells += count

            cmax = np.int64(cur.max())
            if cmax > best:
                k = int(np.argmax(cur))
                best = cmax
                best_i = lo + k
                best_j = d - best_i

            live = np.greater_equal(cur, best - x, out=t_live[:count])
            if not live.any():
                terminated_early = d < m + n
                break
            win_lo = lo + int(np.argmax(live))
            win_hi = lo + (count - 1 - int(np.argmax(live[::-1]))) + 1

            # Rotate the wavefront rows: cur's buffer becomes d-1, the old
            # d-1 becomes d-2, and the old d-2 buffer is recycled for the
            # next diagonal.
            prev, prev2, free, prev2_lo, prev2_len = \
                free, prev, prev2, prev_lo, prev_len
            prev_lo, prev_len = lo, count

        return ExtensionResult(
            score=int(best),
            length_a=best_i,
            length_b=best_j,
            cells=cells,
            antidiagonals=d - 1 if d else 0,
            terminated_early=terminated_early,
        )

    def extend_left(self, a: np.ndarray, b: np.ndarray) -> ExtensionResult:
        """Extend leftward from the *end* of ``a`` and ``b`` (prefix arrays)."""
        return self.extend(np.ascontiguousarray(a[::-1]), np.ascontiguousarray(b[::-1]))
