"""The asynchronous engine (§3.2).

Tasks are indexed under their remote read; each rank issues asynchronous
pull RPCs (bounded outstanding window) for every distinct remote read it
needs, and the alignments involving a read run from the arrival callback —
communication is hidden behind computation rather than amortized by
aggregation.  A split-phase barrier overlaps the tasks whose reads are both
local with barrier entry; a single exit barrier keeps partitions available
until all ranks finish.

Timeline of one run (macro model, per rank ``r``)::

    [ local-pair compute // split-phase barrier ]      (overlap, §3.2)
    [ pull + remote compute: max(comm_r, compute_r) ]  (overlap)
    [ wait at exit barrier (sync) ]

Visible communication per rank is the part of its pull time that compute
could not cover — ``max(0, comm_r - compute_r)`` — which is how the paper's
stacked bars report the async code (Figures 8-10): "Async successfully
hides most of its communication latency".  Memory stays bounded: the window
holds at most ``async_window`` in-flight reads (Figure 11's flat <256 MB
line).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.report import PhaseTimers, RunResult, RuntimeBreakdown
from repro.errors import ConfigurationError, RankFailureError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.machine.noise import NoiseModel
from repro.obs import (
    ENGINE_LANE,
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_trace,
    get_default_tracer,
)
from repro.pipeline.workload import WorkloadAssignment
from repro.utils.rng import RngFactory
from repro.utils.units import MB

__all__ = ["AsyncEngine"]

#: fixed per-rank footprint: program + UPC++/GASNet runtime segments
RUNTIME_BASE_MEMORY = 120 * MB
#: pointer-based task record (std containers: node + pointers + payload)
ASYNC_TASK_RECORD_BYTES = 96.0


@dataclass
class AsyncEngine:
    """Macro-granularity simulator of the asynchronous implementation."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "async"

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        if assignment.num_ranks != machine.total_ranks:
            raise ConfigurationError(
                f"assignment is for {assignment.num_ranks} ranks but machine "
                f"has {machine.total_ranks}"
            )
        P = machine.total_ranks
        tracer = tracer if tracer is not None else get_default_tracer()
        if tracer is not None:
            tracer.begin_run(
                f"{self.name} {assignment.name} nodes={machine.nodes} P={P}"
            )
        net = NetworkModel(machine)
        noise = NoiseModel(machine, RngFactory(self.config.seed),
                           noise_fraction=self.config.noise_fraction)
        timers = PhaseTimers(P)

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        factors = noise.factors(P)
        if comm_only:
            local_compute = np.zeros(P)
            remote_compute = np.zeros(P)
        else:
            local_compute = factors * assignment.local_pair_seconds
            remote_compute = factors * (
                assignment.compute_seconds - assignment.local_pair_seconds
            )
        internode = 1.0 - 1.0 / machine.nodes
        overhead = (
            assignment.tasks_per_rank * self.config.async_task_overhead
            + assignment.lookups * self.config.async_read_overhead * internode
            + self.config.async_base_overhead
        )
        # index-building overhead happens before the pull phase; the
        # remainder is interleaved with the callbacks
        overhead_pre = 0.5 * overhead
        overhead_cb = overhead - overhead_pre

        bar = net.barrier_time()
        # aggregation coalesces `k` pulls into one message (same bytes,
        # fewer per-message costs and a shallower service queue)
        agg = float(self.config.async_aggregation)
        comm = np.array([
            net.rpc_pull_time(
                float(assignment.lookups[i]) / agg,
                float(assignment.lookup_bytes[i]),
                float(assignment.incoming_lookups[i]) / agg,
                float(assignment.incoming_bytes[i]),
            )
            for i in range(P)
        ])

        # --- fault adjustments (analytic; see docs/RESILIENCE.md) ---
        fault_stall = np.zeros(P)
        retry_counts = np.zeros(P)
        tasks_redistributed = 0.0
        redist_counts = np.zeros(P)
        ranks_lost: list[int] = []
        if faults is not None:
            plan = faults.plan
            # fault-free horizon: where each rank *would* finish — places
            # degradation windows and kills on this analytic timeline
            busy0 = remote_compute + overhead_cb
            visible0 = np.maximum(
                comm - busy0, self.config.async_min_visible * comm
            )
            finish0 = (
                np.maximum(local_compute + overhead_pre, bar)
                + busy0 + visible0
            )
            wall0 = float(finish0.max(initial=0.0)) + bar

            # stragglers dilate every busy second inside their windows
            straggle = np.array([
                faults.mean_straggle_factor(i, 0.0, float(finish0[i]))
                for i in range(P)
            ])
            local_compute = local_compute * straggle
            remote_compute = remote_compute * straggle
            overhead_pre = overhead_pre * straggle
            overhead_cb = overhead_cb * straggle

            # degraded links dilate the pull traffic
            comm = comm * faults.mean_link_dilation(0.0, wall0)

            # message faults: a dropped pull stalls its caller for the
            # timeout plus the first backoff before the retry lands; a
            # delayed pull stalls for the injected delay — pure visible
            # latency, compute cannot hide a response that never came
            timeout = (plan.rpc_timeout if plan.rpc_timeout is not None
                       else net.suggested_rpc_timeout())
            backoff = (plan.rpc_backoff if plan.rpc_backoff is not None
                       else 10.0 * machine.network.rtt)
            for i in range(P):
                n_calls = int(np.ceil(float(assignment.lookups[i]) / agg))
                drops, delays, dups = faults.rank_rpc_fault_counts(i, n_calls)
                fault_stall[i] = (
                    drops * (timeout + backoff)
                    + delays * plan.delay_seconds
                )
                retry_counts[i] = drops
                injected = drops + delays + dups
                if metrics is not None:
                    if drops:
                        metrics.inc("rpc_retries", i, drops)
                    if injected:
                        metrics.inc("faults_injected", i, injected)
                if tracer is not None and injected:
                    tracer.instant(i, "fault_inject", 0.0, kind="rpc_macro",
                                   drops=drops, delays=delays, dups=dups)

            # rank deaths: the killed rank stops at its death time; the
            # survivors absorb its unfinished work as extra callback-phase
            # compute and pull traffic
            alive = np.ones(P, dtype=bool)
            for kill in sorted(plan.kills, key=lambda k: (k.time, k.rank)):
                if kill.time >= wall0 or not alive[kill.rank]:
                    continue
                if not plan.redistribute:
                    raise RankFailureError(
                        f"rank {kill.rank} died at t={kill.time:.6g}s during "
                        f"the async pull phase; add 'redistribute' to the "
                        f"fault plan for graceful degradation"
                    )
                d = kill.rank
                alive[d] = False
                ranks_lost.append(d)
                faults.note_kill(d)
                if not alive.any():
                    raise RankFailureError(
                        "every rank died before the run finished; nothing "
                        "left to redistribute to"
                    )
                if tracer is not None:
                    tracer.instant(ENGINE_LANE, "fault_inject", kill.time,
                                   kind="rank_kill", victim=d)
                if metrics is not None:
                    metrics.inc("faults_injected", d)
                done = (min(1.0, kill.time / float(finish0[d]))
                        if finish0[d] > 0 else 1.0)
                n_alive = int(alive.sum())
                # unfinished local pairs are redone remotely by survivors
                lost_align = (1.0 - done) * (local_compute[d]
                                             + remote_compute[d])
                lost_oh = (1.0 - done) * (overhead_pre[d] + overhead_cb[d])
                lost_comm = (1.0 - done) * (comm[d] + fault_stall[d])
                for arr in (local_compute, remote_compute, overhead_pre,
                            overhead_cb, comm, fault_stall):
                    arr[d] = arr[d] * done
                remote_compute[alive] += lost_align / n_alive
                overhead_cb[alive] += lost_oh / n_alive
                comm[alive] += lost_comm / n_alive
                moved = (1.0 - done) * float(assignment.tasks_per_rank[d])
                tasks_redistributed += moved
                redist_counts[alive] += moved / n_alive

        # --- phase A: local-pair compute overlapped with split barrier ---
        phase_a_busy = local_compute + overhead_pre
        phase_a_end = np.maximum(phase_a_busy, bar)
        timers.add_array("compute_align", local_compute)
        timers.add_array("compute_overhead", overhead_pre)
        timers.add_array("sync", phase_a_end - phase_a_busy)

        # --- phase B: pull remote reads, compute from callbacks ---
        busy = remote_compute + overhead_cb
        # even abundant computation cannot hide everything: callbacks bunch
        # between application-level polls (§3.2), leaving a floor of
        # visible latency
        visible_comm = np.maximum(
            comm - busy, self.config.async_min_visible * comm
        ) + fault_stall
        phase_b = busy + visible_comm
        timers.add_array("compute_align", remote_compute)
        timers.add_array("compute_overhead", overhead_cb)
        timers.add_array("comm", visible_comm)

        # --- exit barrier: everyone waits for the slowest rank ---
        finish = phase_a_end + phase_b
        wall = float(finish.max(initial=0.0)) + bar
        timers.add_array("sync", wall - finish)

        if tracer is not None:
            tracer.instant(ENGINE_LANE, "split_barrier_release", bar)
            tracer.instant(ENGINE_LANE, "exit_barrier",
                           float(finish.max(initial=0.0)))
            for i in range(P):
                # phase A: local pairs + pre-overhead overlapped with the
                # split barrier, idle gap (if any) is sync
                la = float(local_compute[i])
                pre = float(overhead_pre[i])
                a_busy = float(phase_a_busy[i])
                a_end = float(phase_a_end[i])
                # phase B: callbacks + visible comm, then exit-barrier wait
                rc = float(remote_compute[i])
                cb = float(overhead_cb[i])
                vis = float(visible_comm[i])
                for cat, start, dur, label in (
                    ("compute_align", 0.0, la, "local-pairs"),
                    ("compute_overhead", la, pre, "index-build"),
                    ("sync", a_busy, a_end - a_busy, "split-barrier-wait"),
                    ("compute_align", a_end, rc, "callback-align"),
                    ("compute_overhead", a_end + rc, cb, "callback-overhead"),
                    ("comm", a_end + rc + cb, vis, "visible-pull"),
                    ("sync", float(finish[i]), wall - float(finish[i]),
                     "exit-barrier"),
                ):
                    if dur > 0:
                        tracer.phase(i, cat, start, dur, name=label)

        breakdown = RuntimeBreakdown(
            engine=self.name,
            machine=machine,
            workload=assignment.name,
            wall_time=wall,
            compute_align=timers.get("compute_align"),
            compute_overhead=timers.get("compute_overhead"),
            comm=timers.get("comm"),
            sync=timers.get("sync"),
        )
        breakdown.validate()
        if tracer is not None:
            # the emitted event stream must independently tile the wall clock
            assert_conserved(check_trace(tracer, wall, P))
        if metrics is not None:
            metrics.add_array("tasks", assignment.tasks_per_rank)
            metrics.add_array("lookups", assignment.lookups)
            metrics.add_array("rpc_issued",
                              np.ceil(assignment.lookups / agg))
            metrics.add_array("rpc_bytes", assignment.lookup_bytes)
            if faults is not None and tasks_redistributed:
                metrics.add_array("tasks_redistributed", redist_counts)

        avg_read = (
            assignment.lookup_bytes.sum() / assignment.lookups.sum()
            if assignment.lookups.sum() > 0
            else 0.0
        )
        memory = (
            RUNTIME_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * ASYNC_TASK_RECORD_BYTES
            + self.config.async_window * avg_read  # in-flight reads only
        )
        details = {
            "hidden_comm": float(np.minimum(comm, busy).sum()),
            "raw_comm": comm,
        }
        if faults is not None:
            details["fault_plan"] = faults.plan.describe()
            details["faults_injected"] = faults.total_injected
            details["fault_kinds"] = dict(faults.injected)
            details["rpc_retries"] = int(retry_counts.sum())
            details["rpc_stall_total"] = float(fault_stall.sum())
            details["tasks_redistributed"] = tasks_redistributed
            details["ranks_lost"] = ranks_lost
        return RunResult(
            breakdown=breakdown,
            memory_high_water=memory,
            exchange_rounds=0,
            details=details,
        )
