#!/usr/bin/env python3
"""Alignment playground: the X-drop kernel on controlled inputs.

Shows the per-task behaviours the paper's load-imbalance analysis rests on
(§4.2): true overlaps sweep a narrow band along the overlap (cost grows
linearly with overlap length and with the X parameter), while false
positives — unrelated reads sharing one spurious seed — terminate after a
handful of antidiagonals.

Run:  python examples/alignment_playground.py
"""

import numpy as np

from repro.align import SeedExtendAligner, XDropExtender
from repro.align.dp import extension_score_full
from repro.genome import alphabet
from repro.genome.synth import ErrorModel


def main() -> None:
    rng = np.random.default_rng(7)

    print("== true overlap: two noisy reads of the same genome region ==")
    core = alphabet.random_sequence(1200, rng)
    errors = ErrorModel(error_rate=0.15, n_rate=0.001)
    read_a = np.concatenate([alphabet.random_sequence(300, rng),
                             errors.apply(core, rng)])
    read_b = np.concatenate([errors.apply(core, rng),
                             alphabet.random_sequence(250, rng)])
    # in the real pipeline the seed comes from a shared reliable k-mer;
    # here we plant one at a known offset in the overlap
    seed_len = 17
    seed = core[:seed_len]
    read_a[300:300 + seed_len] = seed
    read_b[:seed_len] = seed
    for x in (5, 15, 50):
        res = SeedExtendAligner(x_drop=x).align(
            read_a, read_b, 300, 0, seed_len
        )
        print(f"  X={x:3d}: score {res.score:5d}  aligned "
              f"[{res.begin_a},{res.end_a}) x [{res.begin_b},{res.end_b})  "
              f"cells {res.cells:7d}  early={res.terminated_early}")

    print("\n== false positive: unrelated reads sharing one 17-mer ==")
    fp_a = alphabet.random_sequence(2000, rng)
    fp_b = alphabet.random_sequence(2000, rng)
    fp_b[1000:1000 + seed_len] = fp_a[900:900 + seed_len]
    res = SeedExtendAligner(x_drop=15).align(fp_a, fp_b, 900, 1000, seed_len)
    print(f"  score {res.score} (bare seed scores {seed_len}), "
          f"cells {res.cells}, early-terminated={res.terminated_early}, "
          f"class={res.overlap_class(2000, 2000)}")

    print("\n== X-drop vs exhaustive DP on a short pair ==")
    a = alphabet.encode("ACGTACGTTGCAACGT")
    b = alphabet.encode("ACGTACGATGCAACGT")
    xres = XDropExtender(x_drop=10_000).extend(a, b)
    full, _, _ = extension_score_full(a, b)
    print(f"  unbounded X-drop score {xres.score} == full DP score {full}; "
          f"cells {xres.cells} vs {a.size * b.size} for the full matrix")


if __name__ == "__main__":
    main()
