"""Figure 4: single-node breakdowns, E. coli 30x vs 100x (64 cores).

Paper's claims checked in shape:
* the larger problem is more compute-dominated (~94% vs ~90%);
* the codes differ by <~1% of runtime (paper: ~1s, <0.3%);
* E. coli 100x needs ~7 hours on one core => ~400s on 64 cores.
"""

from conftest import emit, run_once

from repro.perf.figures import fig4_single_node


def test_fig4_single_node(benchmark):
    fig = run_once(benchmark, fig4_single_node)
    emit("fig4", fig)
    rows = {(r[0], r[1]): r for r in fig["rows"]}

    small_bsp = rows[("ecoli30x", "bsp")]
    large_bsp = rows[("ecoli100x", "bsp")]
    # compute-dominance ordering and rough levels (align% column)
    assert large_bsp[5] > small_bsp[5]
    assert large_bsp[5] > 90
    assert small_bsp[5] > 85

    for name in ("ecoli30x", "ecoli100x"):
        b, a = rows[(name, "bsp")], rows[(name, "async")]
        assert abs(b[4] - a[4]) / b[4] < 0.02  # wall_s within 2%
