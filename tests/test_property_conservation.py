"""Property tests: the time-conservation invariant (hypothesis).

For every engine — macro BSP/Async and micro BSP/Async — across seeds,
node counts, and execution modes, the four breakdown categories must tile
the wall clock on every rank, both in the accumulators and in the emitted
trace.  This is the invariant the paper's stacked bars rest on; the
property drives the :mod:`repro.obs.conservation` checker end-to-end.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import get_workload
from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig
from repro.engines.bsp import BSPEngine
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.errors import AccountingError
from repro.genome.datasets import DatasetSpec
from repro.machine.config import cori_knl
from repro.obs import (
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_breakdown,
    check_trace,
)
from repro.pipeline.workload import StatisticalWorkload

MACRO = settings(
    max_examples=16,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
MICRO = settings(
    max_examples=6,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def make_wl(seed):
    spec = DatasetSpec(
        name="prop-cons", species="synthetic",
        n_reads=6000, n_tasks=120_000,
        coverage=15.0, error_rate=0.1,
        mean_read_length=9000.0, length_sigma=0.3,
    )
    return StatisticalWorkload(spec, seed=seed)


def _assert_conserves(run_fn, num_ranks):
    tracer = Tracer()
    metrics = MetricsRegistry(num_ranks)
    res = run_fn(tracer, metrics)
    breakdown_report = check_breakdown(res.breakdown)
    trace_report = check_trace(tracer, res.wall_time, num_ranks)
    assert breakdown_report.ok, breakdown_report.describe()
    assert trace_report.ok, trace_report.describe()
    # and the trace is non-trivial: it actually observed phase activity
    assert tracer.phase_events()
    return res


@MACRO
@given(
    engine_cls=st.sampled_from([BSPEngine, AsyncEngine]),
    nodes=st.sampled_from([1, 4, 16]),
    seed=st.integers(min_value=0, max_value=7),
    comm_only=st.booleans(),
)
def test_macro_conservation(engine_cls, nodes, seed, comm_only):
    machine = cori_knl(nodes, app_cores_per_node=4)
    wl = make_wl(seed)
    config = EngineConfig(seed=seed)
    if comm_only:
        config = config.comm_only()
    assignment = wl.assignment(machine.total_ranks)
    _assert_conserves(
        lambda tr, mr: engine_cls(config=config).run(
            assignment, machine, tracer=tr, metrics=mr
        ),
        machine.total_ranks,
    )


@MICRO
@given(
    engine_cls=st.sampled_from([MicroBSPEngine, MicroAsyncEngine]),
    nodes=st.sampled_from([1, 2]),
    seed=st.integers(min_value=0, max_value=3),
    comm_only=st.booleans(),
)
def test_micro_conservation(engine_cls, nodes, seed, comm_only):
    # the workload is cached per (name, seed); engine randomness varies
    # through the config seed (noise model) and the mode
    wl = get_workload("micro", seed=0)
    machine = cori_knl(nodes, app_cores_per_node=4)
    config = EngineConfig(seed=seed)
    if comm_only:
        config = config.comm_only()
    res = _assert_conserves(
        lambda tr, mr: engine_cls(config=config).run(
            wl, machine, tracer=tr, metrics=mr
        ),
        machine.total_ranks,
    )
    assert res.wall_time > 0


def test_conservation_checker_rejects_drift():
    """The property above is meaningful: breaking accounting is detected."""
    machine = cori_knl(1, app_cores_per_node=4)
    wl = make_wl(0)
    tracer = Tracer()
    res = BSPEngine(config=EngineConfig()).run(
        wl.assignment(machine.total_ranks), machine, tracer=tracer
    )
    # claim a longer wall than the phases account for
    bad = check_trace(tracer, res.wall_time * 1.5, machine.total_ranks)
    assert not bad.ok
    with pytest.raises(AccountingError):
        assert_conserved(bad)
