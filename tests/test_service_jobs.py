"""Job state machine, request canonicalization, and the event log.

The contracts under test (docs/SERVICE.md): every job walks the declared
lifecycle and nothing else (``JobStateError`` on an illegal move), errors
are captured *typed*, the cache key covers exactly the result-affecting
request fields (execution-only and sharding knobs excluded — the layers
the golden suite pins as bit-identical), and the per-job event log is a
capped, closable, replayable stream.
"""

from __future__ import annotations

import pytest

from repro.engines.base import EngineConfig
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    JobStateError,
    ServiceError,
)
from repro.service import (
    Job,
    JobEventLog,
    JobRequest,
    JobState,
    ProgressTracer,
    known_engines,
)
from repro.service.events import PROGRESS_EVERY


def _result():
    """A tiny real RunResult for driving terminal transitions."""
    from repro.core.api import get_workload, run_alignment

    return run_alignment(get_workload("micro", seed=3), 1, "bsp",
                         cores_per_node=4)


# -- the state machine -------------------------------------------------------

def test_happy_path_walks_declared_lifecycle():
    job = Job(JobRequest())
    assert job.state == JobState.QUEUED and not job.done
    job.mark_admitted()
    assert job.state == JobState.ADMITTED
    job.mark_running()
    assert job.state == JobState.RUNNING
    job.finish(_result())
    assert job.state == JobState.DONE and job.done
    assert job.wait(0.0)  # terminal => wait returns immediately
    assert job.error is None and not job.cache_hit
    # timestamps landed in order
    assert (job.created_at <= job.admitted_at <= job.started_at
            <= job.finished_at)


def test_cache_hit_short_circuits_queued_to_done():
    job = Job(JobRequest())
    job.finish(_result(), cache_hit=True, source="cache")
    assert job.state == JobState.DONE
    assert job.cache_hit and job.cache_source == "cache"


@pytest.mark.parametrize("illegal", [
    lambda j: j.mark_running(),          # QUEUED -> RUNNING skips ADMITTED
    lambda j: (j.mark_admitted(), j.mark_admitted()),
    lambda j: (j.finish(None), j.mark_admitted()),  # out of a terminal
    lambda j: (j.cancelled("x"), j.finish(None)),
    lambda j: (j.cancelled("x"), j.fail(ValueError("y"))),
])
def test_illegal_transitions_raise_typed(illegal):
    job = Job(JobRequest())
    with pytest.raises(JobStateError, match="illegal transition"):
        illegal(job)


def test_failure_is_captured_typed_not_as_traceback():
    job = Job(JobRequest())
    job.mark_admitted()
    job.mark_running()
    job.fail(ConfigurationError("bad knob"))
    assert job.state == JobState.FAILED
    assert job.error == {"type": "ConfigurationError", "message": "bad knob"}


def test_cancellation_records_typed_error_and_closes_events():
    job = Job(JobRequest())
    job.cancelled("queue shut down")
    assert job.state == JobState.CANCELLED
    assert job.error["type"] == "JobCancelledError"
    assert job.events.closed
    kinds = [e["event"] for e in job.events.snapshot()]
    assert kinds[-1] == "done"
    done = job.events.snapshot()[-1]
    assert done["state"] == JobState.CANCELLED


def test_state_events_mirror_the_machine():
    job = Job(JobRequest())
    job.mark_admitted()
    job.mark_running()
    job.finish(_result())
    states = [e["state"] for e in job.events.snapshot()
              if e["event"] == "state"]
    assert states == [JobState.QUEUED, JobState.ADMITTED,
                      JobState.RUNNING, JobState.DONE]
    seqs = [e["seq"] for e in job.events.snapshot()]
    assert seqs == sorted(seqs) == list(range(len(seqs)))


# -- request validation ------------------------------------------------------

def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ConfigurationError, match="unknown request field"):
        JobRequest.from_dict({"workload": "micro", "engin": "bsp"})


def test_unknown_config_override_rejected():
    with pytest.raises(ConfigurationError, match="unknown EngineConfig"):
        JobRequest(config={"asyncc_window": 3}).validate()


@pytest.mark.parametrize("bad", [
    {"workload": "nope"},
    {"engine": "warp"},
    {"kernel": "cuda"},
    {"nodes": 0},
    {"max_resident_shards": 0},
    {"faults": "kill=banana"},
    # micro-only knobs on an analytic engine
    {"engine": "bsp", "kernel": "real"},
    {"engine": "async", "config": {"backend": "process"}},
    # message-level engine over a statistical preset
    {"engine": "bsp-micro", "workload": "ecoli30x"},
])
def test_invalid_requests_fail_fast(bad):
    with pytest.raises(ConfigurationError):
        JobRequest.from_dict(bad)


def test_known_engines_includes_registry_and_auto():
    names = known_engines()
    assert "bsp" in names and "async-micro" in names and "auto" in names
    JobRequest(engine="auto").validate()  # auto is submittable


# -- cache-key semantics -----------------------------------------------------

def test_execution_only_knobs_do_not_move_the_key():
    base = JobRequest(engine="bsp-micro", kernel="real")
    pool = JobRequest(engine="bsp-micro", kernel="real",
                      config={"backend": "process", "workers": 4,
                              "chunk_tasks": 7})
    assert base.cache_key() == pool.cache_key()


def test_sharding_knobs_do_not_move_the_key():
    base = JobRequest(workload="ecoli30x")
    sharded = JobRequest(workload="ecoli30x", shard_tasks=5000,
                         max_resident_shards=2)
    assert base.cache_key() == sharded.cache_key()


def test_priority_is_not_identity():
    assert (JobRequest(priority=0).cache_key()
            == JobRequest(priority=9).cache_key())


@pytest.mark.parametrize("a,b", [
    (JobRequest(seed=0), JobRequest(seed=1)),
    (JobRequest(engine="bsp"), JobRequest(engine="async")),
    (JobRequest(nodes=2), JobRequest(nodes=4)),
    (JobRequest(cores_per_node=4), JobRequest(cores_per_node=8)),
    (JobRequest(), JobRequest(faults="drop=0.05")),
    (JobRequest(faults="kill=r1@1"), JobRequest(faults="kill=r1@1",
                                                fault_seed=7)),
    (JobRequest(), JobRequest(config={"async_window": 3})),
    (JobRequest(), JobRequest(comm_only=True)),
    (JobRequest(engine="bsp-micro"), JobRequest(engine="bsp-micro",
                                                kernel="real")),
])
def test_result_affecting_fields_move_the_key(a, b):
    assert a.cache_key() != b.cache_key()


def test_engine_config_defaults_match_golden_construction():
    # the service must reproduce tools/regen_goldens.py's config exactly:
    # EngineConfig() defaults, *not* seeded from the workload seed
    assert JobRequest(seed=11).engine_config() == EngineConfig()


# -- the event log -----------------------------------------------------------

def test_event_log_caps_and_marks_truncation():
    log = JobEventLog(cap=5)
    for i in range(9):
        log.append("phase", i=i)
    events = log.snapshot()
    kinds = [e["event"] for e in events]
    assert kinds.count("phase") == 5
    assert kinds.count("truncated") == 1
    assert log.dropped == 4
    # essential kinds still land past the cap
    log.append("done", state="DONE")
    assert log.snapshot()[-1]["event"] == "done"


def test_event_log_replays_from_since():
    log = JobEventLog()
    for i in range(6):
        log.append("phase", i=i)
    tail = log.snapshot(since=4)
    assert [e["seq"] for e in tail] == [4, 5]


def test_event_log_stream_ends_after_close():
    log = JobEventLog()
    log.append("state", state="QUEUED")
    log.append("done", state="DONE")
    log.close()
    assert [e["event"] for e in log.stream(poll=0.01)] == ["state", "done"]
    log.append("phase")  # post-close appends are dropped
    assert len(log) == 2


# -- the progress tracer -----------------------------------------------------

def test_progress_tracer_forwards_phases_and_keeps_recording():
    job = Job(JobRequest())
    tracer = ProgressTracer(job)
    tracer.phase(0, "comm", 0.0, 1.0, name="exchange")
    tracer.phase(1, "compute_align", 0.0, 2.0)
    forwarded = [e for e in job.events.snapshot() if e["event"] == "phase"]
    assert [e["name"] for e in forwarded] == ["exchange", "compute_align"]
    assert forwarded[0]["sim_end"] == 1.0
    assert len(tracer.events) == 2  # conservation stream intact


def test_progress_tracer_strides_the_digest_not_the_record():
    job = Job(JobRequest())
    tracer = ProgressTracer(job, phase_stride=3)
    for i in range(7):
        tracer.phase(0, "comm", float(i), 1.0)
    forwarded = [e for e in job.events.snapshot() if e["event"] == "phase"]
    assert len(forwarded) == 3  # phases 0, 3, 6
    assert len(tracer.events) == 7


def test_progress_tracer_emits_percent_against_prediction():
    job = Job(JobRequest())
    tracer = ProgressTracer(job, predicted_wall=float(PROGRESS_EVERY))
    for i in range(PROGRESS_EVERY):
        tracer.phase(0, "comm", float(i), 1.0)
    progress = [e for e in job.events.snapshot() if e["event"] == "progress"]
    assert len(progress) == 1
    assert progress[0]["phases"] == PROGRESS_EVERY
    assert progress[0]["percent"] == 99.0  # capped, never reports 100 early


def test_progress_tracer_forwards_fault_and_churn_instants():
    job = Job(JobRequest())
    tracer = ProgressTracer(job)
    tracer.instant(1, "fault_inject", 2.0, kind="kill")
    tracer.instant(2, "migrate", 3.0, tasks=40)
    tracer.instant(0, "superstep", 1.0)  # not a service-facing instant
    kinds = [e["event"] for e in job.events.snapshot()]
    assert kinds.count("fault") == 1 and kinds.count("churn") == 1
    assert "superstep" not in kinds


def test_progress_tracer_is_the_cancellation_hook():
    job = Job(JobRequest())
    tracer = ProgressTracer(job)
    tracer.phase(0, "comm", 0.0, 1.0)
    job.request_cancel()
    with pytest.raises(JobCancelledError, match="cancelled while running"):
        tracer.phase(0, "comm", 1.0, 1.0)
    with pytest.raises(JobCancelledError):
        tracer.counter(0, "inflight", 1.0, 2.0)
    with pytest.raises(JobCancelledError):
        tracer.instant(0, "fault_inject", 1.0)


def test_service_errors_are_repro_errors():
    from repro.errors import QueueFullError, ReproError

    for exc in (ServiceError, JobStateError, JobCancelledError,
                QueueFullError):
        assert issubclass(exc, ReproError)
    assert issubclass(JobCancelledError, ServiceError)
