"""SPMD execution context shared by all ranks of a micro run."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.report import PhaseTimers
from repro.machine.config import MachineSpec
from repro.machine.engine import Engine
from repro.machine.memory import MemoryTracker
from repro.machine.network import NetworkModel
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = ["SpmdContext"]


@dataclass
class SpmdContext:
    """Everything a simulated rank program needs.

    Rank programs are generators; they charge time to the four breakdown
    categories through :attr:`timers` *and* advance their simulated clock by
    yielding the same number of seconds — the context only centralizes the
    shared machinery (engine, network model, memory tracker, observability).

    Observability: when a :class:`Tracer` is attached, every phase charge
    emits a :class:`~repro.obs.events.PhaseEvent` on the rank's lane, so the
    trace re-sums to exactly the :class:`PhaseTimers` accumulators — the
    property the conservation checker verifies.  :attr:`metrics` is always
    available (a fresh registry by default) for per-rank counters.
    """

    machine: MachineSpec
    engine: Engine = field(default_factory=Engine)
    tracer: Tracer | None = None
    metrics: MetricsRegistry | None = None
    #: fault oracle for this run (a :class:`repro.faults.FaultInjector`),
    #: consulted by the RPC layer and collectives; ``None`` = fault-free.
    #: Typed loosely to keep the runtime importable without repro.faults.
    faults: object | None = None

    def __post_init__(self) -> None:
        self.net = NetworkModel(self.machine)
        self.memory = MemoryTracker(self.machine)
        self.timers = PhaseTimers(self.machine.total_ranks)
        if self.metrics is None:
            self.metrics = MetricsRegistry(self.machine.total_ranks)
        if self.tracer is not None and self.engine.tracer is None:
            self.engine.tracer = self.tracer

    @property
    def num_ranks(self) -> int:
        return self.machine.total_ranks

    def charge(self, category: str, rank: int, seconds: float,
               name: str = "") -> float:
        """Record ``seconds`` under ``category`` and return it (to yield).

        The caller yields the returned value *after* charging, so the traced
        interval is ``[now, now + seconds]``.
        """
        self.timers.add(category, rank, seconds)
        if self.tracer is not None and seconds > 0:
            self.tracer.phase(rank, category, self.engine.now, seconds, name)
        return seconds

    def record(self, category: str, rank: int, seconds: float,
               name: str = "") -> None:
        """Record time that *already elapsed* while the rank was blocked.

        Unlike :meth:`charge` the clock is not advanced again; the traced
        interval is ``[now - seconds, now]`` (the wait just finished).
        """
        self.timers.add(category, rank, seconds)
        if self.tracer is not None and seconds > 0:
            self.tracer.phase(
                rank, category, self.engine.now - seconds, seconds, name
            )
