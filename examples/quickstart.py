#!/usr/bin/env python3
"""Quickstart: the full pipeline on a small synthetic dataset.

Synthesizes a genome and error-laden long reads, finds candidate overlaps
via reliable shared k-mers (the BELLA frequency model), aligns every
candidate with X-drop seed-and-extend, and then compares the paper's two
distributed-memory strategies — bulk-synchronous and asynchronous — on a
simulated multi-node Cori-KNL allocation processing that same workload.

Run:  python examples/quickstart.py
"""

from repro.core import compare_engines, get_workload
from repro.engines.micro import MicroAsyncEngine
from repro.machine.config import cori_knl
from repro.utils.units import fmt_time


def main() -> None:
    # 1. Sequence-level pipeline: synth genome -> reads -> k-mers -> tasks.
    #    (get_workload runs DiBELLA stages 1-2 for sequence-level presets.)
    workload = get_workload("micro", seed=42)
    print(f"workload: {workload.n_reads} reads, {workload.n_tasks} "
          f"alignment tasks (one shared-k-mer seed per candidate pair)")

    # 2. Actually compute the alignments with the real X-drop kernel, on a
    #    small message-level simulation (4 ranks).
    machine = cori_knl(1, app_cores_per_node=4)
    result = MicroAsyncEngine().run(workload, machine, kernel="real")
    alignments = result.alignments
    good = [a for a in alignments if a.score >= 2 * workload.tasks.k]
    print(f"computed {len(alignments)} alignments with the numpy X-drop "
          f"kernel; {len(good)} exceed twice the seed score")
    best = max(alignments, key=lambda a: a.score)
    print(f"best alignment: reads {best.read_a}<->{best.read_b}, "
          f"score {best.score}, extents [{best.begin_a},{best.end_a}) / "
          f"[{best.begin_b},{best.end_b}), reverse={best.reverse}")

    # 3. Compare the two parallelization approaches on a simulated node.
    #    (This dataset is deliberately tiny; run
    #    examples/strong_scaling_study.py for the paper-scale comparison.)
    print("\nBSP vs Async on 1 simulated Cori KNL node (64 ranks):")
    for name, res in compare_engines(workload, nodes=1).items():
        f = res.breakdown.fractions()
        print(f"  {name:5s}: wall {fmt_time(res.wall_time)}  "
              f"align {100 * f['compute_align']:.1f}%  "
              f"comm {100 * f['comm']:.1f}%  "
              f"sync {100 * f['sync']:.1f}%  "
              f"rounds={res.exchange_rounds}")


if __name__ == "__main__":
    main()
