"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "ecoli30x" in out and "human_ccs" in out
    assert "statistical" in out and "sequence-level" in out


def test_run_command(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--engine", "async", "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "async" in out and "wall" in out


def test_compare_command(capsys):
    rc = main(["compare", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bsp" in out and "async is" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "--workload", "micro", "--nodes", "1", "2",
               "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out


def test_comm_only_flag(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8", "--comm-only"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "align   0.0%" in out


def test_parser_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--engine", "mpi"])
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])
