"""Per-figure series builders, ASCII rendering, and the cost-model planner."""

from repro.perf.planner import (
    DEFAULT_KNOB_GRID,
    PlanPoint,
    WorkloadStats,
    knob_grid_points,
    plan,
    predict,
)
from repro.perf.figures import (
    fig3_intranode,
    fig4_single_node,
    fig5_load_imbalance,
    fig6_comm_imbalance,
    fig7_comm_latency,
    fig8_ecoli_scaling,
    fig9_10_human_scaling,
    fig11_12_memory,
    fig13_datastructure,
    table1_workloads,
)
from repro.perf.format import render_table, render_breakdown_rows

__all__ = [
    "fig3_intranode",
    "fig4_single_node",
    "fig5_load_imbalance",
    "fig6_comm_imbalance",
    "fig7_comm_latency",
    "fig8_ecoli_scaling",
    "fig9_10_human_scaling",
    "fig11_12_memory",
    "fig13_datastructure",
    "table1_workloads",
    "render_table",
    "render_breakdown_rows",
    "DEFAULT_KNOB_GRID",
    "PlanPoint",
    "WorkloadStats",
    "knob_grid_points",
    "plan",
    "predict",
]
