"""Ablation: message aggregation in the async engine (paper §5 future work).

"On a high-latency network however, we would expect more aggregation to be
necessary — but how much more depends also on the computation costs."  We
implement coalesced pulls (k reads per RPC) and sweep k in comm-only mode
on a *latency-bound* workload — a protein-search-like dataset with ~250-
character sequences (§2 names protein search as a sibling Generalized
N-Body problem) — on the normal Aries model and on a 500x-latency variant.
The Human CCS workload is bandwidth-bound, so there aggregation only helps
through service-queue relief; with short sequences the per-message and
window-throughput terms dominate and aggregation is decisive.
"""

import dataclasses

from conftest import emit, run_once

from repro.core.api import get_workload, make_machine
from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig

AGGREGATION = (1, 4, 16, 64)
NODES = 64


def sweep():
    wl = get_workload("protein_search", seed=0)
    machine = make_machine(NODES)
    hi_latency = dataclasses.replace(
        machine,
        network=dataclasses.replace(
            machine.network, alpha=machine.network.alpha * 500,
            msg_gap=machine.network.msg_gap * 20,
            rpc_service_gap=machine.network.rpc_service_gap * 20,
        ),
    )
    assignment = wl.assignment(machine.total_ranks)
    rows = []
    for k in AGGREGATION:
        cfg = EngineConfig(async_aggregation=k).comm_only()
        normal = AsyncEngine(config=cfg).run(assignment, machine)
        slow = AsyncEngine(config=cfg).run(assignment, hi_latency)
        rows.append([
            k,
            round(float(normal.details["raw_comm"].mean()), 4),
            round(float(slow.details["raw_comm"].mean()), 4),
        ])
    return {
        "title": f"Ablation: async pull aggregation, protein-search comm-only, "
                 f"{NODES} nodes",
        "columns": ["reads_per_rpc", "latency_s", "latency_s_500x_alpha"],
        "rows": rows,
    }


def test_ablation_async_aggregation(benchmark):
    fig = run_once(benchmark, sweep)
    emit("ablation_async_agg", fig)
    rows = fig["rows"]
    # aggregation never hurts, and on the low-latency Aries model its
    # effect is marginal...
    assert rows[-1][1] <= rows[0][1] * 1.001
    # ...but the high-latency network punishes unaggregated pulls hard and
    # aggregation recovers most of it — "more aggregation is necessary" (§5)
    assert rows[0][2] > 1.5 * rows[0][1]
    assert rows[-1][2] < 0.6 * rows[0][2]
