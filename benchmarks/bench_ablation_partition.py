"""Ablation: task partitioning by count vs by estimated cost (paper §5).

The paper's "blind" partitioning balances task *counts*; it names
semi-static by-cost balancing as future work.  On a concrete workload with
real per-task cost estimates, greedy by-cost assignment cuts the compute
load imbalance that dominates synchronization time.
"""

import numpy as np

from conftest import emit, run_once

from repro.core.api import get_workload
from repro.pipeline.partition import (
    assign_tasks_balanced,
    check_ownership_invariant,
    owners_from_boundaries,
    partition_reads_by_size,
)
from repro.utils.stats import load_imbalance

RANKS = 32


def sweep():
    wl = get_workload("ecoli30x_tiny", seed=5)
    boundaries = partition_reads_by_size(wl.read_lengths, RANKS)
    owner_a = owners_from_boundaries(wl.tasks.read_a, boundaries)
    owner_b = owners_from_boundaries(wl.tasks.read_b, boundaries)

    rows = []
    for policy, costs in (("by-count", None), ("by-cost", wl.task_costs)):
        if costs is None:
            assigned = assign_tasks_balanced(owner_a, owner_b, RANKS)
        else:
            # LPT: feed the greedy stream in descending-cost order
            order = np.argsort(-costs, kind="stable")
            assigned = np.empty_like(owner_a)
            assigned[order] = assign_tasks_balanced(
                owner_a[order], owner_b[order], RANKS, costs=costs[order]
            )
        check_ownership_invariant(assigned, owner_a, owner_b)
        loads = np.zeros(RANKS)
        np.add.at(loads, assigned, wl.task_costs)
        counts = np.bincount(assigned, minlength=RANKS)
        rows.append([
            policy,
            round(load_imbalance(loads), 3),
            round(load_imbalance(counts.astype(float)), 3),
        ])
    return {
        "title": f"Ablation: task partitioning policy ({RANKS} ranks, "
                 "concrete E. coli-like workload)",
        "columns": ["policy", "cost_imbalance", "count_imbalance"],
        "rows": rows,
    }


def test_ablation_partition(benchmark):
    fig = run_once(benchmark, sweep)
    emit("ablation_partition", fig)
    by_count, by_cost = fig["rows"]
    # by-cost (LPT) assignment sharply reduces compute-load imbalance
    assert by_cost[1] < by_count[1]
    assert by_cost[1] < 1.0 + 0.6 * (by_count[1] - 1.0)
