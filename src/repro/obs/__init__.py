"""Observability: event tracing, per-rank metrics, conservation checking.

The paper's entire argument rests on per-phase time accounting — the
stacked compute/overhead/comm/sync bars of Figures 8–10 — so this package
makes where time goes *observable* rather than merely summed:

* :class:`Tracer` — typed event stream (phase charges, rendezvous
  arrivals, RPC issue/callback, superstep boundaries) exporting to Chrome
  trace-format JSON with one lane per rank, loadable in ``chrome://tracing``
  or Perfetto;
* :class:`MetricsRegistry` — per-rank counters (messages, bytes, cells,
  window occupancy) with min/avg/max/sum rollups;
* :mod:`~repro.obs.conservation` — asserts per rank that
  ``compute + overhead + comm + sync == wall`` both from the breakdown
  accumulators and, independently, by re-summing the emitted trace.

A process-wide *default tracer* supports ambient wiring (the benchmark
suite installs one when ``REPRO_BENCH_TRACE`` is set); engines resolve it
whenever no tracer is passed explicitly.

See ``docs/OBSERVABILITY.md`` for the event schema and viewer workflow.
"""

from __future__ import annotations

from repro.obs.conservation import (
    ConservationReport,
    assert_conserved,
    check_breakdown,
    check_trace,
)
from repro.obs.events import (
    ENGINE_LANE,
    CounterEvent,
    InstantEvent,
    MetaEvent,
    PhaseEvent,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

__all__ = [
    "Tracer",
    "MetricsRegistry",
    "ConservationReport",
    "check_breakdown",
    "check_trace",
    "assert_conserved",
    "PhaseEvent",
    "InstantEvent",
    "CounterEvent",
    "MetaEvent",
    "ENGINE_LANE",
    "get_default_tracer",
    "set_default_tracer",
]

_default_tracer: Tracer | None = None


def set_default_tracer(tracer: Tracer | None) -> None:
    """Install (or clear, with ``None``) the ambient process-wide tracer."""
    global _default_tracer
    _default_tracer = tracer


def get_default_tracer() -> Tracer | None:
    """The ambient tracer, if one is installed."""
    return _default_tracer
