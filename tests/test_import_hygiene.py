"""The CI import-hygiene check, run as a test.

Mirrors ``tools/check_imports.py``: the real source tree must have no
module-level import cycles and none of the banned cross-imports (engine
siblings; utils reaching up the stack).  The synthetic cases prove the
checker actually detects what it claims to.
"""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_imports  # noqa: E402


def test_source_tree_is_clean():
    problems = check_imports.run(REPO_ROOT / "src")
    assert problems == []


def test_engine_modules_do_not_cross_import():
    graph = check_imports.build_graph(REPO_ROOT / "src")
    for name in check_imports.ENGINE_IMPLS:
        assert name in graph, f"engine module {name} missing from graph"
        crossed = graph[name] & check_imports.ENGINE_IMPLS
        assert not crossed, f"{name} imports sibling engine(s) {crossed}"


def _write_pkg(root: Path, files: dict[str, str]) -> Path:
    for rel, body in files.items():
        path = root / "repro" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(body))
    return root


def test_detects_cycle(tmp_path):
    _write_pkg(tmp_path, {
        "__init__.py": "",
        "a.py": "from repro.b import thing\n",
        "b.py": "from repro.a import other\n",
    })
    problems = check_imports.run(tmp_path)
    assert any("import cycle" in p for p in problems)


def test_function_local_import_breaks_cycle(tmp_path):
    _write_pkg(tmp_path, {
        "__init__.py": "",
        "a.py": "from repro.b import thing\n",
        "b.py": "def f():\n    from repro.a import other\n    return other\n",
    })
    assert check_imports.run(tmp_path) == []


def test_detects_banned_sibling_engine_import(tmp_path):
    _write_pkg(tmp_path, {
        "__init__.py": "",
        "engines/__init__.py": "",
        "engines/bsp.py": "from repro.engines.async_ import x\n",
        "engines/async_.py": "",
    })
    problems = check_imports.run(tmp_path)
    assert any("sibling engine" in p for p in problems)


def test_detects_utils_layering_violation(tmp_path):
    _write_pkg(tmp_path, {
        "__init__.py": "",
        "utils/__init__.py": "",
        "utils/helper.py": "from repro.core.api import run_alignment\n",
        "core/__init__.py": "",
        "core/api.py": "",
    })
    problems = check_imports.run(tmp_path)
    assert any("bottom layer" in p for p in problems)


def test_detects_service_layering_violation(tmp_path):
    # repro.service is the top layer: the library below must not reach it
    _write_pkg(tmp_path, {
        "__init__.py": "",
        "core/__init__.py": "",
        "core/api.py": "from repro.service.queue import RunQueue\n",
        "service/__init__.py": "",
        "service/queue.py": "",
    })
    problems = check_imports.run(tmp_path)
    assert any("top layer" in p for p in problems)


def test_cli_reaches_service_only_lazily():
    graph = check_imports.build_graph(REPO_ROOT / "src")
    service_deps = {d for d in graph["repro.cli"]
                    if d.startswith("repro.service")}
    assert not service_deps, (
        "repro.cli must import repro.service inside the serve command, "
        f"not at module level: {service_deps}"
    )
