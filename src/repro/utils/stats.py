"""Summary statistics mirroring the paper's global reductions.

The paper computes per-run minimum / maximum / average / sum across parallel
processors via global reductions (excluded from timed regions), and reports
*load imbalance* as ``max / avg`` — the factor by which the slowest processor
exceeds the mean.  :class:`Summary` is the library-wide container for those
four reductions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "load_imbalance"]


@dataclass(frozen=True)
class Summary:
    """min/avg/max/sum reduction over one per-processor quantity."""

    min: float
    avg: float
    max: float
    sum: float
    count: int

    @property
    def imbalance(self) -> float:
        """Load imbalance factor ``max / avg`` (1.0 = perfectly balanced)."""
        return self.max / self.avg if self.avg > 0 else 1.0

    @property
    def spread(self) -> float:
        """Absolute spread ``max - min`` (Figure 6 plots this for bytes)."""
        return self.max - self.min

    def scaled(self, factor: float) -> "Summary":
        """Return a copy with every statistic multiplied by ``factor``."""
        return Summary(
            min=self.min * factor,
            avg=self.avg * factor,
            max=self.max * factor,
            sum=self.sum * factor,
            count=self.count,
        )

    def __add__(self, other: "Summary") -> "Summary":
        """Element-wise combination for *aligned* per-rank quantities.

        Valid only when both summaries reduce the same processor set and the
        extrema coincide on the same ranks (e.g. phases accumulated on the
        critical path); used for coarse roll-ups, not exact reductions.
        """
        if not isinstance(other, Summary):
            return NotImplemented
        if self.count != other.count:
            raise ValueError("cannot combine summaries over different rank counts")
        return Summary(
            min=self.min + other.min,
            avg=self.avg + other.avg,
            max=self.max + other.max,
            sum=self.sum + other.sum,
            count=self.count,
        )


def summarize(values: np.ndarray | list[float]) -> Summary:
    """Reduce a per-processor vector to a :class:`Summary`."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return Summary(min=0.0, avg=0.0, max=0.0, sum=0.0, count=0)
    return Summary(
        min=float(arr.min()),
        avg=float(arr.mean()),
        max=float(arr.max()),
        sum=float(arr.sum()),
        count=int(arr.size),
    )


def load_imbalance(values: np.ndarray | list[float]) -> float:
    """``max/avg`` load-imbalance factor of a per-processor vector."""
    return summarize(values).imbalance
