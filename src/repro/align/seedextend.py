"""Seed-and-extend pairwise alignment (the per-task kernel).

Treats the shared k-mer as fixed (matching, error-free) between the two
reads and extends the alignment forward and backward from it with X-drop
(paper Figure 1).  One seed is extended per candidate pair, as in the
paper's experiments.

Reverse-orientation candidates are handled by extending against the reverse
complement of read *b*, with the seed position mapped into the flipped
coordinate frame; reported extents for *b* are in that oriented frame with
``reverse=True`` recorded (paper Figure 2: overlaps occur in either relative
orientation).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.scoring import DEFAULT_SCORING, ScoringScheme
from repro.align.xdrop import XDropExtender
from repro.errors import AlignmentError
from repro.genome import alphabet

__all__ = ["Alignment", "SeedExtendAligner"]


@dataclass(frozen=True)
class Alignment:
    """Result of one seed-and-extend pairwise alignment task.

    Extents are half-open: read a's aligned region is ``[begin_a, end_a)``;
    read b's is ``[begin_b, end_b)`` *in the oriented frame* (b's forward
    strand when ``reverse`` is False, b's reverse complement otherwise).
    """

    read_a: int
    read_b: int
    score: int
    begin_a: int
    end_a: int
    begin_b: int
    end_b: int
    reverse: bool
    cells: int
    terminated_early: bool

    @property
    def aligned_length_a(self) -> int:
        return self.end_a - self.begin_a

    @property
    def aligned_length_b(self) -> int:
        return self.end_b - self.begin_b

    def overlap_class(self, len_a: int, len_b: int, slack: int = 50) -> str:
        """Classify the overlap shape (paper Figure 2).

        ``contains`` / ``contained``: one read spans the other;
        ``dovetail``: proper suffix-prefix overlap; ``internal``: the
        alignment ends in the middle of both reads (often a false positive
        or a repeat-induced local match).
        """
        a_at_start = self.begin_a <= slack
        a_at_end = self.end_a >= len_a - slack
        b_at_start = self.begin_b <= slack
        b_at_end = self.end_b >= len_b - slack
        if a_at_start and a_at_end:
            return "contained"
        if b_at_start and b_at_end:
            return "contains"
        if (a_at_end and b_at_start) or (b_at_end and a_at_start):
            return "dovetail"
        return "internal"


@dataclass(frozen=True)
class SeedExtendAligner:
    """X-drop seed-and-extend aligner over code arrays."""

    x_drop: int = 15
    scoring: ScoringScheme = DEFAULT_SCORING

    def _extender(self) -> XDropExtender:
        return XDropExtender(x_drop=self.x_drop, scoring=self.scoring)

    def align(
        self,
        codes_a: np.ndarray,
        codes_b: np.ndarray,
        pos_a: int,
        pos_b: int,
        k: int,
        reverse: bool = False,
        read_a: int = -1,
        read_b: int = -1,
    ) -> Alignment:
        """Extend the seed at ``(pos_a, pos_b)`` of length ``k``.

        ``pos_b`` is on b's forward strand; for ``reverse`` candidates it is
        mapped to the reverse-complement frame before extension.
        """
        codes_a = np.asarray(codes_a, dtype=np.uint8)
        codes_b = np.asarray(codes_b, dtype=np.uint8)
        la, lb = codes_a.size, codes_b.size
        if not (0 <= pos_a and pos_a + k <= la):
            raise AlignmentError(f"seed [{pos_a}, {pos_a + k}) outside read a (len {la})")
        if not (0 <= pos_b and pos_b + k <= lb):
            raise AlignmentError(f"seed [{pos_b}, {pos_b + k}) outside read b (len {lb})")

        if reverse:
            oriented_b = alphabet.reverse_complement(codes_b)
            pos_b = lb - (pos_b + k)
        else:
            oriented_b = codes_b

        extender = self._extender()
        right = extender.extend(codes_a[pos_a + k:], oriented_b[pos_b + k:])
        left = extender.extend_left(codes_a[:pos_a], oriented_b[:pos_b])

        score = self.scoring.perfect_score(k) + right.score + left.score
        return Alignment(
            read_a=read_a,
            read_b=read_b,
            score=score,
            begin_a=pos_a - left.length_a,
            end_a=pos_a + k + right.length_a,
            begin_b=pos_b - left.length_b,
            end_b=pos_b + k + right.length_b,
            reverse=reverse,
            cells=right.cells + left.cells,
            terminated_early=right.terminated_early or left.terminated_early,
        )

    def align_candidate(self, reads, candidate) -> Alignment:
        """Align a :class:`repro.kmer.seeds.Candidate` over a ReadSet."""
        return self.align(
            reads.codes(candidate.read_a),
            reads.codes(candidate.read_b),
            candidate.pos_a,
            candidate.pos_b,
            candidate.k,
            reverse=candidate.reverse,
            read_a=int(reads.ids[candidate.read_a]),
            read_b=int(reads.ids[candidate.read_b]),
        )
