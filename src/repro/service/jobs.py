"""Jobs: one client-submitted engine run, as an explicit state machine.

A :class:`Job` wraps exactly one :func:`repro.core.api.run_alignment`
invocation (any registered engine, including ``engine="auto"`` via the
cost-model planner) and moves through::

    QUEUED -> ADMITTED -> RUNNING -> DONE
         \\-> DONE (cache hit / coalesced)    RUNNING -> FAILED
         \\-> CANCELLED                       RUNNING -> CANCELLED

Transitions are validated (:class:`~repro.errors.JobStateError` on an
illegal move), timestamped, and mirrored as ``state`` events into the
job's :class:`~repro.service.events.JobEventLog`, so a client streaming
the job sees the same machine this module enforces.

Failures are captured *typed*: the exception class name and message land
in ``job.error`` (``ReproError`` subclasses keep their subsystem-specific
names — ``RankFailureError``, ``WorkerCrashError``, ... — which is what a
client needs to decide between retry and reconfigure).

:class:`JobRequest` is the canonical submission: workload + engine +
knobs + fault spec.  Its :meth:`~JobRequest.cache_key` is the result
cache's identity — a SHA-256 over every field that can move a result bit,
and *only* those: the compute backend knobs (``backend``/``workers``/
``chunk_tasks``) and the sharding knobs (``shard_tasks``/
``max_resident_shards``) are excluded because the executor and sharded
layers are contractually bit-identical to their serial/materialized
counterparts (pinned by the golden-signature suite), so requests that
differ only there share one cache entry.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
import time
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

from repro.engines.base import EngineConfig
from repro.engines.registry import available_engines, get_engine
from repro.engines.report import RunResult
from repro.errors import ConfigurationError, JobStateError
from repro.genome.datasets import DATASETS
from repro.service.events import JobEventLog, ProgressTracer

__all__ = ["JobState", "JobRequest", "Job", "TERMINAL_STATES",
           "execute_request", "EXECUTION_ONLY_KNOBS"]


class JobState:
    """The job lifecycle vocabulary (plain strings: JSON-friendly)."""

    QUEUED = "QUEUED"
    ADMITTED = "ADMITTED"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"


TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED}
)

_TRANSITIONS: dict[str, frozenset[str]] = {
    JobState.QUEUED: frozenset({JobState.ADMITTED, JobState.DONE,
                                JobState.FAILED, JobState.CANCELLED}),
    JobState.ADMITTED: frozenset({JobState.RUNNING, JobState.CANCELLED,
                                  JobState.FAILED}),
    JobState.RUNNING: frozenset({JobState.DONE, JobState.FAILED,
                                 JobState.CANCELLED}),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}

#: EngineConfig knobs that cannot move a result bit (docs/PARALLEL.md's
#: determinism contract) and are therefore excluded from the cache key
EXECUTION_ONLY_KNOBS = ("backend", "workers", "chunk_tasks")


@dataclass(frozen=True)
class JobRequest:
    """One canonical run submission.

    ``config`` holds :class:`~repro.engines.base.EngineConfig` field
    overrides by name (the HTTP layer passes the request JSON's
    ``config`` object straight through); unknown names are rejected.
    ``priority`` breaks FIFO order in the queue (higher first) and is
    *not* part of the cache identity.
    """

    workload: str = "micro"
    seed: int = 0
    shard_tasks: int = 0
    max_resident_shards: int = 4
    engine: str = "bsp"
    nodes: int = 2
    cores_per_node: int = 8
    kernel: str = "model"
    faults: str | None = None
    fault_seed: int = 0
    comm_only: bool = False
    config: Mapping[str, Any] = field(default_factory=dict)
    priority: int = 0

    _CONFIG_FIELDS = frozenset(f.name for f in fields(EngineConfig))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Build and validate a request from decoded JSON."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown request field(s) {sorted(unknown)}; "
                f"accepted: {sorted(known)}"
            )
        req = cls(**payload)
        req.validate()
        return req

    def engine_config(self) -> EngineConfig:
        """The resolved :class:`EngineConfig` (overrides applied, validated)."""
        overrides = dict(self.config)
        bad = set(overrides) - self._CONFIG_FIELDS
        if bad:
            raise ConfigurationError(
                f"unknown EngineConfig override(s) {sorted(bad)}; "
                f"accepted: {sorted(self._CONFIG_FIELDS)}"
            )
        cfg = replace(EngineConfig(), **overrides)
        return cfg.comm_only() if self.comm_only else cfg

    def validate(self) -> None:
        """Fail fast — a request that cannot run is rejected at submit."""
        if self.workload not in DATASETS:
            raise ConfigurationError(
                f"unknown workload {self.workload!r}; "
                f"available: {sorted(DATASETS)}"
            )
        if self.engine != "auto":
            get_engine(self.engine)  # ConfigurationError on typos
        if self.kernel not in ("model", "real"):
            raise ConfigurationError(
                f"kernel must be 'model' or 'real', got {self.kernel!r}"
            )
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ConfigurationError(
                "nodes and cores_per_node must be >= 1"
            )
        if self.shard_tasks < 0 or self.max_resident_shards < 1:
            raise ConfigurationError(
                "shard_tasks must be >= 0 and max_resident_shards >= 1"
            )
        cfg = self.engine_config()  # validates the overrides
        micro = self.engine != "auto" and get_engine(self.engine).is_micro
        if not micro and (self.kernel != "model" or cfg.backend != "serial"
                          or cfg.workers != 1 or cfg.chunk_tasks != 0):
            raise ConfigurationError(
                "kernel/backend/workers/chunk_tasks apply to micro engines "
                f"only; {self.engine!r} plans over analytic models that "
                "never invoke the kernel"
            )
        if micro and not DATASETS[self.workload].sequence_level:
            raise ConfigurationError(
                f"engine {self.engine!r} is a message-level engine and "
                f"needs a sequence-level workload; {self.workload!r} is "
                f"a statistical preset"
            )
        if self.faults:
            from repro.faults import parse_fault_spec

            parse_fault_spec(self.faults)  # ConfigurationError on bad specs

    def cache_key(self) -> str:
        """SHA-256 identity over every result-affecting field.

        Execution-only knobs (:data:`EXECUTION_ONLY_KNOBS`) and the
        sharding knobs are deliberately absent: both layers are
        bit-identical by contract, so e.g. a ``backend="process"``
        resubmission of a cached serial run is a hit.
        """
        cfg = self.engine_config()
        parts = [
            f"workload={self.workload}", f"seed={self.seed}",
            f"engine={self.engine}", f"nodes={self.nodes}",
            f"cores={self.cores_per_node}", f"kernel={self.kernel}",
            f"faults={self.faults or ''}", f"fault_seed={self.fault_seed}",
        ]
        for f in sorted(self._CONFIG_FIELDS - set(EXECUTION_ONLY_KNOBS)):
            value = getattr(cfg, f)
            if isinstance(value, float):
                value = value.hex()
            parts.append(f"cfg.{f}={value}")
        return hashlib.sha256("\x1f".join(parts).encode()).hexdigest()

    def summary(self) -> dict:
        """The request as a JSON-safe dict (status endpoints)."""
        return {
            "workload": self.workload, "seed": self.seed,
            "engine": self.engine, "nodes": self.nodes,
            "cores_per_node": self.cores_per_node, "kernel": self.kernel,
            "faults": self.faults, "fault_seed": self.fault_seed,
            "comm_only": self.comm_only,
            "shard_tasks": self.shard_tasks,
            "max_resident_shards": self.max_resident_shards,
            "config": dict(self.config), "priority": self.priority,
        }


_job_ids = itertools.count(1)


def _next_job_id() -> str:
    return f"job-{next(_job_ids)}"


class Job:
    """One submission moving through the lifecycle.

    Thread-safe: the queue's worker threads drive transitions while HTTP
    handler threads poll ``state`` and stream ``events``.  ``wait()``
    blocks until the job reaches a terminal state.
    """

    def __init__(self, request: JobRequest, job_id: str | None = None):
        self.id = job_id or _next_job_id()
        self.request = request
        self.priority = request.priority
        self.events = JobEventLog()
        self.result: RunResult | None = None
        self.error: dict | None = None
        self.cache_hit = False
        #: ``"cache"`` (served from the result cache), ``"coalesced"``
        #: (follower of an identical in-flight job), or ``None`` (fresh)
        self.cache_source: str | None = None
        #: leader job id when this submission was coalesced
        self.coalesced_into: str | None = None
        #: admission budget the queue reserved: {"workers": n, "bytes": b}
        self.budget: dict = {}
        self.created_at = time.time()
        self.admitted_at: float | None = None
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._state = JobState.QUEUED
        self._lock = threading.Lock()
        self._cancel = threading.Event()
        self._done = threading.Event()
        self.events.append("state", state=self._state, job=self.id)

    # -- state machine -------------------------------------------------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def done(self) -> bool:
        return self._state in TERMINAL_STATES

    @property
    def cancel_requested(self) -> bool:
        return self._cancel.is_set()

    def _transition(self, new_state: str, **event_args: Any) -> None:
        with self._lock:
            if new_state not in _TRANSITIONS[self._state]:
                raise JobStateError(
                    f"job {self.id}: illegal transition "
                    f"{self._state} -> {new_state}"
                )
            self._state = new_state
            self.events.append("state", state=new_state, job=self.id,
                               **event_args)
            if new_state in TERMINAL_STATES:
                self.finished_at = time.time()
                self.events.append(
                    "done", state=new_state, job=self.id,
                    cache_hit=self.cache_hit,
                    error=self.error,
                )
                self.events.close()
                self._done.set()

    def mark_admitted(self) -> None:
        self.admitted_at = time.time()
        self._transition(JobState.ADMITTED)

    def mark_running(self) -> None:
        self.started_at = time.time()
        self._transition(JobState.RUNNING)

    def finish(self, result: RunResult, cache_hit: bool = False,
               source: str | None = None) -> None:
        self.result = result
        self.cache_hit = cache_hit
        self.cache_source = source
        self._transition(JobState.DONE, cache_hit=cache_hit)

    def fail(self, exc: BaseException) -> None:
        """Typed error capture: class name + message, never a traceback."""
        self.error = {"type": type(exc).__name__, "message": str(exc)}
        self._transition(JobState.FAILED, error=self.error)

    def cancelled(self, reason: str) -> None:
        self.error = {"type": "JobCancelledError", "message": reason}
        self._transition(JobState.CANCELLED, reason=reason)

    def request_cancel(self) -> None:
        """Flag the job; a running engine aborts at its next trace event."""
        self._cancel.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; True when the job finished in time."""
        return self._done.wait(timeout)

    def as_dict(self) -> dict:
        """JSON-safe status view (the ``GET /jobs/{id}`` body)."""
        return {
            "id": self.id,
            "state": self._state,
            "priority": self.priority,
            "request": self.request.summary(),
            "cache_hit": self.cache_hit,
            "cache_source": self.cache_source,
            "coalesced_into": self.coalesced_into,
            "error": self.error,
            "budget": dict(self.budget),
            "created_at": self.created_at,
            "admitted_at": self.admitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "events": len(self.events),
        }


# -- execution ---------------------------------------------------------------

#: serializes workload/machine construction and per-P cache warming: the
#: underlying LRU caches (workload, machine, assignment, micro plan) are
#: plain OrderedDicts shared across the queue's worker threads
_PREP_LOCK = threading.Lock()


def _predicted_wall(workload, machine, engine: str,
                    config: EngineConfig) -> float | None:
    """Planner prediction for percent-complete, when a cost hook exists."""
    from repro.engines.registry import get_cost_hook

    if engine == "auto" or get_cost_hook(engine) is None:
        return None
    from repro.perf.planner import WorkloadStats, predict

    try:
        point = predict(WorkloadStats.from_workload(workload, machine),
                        machine, engine, config)
    except ConfigurationError:
        return None
    return point.predicted_wall if point.feasible else None


def execute_request(job: Job, phase_stride: int = 1) -> RunResult:
    """Run one job's request with a progress tracer attached.

    Called from a queue worker thread with the job already RUNNING.
    Workload/machine construction and assignment rendering happen under
    :data:`_PREP_LOCK` (the process-wide LRU caches are not thread-safe);
    the engine run itself proceeds concurrently with other jobs.
    """
    from repro.core.api import get_workload, make_machine, run_alignment

    req = job.request
    config = req.engine_config()
    with _PREP_LOCK:
        workload = get_workload(
            req.workload, seed=req.seed, shard_tasks=req.shard_tasks,
            max_resident_shards=req.max_resident_shards,
        )
        machine = make_machine(req.nodes, req.cores_per_node)
        # warm the per-P caches so concurrent runs only read them
        if req.engine != "auto" and get_engine(req.engine).is_micro:
            workload.micro_plan(machine.total_ranks)
        workload.assignment(machine.total_ranks)
        predicted = _predicted_wall(workload, machine, req.engine, config)
    tracer = ProgressTracer(job, predicted_wall=predicted,
                            phase_stride=phase_stride)
    fault_plan = None
    if req.faults:
        from repro.faults import parse_fault_spec

        fault_plan = parse_fault_spec(req.faults)
    return run_alignment(
        workload, req.nodes, req.engine, config=config,
        cores_per_node=req.cores_per_node, machine=machine,
        tracer=tracer, fault_plan=fault_plan, fault_seed=req.fault_seed,
        kernel=req.kernel,
    )


def known_engines() -> tuple[str, ...]:
    """Engine choices a request may name (registry + ``auto``)."""
    return tuple(available_engines()) + ("auto",)
