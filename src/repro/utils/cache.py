"""A small, counted LRU cache.

Used to bound the memoization that used to grow without limit: the driver
API's workload cache and the per-rank-count ``assignment``/``micro_plan``
caches inside the workload classes.  Entries are cheap to rebuild, so the
caps can stay small; the hit/miss/eviction counters exist so tests (and
``scaling_sweep``) can *prove* reuse — e.g. that a three-node-count sweep
computes each assignment exactly once.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import ConfigurationError

__all__ = ["LruCache"]

_MISSING = object()


class LruCache:
    """Least-recently-used mapping with a fixed capacity and counters.

    ``get`` refreshes recency; inserting beyond ``maxsize`` evicts the
    least recently used entry.  ``hits`` / ``misses`` / ``evictions``
    count since construction or the last :meth:`clear`.
    """

    def __init__(self, maxsize: int = 8):
        if maxsize < 1:
            raise ConfigurationError("LruCache maxsize must be >= 1")
        self.maxsize = int(maxsize)
        self._data: OrderedDict = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

    def get(self, key, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self.misses += 1
            return default
        self.hits += 1
        self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def get_or_create(self, key, factory):
        """Cached value for ``key``, building it with ``factory()`` on miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        value = factory()
        self.put(key, value)
        return value

    def resize(self, maxsize: int) -> None:
        """Change capacity, evicting LRU entries if shrinking."""
        if maxsize < 1:
            raise ConfigurationError("LruCache maxsize must be >= 1")
        self.maxsize = int(maxsize)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        return {
            "size": len(self._data),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }
