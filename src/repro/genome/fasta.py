"""FASTA/FASTQ reading and writing for :class:`ReadSet`.

The paper's codes use scalable parallel file I/O that is explicitly excluded
from its timing analysis (§4); here plain serial FASTA/FASTQ suffices for
persisting synthetic datasets and interoperating with external tools.
"""

from __future__ import annotations

from pathlib import Path


from repro.errors import SequenceError
from repro.genome import alphabet
from repro.genome.sequence import ReadSet

__all__ = ["write_fasta", "read_fasta", "write_fastq", "read_fastq"]

_LINE_WIDTH = 80


def _open(path_or_file, mode: str):
    if isinstance(path_or_file, (str, Path)):
        return open(path_or_file, mode), True
    return path_or_file, False


def write_fasta(reads: ReadSet, path_or_file) -> None:
    """Write reads as FASTA; record names default to ``read_<globalid>``."""
    fh, owned = _open(path_or_file, "w")
    try:
        for i in range(len(reads)):
            name = (
                reads.names[i]
                if reads.names and reads.names[i]
                else f"read_{int(reads.ids[i])}"
            )
            fh.write(f">{name}\n")
            seq = alphabet.decode(reads.codes(i))
            for j in range(0, len(seq), _LINE_WIDTH):
                fh.write(seq[j: j + _LINE_WIDTH])
                fh.write("\n")
    finally:
        if owned:
            fh.close()


def read_fasta(path_or_file) -> ReadSet:
    """Parse a FASTA file into a :class:`ReadSet` (ids are record order)."""
    fh, owned = _open(path_or_file, "r")
    try:
        names: list[str] = []
        seqs: list[str] = []
        current: list[str] = []
        for raw in fh:
            line = raw.strip()
            if not line:
                continue
            if line.startswith(">"):
                if names:
                    seqs.append("".join(current))
                names.append(line[1:].split()[0] if len(line) > 1 else "")
                current = []
            else:
                if not names:
                    raise SequenceError("FASTA sequence data before first header")
                current.append(line)
        if names:
            seqs.append("".join(current))
        if len(names) != len(seqs):
            raise SequenceError("malformed FASTA: header/sequence count mismatch")
        return ReadSet.from_strings(seqs, names=names)
    finally:
        if owned:
            fh.close()


def write_fastq(reads: ReadSet, path_or_file, quality_char: str = "I") -> None:
    """Write reads as FASTQ with a constant placeholder quality string."""
    fh, owned = _open(path_or_file, "w")
    try:
        for i in range(len(reads)):
            name = (
                reads.names[i]
                if reads.names and reads.names[i]
                else f"read_{int(reads.ids[i])}"
            )
            seq = alphabet.decode(reads.codes(i))
            fh.write(f"@{name}\n{seq}\n+\n{quality_char * len(seq)}\n")
    finally:
        if owned:
            fh.close()


def read_fastq(path_or_file) -> ReadSet:
    """Parse a (4-line-record) FASTQ file; qualities are discarded."""
    fh, owned = _open(path_or_file, "r")
    try:
        names: list[str] = []
        seqs: list[str] = []
        while True:
            header = fh.readline()
            if not header:
                break
            header = header.strip()
            if not header:
                continue
            if not header.startswith("@"):
                raise SequenceError(f"malformed FASTQ header: {header[:20]!r}")
            seq = fh.readline().strip()
            plus = fh.readline()
            qual = fh.readline()
            if not qual:
                raise SequenceError("truncated FASTQ record")
            if not plus.startswith("+"):
                raise SequenceError("malformed FASTQ separator line")
            if len(qual.strip()) != len(seq):
                raise SequenceError("FASTQ quality length != sequence length")
            names.append(header[1:].split()[0] if len(header) > 1 else "")
            seqs.append(seq)
        return ReadSet.from_strings(seqs, names=names)
    finally:
        if owned:
            fh.close()
