"""Analytic network timing models over a :class:`MachineSpec`.

Collective and point-to-point costs follow LogGP/Hockney-style formulas
(DESIGN.md §2): event-per-message simulation at 32K ranks would need O(P^2)
events per superstep, so communication phases are modeled per rank.

**Irregular all-to-all (BSP path).**  The exchange completes when the most
loaded rank finishes (blocking-collective semantics — this is where the
exchange load imbalance of Figure 6 bites), at a bandwidth that depends on
the *per-source aggregate message size*: multi-MB aggregates stream at the
NIC/bisection share, while a workload spread thin over many ranks degrades
to protocol-dominated small messages (``msg_half_size``).  This reproduces
the paper's observation that BSP latency scales sublinearly at scale
(Figure 7) while being very efficient when aggregation is effective.

**RPC pulls (Async path).**  Each rank pulls its distinct remote reads with
bounded outstanding requests, while serving incoming lookups.  Payload moves
at ``async_bw_efficiency`` of the schedulable bandwidth (unpaced fine-grained
traffic), plus per-message injection and service gaps, plus a degraded
regime when a rank's incoming queue is very deep (the 8-16-node hump of
Figure 7, §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.config import MachineSpec

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Timing formulas bound to one machine configuration."""

    machine: MachineSpec

    # -- basic shares -------------------------------------------------------

    @property
    def rank_bw(self) -> float:
        """NIC bandwidth share of one rank (bytes/s)."""
        net = self.machine.network
        return net.injection_bw / self.machine.app_cores_per_node

    @property
    def bisection_bw(self) -> float:
        """Machine-wide global bandwidth for all-to-all traffic (bytes/s)."""
        net = self.machine.network
        return self.machine.nodes * net.injection_bw * net.bisection_taper

    def schedulable_rank_bw(self) -> float:
        """Per-rank bandwidth ceiling for well-scheduled bulk traffic.

        The smaller of the NIC share and this rank's share of bisection
        bandwidth; on a single node, the intranode (memory) share instead.
        """
        if self.machine.nodes == 1:
            return self.machine.node.intranode_bw / self.machine.app_cores_per_node
        bisection_share = self.bisection_bw / self.machine.total_ranks
        return min(self.rank_bw, bisection_share)

    def message_size_efficiency(self, avg_msg_bytes: float) -> float:
        """Bandwidth fraction achieved at a given aggregate message size."""
        net = self.machine.network
        if self.machine.nodes == 1:
            return 1.0
        m = max(1.0, float(avg_msg_bytes))
        eff = m / (m + net.msg_half_size) if net.msg_half_size > 0 else 1.0
        return min(eff, net.alltoallv_peak_efficiency)

    # -- point to point ------------------------------------------------------

    def ptp_time(self, nbytes: float) -> float:
        """One message of ``nbytes``: latency + serialization."""
        net = self.machine.network
        return net.alpha + net.msg_overhead + nbytes / self.rank_bw

    def rpc_round_trip(self, request_bytes: float, response_bytes: float) -> float:
        """Unloaded RPC: request out, remote lookup, response back."""
        net = self.machine.network
        return (
            2 * net.alpha
            + 2 * net.msg_overhead
            + net.rpc_service_gap
            + (request_bytes + response_bytes) / self.rank_bw
        )

    # -- collectives ---------------------------------------------------------

    def barrier_time(self) -> float:
        """Dissemination barrier: ceil(log2(P)) rounds of small messages."""
        p = self.machine.total_ranks
        if p <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(p)))
        return rounds * self.machine.network.barrier_latency

    def allreduce_time(self, nbytes: float = 8.0) -> float:
        """Small allreduce: reduce + broadcast trees carrying ``nbytes``."""
        p = self.machine.total_ranks
        if p <= 1:
            return 0.0
        rounds = int(np.ceil(np.log2(p)))
        per_hop = self.machine.network.barrier_latency + nbytes / self.rank_bw
        return 2 * rounds * per_hop

    def alltoallv_time(
        self,
        max_send_bytes: float,
        max_recv_bytes: float,
        avg_sources: float,
        efficiency_scale: float = 1.0,
    ) -> float:
        """Duration of one irregular all-to-all exchange round.

        ``avg_sources`` is the typical number of peers a rank exchanges
        nonempty messages with; it sets the per-source aggregate size and
        hence the achieved bandwidth fraction.  ``efficiency_scale`` lets
        callers model further degradation (e.g. memory-limited multi-round
        buffering that cannot pipeline pack/unpack with transmission).
        """
        p = self.machine.total_ranks
        net = self.machine.network
        volume = max(float(max_send_bytes), float(max_recv_bytes))
        sources = max(1.0, min(float(avg_sources), p - 1.0)) if p > 1 else 1.0
        eff = self.message_size_efficiency(volume / sources) * efficiency_scale
        setup = (p - 1) * net.msg_overhead if p > 1 else 0.0
        return setup + volume / (self.schedulable_rank_bw() * eff) + self.barrier_time()

    def alltoallv_rank_time(
        self,
        own_send_bytes: float,
        own_recv_bytes: float,
        avg_sources: float,
        efficiency_scale: float = 1.0,
    ) -> float:
        """The *personal* (pre-wait) cost of one rank in the exchange.

        The difference between the collective duration and this value is
        time spent waiting on more-loaded ranks.
        """
        p = self.machine.total_ranks
        net = self.machine.network
        volume = max(float(own_send_bytes), float(own_recv_bytes))
        sources = max(1.0, min(float(avg_sources), p - 1.0)) if p > 1 else 1.0
        eff = self.message_size_efficiency(volume / sources) * efficiency_scale
        setup = (p - 1) * net.msg_overhead if p > 1 else 0.0
        return setup + volume / (self.schedulable_rank_bw() * eff)

    # -- asynchronous RPC batches ---------------------------------------------

    def async_rank_bw(self) -> float:
        """Payload bandwidth achieved by unscheduled RPC pulls."""
        return self.schedulable_rank_bw() * self.machine.network.async_bw_efficiency

    def suggested_rpc_timeout(self) -> float:
        """Default RPC timeout for the fault-tolerant retry path.

        Generous relative to the unloaded round trip so deep-but-healthy
        service queues do not trigger spurious retransmissions, yet short
        enough that a dropped response is detected well within a simulated
        run.  Fault plans may override it (``timeout=`` in the spec).
        """
        net = self.machine.network
        return max(2e-3, 250.0 * (net.rtt + net.rpc_service_gap))

    def rpc_overload_extra(self, incoming_lookups: float) -> float:
        """Extra seconds in the degraded deep-queue regime (§4.3).

        Applies only across the network: intranode pulls resolve through
        shared memory and never hit the NIC attentiveness limits.
        """
        if self.machine.nodes == 1:
            return 0.0
        net = self.machine.network
        excess = max(0.0, float(incoming_lookups) - net.rpc_overload_threshold)
        if excess <= 0:
            return 0.0
        return net.rpc_overload_entry + excess * net.rpc_overload_cost

    def rpc_pull_time(
        self,
        lookups: float,
        response_bytes_total: float,
        incoming_lookups: float,
        incoming_bytes_total: float,
    ) -> float:
        """Time for one rank to pull ``lookups`` remote reads via RPC while
        serving ``incoming_lookups`` for other ranks.

        With a deep-enough outstanding window the round trip is paid ~once;
        steady state is the max of (a) CPU-side work — injection gaps plus
        serial service of incoming lookups — and (b) payload movement both
        directions at the async bandwidth share; plus the overload penalty.
        """
        if lookups <= 0 and incoming_lookups <= 0:
            return 0.0
        net = self.machine.network
        inject = lookups * (net.msg_gap + net.msg_overhead)
        service = incoming_lookups * (net.rpc_service_gap + net.msg_overhead)
        # links are full duplex: inbound responses and outbound serves
        # stream concurrently, so the payload term is the larger direction
        volume = max(response_bytes_total, incoming_bytes_total) / self.async_rank_bw()
        ramp = 2 * net.alpha + net.msg_overhead
        # window-limited throughput: at most `outstanding_limit` requests in
        # flight, so sustained rate is bounded by window/rtt — this is what
        # makes aggregation "necessary on a high-latency network" (§5)
        rtt = 2 * net.alpha + net.msg_overhead + net.rpc_service_gap
        window_limited = lookups * rtt / net.outstanding_limit
        return (
            max(inject + service, volume, window_limited)
            + ramp
            + self.rpc_overload_extra(incoming_lookups)
        )

    def rpc_pull_time_batch(
        self,
        lookups: np.ndarray,
        response_bytes_total: np.ndarray,
        incoming_lookups: np.ndarray,
        incoming_bytes_total: np.ndarray,
    ) -> np.ndarray:
        """:meth:`rpc_pull_time` over per-rank arrays, in one vector pass.

        Same formulas, term for term — including the zero short-circuit
        for idle ranks and the overload penalty (which vanishes on a
        single node, where pulls resolve through shared memory).  The
        planner's cost hooks evaluate the whole pull phase through this
        method instead of a 32K-iteration Python loop, which is what
        keeps ``predict()`` orders of magnitude cheaper than running the
        engine it predicts.
        """
        l = np.asarray(lookups, dtype=np.float64)
        inc = np.asarray(incoming_lookups, dtype=np.float64)
        resp = np.asarray(response_bytes_total, dtype=np.float64)
        incb = np.asarray(incoming_bytes_total, dtype=np.float64)
        net = self.machine.network
        inject = l * (net.msg_gap + net.msg_overhead)
        service = inc * (net.rpc_service_gap + net.msg_overhead)
        # full-duplex links: the payload term is the larger direction
        volume = np.maximum(resp, incb) / self.async_rank_bw()
        ramp = 2 * net.alpha + net.msg_overhead
        rtt = 2 * net.alpha + net.msg_overhead + net.rpc_service_gap
        window_limited = l * rtt / net.outstanding_limit
        if self.machine.nodes == 1:
            overload = np.zeros_like(inc)
        else:
            excess = np.maximum(0.0, inc - net.rpc_overload_threshold)
            overload = np.where(
                excess > 0,
                net.rpc_overload_entry + excess * net.rpc_overload_cost,
                0.0,
            )
        out = (
            np.maximum(np.maximum(inject + service, volume), window_limited)
            + ramp
            + overload
        )
        return np.where((l <= 0) & (inc <= 0), 0.0, out)
