"""k-mer histogramming (the global frequency census DiBELLA computes).

In the real pipeline the histogram is computed with a distributed
irregular all-to-all over k-mer owners; here the same owner-partitioned
structure is exposed (`owner_of`) so the distributed version in
:mod:`repro.runtime.collectives` tests can exercise it, while
:func:`count_kmers` provides the shared-memory reference reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.genome.sequence import ReadSet
from repro.kmer.kmers import KmerExtractor

__all__ = ["KmerHistogram", "count_kmers", "owner_of"]


def owner_of(kmers: np.ndarray, num_owners: int) -> np.ndarray:
    """Deterministic owner rank of each packed k-mer.

    A multiplicative hash (Fibonacci hashing) scatters adjacent k-mer values
    across owners, avoiding the hot-spotting a plain modulo would give for
    low-complexity sequence.
    """
    kmers = np.asarray(kmers, dtype=np.uint64)
    h = (kmers * np.uint64(0x9E3779B97F4A7C15)) >> np.uint64(33)
    return (h % np.uint64(num_owners)).astype(np.int64)


@dataclass
class KmerHistogram:
    """A frequency table of canonical k-mers.

    Stored sorted-unique: ``kmers`` (uint64, ascending) with parallel
    ``counts`` (int64).  Lookup is a binary search, vectorized over queries.
    """

    kmers: np.ndarray
    counts: np.ndarray
    k: int

    def __post_init__(self) -> None:
        self.kmers = np.asarray(self.kmers, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.int64)
        if self.kmers.shape != self.counts.shape:
            raise ValueError("kmers/counts length mismatch")

    @property
    def num_distinct(self) -> int:
        return int(self.kmers.size)

    @property
    def total(self) -> int:
        return int(self.counts.sum())

    def frequency_of(self, queries: np.ndarray) -> np.ndarray:
        """Vectorized lookup: count of each query k-mer (0 when absent)."""
        queries = np.asarray(queries, dtype=np.uint64)
        idx = np.searchsorted(self.kmers, queries)
        idx_clipped = np.minimum(idx, max(0, self.kmers.size - 1))
        out = np.zeros(queries.size, dtype=np.int64)
        if self.kmers.size:
            hit = self.kmers[idx_clipped] == queries
            out[hit] = self.counts[idx_clipped[hit]]
        return out

    def filtered(self, lo: int, hi: int) -> "KmerHistogram":
        """Keep k-mers with ``lo <= count <= hi`` (the reliable band)."""
        keep = (self.counts >= lo) & (self.counts <= hi)
        return KmerHistogram(self.kmers[keep], self.counts[keep], self.k)

    def multiplicity_spectrum(self, max_count: int = 64) -> np.ndarray:
        """Histogram-of-the-histogram: #distinct k-mers at each multiplicity."""
        clipped = np.minimum(self.counts, max_count)
        return np.bincount(clipped, minlength=max_count + 1)

    def merge(self, other: "KmerHistogram") -> "KmerHistogram":
        """Union two histograms, summing counts (the all-to-all reduction)."""
        if other.k != self.k:
            raise ValueError("cannot merge histograms with different k")
        allk = np.concatenate([self.kmers, other.kmers])
        allc = np.concatenate([self.counts, other.counts])
        order = np.argsort(allk, kind="stable")
        allk, allc = allk[order], allc[order]
        uniq, inverse = np.unique(allk, return_inverse=True)
        summed = np.zeros(uniq.size, dtype=np.int64)
        np.add.at(summed, inverse, allc)
        return KmerHistogram(uniq, summed, self.k)


def count_kmers(reads: ReadSet, k: int = 17, canonical: bool = True) -> KmerHistogram:
    """Count canonical k-mers across a read set (shared-memory reference)."""
    extractor = KmerExtractor(k=k, canonical=canonical)
    kmers, _rids, _pos = extractor.extract_readset(reads)
    if kmers.size == 0:
        return KmerHistogram(
            np.empty(0, dtype=np.uint64), np.empty(0, dtype=np.int64), k
        )
    uniq, counts = np.unique(kmers, return_counts=True)
    return KmerHistogram(uniq, counts.astype(np.int64), k)
