"""Shared engine configuration and modes.

``ExecutionMode.COMM_ONLY`` reproduces the paper's §4.3 instrumentation: "a
mode that executes everything *except* the pairwise alignment computation",
implemented in **both** codes for communication-focused benchmarking
(Figure 7).  Data-structure traversal overheads remain in that mode — the
requests still have to be issued and the buffers walked.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.runtime.executor import BACKENDS
from repro.utils.units import US

__all__ = ["ExecutionMode", "EngineConfig"]


class ExecutionMode(enum.Enum):
    """What the engines execute."""

    #: full application: communication + alignment computation
    FULL = "full"
    #: §4.3: everything except the alignment kernel (absolute latency mode)
    COMM_ONLY = "comm_only"


@dataclass(frozen=True)
class EngineConfig:
    """Tunables of the two engines.

    The overhead parameters realize §4.6 / Figure 13: both codes traverse
    local data structures storing alignment tasks and associated data — the
    BSP code uses flat arrays (better locality), the async code C++
    standard-library (pointer-based) containers — so the async code pays
    more per traversed item, most visibly per *remote read* handled (index
    lookup, callback dispatch, buffer bookkeeping).

    Parameters
    ----------
    mode : full run or communication-only (Figure 7).
    bsp_task_overhead / async_task_overhead : per-task traversal +
        kernel-invocation seconds ("Computation (Overhead)").
    bsp_read_overhead / async_read_overhead : per-remote-read handling
        seconds (message-buffer walk vs map lookup + callback).  Charged
        only for *internode* reads — intranode pulls resolve through the
        shared-memory segment without serialization or callback deferral —
        so engines scale this by ``1 - 1/nodes``.
    async_base_overhead : per-rank constant for building the remote-read
        task index before the pull phase.
    exchange_memory_fraction : fraction of a rank's free memory budget the
        BSP engine may devote to exchange receive buffers when sizing its
        dynamically-sized supersteps (§3.1).
    async_window : cap on outstanding RPCs per rank (§3.2/§4.3).
    async_aggregation : number of remote-read pulls coalesced into one RPC
        (1 = the paper's implementation; >1 implements the aggregation the
        paper's §5 anticipates for high-latency networks: fewer, larger
        messages at the cost of per-message latency amortization).
    hybrid_aggregation : batch size of the ``hybrid`` engine's aggregated
        asynchronous pulls (§5): pulls to the same owner coalesce into one
        RPC of this many reads.  1 degenerates to the plain async engine.
    multiround_efficiency : exchange-bandwidth factor applied when the BSP
        engine is forced into multiple memory-limited rounds — small
        buffers cannot pipeline pack/unpack with transmission (§3.1's
        memory/bandwidth-utilization coupling).
    async_min_visible : fraction of pull latency that computation cannot
        hide even when abundant (callback bunching between polls — the
        paper's async code still shows a small visible-communication bar at
        scale, <7% of runtime in Figure 8).
    noise_fraction : OS-noise dilation mean for non-isolated runs (Fig. 3).
    seed : RNG seed for the noise model.
    backend : compute backend for the micro engines' real-kernel batches
        (``"serial"``, ``"process"`` or ``"auto"``, see
        :mod:`repro.runtime.executor` and docs/PARALLEL.md).  ``auto``
        measures serial vs pool throughput on the first batches and
        commits to whichever wins on this machine/workload.  Affects only
        real wall-clock — results and simulated times are bit-identical
        across backends.
    workers : worker-process count of the ``process`` backend (>= 1;
        ignored by ``serial``).  For ``auto``, the default 1 means "one
        worker per core (capped at 8)"; any value > 1 is used as-is.
    chunk_tasks : tasks per dispatched chunk for the ``process`` and
        ``auto`` backends; 0 splits each batch evenly across the workers.
    """

    mode: ExecutionMode = ExecutionMode.FULL
    bsp_task_overhead: float = 10.0 * US
    async_task_overhead: float = 13.0 * US
    bsp_read_overhead: float = 30.0 * US
    async_read_overhead: float = 120.0 * US
    async_base_overhead: float = 0.01
    exchange_memory_fraction: float = 0.40
    async_window: int = 64
    async_aggregation: int = 1
    hybrid_aggregation: int = 16
    multiround_efficiency: float = 0.55
    async_min_visible: float = 0.05
    noise_fraction: float = 0.015
    seed: int = 0
    backend: str = "serial"
    workers: int = 1
    chunk_tasks: int = 0

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ConfigurationError(
                f"backend must be one of {list(BACKENDS)}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise ConfigurationError(
                "workers must be >= 1 (the process backend needs at least "
                "one worker; use backend='serial' to run inline)"
            )
        if self.chunk_tasks < 0:
            raise ConfigurationError(
                "chunk_tasks must be >= 0 (0 = split each batch evenly "
                "across the workers)"
            )
        if not 0 < self.exchange_memory_fraction <= 1:
            raise ConfigurationError("exchange_memory_fraction must be in (0,1]")
        if self.async_window < 1:
            raise ConfigurationError("async_window must be >= 1")
        if self.async_aggregation < 1:
            raise ConfigurationError("async_aggregation must be >= 1")
        if self.hybrid_aggregation < 1:
            raise ConfigurationError("hybrid_aggregation must be >= 1")
        if not 0 < self.multiround_efficiency <= 1:
            raise ConfigurationError(
                "multiround_efficiency must be in (0,1]: it scales the "
                "exchange bandwidth, so 0 stalls the exchange forever and "
                ">1 would make memory pressure speed the run up"
            )
        if not 0 <= self.async_min_visible <= 1:
            raise ConfigurationError("async_min_visible must be in [0,1]")
        if self.noise_fraction < 0:
            raise ConfigurationError(
                "noise_fraction must be >= 0 (mean fractional OS-noise "
                "dilation per phase)"
            )
        if min(self.bsp_task_overhead, self.async_task_overhead,
               self.bsp_read_overhead, self.async_read_overhead,
               self.async_base_overhead) < 0:
            raise ConfigurationError("overheads must be nonnegative")

    def comm_only(self) -> "EngineConfig":
        return replace(self, mode=ExecutionMode.COMM_ONLY)
