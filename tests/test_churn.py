"""Elastic-ranks churn tests.

Covers the membership-churn subsystem end to end: the ``join=``/``evict=``
spec grammar (with position-echoing errors), the
:class:`DegradationSchedule` membership timeline and its edge cases,
checkpointed migration through every registered engine, the grace=0 ==
kill degeneracy, the makespan-under-churn report, the ``repro faults
validate`` subcommand, and the hypothesis property that any seeded churn
plan leaves every engine conserved and bit-reproducible.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cli import main
from repro.core.api import get_workload, run_alignment
from repro.engines.base import EngineConfig
from repro.engines.report import churn_summary
from repro.errors import ConfigurationError, RankFailureError
from repro.faults import FaultPlan, parse_fault_spec
from repro.machine.config import cori_knl
from repro.machine.degradation import (
    DegradationSchedule,
    RankEviction,
    RankJoin,
    RankKill,
    StraggleWindow,
)
from repro.obs import MetricsRegistry, Tracer, check_breakdown, check_trace

ENGINES = ("bsp", "async", "hybrid", "bsp-micro", "async-micro")

#: the shared scenario: a graced eviction plus a later join, with event
#: times inside the micro workload's wall clock for every engine
CHURN_SPEC = "evict=r1@0.005:grace=0.01,join=r3@0.02"
FAULT_SEED = 7
NODES = 2
CORES = 4  # P = 8 ranks

#: BSP engines honor churn at superstep boundaries — shrink the exchange
#: budget so the tiny micro workload runs ~6 rounds instead of one
_MULTIROUND = EngineConfig(exchange_memory_fraction=1e-5)
_CONFIGS = {"bsp": _MULTIROUND, "bsp-micro": _MULTIROUND}


def _churn_run(engine, spec, *, seed=FAULT_SEED, tracer=None, metrics=None,
               kernel="model"):
    return run_alignment(
        get_workload("micro", seed=11), NODES, engine,
        config=_CONFIGS.get(engine, EngineConfig()),
        machine=cori_knl(NODES, app_cores_per_node=CORES),
        tracer=tracer, metrics=metrics, kernel=kernel,
        fault_plan=parse_fault_spec(spec), fault_seed=seed,
    )


# -- spec grammar -----------------------------------------------------------

def test_parse_churn_spec_roundtrip():
    plan = parse_fault_spec(
        "evict=r1@20:grace=5,join=r3@10,kill=r2@30,redistribute")
    assert plan.evictions == (RankEviction(rank=1, time=20.0, grace=5.0),)
    assert plan.joins == (RankJoin(rank=3, time=10.0),)
    assert plan.kills == (RankKill(rank=2, time=30.0),)
    assert plan.active and plan.has_churn
    assert "evict=" in plan.describe() and "join=" in plan.describe()


def test_parse_evict_grace_optional_defaults_zero():
    ev = parse_fault_spec("evict=r1@5").evictions[0]
    assert ev.grace == 0.0
    assert ev.departure == 5.0


def test_parse_churn_duration_units():
    plan = parse_fault_spec("evict=r1@5ms:grace=2ms,join=r3@900us")
    assert plan.evictions[0].time == pytest.approx(5e-3)
    assert plan.evictions[0].departure == pytest.approx(7e-3)
    assert plan.joins[0].time == pytest.approx(900e-6)


def test_kill_only_plan_is_not_churn():
    plan = parse_fault_spec("kill=r1@5,redistribute")
    assert not plan.has_churn
    # churn alone also never arms RPC watchdogs (reads keep being served)
    assert not parse_fault_spec("evict=r1@5:grace=2").message_faults_possible


@pytest.mark.parametrize("spec", [
    "join=r1",                  # missing @T
    "join=r1@0",                # a t=0 join is just an initial member
    "join=rX@5",                # malformed rank
    "evict=r1@5:grace",         # dangling grace clause
    "evict=r1@5:g=2",           # wrong grace key
    "evict=r1@5:grace=-1",      # negative grace
    "evict=r1@-1",              # negative notice time
    "evict=r1@5,evict=r1@9",    # duplicate eviction
    "join=r1@5,join=r1@9",      # duplicate join
    "kill=r1@5,evict=r1@9",     # a rank can leave only once
    "kill=r1@5,join=r1@9",      # dies before arriving
    "evict=r1@5,join=r1@9",     # evicted before arriving
])
def test_parse_rejects_malformed_churn(spec):
    with pytest.raises(ConfigurationError):
        parse_fault_spec(spec)


def test_parse_error_echoes_token_and_position():
    """Satellite pin: errors name the offending token AND its char offset."""
    with pytest.raises(ConfigurationError,
                       match=r"'join=rX@5' \(at char 9\)"):
        parse_fault_spec("drop=0.1,join=rX@5")
    with pytest.raises(ConfigurationError,
                       match=r"'bogus=1' \(at char 13\)"):
        parse_fault_spec("evict=r1@5,  bogus=1")


# -- membership timeline edge cases -----------------------------------------

def test_kill_at_time_zero():
    sched = DegradationSchedule(kills=(RankKill(rank=0, time=0.0),))
    assert not sched.alive(0, 0.0)
    assert sched.alive_set(0.0, 2) == {1}
    assert [(e.kind, e.rank, e.time) for e in sched.membership_events()] \
        == [("kill", 0, 0.0)]


def test_evict_at_time_zero_grace_zero_is_a_single_departure():
    sched = DegradationSchedule(evictions=(RankEviction(0, 0.0, 0.0),))
    # the simultaneous notice carries no information and is collapsed
    assert [(e.kind, e.time) for e in sched.membership_events()] \
        == [("evict_depart", 0.0)]
    assert not sched.alive(0, 0.0)


def test_evict_at_time_zero_with_grace_keeps_rank_through_window():
    sched = DegradationSchedule(evictions=(RankEviction(0, 0.0, 2.0),))
    assert [(e.kind, e.time) for e in sched.membership_events()] \
        == [("evict_notice", 0.0), ("evict_depart", 2.0)]
    assert sched.alive(0, 1.0)
    assert not sched.alive(0, 2.0)
    # notices are not membership *changes*
    assert sched.next_membership_change(0.0) == 2.0
    assert sched.last_membership_change() == 2.0


def test_overlapping_straggle_windows_multiply():
    sched = DegradationSchedule(stragglers=(
        StraggleWindow(rank=1, start=0.0, end=4.0, factor=2.0),
        StraggleWindow(rank=1, start=2.0, end=6.0, factor=3.0),
    ))
    assert sched.straggle_factor(1, 1.0) == 2.0
    assert sched.straggle_factor(1, 3.0) == 6.0   # overlap compounds
    assert sched.straggle_factor(1, 5.0) == 3.0
    # exact piecewise mean over [0, 4]: 2s at 2x + 2s at 6x
    assert sched.mean_straggle_factor(1, 0.0, 4.0) == pytest.approx(4.0)


def test_kill_after_eviction_of_same_rank_rejected():
    with pytest.raises(ConfigurationError, match="both evicted and killed"):
        DegradationSchedule(
            kills=(RankKill(rank=1, time=9.0),),
            evictions=(RankEviction(rank=1, time=2.0, grace=1.0),),
        )


def test_spot_instance_lifecycle_queries():
    # joins at 5, eviction notice at 8 with grace 2 => departs at 10
    sched = DegradationSchedule(
        joins=(RankJoin(rank=2, time=5.0),),
        evictions=(RankEviction(rank=2, time=8.0, grace=2.0),),
    )
    assert sched.join_time(2) == 5.0 and sched.join_time(0) is None
    assert sched.departure_time(2) == 10.0
    assert sched.eviction_of(2).grace == 2.0
    assert not sched.alive(2, 4.9)
    assert sched.alive(2, 5.0) and sched.alive(2, 9.9)
    assert not sched.alive(2, 10.0)
    assert sched.alive_mask(4.0, 4).tolist() == [True, True, False, True]
    assert sched.alive_mask(6.0, 4).all()


def test_plan_schedule_threads_churn():
    plan = FaultPlan(evictions=(RankEviction(1, 5.0, 2.0),),
                     joins=(RankJoin(3, 10.0),))
    assert plan.active and plan.has_churn
    assert plan.schedule.has_churn
    assert plan.schedule.departure_time(1) == 7.0


# -- every engine under churn ------------------------------------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_engine_churn_completes_conserved_and_reproducible(engine):
    """The acceptance scenario: >=1 graced eviction + >=1 join on every
    registered engine — conserved, honored with nonzero migration
    accounting, and bit-identical across two same-seed runs."""
    tracer = Tracer()
    metrics = MetricsRegistry(NODES * CORES)
    r1 = _churn_run(engine, CHURN_SPEC, tracer=tracer, metrics=metrics)
    r2 = _churn_run(engine, CHURN_SPEC)
    assert check_breakdown(r1.breakdown).ok
    assert check_trace(tracer, r1.wall_time, NODES * CORES).ok
    assert r1.signature() == r2.signature()

    ch = r1.details["churn"]
    assert ch["evictions_honored"] == [1]
    assert ch["joins_honored"] == [3]
    assert ch["tasks_migrated"] > 0
    assert ch["migration_bytes"] > 0
    assert ch["migration_seconds"] > 0
    kinds = r1.details["fault_kinds"]
    assert kinds["evict"] == 1 and kinds["join"] == 1
    assert kinds["migrate"] >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_engine_churn_work_is_neither_lost_nor_duplicated(engine):
    """Eviction handoffs and join reclaims must not change what is
    computed: per-rank task totals sum to the fault-free total."""
    m_clean = MetricsRegistry(NODES * CORES)
    run_alignment(get_workload("micro", seed=11), NODES, engine,
                  config=_CONFIGS.get(engine, EngineConfig()),
                  machine=cori_knl(NODES, app_cores_per_node=CORES),
                  metrics=m_clean)
    m_churn = MetricsRegistry(NODES * CORES)
    _churn_run(engine, CHURN_SPEC, metrics=m_churn)
    assert m_churn.get("tasks").sum() == m_clean.get("tasks").sum()


def test_micro_bsp_churn_alignments_match_fault_free_real_kernel():
    """With the real kernel, the churned run produces exactly the
    fault-free alignments (the strongest no-lost-no-duplicated check)."""
    clean = _churn_run("bsp-micro", CHURN_SPEC, kernel="real")
    base = run_alignment(get_workload("micro", seed=11), NODES, "bsp-micro",
                         config=_MULTIROUND,
                         machine=cori_knl(NODES, app_cores_per_node=CORES),
                         kernel="real")

    def norm(alignments):
        return sorted((a.read_a, a.read_b, a.score, a.begin_a, a.end_a,
                       a.begin_b, a.end_b) for a in alignments)

    assert norm(clean.alignments) == norm(base.alignments)


# -- grace=0 degenerates to kill semantics ----------------------------------

@pytest.mark.parametrize("engine", ["bsp", "async", "hybrid"])
def test_macro_grace_zero_evict_is_bitwise_kill_redistribute(engine):
    """Satellite pin: grace=0 means nothing can be checkpointed, so the
    arithmetic must be exactly the kill+redistribute path."""
    ev = _churn_run(engine, "evict=r1@0.005:grace=0")
    ki = _churn_run(engine, "kill=r1@0.005,redistribute")
    assert ev.wall_time == ki.wall_time
    for cat in ("compute_align", "compute_overhead", "comm", "sync"):
        assert np.array_equal(ev.breakdown.category(cat),
                              ki.breakdown.category(cat))
    assert (ev.details["tasks_redistributed"]
            == ki.details["tasks_redistributed"])


def test_micro_bsp_grace_zero_checkpoints_nothing():
    """grace=0 on a micro BSP run: the delegate re-executes the lost
    work from its own inputs — no checkpoint bytes move."""
    res = _churn_run("bsp-micro", "evict=r1@0.005:grace=0")
    ch = res.details["churn"]
    assert ch["evictions_honored"] == [1]
    assert ch["tasks_migrated"] == 0
    assert ch["migration_bytes"] == 0


@pytest.mark.parametrize("engine", ["bsp-micro", "async-micro"])
def test_micro_grace_zero_completes_with_full_work(engine):
    m_clean = MetricsRegistry(NODES * CORES)
    run_alignment(get_workload("micro", seed=11), NODES, engine,
                  config=_CONFIGS.get(engine, EngineConfig()),
                  machine=cori_knl(NODES, app_cores_per_node=CORES),
                  metrics=m_clean)
    m_g0 = MetricsRegistry(NODES * CORES)
    res = _churn_run(engine, "evict=r1@0.005:grace=0", metrics=m_g0)
    assert res.details["churn"]["evictions_honored"] == [1]
    assert m_g0.get("tasks").sum() == m_clean.get("tasks").sum()


# -- kills under churn still need the redistribute flag ----------------------

@pytest.mark.parametrize("engine", ENGINES)
def test_kill_under_churn_requires_redistribute(engine):
    with pytest.raises(RankFailureError, match="rank 1"):
        _churn_run(engine, "kill=r1@0.005,join=r3@0.02")


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_plus_join_with_flag_completes(engine):
    res = _churn_run(engine, "kill=r1@0.005,join=r3@0.02,redistribute")
    assert res.details["churn"]["joins_honored"] == [3]


# -- the makespan-under-churn report ----------------------------------------

def test_churn_summary_absent_without_churn():
    assert churn_summary({}) is None
    assert churn_summary({"churn": {}}) is None


def test_churn_summary_wording():
    res = _churn_run("async", CHURN_SPEC)
    line = churn_summary(res.details)
    assert line.startswith("job finished despite 1 eviction(s), 1 join(s)")
    assert "evicted=r1" in line and "joined=r3" in line
    assert "migration overhead" in line and "bytes moved" in line


# -- CLI: repro faults validate + churn reports ------------------------------

def test_cli_faults_validate_prints_timeline(capsys):
    rc = main(["faults", "validate",
               "evict=r1@5:grace=2,join=r3@10,kill=r2@30,redistribute"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "membership timeline:" in out
    assert "rank 1 receives eviction notice" in out
    assert "rank 1 departs" in out
    assert "rank 3 joins" in out
    assert "rank 2 killed" in out
    assert "redistribute=on" in out


def test_cli_faults_validate_bad_spec_exits_2(capsys):
    rc = main(["faults", "validate", "join=rX@5"])
    assert rc == 2
    err = capsys.readouterr().err
    assert "at char" in err and "join=rX@5" in err
    assert "Traceback" not in err


def test_cli_faults_validate_non_churn_spec(capsys):
    rc = main(["faults", "validate", "drop=0.05,straggle=2@r1:0:10"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "drop=0.05" in out


def test_cli_run_prints_churn_report(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", str(NODES),
               "--cores-per-node", str(CORES), "--engine", "async",
               "--faults", CHURN_SPEC, "--fault-seed", str(FAULT_SEED)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "churn report: job finished despite 1 eviction(s), 1 join(s)" in out
    assert "migration overhead" in out


def test_cli_compare_prints_per_engine_churn(capsys):
    rc = main(["compare", "--workload", "micro", "--nodes", str(NODES),
               "--cores-per-node", str(CORES),
               "--faults", CHURN_SPEC, "--fault-seed", str(FAULT_SEED)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Degradation under faults" in out
    assert "churn:" in out
    assert "job finished despite" in out


# -- property: any seeded churn plan -----------------------------------------

@st.composite
def churn_plans(draw):
    """An arbitrary valid churn plan scaled to the micro workload's wall
    clock (~0.04-0.06 s for every engine at 8 ranks)."""
    evictions = (RankEviction(
        rank=draw(st.sampled_from([1, 2])),
        time=draw(st.sampled_from([0.0, 0.003, 0.01])),
        grace=draw(st.sampled_from([0.0, 0.004, 0.02]))),)
    joins = ()
    if draw(st.booleans()):
        joins = (RankJoin(rank=draw(st.sampled_from([3, 4])),
                          time=draw(st.sampled_from([0.008, 0.02]))),)
    kills = ()
    redistribute = draw(st.booleans())
    if draw(st.booleans()):
        # unflagged kills raising is pinned separately; the property is
        # about completed runs, so killed plans always carry the flag
        kills = (RankKill(rank=5, time=draw(st.sampled_from([0.004, 0.015]))),)
        redistribute = True
    stragglers = ()
    if draw(st.booleans()):
        stragglers = (StraggleWindow(rank=0, start=0.0, end=1e6,
                                     factor=draw(st.sampled_from([1.5, 3.0]))),)
    return FaultPlan(kills=kills, joins=joins, evictions=evictions,
                     stragglers=stragglers, redistribute=redistribute)


@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(engine=st.sampled_from(ENGINES), plan=churn_plans(),
       fault_seed=st.integers(min_value=0, max_value=3))
def test_any_churn_plan_conserved_and_reproducible(engine, plan, fault_seed):
    wl = get_workload("micro", seed=11)
    machine = cori_knl(NODES, app_cores_per_node=CORES)
    config = _CONFIGS.get(engine, EngineConfig())
    tracer = Tracer()
    r1 = run_alignment(wl, NODES, engine, config=config, machine=machine,
                       tracer=tracer, fault_plan=plan, fault_seed=fault_seed)
    r2 = run_alignment(wl, NODES, engine, config=config, machine=machine,
                       fault_plan=plan, fault_seed=fault_seed)
    assert check_breakdown(r1.breakdown).ok
    assert check_trace(tracer, r1.wall_time, NODES * CORES).ok
    assert r1.signature() == r2.signature()
