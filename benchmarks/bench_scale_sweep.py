"""Paper-scale macro sweep under a bounded workload-memory budget.

The perf trajectory finally gets a *scale* axis: this benchmark runs the
macro engines on Table-1-sized task tables (E. coli 100x: 24.9M tasks by
default; Human CCS: 87.6M with ``--full``) across 512 simulated nodes,
generated and aggregated through the sharded out-of-core workload path
(:class:`repro.pipeline.sharded.ShardedWorkload`) so peak resident
workload memory is bounded by ``--max-resident-shards`` — measured by the
shard store's :class:`~repro.machine.memory.NodeMemory` ledger and
cross-checked against the process's actual peak RSS (``ru_maxrss``).

Writes ``BENCH_SCALE.json`` at the repo root::

    {
      "workload": ..., "tasks": ..., "shard_tasks": ...,
      "max_resident_shards": ...,
      "resident_budget_bytes": ...,   # the ledger capacity
      "resident_peak_bytes": ...,     # ledger high-water (must be <= budget)
      "peak_rss_mb": ...,             # process peak RSS after the sweep
      "build_seconds": ...,           # streamed aggregation wall clock
      "engines": {name: {nodes: simulated_wall_seconds}}
    }

``--mem-cap-mb`` applies a hard ``resource.setrlimit(RLIMIT_AS)`` before
the workload is built — the CI scale-smoke job uses it to prove the
10^6-task sweep genuinely fits a small address-space cap rather than
merely claiming to.  Also runnable standalone:

    PYTHONPATH=src python benchmarks/bench_scale_sweep.py [--smoke]
        [--full] [--nodes N] [--shard-tasks N] [--max-resident-shards M]
        [--mem-cap-mb MB]
"""

import argparse
import json
import resource
import sys
import time
from pathlib import Path

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_SCALE.json"

#: scale tiers: preset and the node counts swept (strong scaling flavor)
SMOKE = ("ecoli30x", (64, 512))        # ~2.3e6 tasks: the CI tier
DEFAULT = ("ecoli100x", (64, 512))     # ~2.5e7 tasks: the 10^7 tier
FULL = ("human_ccs", (512,))           # ~8.8e7 tasks: the 10^8 tier

ENGINES = ("bsp", "async", "hybrid")


def peak_rss_mb() -> float:
    """Process peak RSS in MiB (ru_maxrss is KiB on Linux)."""
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - bytes on macOS
        rss //= 1024
    return rss / 1024.0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help=f"10^6-task tier ({SMOKE[0]}; the CI job)")
    ap.add_argument("--full", action="store_true",
                    help=f"10^8-task tier ({FULL[0]}; takes a while)")
    ap.add_argument("--nodes", type=int, nargs="+", default=None,
                    help="override the swept node counts")
    ap.add_argument("--shard-tasks", type=int, default=1 << 18)
    ap.add_argument("--max-resident-shards", type=int, default=4)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--mem-cap-mb", type=int, default=0,
                    help="hard RLIMIT_AS cap applied before building "
                         "anything (0 = uncapped)")
    args = ap.parse_args(argv)

    if args.mem_cap_mb:
        cap = args.mem_cap_mb * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
        print(f"address space capped at {args.mem_cap_mb} MiB (RLIMIT_AS)")

    from repro.core.api import get_workload, scaling_sweep

    name, node_counts = (SMOKE if args.smoke else
                         FULL if args.full else DEFAULT)
    if args.nodes:
        node_counts = tuple(args.nodes)

    t0 = time.perf_counter()
    wl = get_workload(name, seed=args.seed,
                      shard_tasks=args.shard_tasks,
                      max_resident_shards=args.max_resident_shards)
    results = scaling_sweep(wl, node_counts, approaches=ENGINES)
    build_s = time.perf_counter() - t0

    store = wl.store.stats()
    rss = peak_rss_mb()
    report = {
        "workload": name,
        "tasks": wl.n_tasks,
        "reads": wl.n_reads,
        "nodes": list(node_counts),
        "shard_tasks": args.shard_tasks,
        "max_resident_shards": args.max_resident_shards,
        "n_shards": store["n_shards"],
        "resident_budget_bytes": store["budget_bytes"],
        "resident_peak_bytes": store["peak_resident_bytes"],
        "shard_evictions": store["evictions"],
        "shard_reloads": store["reloads"],
        "peak_rss_mb": rss,
        "mem_cap_mb": args.mem_cap_mb or None,
        "build_seconds": build_s,
        "engines": {
            eng: {str(n): results[eng][n].wall_time for n in node_counts}
            for eng in ENGINES
        },
    }
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")

    print(f"{name}: {wl.n_tasks:,} tasks in {store['n_shards']} shards of "
          f"{args.shard_tasks:,} (<= {args.max_resident_shards} resident)")
    print(f"resident workload memory: peak "
          f"{store['peak_resident_bytes'] / 2**20:.1f} MiB of "
          f"{store['budget_bytes'] / 2**20:.1f} MiB budget "
          f"({store['evictions']} evictions, {store['reloads']} reloads)")
    print(f"process peak RSS: {rss:.0f} MiB"
          + (f" (cap {args.mem_cap_mb} MiB)" if args.mem_cap_mb else ""))
    for eng in ENGINES:
        walls = "  ".join(f"{n}n={results[eng][n].wall_time:.3g}s"
                          for n in node_counts)
        print(f"  {eng:6s} {walls}")
    print(f"aggregation+sweep wall: {build_s:.1f}s -> {JSON_PATH}")

    # the acceptance assertions the CI job greps for
    ok = store["peak_resident_bytes"] <= store["budget_bytes"]
    print(f"resident peak within budget: {'PASS' if ok else 'FAIL'}")
    if args.mem_cap_mb:
        capped = rss < args.mem_cap_mb
        print(f"peak RSS below cap: {'PASS' if capped else 'FAIL'}")
        ok = ok and capped
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
