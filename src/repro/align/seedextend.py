"""Seed-and-extend pairwise alignment (the per-task kernel).

Treats the shared k-mer as fixed (matching, error-free) between the two
reads and extends the alignment forward and backward from it with X-drop
(paper Figure 1).  One seed is extended per candidate pair, as in the
paper's experiments.

Reverse-orientation candidates are handled by extending against the reverse
complement of read *b*, with the seed position mapped into the flipped
coordinate frame; reported extents for *b* are in that oriented frame with
``reverse=True`` recorded (paper Figure 2: overlaps occur in either relative
orientation).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.align.batch import BatchedXDropExtender
from repro.align.scoring import DEFAULT_SCORING, ScoringScheme
from repro.align.xdrop import XDropExtender
from repro.errors import AlignmentError
from repro.genome import alphabet

__all__ = ["Alignment", "SeedExtendAligner"]


@dataclass(frozen=True)
class Alignment:
    """Result of one seed-and-extend pairwise alignment task.

    Extents are half-open: read a's aligned region is ``[begin_a, end_a)``;
    read b's is ``[begin_b, end_b)`` *in the oriented frame* (b's forward
    strand when ``reverse`` is False, b's reverse complement otherwise).
    """

    read_a: int
    read_b: int
    score: int
    begin_a: int
    end_a: int
    begin_b: int
    end_b: int
    reverse: bool
    cells: int
    terminated_early: bool

    @property
    def aligned_length_a(self) -> int:
        return self.end_a - self.begin_a

    @property
    def aligned_length_b(self) -> int:
        return self.end_b - self.begin_b

    def overlap_class(self, len_a: int, len_b: int, slack: int = 50) -> str:
        """Classify the overlap shape (paper Figure 2).

        ``contains`` / ``contained``: one read spans the other;
        ``dovetail``: proper suffix-prefix overlap; ``internal``: the
        alignment ends in the middle of both reads (often a false positive
        or a repeat-induced local match).
        """
        a_at_start = self.begin_a <= slack
        a_at_end = self.end_a >= len_a - slack
        b_at_start = self.begin_b <= slack
        b_at_end = self.end_b >= len_b - slack
        if a_at_start and a_at_end:
            return "contained"
        if b_at_start and b_at_end:
            return "contains"
        if (a_at_end and b_at_start) or (b_at_end and a_at_start):
            return "dovetail"
        return "internal"


@dataclass(frozen=True)
class SeedExtendAligner:
    """X-drop seed-and-extend aligner over code arrays."""

    x_drop: int = 15
    scoring: ScoringScheme = DEFAULT_SCORING

    @cached_property
    def _extender(self) -> XDropExtender:
        """One scalar extender per aligner instance, built on first use."""
        return XDropExtender(x_drop=self.x_drop, scoring=self.scoring)

    @cached_property
    def _batch_extender(self) -> BatchedXDropExtender:
        """One batched wavefront extender per aligner instance."""
        return BatchedXDropExtender(x_drop=self.x_drop, scoring=self.scoring)

    def _validate_and_orient(
        self,
        codes_a: np.ndarray,
        codes_b: np.ndarray,
        pos_a: int,
        pos_b: int,
        k: int,
        reverse: bool,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Seed bounds check + orientation; returns (a, oriented b, pos_b)."""
        codes_a = np.asarray(codes_a, dtype=np.uint8)
        codes_b = np.asarray(codes_b, dtype=np.uint8)
        la, lb = codes_a.size, codes_b.size
        if not (0 <= pos_a and pos_a + k <= la):
            raise AlignmentError(f"seed [{pos_a}, {pos_a + k}) outside read a (len {la})")
        if not (0 <= pos_b and pos_b + k <= lb):
            raise AlignmentError(f"seed [{pos_b}, {pos_b + k}) outside read b (len {lb})")
        if reverse:
            return codes_a, alphabet.reverse_complement(codes_b), lb - (pos_b + k)
        return codes_a, codes_b, pos_b

    def align(
        self,
        codes_a: np.ndarray,
        codes_b: np.ndarray,
        pos_a: int,
        pos_b: int,
        k: int,
        reverse: bool = False,
        read_a: int = -1,
        read_b: int = -1,
    ) -> Alignment:
        """Extend the seed at ``(pos_a, pos_b)`` of length ``k``.

        ``pos_b`` is on b's forward strand; for ``reverse`` candidates it is
        mapped to the reverse-complement frame before extension.
        """
        codes_a, oriented_b, pos_b = self._validate_and_orient(
            codes_a, codes_b, pos_a, pos_b, k, reverse
        )
        extender = self._extender
        right = extender.extend(codes_a[pos_a + k:], oriented_b[pos_b + k:])
        left = extender.extend_left(codes_a[:pos_a], oriented_b[:pos_b])
        return self._assemble(right, left, pos_a, pos_b, k, reverse,
                              read_a, read_b)

    def align_batch(self, pairs) -> list[Alignment]:
        """Align a whole batch of seed-extension tasks in one wavefront pass.

        Each element of ``pairs`` is a tuple of :meth:`align`'s positional
        arguments: ``(codes_a, codes_b, pos_a, pos_b, k)`` optionally
        followed by ``reverse``, ``read_a``, ``read_b``.  Both directional
        extensions of every pair — rightward suffixes and reversed leftward
        prefixes, in either orientation — are packed into one
        :class:`BatchedXDropExtender` call, so the whole batch advances
        behind a single shared antidiagonal counter.

        Returns alignments in input order, bit-identical to calling
        :meth:`align` once per pair.
        """
        specs: list[tuple[int, int, int, bool, int, int]] = []
        jobs: list[tuple[np.ndarray, np.ndarray]] = []
        for pair in pairs:
            codes_a, codes_b, pos_a, pos_b, k, *rest = pair
            reverse = bool(rest[0]) if len(rest) > 0 else False
            read_a = int(rest[1]) if len(rest) > 1 else -1
            read_b = int(rest[2]) if len(rest) > 2 else -1
            codes_a, oriented_b, pos_b = self._validate_and_orient(
                codes_a, codes_b, pos_a, pos_b, k, reverse
            )
            jobs.append((codes_a[pos_a + k:], oriented_b[pos_b + k:]))
            jobs.append((codes_a[:pos_a][::-1], oriented_b[:pos_b][::-1]))
            specs.append((pos_a, pos_b, k, reverse, read_a, read_b))
        extensions = self._batch_extender.extend_batch(jobs)
        return [
            self._assemble(extensions[2 * p], extensions[2 * p + 1],
                           pos_a, pos_b, k, reverse, read_a, read_b)
            for p, (pos_a, pos_b, k, reverse, read_a, read_b)
            in enumerate(specs)
        ]

    def _assemble(self, right, left, pos_a, pos_b, k, reverse,
                  read_a, read_b) -> Alignment:
        """Combine the two directional extensions into one Alignment."""
        score = self.scoring.perfect_score(k) + right.score + left.score
        return Alignment(
            read_a=read_a,
            read_b=read_b,
            score=score,
            begin_a=pos_a - left.length_a,
            end_a=pos_a + k + right.length_a,
            begin_b=pos_b - left.length_b,
            end_b=pos_b + k + right.length_b,
            reverse=reverse,
            cells=right.cells + left.cells,
            terminated_early=right.terminated_early or left.terminated_early,
        )

    def _candidate_args(self, reads, candidate):
        return (
            reads.codes(candidate.read_a),
            reads.codes(candidate.read_b),
            candidate.pos_a,
            candidate.pos_b,
            candidate.k,
            candidate.reverse,
            int(reads.ids[candidate.read_a]),
            int(reads.ids[candidate.read_b]),
        )

    def align_candidate(self, reads, candidate) -> Alignment:
        """Align a :class:`repro.kmer.seeds.Candidate` over a ReadSet."""
        args = self._candidate_args(reads, candidate)
        return self.align(*args[:5], reverse=args[5],
                          read_a=args[6], read_b=args[7])

    def align_candidates(self, reads, candidates) -> list[Alignment]:
        """Batch-align many Candidates over a ReadSet (one wavefront pass)."""
        return self.align_batch(
            [self._candidate_args(reads, c) for c in candidates]
        )
