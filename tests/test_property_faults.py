"""Property tests: graceful degradation under arbitrary fault plans.

Two properties anchor the fault-injection subsystem (hypothesis-driven):

1. **Safety.** With *any* generated :class:`FaultPlan`, every engine run
   either completes — with alignment work identical to the fault-free run
   and the time-conservation invariant intact — or raises a typed
   :class:`FaultError` / :class:`RankFailureError`.  Never a silent hang,
   never a wrong answer, never an untyped crash.

2. **Determinism.** The same fault plan and fault seed reproduce the run
   bit-for-bit: identical wall clock, identical retry counters, identical
   trace.  Faulty runs stay debuggable and comparable across engines.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import get_workload
from repro.engines.async_ import AsyncEngine
from repro.engines.bsp import BSPEngine
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.errors import FaultError
from repro.faults import FaultInjector, FaultPlan
from repro.genome.datasets import DatasetSpec
from repro.machine.config import cori_knl
from repro.machine.degradation import LinkWindow, RankKill, StraggleWindow
from repro.obs import MetricsRegistry, Tracer, check_breakdown, check_trace
from repro.pipeline.workload import StatisticalWorkload

MACRO = settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
MICRO = settings(
    max_examples=5,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NUM_RANKS = 8  # 2 nodes x 4 app cores everywhere below


def make_wl(seed):
    spec = DatasetSpec(
        name="prop-faults", species="synthetic",
        n_reads=6000, n_tasks=120_000,
        coverage=15.0, error_rate=0.1,
        mean_read_length=9000.0, length_sigma=0.3,
    )
    return StatisticalWorkload(spec, seed=seed)


@st.composite
def fault_plans(draw, kills_allowed=True):
    """An arbitrary-but-valid FaultPlan."""
    drop = draw(st.sampled_from([0.0, 0.02, 0.1]))
    delay = draw(st.sampled_from([0.0, 0.05]))
    dup = draw(st.sampled_from([0.0, 0.05]))
    xchg = draw(st.sampled_from([0.0, 0.3, 0.8]))

    links = ()
    if draw(st.booleans()):
        links = (LinkWindow(start=0.0, end=draw(st.sampled_from([1.0, 1e6])),
                            bandwidth_factor=draw(st.sampled_from([0.25, 0.5])),
                            latency_factor=draw(st.sampled_from([1.0, 4.0]))),)
    stragglers = ()
    if draw(st.booleans()):
        stragglers = (StraggleWindow(
            rank=draw(st.integers(0, NUM_RANKS - 1)),
            start=0.0, end=draw(st.sampled_from([2.0, 1e6])),
            factor=draw(st.sampled_from([1.5, 3.0]))),)
    kills = ()
    redistribute = False
    if kills_allowed and draw(st.booleans()):
        kills = (RankKill(rank=draw(st.integers(0, NUM_RANKS - 1)),
                          time=draw(st.sampled_from([0.5, 5.0, 60.0]))),)
        redistribute = draw(st.booleans())

    return FaultPlan(
        drop_prob=drop,
        delay_prob=delay, delay_seconds=2e-3 if delay else 0.0,
        dup_prob=dup,
        exchange_drop_prob=xchg,
        links=links, stragglers=stragglers, kills=kills,
        redistribute=redistribute,
        rpc_max_retries=10,
    )


def _norm(details):
    """Details may hold numpy arrays; normalize for == comparison."""
    return {k: (v.tolist() if hasattr(v, "tolist") else v)
            for k, v in details.items()}


def _run_checked(engine, run_args, machine, plan, fault_seed):
    """Run under the plan; return (result, tracer, metrics) on completion,
    None when the engine (correctly) raised a typed fault error."""
    tracer = Tracer()
    metrics = MetricsRegistry(machine.total_ranks)
    try:
        res = engine.run(*run_args, machine, tracer=tracer, metrics=metrics,
                         faults=FaultInjector(plan, fault_seed))
    except FaultError:
        # typed refusal is an acceptable outcome — but only if the plan
        # could actually have killed someone
        assert plan.kills
        return None
    breakdown_report = check_breakdown(res.breakdown)
    trace_report = check_trace(tracer, res.wall_time, machine.total_ranks)
    assert breakdown_report.ok, breakdown_report.describe()
    assert trace_report.ok, trace_report.describe()
    return res, tracer, metrics


@MACRO
@given(
    engine_cls=st.sampled_from([BSPEngine, AsyncEngine]),
    plan=fault_plans(),
    fault_seed=st.integers(min_value=0, max_value=5),
)
def test_macro_completes_conserved_or_typed_error(engine_cls, plan,
                                                  fault_seed):
    machine = cori_knl(2, app_cores_per_node=4)
    wl = make_wl(0)
    assignment = wl.assignment(machine.total_ranks)
    out = _run_checked(engine_cls(), (assignment,), machine, plan, fault_seed)
    if out is None:
        return
    res, _, _ = out
    clean = engine_cls().run(assignment, machine)
    # faults only ever slow a run down (or kill it) — never speed it up
    assert res.wall_time >= clean.wall_time * (1 - 1e-12)
    if plan.kills and res.details.get("ranks_lost"):
        assert plan.redistribute


@MACRO
@given(
    engine_cls=st.sampled_from([BSPEngine, AsyncEngine]),
    plan=fault_plans(),
    fault_seed=st.integers(min_value=0, max_value=5),
)
def test_macro_same_seed_same_run(engine_cls, plan, fault_seed):
    """Same fault plan + fault seed => identical wall clock, retry
    counters, and trace."""
    machine = cori_knl(2, app_cores_per_node=4)
    assignment = make_wl(1).assignment(machine.total_ranks)
    a = _run_checked(engine_cls(), (assignment,), machine, plan, fault_seed)
    b = _run_checked(engine_cls(), (assignment,), machine, plan, fault_seed)
    if a is None or b is None:
        assert (a is None) == (b is None)  # even the refusal is reproducible
        return
    res_a, tr_a, m_a = a
    res_b, tr_b, m_b = b
    assert res_a.wall_time == res_b.wall_time
    assert _norm(res_a.details) == _norm(res_b.details)
    assert repr(m_a.rows()) == repr(m_b.rows())
    assert tr_a.to_chrome() == tr_b.to_chrome()


@MICRO
@given(
    engine_cls=st.sampled_from([MicroBSPEngine, MicroAsyncEngine]),
    plan=fault_plans(kills_allowed=False),
    fault_seed=st.integers(min_value=0, max_value=3),
)
def test_micro_faulty_run_conserves_and_computes_everything(engine_cls, plan,
                                                            fault_seed):
    """Message-level faults must be absorbed: the faulty run conserves
    time AND performs exactly the fault-free alignment work (idempotent
    delivery, retried supersteps — every task runs once)."""
    wl = get_workload("micro", seed=0)
    machine = cori_knl(2, app_cores_per_node=4)
    out = _run_checked(engine_cls(), (wl,), machine, plan, fault_seed)
    assert out is not None  # no kills => the run must complete
    _, _, metrics = out
    m_clean = MetricsRegistry(machine.total_ranks)
    engine_cls().run(wl, machine, metrics=m_clean)
    assert metrics.get("tasks").tolist() == m_clean.get("tasks").tolist()


@MICRO
@given(
    engine_cls=st.sampled_from([MicroBSPEngine, MicroAsyncEngine]),
    plan=fault_plans(kills_allowed=False),
    fault_seed=st.integers(min_value=0, max_value=3),
)
def test_micro_same_seed_same_run(engine_cls, plan, fault_seed):
    wl = get_workload("micro", seed=0)
    machine = cori_knl(2, app_cores_per_node=4)
    a = _run_checked(engine_cls(), (wl,), machine, plan, fault_seed)
    b = _run_checked(engine_cls(), (wl,), machine, plan, fault_seed)
    res_a, tr_a, m_a = a
    res_b, tr_b, m_b = b
    assert res_a.wall_time == res_b.wall_time
    assert _norm(res_a.details) == _norm(res_b.details)
    assert repr(m_a.rows()) == repr(m_b.rows())
    assert tr_a.to_chrome() == tr_b.to_chrome()


def test_micro_kill_is_typed_never_silent():
    """Non-property companion: a kill on a micro engine is always a typed
    RankFailureError (micro engines cannot redistribute)."""
    from repro.errors import RankFailureError

    wl = get_workload("micro", seed=0)
    machine = cori_knl(2, app_cores_per_node=4)
    plan = FaultPlan(kills=(RankKill(rank=3, time=1e-4),))
    for engine_cls in (MicroBSPEngine, MicroAsyncEngine):
        with pytest.raises(RankFailureError):
            engine_cls().run(wl, machine, faults=FaultInjector(plan, 0))
