"""Public top-level API: build workloads, run engines, compare approaches."""

from repro.core.api import (
    ENGINES,
    get_workload,
    make_machine,
    run_alignment,
    compare_engines,
    scaling_sweep,
    clear_workload_cache,
    set_workload_cache_cap,
    workload_cache_stats,
)

__all__ = [
    "ENGINES",
    "get_workload",
    "make_machine",
    "run_alignment",
    "compare_engines",
    "scaling_sweep",
    "clear_workload_cache",
    "set_workload_cache_cap",
    "workload_cache_stats",
]
