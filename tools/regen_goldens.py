#!/usr/bin/env python
"""Regenerate the golden result signatures in tests/goldens/signatures.json.

The golden suite (``tests/test_golden_signatures.py``) pins a SHA-256
signature (:meth:`repro.engines.report.RunResult.signature`) for every
registered engine on two small fixed synthetic workloads.  A signature
covers *everything* a run produces — wall clock, all per-rank category
vectors, memory high-water marks, alignments field-by-field, details — so
any behavioral change trips the suite, while pure refactors keep it green.

When a change is *supposed* to shift behavior (a model fix, a kernel
change), regenerate deliberately::

    PYTHONPATH=src python tools/regen_goldens.py

then review the diff of ``tests/goldens/signatures.json`` in the same
commit as the behavioral change, stating why the numbers moved.

The case matrix and the result-construction helper live here so the test
module imports them — the suite and the regeneration script can never
disagree about what a case means.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.core.api import get_workload, run_alignment  # noqa: E402
from repro.engines.base import EngineConfig  # noqa: E402
from repro.engines.registry import get_engine  # noqa: E402
from repro.faults import parse_fault_spec  # noqa: E402
from repro.machine.config import cori_knl  # noqa: E402

GOLDENS_PATH = REPO / "tests" / "goldens" / "signatures.json"

#: (workload preset, synthesis seed) — two small sequence-level workloads,
#: fast enough that every engine runs them with the real kernel in seconds
WORKLOADS = (("micro", 11), ("micro", 23))

#: every registered engine: three macro strategies + both micro SPMD codes
ENGINES = ("bsp", "async", "hybrid", "bsp-micro", "async-micro")

NODES = 2
CORES_PER_NODE = 4  # P = 8 ranks: several ranks per node, still fast

#: membership-churn cases: one per engine, the same plan everywhere — a
#: graced eviction whose checkpoint is handed off, plus a later join that
#: reclaims work.  Event times sit inside the micro workload's wall clock.
CHURN_SPEC = "evict=r1@0.005:grace=0.01,join=r3@0.02"
CHURN_FAULT_SEED = 7

#: BSP engines honor churn at superstep boundaries; shrink the exchange
#: budget so the tiny workload runs ~6 rounds and both events land on one
CHURN_EMF = {"bsp": 1e-5, "bsp-micro": 1e-5}


def case_key(engine: str, workload: str, seed: int) -> str:
    return f"{engine}/{workload}@{seed}"


def churn_key(engine: str) -> str:
    return f"{engine}/churn"


def compute_churn_result(engine: str):
    """One churn golden: the micro workload under the shared churn plan.

    Runs the model kernel everywhere — these cases pin the churn
    scheduling arithmetic (membership boundaries, checkpoint handoffs,
    migration accounting); kernel output is already pinned by the base
    matrix, and the churned async pull path computes task-by-task, which
    would make a real-kernel run needlessly slow.
    """
    w = get_workload("micro", seed=11)
    machine = cori_knl(NODES, app_cores_per_node=CORES_PER_NODE)
    emf = CHURN_EMF.get(engine)
    config = (EngineConfig(exchange_memory_fraction=emf)
              if emf is not None else EngineConfig())
    return run_alignment(w, NODES, engine, config=config, machine=machine,
                         fault_plan=parse_fault_spec(CHURN_SPEC),
                         fault_seed=CHURN_FAULT_SEED)


def compute_result(engine: str, workload: str, seed: int, *,
                   backend: str = "serial", workers: int = 1,
                   chunk_tasks: int = 0, shard_tasks: int = 0):
    """One golden case's run: micro engines get the real kernel.

    ``shard_tasks > 0`` runs the same case through the sharded
    (out-of-core) workload path — the digest must not move: sharding is a
    memory knob, never a behavioral one (docs/ARCHITECTURE.md).
    """
    w = get_workload(workload, seed=seed, shard_tasks=shard_tasks)
    machine = cori_knl(NODES, app_cores_per_node=CORES_PER_NODE)
    kernel = "real" if get_engine(engine).is_micro else "model"
    config = EngineConfig(backend=backend, workers=workers,
                          chunk_tasks=chunk_tasks)
    return run_alignment(w, NODES, engine, config=config,
                         machine=machine, kernel=kernel)


def compute_signatures() -> dict[str, str]:
    signatures = {
        case_key(engine, workload, seed):
            compute_result(engine, workload, seed).signature()
        for workload, seed in WORKLOADS
        for engine in ENGINES
    }
    signatures.update({
        churn_key(engine): compute_churn_result(engine).signature()
        for engine in ENGINES
    })
    return signatures


def main() -> int:
    signatures = compute_signatures()
    GOLDENS_PATH.parent.mkdir(parents=True, exist_ok=True)
    old = (
        json.loads(GOLDENS_PATH.read_text())
        if GOLDENS_PATH.exists() else {}
    )
    for key in sorted(signatures):
        status = (
            "unchanged" if old.get(key) == signatures[key]
            else ("NEW" if key not in old else "CHANGED")
        )
        print(f"  {key:30s} {signatures[key][:16]}…  {status}")
    GOLDENS_PATH.write_text(json.dumps(signatures, indent=2, sort_keys=True)
                            + "\n")
    print(f"wrote {len(signatures)} signatures -> {GOLDENS_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
