"""Deterministic, seeded realization of a :class:`FaultPlan`.

The injector is the single source of randomness for everything that goes
wrong in a run.  All draws come from :class:`repro.utils.rng.RngFactory`
streams namespaced under dedicated fault domains, so

* the same ``(plan, seed)`` always injects the identical fault sequence —
  wall clocks, retry counts, and traces are bit-reproducible; and
* fault randomness never perturbs the workload/noise streams: adding a
  fault plan to a run leaves the underlying work identical, which is what
  makes fault-free vs faulty comparisons (the CLI's degradation report)
  meaningful.

One injector serves exactly one engine run.  Engines each construct a fresh
injector from the same plan and seed, so BSP and Async experience the same
adversary — the paper's methodology of comparing both codes on identical
inputs, extended to identical bad luck.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.utils.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.faults.plan import FaultPlan
    from repro.machine.degradation import RankKill

__all__ = ["FaultInjector", "DELIVER", "DROP", "DELAY", "DUPLICATE"]

#: RPC response fates (returned by :meth:`FaultInjector.rpc_fate`)
DELIVER = "deliver"
DROP = "drop"
DELAY = "delay"
DUPLICATE = "duplicate"

#: ceiling on repeated attempts of one BSP exchange round — a run under an
#: absurd plan (``xchg_drop=0.99``) still terminates with bounded inflation
MAX_EXCHANGE_ATTEMPTS = 8


class FaultInjector:
    """Stateful fault oracle for one engine run."""

    def __init__(self, plan: "FaultPlan", seed: int | RngFactory = 0):
        self.plan = plan
        self.rngs = seed if isinstance(seed, RngFactory) else RngFactory(seed)
        self.schedule = plan.schedule
        self._rpc_rng = self.rngs.stream("fault-rpc")
        self._jitter_rng = self.rngs.stream("fault-jitter")
        self._exchange_cache: dict[int, int] = {}
        #: injected-fault counts by kind (rpc_drop, rpc_delay, rpc_dup,
        #: exchange_drop, straggle, degrade, kill)
        self.injected: dict[str, int] = {}

    def _count(self, kind: str, n: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + n

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    # -- message-level faults ----------------------------------------------

    def rpc_fate(self) -> tuple[str, float]:
        """Fate of one RPC response: ``(kind, delay_seconds)``.

        Draws are consumed in simulation order, which the discrete-event
        engine makes deterministic.
        """
        plan = self.plan
        if not (plan.drop_prob or plan.delay_prob or plan.dup_prob):
            return DELIVER, 0.0
        u = float(self._rpc_rng.random())
        if u < plan.drop_prob:
            self._count("rpc_drop")
            return DROP, 0.0
        if u < plan.drop_prob + plan.delay_prob:
            self._count("rpc_delay")
            return DELAY, plan.delay_seconds
        if u < plan.drop_prob + plan.delay_prob + plan.dup_prob:
            self._count("rpc_dup")
            return DUPLICATE, 0.0
        return DELIVER, 0.0

    def backoff(self, base: float, attempt: int) -> float:
        """Exponential backoff with deterministic jitter before retry
        ``attempt`` (0-based)."""
        jitter = self.plan.rpc_backoff_jitter
        span = base * (2.0 ** attempt)
        if jitter <= 0:
            return span
        return span * (1.0 + jitter * (2.0 * float(self._jitter_rng.random()) - 1.0))

    def exchange_attempts(self, round_idx: int) -> int:
        """How many attempts BSP exchange round ``round_idx`` needs.

        Cached per round and drawn from a round-keyed stream, so every rank
        of a micro run observes the same answer regardless of the order in
        which ranks ask — the retried collective stays a collective.
        """
        cached = self._exchange_cache.get(round_idx)
        if cached is not None:
            return cached
        p = self.plan.exchange_drop_prob
        attempts = 1
        if p > 0:
            rng = self.rngs.stream("fault-exchange", round_idx)
            while attempts < MAX_EXCHANGE_ATTEMPTS and float(rng.random()) < p:
                attempts += 1
            if attempts > 1:
                self._count("exchange_drop", attempts - 1)
        self._exchange_cache[round_idx] = attempts
        return attempts

    def rank_rpc_fault_counts(self, rank: int, n_calls: int) -> tuple[int, int, int]:
        """(drops, delays, dups) among ``n_calls`` RPCs issued by ``rank``.

        The macro engines charge fault costs analytically per rank instead
        of simulating each message; a rank-keyed stream keeps the counts
        independent of evaluation order.
        """
        if n_calls <= 0:
            return 0, 0, 0
        plan = self.plan
        if not (plan.drop_prob or plan.delay_prob or plan.dup_prob):
            return 0, 0, 0
        rng = self.rngs.stream("fault-macro-rpc", rank)
        drops = int(rng.binomial(n_calls, plan.drop_prob))
        delays = int(rng.binomial(n_calls, plan.delay_prob))
        dups = int(rng.binomial(n_calls, plan.dup_prob))
        if drops:
            self._count("rpc_drop", drops)
        if delays:
            self._count("rpc_delay", delays)
        if dups:
            self._count("rpc_dup", dups)
        return drops, delays, dups

    # -- windowed degradation (delegated to the machine-side schedule) -----

    def link_dilation(self, t: float) -> float:
        return self.schedule.link_dilation(t)

    def mean_link_dilation(self, t0: float, t1: float) -> float:
        return self.schedule.mean_link_dilation(t0, t1)

    def latency_factor(self, t: float) -> float:
        return self.schedule.latency_factor(t)

    def straggle_factor(self, rank: int, t: float) -> float:
        return self.schedule.straggle_factor(rank, t)

    def mean_straggle_factor(self, rank: int, t0: float, t1: float) -> float:
        return self.schedule.mean_straggle_factor(rank, t0, t1)

    # -- rank death --------------------------------------------------------

    def death_time(self, rank: int) -> float | None:
        return self.schedule.death_time(rank)

    def dead(self, rank: int, t: float) -> bool:
        return self.schedule.dead(rank, t)

    def note_kill(self, rank: int) -> None:
        """Record a rank death the engine just honored (for the injected
        counts; the kill itself is deterministic plan state, not a draw)."""
        self._count("kill")

    def first_death_before(self, t: float) -> "RankKill | None":
        deaths = self.schedule.deaths_before(t)
        return deaths[0] if deaths else None

    # -- membership churn (deterministic plan state, counted when honored) -

    def note_join(self, rank: int) -> None:
        """Record a rank join the engine just honored."""
        self._count("join")

    def note_evict(self, rank: int) -> None:
        """Record an eviction departure the engine just honored."""
        self._count("evict")

    def note_migration(self, n_tasks: int = 1) -> None:
        """Record checkpointed task migrations (handoffs, not redos)."""
        if n_tasks > 0:
            self._count("migrate", n_tasks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(plan={self.plan.describe()!r}, "
                f"seed={self.rngs.seed})")
