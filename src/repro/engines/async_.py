"""The asynchronous engine (§3.2).

Tasks are indexed under their remote read; each rank issues asynchronous
pull RPCs (bounded outstanding window) for every distinct remote read it
needs, and the alignments involving a read run from the arrival callback —
communication is hidden behind computation rather than amortized by
aggregation.  A split-phase barrier overlaps the tasks whose reads are both
local with barrier entry; a single exit barrier keeps partitions available
until all ranks finish.

Timeline of one run (macro model, per rank ``r``)::

    [ local-pair compute // split-phase barrier ]      (overlap, §3.2)
    [ pull + remote compute: max(comm_r, compute_r) ]  (overlap)
    [ wait at exit barrier (sync) ]

Visible communication per rank is the part of its pull time that compute
could not cover — ``max(0, comm_r - compute_r)`` — which is how the paper's
stacked bars report the async code (Figures 8-10): "Async successfully
hides most of its communication latency".  Memory stays bounded: the window
holds at most ``async_window`` in-flight reads (Figure 11's flat <256 MB
line).

The pull-phase math itself (compute split, overheads, RPC service model,
fault adjustments, phase assembly) lives in :mod:`repro.engines.common`,
shared with the ``hybrid`` engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.common import (
    ASYNC_BASE_MEMORY,
    ASYNC_TASK_RECORD_BYTES,
    apply_pull_faults,
    assemble_pull_phases,
    mean_read_bytes,
    predict_pull_wall,
    pull_comm,
    pull_overheads,
    split_pull_compute,
)
from repro.engines.harness import ExecutionContext
from repro.engines.registry import register_cost_hook, register_engine
from repro.engines.report import RunResult
from repro.machine.config import MachineSpec
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.workload import WorkloadAssignment

__all__ = ["AsyncEngine"]

#: back-compat alias — the canonical constant lives in engines.common
RUNTIME_BASE_MEMORY = ASYNC_BASE_MEMORY


@register_engine("async", description="asynchronous one-sided pulls with "
                                      "callback compute (§3.2)")
@dataclass
class AsyncEngine:
    """Macro-granularity simulator of the asynchronous implementation."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "async"

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        ctx = ExecutionContext.open(self.name, assignment, machine,
                                    self.config, tracer=tracer,
                                    metrics=metrics, faults=faults)
        P = ctx.num_ranks

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        factors = ctx.noise.factors(P)
        local_compute, remote_compute = split_pull_compute(
            assignment, factors, comm_only
        )
        overhead = pull_overheads(self.config, assignment, machine)
        # index-building overhead happens before the pull phase; the
        # remainder is interleaved with the callbacks
        overhead_pre = 0.5 * overhead
        overhead_cb = overhead - overhead_pre

        bar = ctx.net.barrier_time()
        # aggregation coalesces `k` pulls into one message (same bytes,
        # fewer per-message costs and a shallower service queue)
        agg = float(self.config.async_aggregation)
        comm = pull_comm(ctx.net, assignment, agg)

        # --- fault adjustments (analytic; see docs/RESILIENCE.md) ---
        fo = apply_pull_faults(
            ctx, assignment, agg, self.config.async_min_visible, bar,
            local_compute, remote_compute, overhead_pre, overhead_cb, comm,
        )

        wall, busy, _visible = assemble_pull_phases(
            ctx, fo.local_compute, fo.overhead_pre, fo.remote_compute,
            fo.overhead_cb, fo.comm, fo.fault_stall,
            self.config.async_min_visible, bar,
            start_delay=fo.start_delay,
        )

        avg_read = mean_read_bytes(assignment)
        memory = (
            RUNTIME_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * ASYNC_TASK_RECORD_BYTES
            + self.config.async_window * avg_read  # in-flight reads only
        )
        details = {
            "hidden_comm": float(np.minimum(fo.comm, busy).sum()),
            "raw_comm": fo.comm,
        }
        if faults is not None:
            details.update(ctx.fault_details(
                {
                    "rpc_retries": int(fo.retry_counts.sum()),
                    "rpc_stall_total": float(fo.fault_stall.sum()),
                },
                fo.tasks_redistributed, fo.ranks_lost, ledger=fo.ledger,
            ))
        return ctx.finalize(
            assignment, wall,
            memory=memory,
            exchange_rounds=0,
            details=details,
            extra_counters=(
                ("rpc_issued", np.ceil(assignment.lookups / agg)),
                ("rpc_bytes", assignment.lookup_bytes),
            ),
            redist_counts=fo.redist_counts,
            tasks_redistributed=fo.tasks_redistributed,
        )


@register_cost_hook("async")
def _predict_async(assignment: WorkloadAssignment, machine: MachineSpec,
                   config: EngineConfig) -> dict:
    """Analytic fault-free wall clock of :class:`AsyncEngine`.

    The shared pull predictor evaluated at ``async_aggregation`` — on a
    noise-free machine this is bit-equal to the engine's measured wall.
    """
    wall = predict_pull_wall(config, assignment, machine,
                             float(config.async_aggregation))
    avg_read = mean_read_bytes(assignment)
    memory = (
        RUNTIME_BASE_MEMORY
        + assignment.partition_bytes
        + assignment.tasks_per_rank * ASYNC_TASK_RECORD_BYTES
        + config.async_window * avg_read
    )
    return {
        "wall": wall,
        "peak_memory": float(memory.max(initial=0.0)),
        "rounds": 0,
    }
