"""Golden-signature regression suite.

Every registered engine runs two small fixed synthetic workloads; each
run's :meth:`~repro.engines.report.RunResult.signature` (a SHA-256 over a
canonical serialization of *everything* the run produced) must match the
digest pinned in ``tests/goldens/signatures.json``.

The case matrix and run construction are imported from
``tools/regen_goldens.py`` so this suite and the regeneration script can
never drift apart.  A red test here means behavior changed: either fix the
regression, or — if the change is intentional — regenerate with
``PYTHONPATH=src python tools/regen_goldens.py`` and justify the diff in
the same commit.

The process-backend cases are the lockdown for docs/PARALLEL.md's
determinism contract: fanning kernel batches out to a worker pool must
reproduce the *same* digest as the inline serial run.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent

_spec = importlib.util.spec_from_file_location(
    "regen_goldens", REPO / "tools" / "regen_goldens.py"
)
regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(regen)

GOLDENS = json.loads((REPO / "tests" / "goldens" / "signatures.json")
                     .read_text())


def test_matrix_and_goldens_agree():
    """The pinned file covers exactly the declared case matrix."""
    expected = {
        regen.case_key(engine, workload, seed)
        for workload, seed in regen.WORKLOADS
        for engine in regen.ENGINES
    }
    expected |= {regen.churn_key(engine) for engine in regen.ENGINES}
    assert set(GOLDENS) == expected


@pytest.mark.parametrize("key", sorted(GOLDENS))
def test_signature_matches_golden(key):
    engine, rest = key.split("/")
    if rest == "churn":
        res = regen.compute_churn_result(engine)
    else:
        workload, seed = rest.split("@")
        res = regen.compute_result(engine, workload, int(seed))
    assert res.signature() == GOLDENS[key], (
        f"{key}: result signature drifted from the pinned golden — "
        f"behavioral change (regenerate deliberately with "
        f"tools/regen_goldens.py if intended)"
    )


@pytest.mark.parametrize("backend", ["process", "auto"])
@pytest.mark.parametrize("engine", ["bsp-micro", "async-micro"])
def test_parallel_backends_hit_serial_golden(engine, backend):
    """process and auto must be bit-identical to serial: same digest.

    For ``auto`` this covers every committed choice — whichever side the
    probe picks on this machine, the digest cannot move.
    """
    key = regen.case_key(engine, "micro", 11)
    res = regen.compute_result(engine, "micro", 11,
                               backend=backend, workers=2, chunk_tasks=7)
    assert res.signature() == GOLDENS[key]


@pytest.mark.parametrize("engine", regen.ENGINES)
def test_sharded_path_hits_materialized_golden(engine):
    """The out-of-core workload path must reproduce the pinned digests.

    Sharding (generation, streamed aggregation, spill/reload, per-shard
    micro dispatch) is a pure memory knob: the same engine on the same
    preset through ``shard_tasks > 0`` cannot move a single bit of the
    result.  A shard size well below n_tasks forces multiple shards,
    evictions, and spill reloads on every existing golden workload.
    """
    key = regen.case_key(engine, "micro", 11)
    res = regen.compute_result(engine, "micro", 11, shard_tasks=97)
    assert res.signature() == GOLDENS[key], (
        f"{engine}: sharded-path signature diverged from the materialized "
        f"golden — sharding changed behavior"
    )


@pytest.mark.parametrize("engine", ["bsp-micro"])
def test_sharded_process_backend_hits_golden(engine):
    """Per-shard shared stores (SharedShardStore) keep the serial digest."""
    key = regen.case_key(engine, "micro", 11)
    res = regen.compute_result(engine, "micro", 11, shard_tasks=97,
                               backend="process", workers=2, chunk_tasks=7)
    assert res.signature() == GOLDENS[key]
