"""The bulk-synchronous (BSP) engine (§3.1).

Reads are exchanged in an irregular all-to-all (``MPI_Alltoall`` +
``MPI_Alltoallv`` in the original), maximally aggregated; pairwise
alignments for each received read are computed when the read is taken from
the message buffer.  When the aggregated exchange does not fit in per-node
memory, the engine performs **multiple dynamically-sized communication and
computation rounds** — the paper's refactoring of DiBELLA's third stage, and
the mechanism behind Figures 9 and 11.

Timeline of one run (macro model, per round ``i`` of ``R``)::

    [ exchange_i (comm) ][ compute_i | wait for slowest (sync) ] ... repeat

The exchange is a blocking collective: every rank experiences the full
round duration, split into its personal send/recv cost (comm) and waiting
on more-loaded ranks (sync) — exchange load imbalance (Figure 6) surfaces
as BSP synchronization/latency.  Compute phases end at the slowest rank
(task-cost load imbalance, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.report import PhaseTimers, RunResult, RuntimeBreakdown
from repro.errors import ConfigurationError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.machine.noise import NoiseModel
from repro.obs import (
    ENGINE_LANE,
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_trace,
    get_default_tracer,
)
from repro.pipeline.workload import WorkloadAssignment
from repro.utils.rng import RngFactory
from repro.utils.units import MB

__all__ = ["BSPEngine"]

#: fixed per-rank footprint: program image + MPI runtime + output buffers
RUNTIME_BASE_MEMORY = 100 * MB
#: flat-array task record: read ids, positions, flags, cost (BSP layout)
BSP_TASK_RECORD_BYTES = 40.0


@dataclass
class BSPEngine:
    """Macro-granularity simulator of the bulk-synchronous implementation."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "bsp"

    # -- round sizing (the §3.1 dynamic superstep logic) --------------------

    def exchange_budget(self, machine: MachineSpec,
                        assignment: WorkloadAssignment) -> float:
        """Receive-buffer bytes one rank may devote to a single round."""
        fixed = (
            RUNTIME_BASE_MEMORY
            + float(assignment.partition_bytes.max(initial=0.0))
            + float(assignment.tasks_per_rank.max(initial=0.0))
            * BSP_TASK_RECORD_BYTES
        )
        free = machine.app_memory_per_rank - fixed
        if free <= 0:
            raise ConfigurationError(
                "per-rank memory cannot hold even the input partition; "
                "use more nodes (the paper needs >= 8 nodes for Human CCS)"
            )
        return self.config.exchange_memory_fraction * free

    def num_rounds(self, machine: MachineSpec,
                   assignment: WorkloadAssignment) -> int:
        """Rounds needed so every rank's round receive fits its budget."""
        budget = self.exchange_budget(machine, assignment)
        max_recv = float(assignment.recv_bytes.max(initial=0.0))
        return max(1, int(np.ceil(max_recv / budget)))

    # -- simulation ----------------------------------------------------------

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None) -> RunResult:
        if assignment.num_ranks != machine.total_ranks:
            raise ConfigurationError(
                f"assignment is for {assignment.num_ranks} ranks but machine "
                f"has {machine.total_ranks}"
            )
        P = machine.total_ranks
        tracer = tracer if tracer is not None else get_default_tracer()
        if tracer is not None:
            tracer.begin_run(
                f"{self.name} {assignment.name} nodes={machine.nodes} P={P}"
            )
        net = NetworkModel(machine)
        noise = NoiseModel(machine, RngFactory(self.config.seed),
                           noise_fraction=self.config.noise_fraction)
        timers = PhaseTimers(P)

        rounds = self.num_rounds(machine, assignment)
        send = assignment.send_bytes
        recv = assignment.recv_bytes
        # how many peers a typical rank exchanges nonempty messages with:
        # bounded by its distinct remote reads and by P-1
        avg_sources = float(np.minimum(assignment.lookups, P - 1).mean()) if P > 1 else 1.0

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        compute = np.zeros(P) if comm_only else assignment.compute_seconds
        internode = 1.0 - 1.0 / machine.nodes
        overhead = (
            assignment.tasks_per_rank * self.config.bsp_task_overhead
            + assignment.lookups * self.config.bsp_read_overhead * internode
        )

        eff_scale = self.config.multiround_efficiency if rounds > 1 else 1.0
        factors = noise.factors(P)
        wall = 0.0
        exchange_total = 0.0
        for r in range(rounds):
            t0 = wall  # superstep start
            # --- exchange phase (blocking collective) ---
            round_send = send / rounds
            round_recv = recv / rounds
            # a rank exchanges with roughly the same peer set every round;
            # splitting volume across rounds shrinks per-source messages
            round_sources = avg_sources
            duration = net.alltoallv_time(
                round_send.max(initial=0.0),
                round_recv.max(initial=0.0),
                round_sources,
                efficiency_scale=eff_scale,
            )
            personal = np.array([
                net.alltoallv_rank_time(
                    float(round_send[i]), float(round_recv[i]),
                    round_sources,
                    efficiency_scale=eff_scale,
                )
                for i in range(P)
            ])
            personal = np.minimum(personal, duration)
            timers.add_array("comm", personal)
            timers.add_array("sync", duration - personal)
            wall += duration
            exchange_total += duration

            # --- compute phase (ends at the slowest rank) ---
            phase = factors * (compute + overhead) / rounds
            phase_end = float(phase.max(initial=0.0))
            align_part = factors * compute / rounds
            if not comm_only:
                timers.add_array("compute_align", align_part)
            timers.add_array(
                "compute_overhead",
                phase - (align_part if not comm_only else 0.0),
            )
            timers.add_array("sync", phase_end - phase)
            wall += phase_end

            if tracer is not None:
                tracer.instant(ENGINE_LANE, "superstep", t0,
                               round=r, rounds=rounds)
                tc = t0 + duration  # compute phase start
                for i in range(P):
                    p_comm = float(personal[i])
                    a = 0.0 if comm_only else float(align_part[i])
                    o = float(phase[i]) - a
                    for cat, start, dur, label in (
                        ("comm", t0, p_comm, f"exchange[{r}]"),
                        ("sync", t0 + p_comm, duration - p_comm,
                         f"exchange-skew[{r}]"),
                        ("compute_align", tc, a, f"align[{r}]"),
                        ("compute_overhead", tc + a, o, f"overhead[{r}]"),
                        ("sync", tc + float(phase[i]),
                         phase_end - float(phase[i]), f"compute-wait[{r}]"),
                    ):
                        if dur > 0:
                            tracer.phase(i, cat, start, dur, name=label)

        # final barrier closing the last superstep
        bar = net.barrier_time()
        timers.add_array("sync", np.full(P, bar))
        if tracer is not None:
            for i in range(P):
                tracer.phase(i, "sync", wall, bar, name="exit-barrier")
        wall += bar

        breakdown = RuntimeBreakdown(
            engine=self.name,
            machine=machine,
            workload=assignment.name,
            wall_time=wall,
            compute_align=timers.get("compute_align"),
            compute_overhead=timers.get("compute_overhead"),
            comm=timers.get("comm"),
            sync=timers.get("sync"),
        )
        breakdown.validate()
        if tracer is not None:
            # the emitted event stream must independently tile the wall clock
            assert_conserved(check_trace(tracer, wall, P))
        if metrics is not None:
            metrics.add_array("tasks", assignment.tasks_per_rank)
            metrics.add_array("lookups", assignment.lookups)
            metrics.add_array("bytes_sent", send)
            metrics.add_array("bytes_recv", recv)

        memory = (
            RUNTIME_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * BSP_TASK_RECORD_BYTES
            + (recv + send) / rounds  # receive buffer + send staging
        )
        return RunResult(
            breakdown=breakdown,
            memory_high_water=memory,
            exchange_rounds=rounds,
            details={
                "exchange_budget": self.exchange_budget(machine, assignment),
                "avg_sources": avg_sources,
                "exchange_time_total": exchange_total,
            },
        )
