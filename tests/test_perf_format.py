"""Tests for table rendering and the dataset registry helpers."""

import pytest

from repro.genome.datasets import DATASETS, table1_rows
from repro.perf.format import render_breakdown_rows, render_table


def test_render_table_alignment():
    text = render_table("My Title", ["a", "bee"], [[1, 2.5], [30, 0.001]])
    lines = text.splitlines()
    assert lines[0] == "My Title"
    assert "a" in lines[2] and "bee" in lines[2]
    assert "30" in text and "2.50" in text and "0.001" in text


def test_render_table_empty_rows():
    text = render_table("T", ["x"], [])
    assert "x" in text


def test_table1_rows_exact():
    rows = {r["short_name"]: r for r in table1_rows()}
    assert rows["ecoli30x"]["reads"] == 16_890
    assert rows["ecoli30x"]["tasks"] == 2_270_260
    assert rows["ecoli100x"]["reads"] == 91_394
    assert rows["ecoli100x"]["tasks"] == 24_869_171
    assert rows["human_ccs"]["reads"] == 1_148_839
    assert rows["human_ccs"]["tasks"] == 87_621_409


def test_dataset_registry_properties():
    spec = DATASETS["ecoli30x"]
    assert spec.tasks_per_read == pytest.approx(2_270_260 / 16_890)
    # implied genome size close to the real E. coli genome (~4.6 Mbp)
    assert spec.implied_genome_size() == pytest.approx(4.6e6, rel=0.05)
    micro = DATASETS["micro"]
    assert micro.sequence_level
    assert micro.implied_genome_size() == 12_000


def test_render_breakdown_rows():
    from repro.core.api import get_workload, scaling_sweep

    wl = get_workload("micro", seed=0)
    results = scaling_sweep(wl, [1], approaches=("bsp", "async"))
    rows = render_breakdown_rows(results)
    assert len(rows) == 2
    engines = {r[0] for r in rows}
    assert engines == {"bsp", "async"}
