"""End-to-end integration: genome -> reads -> seeds -> alignments -> quality.

These tests tie every substrate together and check *biological* ground
truth: candidates found by shared reliable k-mers must correspond to reads
that genuinely overlap on the synthetic genome, and the X-drop alignments
must recover those overlaps.
"""

import numpy as np
import pytest

from repro.align.seedextend import SeedExtendAligner
from repro.genome.datasets import DATASETS, synthesize_dataset
from repro.kmer.bella import BellaModel
from repro.kmer.histogram import count_kmers
from repro.kmer.seeds import CandidateGenerator


@pytest.fixture(scope="module")
def run():
    return synthesize_dataset(DATASETS["micro"], seed=21)


@pytest.fixture(scope="module")
def candidates(run):
    gen = CandidateGenerator(
        k=13, model=BellaModel(coverage=8, error_rate=0.08, k=13)
    )
    return gen.generate(run.reads)


def genome_overlap(reads, i, j):
    """True genomic overlap length of reads i and j (from ground truth)."""
    a0, a1 = int(reads.origins[i]), int(reads.origin_ends[i])
    b0, b1 = int(reads.origins[j]), int(reads.origin_ends[j])
    return max(0, min(a1, b1) - max(a0, b0))


def test_candidates_are_mostly_true_overlaps(run, candidates):
    """Reliable shared k-mers should select genuinely overlapping reads."""
    assert len(candidates) > 50
    true = sum(
        1 for c in candidates
        if genome_overlap(run.reads, c.read_a, c.read_b) >= 13
    )
    # repeat copies share k-mers without sharing genome coordinates, so a
    # tail of repeat-induced candidates is expected (that is exactly why
    # the paper's costs include false-positive early termination)
    assert true / len(candidates) > 0.75


def test_candidates_recall_long_overlaps(run, candidates):
    """Pairs overlapping by >= 300 bp should mostly be discovered."""
    found = {(c.read_a, c.read_b) for c in candidates}
    reads = run.reads
    long_pairs = missed = 0
    for i in range(len(reads)):
        for j in range(i + 1, len(reads)):
            if genome_overlap(reads, i, j) >= 300:
                long_pairs += 1
                if (i, j) not in found:
                    missed += 1
    assert long_pairs > 20
    assert missed / long_pairs < 0.2


def test_alignments_recover_overlap_extent(run, candidates):
    """Alignment extents should track the true genomic overlap length."""
    aligner = SeedExtendAligner(x_drop=20)
    ratios = []
    for c in candidates[:60]:
        true_len = genome_overlap(run.reads, c.read_a, c.read_b)
        if true_len < 200:
            continue
        res = aligner.align_candidate(run.reads, c)
        ratios.append(res.aligned_length_a / true_len)
    assert len(ratios) > 10
    # most alignments recover the bulk of the true overlap
    assert np.median(ratios) > 0.6


def test_alignment_scores_separate_true_from_false(run, candidates):
    """Scores on true overlaps must dominate scores on random pairs."""
    aligner = SeedExtendAligner(x_drop=15)
    true_scores = [
        aligner.align_candidate(run.reads, c).score for c in candidates[:40]
    ]
    # synthesize false candidates: random read pairs with a fake seed at 0
    rng = np.random.default_rng(0)
    false_scores = []
    reads = run.reads
    k = 13
    while len(false_scores) < 20:
        i, j = rng.integers(0, len(reads), 2)
        if i == j or genome_overlap(reads, int(i), int(j)) > 0:
            continue
        la, lb = len(reads.codes(int(i))), len(reads.codes(int(j)))
        if la <= k or lb <= k:
            continue
        res = aligner.align(reads.codes(int(i)), reads.codes(int(j)),
                            0, 0, k, read_a=int(i), read_b=int(j))
        false_scores.append(res.score)
    assert np.median(true_scores) > 3 * np.median(false_scores)


def test_bella_band_improves_candidate_precision(run):
    """Without the frequency band, repeat k-mers create false candidates."""
    hist = count_kmers(run.reads, k=13)
    unfiltered = CandidateGenerator(k=13, bounds=(1, 10_000)).generate(run.reads)
    model = BellaModel(coverage=8, error_rate=0.08, k=13)
    filtered = CandidateGenerator(k=13, model=model).generate(run.reads, hist)

    def precision(cands):
        if not cands:
            return 1.0
        true = sum(
            1 for c in cands
            if genome_overlap(run.reads, c.read_a, c.read_b) >= 13
        )
        return true / len(cands)

    assert precision(filtered) >= precision(unfiltered)
    # the unfiltered set is a superset in size
    assert len(unfiltered) >= len(filtered)


def test_reverse_candidates_exist_and_align(run, candidates):
    """Both-strand sampling must produce reverse-orientation candidates."""
    reverse = [c for c in candidates if c.reverse]
    forward = [c for c in candidates if not c.reverse]
    assert reverse and forward
    aligner = SeedExtendAligner(x_drop=20)
    res = aligner.align_candidate(run.reads, reverse[0])
    assert res.reverse
    assert res.score >= 13
