"""Tests for the micro SPMD runtime: queues, collectives, RPC."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.machine.config import cori_knl
from repro.machine.engine import Engine
from repro.runtime.collectives import Collectives
from repro.runtime.context import SpmdContext
from repro.runtime.queues import SimQueue
from repro.runtime.rpc import RpcLayer


def make_ctx(ranks=4, nodes=1):
    return SpmdContext(cori_knl(nodes, app_cores_per_node=ranks // nodes))


def test_simqueue_fifo():
    eng = Engine()
    q = SimQueue(eng, "t")
    got = []

    def consumer():
        for _ in range(3):
            item = yield from q.get()
            got.append(item)

    def producer():
        yield 1.0
        q.put("a")
        q.put("b")
        yield 1.0
        q.put("c")

    eng.process(consumer())
    eng.process(producer())
    eng.run()
    assert got == ["a", "b", "c"]


def test_simqueue_single_consumer():
    eng = Engine()
    q = SimQueue(eng, "t")

    def consumer():
        yield from q.get()

    eng.process(consumer())
    eng.process(consumer())
    with pytest.raises(SimulationError):
        eng.run()


def test_simqueue_waiting_consumer_guard_names_queue():
    """The second-consumer guard must say *which* queue misfired."""
    eng = Engine()
    q = SimQueue(eng, "rpc-inbox-3")

    def consumer():
        yield from q.get()

    eng.process(consumer())
    eng.process(consumer())
    with pytest.raises(SimulationError, match="rpc-inbox-3"):
        eng.run()


def test_simqueue_put_after_close_raises():
    """A producer delivering into a closed queue is a lost-message bug,
    not a silent buffer-forever."""
    eng = Engine()
    q = SimQueue(eng, "rpc-inbox-0")
    q.put("early")  # fine before close
    q.close()
    assert q.closed
    with pytest.raises(SimulationError, match="rpc-inbox-0"):
        q.put("late")


def test_simqueue_get_after_close_raises():
    eng = Engine()
    q = SimQueue(eng, "inbox")
    q.close()

    def consumer():
        yield from q.get()

    eng.process(consumer())
    with pytest.raises(SimulationError, match="inbox"):
        eng.run()


def test_deadlock_error_names_blocked_processes():
    """A drained event heap with blocked processes must raise
    DeadlockError (not hang, not exit silently) and name the victims."""
    from repro.errors import DeadlockError

    eng = Engine()
    q = SimQueue(eng, "never-fed")

    def consumer():
        yield from q.get()

    eng.process(consumer(), name="starved-rank")
    with pytest.raises(DeadlockError, match="starved-rank"):
        eng.run()


def test_barrier_synchronizes_ranks():
    ctx = make_ctx(4)
    coll = Collectives(ctx)
    exit_times = {}

    def rank_main(rank):
        yield float(rank)  # ranks arrive staggered
        yield from coll.barrier(rank)
        exit_times[rank] = ctx.engine.now

    ctx.engine.spawn_all(rank_main(r) for r in range(4))
    ctx.engine.run()
    times = np.array([exit_times[r] for r in range(4)])
    assert np.allclose(times, times[0])
    assert times[0] >= 3.0  # last arrival gates everyone
    # waiting time accounted as sync
    sync = ctx.timers.get("sync")
    assert sync[0] > sync[3]


def test_allreduce_sum():
    ctx = make_ctx(4)
    coll = Collectives(ctx)
    results = {}

    def rank_main(rank):
        value = yield from coll.allreduce(rank, rank + 1)
        results[rank] = value

    ctx.engine.spawn_all(rank_main(r) for r in range(4))
    ctx.engine.run()
    assert all(v == 10 for v in results.values())


def test_split_barrier_overlap():
    """Work done between enter and wait happens while others arrive."""
    ctx = make_ctx(4)
    coll = Collectives(ctx)
    waits = {}

    def rank_main(rank):
        coll.split_barrier_enter(rank)
        # rank 0 computes for 5s while others enter immediately
        yield 5.0 if rank == 0 else 0.1
        t0 = ctx.engine.now
        yield from coll.split_barrier_wait(rank)
        waits[rank] = ctx.engine.now - t0

    ctx.engine.spawn_all(rank_main(r) for r in range(4))
    ctx.engine.run()
    # everyone entered at t=0, so nobody waits long (the overlap worked)
    assert all(w < 1.0 for w in waits.values())


def test_split_barrier_wait_before_enter():
    ctx = make_ctx(2)
    coll = Collectives(ctx)

    def bad(rank):
        yield from coll.split_barrier_wait(rank)

    ctx.engine.process(bad(0))
    with pytest.raises(SimulationError):
        ctx.engine.run()


def test_split_barrier_tag_reuse_synchronizes():
    """A reused tag must synchronize again (regression test).

    Historically the split-barrier state was never reset after firing, so
    the second barrier on the same tag — e.g. the default ``"split"``
    across two supersteps, or two runs sharing one :class:`Collectives` —
    completed immediately without waiting for anyone.
    """
    ctx = make_ctx(4)
    coll = Collectives(ctx)
    exits = {}

    def rank_main(rank):
        coll.split_barrier_enter(rank)
        yield 0.1
        yield from coll.split_barrier_wait(rank)
        # second cycle on the same (default) tag, arrivals staggered by rank
        yield 2.0 * rank
        coll.split_barrier_enter(rank)
        yield 0.01
        yield from coll.split_barrier_wait(rank)
        exits[rank] = ctx.engine.now

    ctx.engine.spawn_all(rank_main(r) for r in range(4))
    ctx.engine.run()
    times = np.array([exits[r] for r in range(4)])
    # nobody passes the second wait before rank 3 enters ~6s after the
    # first barrier (the buggy no-op barrier released everyone at ~0.1s)
    assert times.min() >= 6.0
    # early ranks' long waits were charged as synchronization
    sync = ctx.timers.get("sync")
    assert sync[0] > sync[3]


def test_split_barrier_reenter_before_wait_raises():
    ctx = make_ctx(2)
    coll = Collectives(ctx)

    def bad(rank):
        coll.split_barrier_enter(rank)
        coll.split_barrier_enter(rank)  # over-entry: no wait in between
        yield 0.0

    ctx.engine.process(bad(0))
    with pytest.raises(SimulationError):
        ctx.engine.run()


def test_split_barrier_laggard_waits_on_its_own_generation():
    """A rank may still wait on generation g after faster ranks begin g+1."""
    ctx = make_ctx(2)
    coll = Collectives(ctx)
    waited = {}

    def fast(rank):
        coll.split_barrier_enter(rank)
        yield from coll.split_barrier_wait(rank)
        coll.split_barrier_enter(rank)  # already into generation 1
        yield 1.0
        yield from coll.split_barrier_wait(rank)
        waited[rank] = ctx.engine.now

    def slow(rank):
        coll.split_barrier_enter(rank)
        yield 5.0  # generation 0 fired long ago; wait must still return
        yield from coll.split_barrier_wait(rank)
        coll.split_barrier_enter(rank)
        yield from coll.split_barrier_wait(rank)
        waited[rank] = ctx.engine.now

    ctx.engine.process(fast(0))
    ctx.engine.process(slow(1))
    ctx.engine.run()
    assert waited[0] == pytest.approx(waited[1])


def test_alltoallv_delivers_payloads():
    ctx = make_ctx(4)
    coll = Collectives(ctx)
    received = {}

    def rank_main(rank):
        # rank r sends its id to rank (r+1) % 4
        dst = (rank + 1) % 4
        send = {dst: [(f"from{rank}", 100.0)]}
        items = yield from coll.alltoallv(rank, send, 100.0)
        received[rank] = [x for x, _ in items]

    ctx.engine.spawn_all(rank_main(r) for r in range(4))
    ctx.engine.run()
    for r in range(4):
        assert received[r] == [f"from{(r - 1) % 4}"]
    # communication was charged
    assert ctx.timers.get("comm").sum() > 0


def test_alltoallv_empty_send():
    ctx = make_ctx(2)
    coll = Collectives(ctx)

    def rank_main(rank):
        items = yield from coll.alltoallv(rank, {}, 0.0)
        assert items == []

    ctx.engine.spawn_all(rank_main(r) for r in range(2))
    ctx.engine.run()


def test_rpc_roundtrip_and_latency():
    ctx = make_ctx(4, nodes=2)
    rpc = RpcLayer(ctx)
    for r in range(4):
        rpc.register(r, lambda token: (token * 2, 1000.0))
    responses = []

    def caller(rank):
        rpc.call(rank, (rank + 2) % 4, rank + 10)
        yield ctx.charge("comm", rank, rpc.injection_cost())
        resp = yield from rpc.inboxes[rank].get()
        responses.append(resp)

    ctx.engine.spawn_all(caller(r) for r in range(4))
    ctx.engine.run()
    assert len(responses) == 4
    for resp in responses:
        assert resp.value == resp.token * 2
        assert resp.latency > 0
    assert rpc.total_calls == 4


def test_rpc_serializes_at_target():
    """Many requests to one target finish later than a single request."""
    ctx = make_ctx(4, nodes=2)
    rpc = RpcLayer(ctx)
    for r in range(4):
        rpc.register(r, lambda token: (token, 10.0))
    done = {}

    def caller(rank, burst):
        for i in range(burst):
            rpc.call(rank, 0, i)
            yield ctx.charge("comm", rank, rpc.injection_cost())
        for _ in range(burst):
            yield from rpc.inboxes[rank].get()
        done[rank] = ctx.engine.now

    ctx.engine.process(caller(1, 1))
    ctx.engine.process(caller(2, 500))
    ctx.engine.run()
    assert rpc.served(0) == 501
    assert done[2] > done[1]


def test_rpc_to_self_rejected():
    ctx = make_ctx(2)
    rpc = RpcLayer(ctx)
    rpc.register(0, lambda t: (t, 1.0))
    with pytest.raises(SimulationError):
        rpc.call(0, 0, "x")


def test_rpc_unregistered_target():
    ctx = make_ctx(2)
    rpc = RpcLayer(ctx)
    with pytest.raises(SimulationError):
        rpc.call(0, 1, "x")
