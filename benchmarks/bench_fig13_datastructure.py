"""Figure 13: local data-structure traversal overhead, Human CCS.

Paper's claims checked in shape: the flat-array BSP code pays less
traversal overhead than the pointer-based async code at every scale (the
performance/programmability trade-off of §4.6); absolute overhead scales
down with P while remaining a small single-digit share of runtime
(paper: down to ~4%).
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig13_datastructure


def test_fig13_datastructure(benchmark, human_nodes):
    fig = run_once(benchmark, fig13_datastructure, human_nodes)
    emit("fig13", fig)
    rows = fig["rows"]

    for r in rows:
        n, cores, bsp_s, async_s, bsp_pct, async_pct = r
        assert async_s > bsp_s            # pointer chasing costs more
        assert async_pct < 12.0           # but stays a small share

    # absolute overhead scales down with P
    assert rows[-1][3] < rows[0][3]
    assert rows[-1][2] < rows[0][2]
