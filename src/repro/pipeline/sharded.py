"""Sharded, lazily-materialized workloads: paper scale without paper memory.

The paper's headline datasets (E. coli 100x: 24.9M alignment tasks, Human
CCS: 87.6M, Table 1) never fit the "build one giant task table, then slice
it" pattern the materialized workload classes use — holding every task row
in memory before any engine runs caps the reproduction around 10^5 tasks.
diBELLA and the parallel string-graph line of work reach genome scale by
streaming bounded partitions between pipeline stages; this module applies
the same memory-limited idea to workload *construction*:

* :class:`ShardedWorkload` generates (or slices) task rows in fixed-size
  shards, each seeded deterministically by shard-independent generator
  blocks, so the shard size is a pure memory knob — it can never change a
  single result.
* The per-rank aggregates every engine consumes (:meth:`assignment`) are
  accumulated shard-by-shard with in-order ``np.add.at`` folds, which
  reproduce the materialized path's ``bincount``/``segment_sums`` results
  **bit-identically** (both are sequential left-to-right folds into
  float64 bins over the same element order).
* Deduplicated remote-read structure — the one aggregate that genuinely
  needs global state — runs as an external bucket sort: each shard's
  ``(requester, read)`` keys append to on-disk range buckets, and
  finalization walks the buckets in ascending key order, matching the
  materialized ``np.unique`` fold order exactly.
* Resident shard columns are bounded by :class:`ShardStore`: an LRU of at
  most ``max_resident_shards`` shards, charged against a
  :class:`repro.machine.memory.NodeMemory` ledger (allocate on load, free
  on evict, high-water recorded), with evicted columns spilled to disk —
  or to shared memory, by pointing the spill directory at ``/dev/shm``.

Two backings share all of that machinery:

* :meth:`ShardedWorkload.from_workload` wraps an existing
  :class:`~repro.pipeline.workload.ConcreteWorkload`.  Its streamed
  :meth:`assignment`/:meth:`micro_plan` are bit-identical to the
  materialized ones (golden-signature-pinned), and the micro engines +
  process backend keep working — the fork pool maps per-shard compact
  read stores instead of the whole read set (docs/PARALLEL.md).
* :meth:`ShardedWorkload.synthetic` generates Table-1-scale task rows
  from the statistical presets.  Unlike
  :class:`~repro.pipeline.workload.StatisticalWorkload` (which models
  per-rank aggregates directly), this path draws *actual task rows* —
  uniform read pairs, calibrated costs, a deterministic owner coin — and
  derives the exchange structure exactly, so a 10^7–10^8-task macro sweep
  runs with peak workload memory bounded by the resident-shard budget
  (``benchmarks/bench_scale_sweep.py``).
"""

from __future__ import annotations

import os
import tempfile
from collections import OrderedDict
from typing import Callable, Iterator

import numpy as np

from repro.align.cost import MEAN_TASK_COST, AlignmentCostModel
from repro.errors import ConfigurationError
from repro.genome.datasets import DatasetSpec
from repro.machine.memory import NodeMemory
from repro.pipeline.partition import (
    assign_tasks_balanced,
    owners_from_boundaries,
    partition_reads_by_size,
)
from repro.pipeline.workload import (
    ASSIGNMENT_CACHE_CAP,
    ConcreteWorkload,
    MicroPlan,
    TaskCostDistribution,
    WorkloadAssignment,
)
from repro.utils.cache import LruCache
from repro.utils.rng import RngFactory

__all__ = [
    "ShardedWorkload",
    "ShardStore",
    "DEFAULT_SHARD_TASKS",
    "DEFAULT_RESIDENT_SHARDS",
]

#: default tasks per shard: large enough that per-shard numpy dispatch is
#: noise, small enough that a handful of resident shards stay well under
#: one node's budget even on Human CCS
DEFAULT_SHARD_TASKS = 1 << 18

#: default resident-shard budget (shards simultaneously held in memory)
DEFAULT_RESIDENT_SHARDS = 4

#: environment override for where evicted shard columns spill
#: (point at /dev/shm to spill to shared memory instead of disk)
SPILL_DIR_ENV = "REPRO_SHARD_SPILL_DIR"

#: tasks per synthetic generator block — fixed regardless of the shard
#: size, so shard boundaries never change which RNG stream draws a task
GEN_BLOCK = 1 << 16


class ShardStore:
    """Bounded-resident LRU of shard columns with spill + memory ledger.

    ``build(shard_id, lo, hi)`` materializes one shard's columns on first
    touch; at most ``max_resident`` shards stay in memory, accounted
    against a :class:`~repro.machine.memory.NodeMemory` ledger sized to
    ``max_resident * bytes_per_shard`` (so an accounting bug that leaks a
    shard raises :class:`~repro.errors.MemoryLimitError` instead of
    silently growing).  Evicted shards spill once to ``.npz`` files in the
    spill directory and reload from there — cheaper than regenerating
    draws, and the file is the out-of-core copy the resident budget
    assumes exists.
    """

    def __init__(
        self,
        n_tasks: int,
        shard_tasks: int,
        build: Callable[[int, int, int], dict],
        bytes_per_task: int,
        max_resident: int = DEFAULT_RESIDENT_SHARDS,
        spill_dir: str | None = None,
    ):
        if shard_tasks < 1:
            raise ConfigurationError("shard_tasks must be >= 1")
        if max_resident < 1:
            raise ConfigurationError("max_resident_shards must be >= 1")
        self.n_tasks = int(n_tasks)
        self.shard_tasks = int(shard_tasks)
        self.n_shards = -(-self.n_tasks // self.shard_tasks)
        self.max_resident = int(max_resident)
        self._build = build
        self.bytes_per_shard = int(bytes_per_task) * self.shard_tasks
        # the ledger is the budget: eviction keeps `used` under capacity,
        # and `high_water` is the measured peak the scale bench reports
        self.ledger = NodeMemory(
            capacity=float(self.max_resident * self.bytes_per_shard)
        )
        self._resident: OrderedDict[int, dict] = OrderedDict()
        self._tmp = tempfile.TemporaryDirectory(
            prefix="repro-shards-",
            dir=spill_dir or os.environ.get(SPILL_DIR_ENV) or None,
        )
        self._spilled: set[int] = set()
        self.builds = 0
        self.reloads = 0
        self.evictions = 0
        self.hits = 0

    def shard_range(self, shard_id: int) -> tuple[int, int]:
        lo = shard_id * self.shard_tasks
        return lo, min(lo + self.shard_tasks, self.n_tasks)

    def _spill_path(self, shard_id: int) -> str:
        return os.path.join(self._tmp.name, f"shard{shard_id}.npz")

    def _nbytes(self, columns: dict) -> float:
        return float(sum(arr.nbytes for arr in columns.values()))

    def _admit(self, shard_id: int, columns: dict) -> None:
        while len(self._resident) >= self.max_resident:
            old_id, old_cols = self._resident.popitem(last=False)
            if old_id not in self._spilled:
                np.savez(self._spill_path(old_id), **old_cols)
                self._spilled.add(old_id)
            self.ledger.free(f"shard{old_id}")
            self.evictions += 1
        self.ledger.allocate(f"shard{shard_id}", self._nbytes(columns))
        self._resident[shard_id] = columns

    def get(self, shard_id: int) -> dict:
        """This shard's columns (resident, reloaded from spill, or built)."""
        columns = self._resident.get(shard_id)
        if columns is not None:
            self._resident.move_to_end(shard_id)
            self.hits += 1
            return columns
        if shard_id in self._spilled:
            with np.load(self._spill_path(shard_id)) as npz:
                columns = {name: npz[name] for name in npz.files}
            self.reloads += 1
        else:
            lo, hi = self.shard_range(shard_id)
            columns = self._build(shard_id, lo, hi)
            self.builds += 1
        self._admit(shard_id, columns)
        return columns

    def __iter__(self) -> Iterator[tuple[int, dict]]:
        for shard_id in range(self.n_shards):
            yield shard_id, self.get(shard_id)

    @property
    def resident_bytes(self) -> float:
        return self.ledger.used

    @property
    def peak_resident_bytes(self) -> float:
        return self.ledger.high_water

    @property
    def budget_bytes(self) -> float:
        return self.ledger.capacity

    def stats(self) -> dict:
        return {
            "n_shards": self.n_shards,
            "shard_tasks": self.shard_tasks,
            "max_resident": self.max_resident,
            "resident": len(self._resident),
            "resident_bytes": self.resident_bytes,
            "peak_resident_bytes": self.peak_resident_bytes,
            "budget_bytes": self.budget_bytes,
            "builds": self.builds,
            "reloads": self.reloads,
            "evictions": self.evictions,
            "hits": self.hits,
            "spilled": len(self._spilled),
            "spill_dir": self._tmp.name,
        }

    def close(self) -> None:
        self._resident.clear()
        self._spilled.clear()
        try:
            self._tmp.cleanup()
        except (OSError, FileNotFoundError):  # pragma: no cover - teardown
            pass


class _KeyBuckets:
    """External dedup of ``requester * n_reads + read`` keys.

    Shards append their remote keys into range buckets on disk (bucket =
    requester-rank range, so bucket order is global key order); draining
    uniques each bucket and yields ascending key runs.  Processing the
    runs in order reproduces the materialized ``np.unique(keys)`` fold
    order exactly — the property the bit-identity contract rests on.
    """

    def __init__(self, num_ranks: int, n_reads: int, dirpath: str,
                 n_buckets: int | None = None):
        self.num_ranks = num_ranks
        self.n_reads = n_reads
        self.n_buckets = min(num_ranks, n_buckets or 64)
        self._dir = dirpath
        self._files: dict[int, object] = {}

    def _bucket_of(self, keys: np.ndarray) -> np.ndarray:
        req = keys // self.n_reads
        return (req * self.n_buckets) // self.num_ranks

    def add(self, keys: np.ndarray) -> None:
        if keys.size == 0:
            return
        buckets = self._bucket_of(keys)
        for b in np.unique(buckets):
            f = self._files.get(int(b))
            if f is None:
                f = open(os.path.join(self._dir, f"bucket{int(b)}.keys"),
                         "ab")
                self._files[int(b)] = f
            keys[buckets == b].astype(np.int64).tofile(f)

    def drain(self) -> Iterator[np.ndarray]:
        """Ascending runs of globally-distinct keys; removes the files."""
        for f in self._files.values():
            f.close()
        try:
            for b in sorted(self._files):
                path = os.path.join(self._dir, f"bucket{b}.keys")
                keys = np.fromfile(path, dtype=np.int64)
                os.unlink(path)
                if keys.size:
                    yield np.unique(keys)
        finally:
            self._files = {}


class ShardedWorkload:
    """A workload no layer ever holds in full (see the module docstring).

    Exposes the same surface the engines consume — ``name``, ``n_reads``,
    ``n_tasks``, ``read_lengths``, :meth:`assignment`, :meth:`micro_plan`
    — plus delegation of ``reads``/``tasks``/``task_costs`` when backed by
    a :class:`~repro.pipeline.workload.ConcreteWorkload` (the micro
    engines and the process backend need row access; the synthetic backing
    is macro-only and refuses).  Read lengths stay materialized — they are
    O(reads), not O(tasks), exactly as the statistical generator already
    does — while task columns live in the bounded :class:`ShardStore`.
    """

    def __init__(
        self,
        name: str,
        read_lengths: np.ndarray,
        n_tasks: int,
        build_shard: Callable[[int, int, int], dict],
        *,
        shard_tasks: int = DEFAULT_SHARD_TASKS,
        max_resident_shards: int = DEFAULT_RESIDENT_SHARDS,
        spill_dir: str | None = None,
        bytes_per_task: int = 24,
        backing: ConcreteWorkload | None = None,
        greedy_assign: bool = True,
    ):
        if n_tasks <= 0:
            raise ConfigurationError("sharded workload needs n_tasks >= 1")
        self.name = name
        self.read_lengths = np.asarray(read_lengths, dtype=np.int64)
        self._n_tasks = int(n_tasks)
        self.shard_tasks = int(shard_tasks)
        self.max_resident_shards = int(max_resident_shards)
        self._backing = backing
        self._greedy = greedy_assign
        self.store = ShardStore(
            n_tasks, shard_tasks, build_shard, bytes_per_task,
            max_resident=max_resident_shards, spill_dir=spill_dir,
        )
        # per-P renderings key on (num_ranks, shard identity): distinct
        # shardings of one spec are distinct cache entries by construction
        self.assignment_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        self._plan_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        self.partition_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        self._prefix: np.ndarray | None = None

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_workload(
        cls,
        workload: ConcreteWorkload,
        shard_tasks: int = DEFAULT_SHARD_TASKS,
        max_resident_shards: int = DEFAULT_RESIDENT_SHARDS,
        spill_dir: str | None = None,
    ) -> "ShardedWorkload":
        """Shard an existing concrete workload's task table.

        The streamed aggregation is bit-identical to the materialized
        :meth:`ConcreteWorkload.assignment`/:meth:`~ConcreteWorkload.
        micro_plan` for *any* shard size (pinned by the golden-signature
        suite): owners and the greedy assignment are computed shard-by-
        shard with persistent stream state, float accumulators fold in
        the same element order, and the dedup bucket walk matches the
        global sorted-key order.
        """
        tasks = workload.tasks

        def build(_sid: int, lo: int, hi: int) -> dict:
            return {
                "read_a": np.ascontiguousarray(tasks.read_a[lo:hi]),
                "read_b": np.ascontiguousarray(tasks.read_b[lo:hi]),
                "cost": np.ascontiguousarray(workload.task_costs[lo:hi]),
            }

        return cls(
            workload.name,
            workload.read_lengths,
            workload.n_tasks,
            build,
            shard_tasks=shard_tasks,
            max_resident_shards=max_resident_shards,
            spill_dir=spill_dir,
            bytes_per_task=3 * 8,
            backing=workload,
            greedy_assign=True,
        )

    @classmethod
    def synthetic(
        cls,
        spec: DatasetSpec,
        seed: int = 0,
        shard_tasks: int = DEFAULT_SHARD_TASKS,
        max_resident_shards: int = DEFAULT_RESIDENT_SHARDS,
        spill_dir: str | None = None,
        cost_model: AlignmentCostModel | None = None,
        fp_rate: float = 0.3,
    ) -> "ShardedWorkload":
        """Paper-scale task rows generated shard-by-shard from ``spec``.

        Task attributes are drawn in fixed :data:`GEN_BLOCK`-sized
        generator blocks, each from its own RNG stream, so the shard size
        never changes a draw: any ``shard_tasks`` yields bit-identical
        aggregates (the shard-invariance property test).  Per task: both
        reads uniform over the read set (SRA read order carries no genome
        locality, §1), cost from the calibrated
        :class:`~repro.pipeline.workload.TaskCostDistribution`, and a
        deterministic coin picking which read's owner executes the task —
        the vectorized stand-in for the greedy by-count heuristic, which
        preserves the ownership invariant and balances in expectation
        (the O(T) Python greedy loop cannot stream 10^8 tasks).
        """
        if spec.n_reads <= 0 or spec.n_tasks <= 0:
            raise ConfigurationError(
                f"dataset {spec.name!r} has no statistical totals; shard a "
                "sequence-level preset with ShardedWorkload.from_workload"
            )
        # identical read-length blocks + calibration streams as
        # StatisticalWorkload, so the stage-1 partition and mean task cost
        # agree between the two generators for the same (spec, seed)
        name_key = sum((i + 1) * ord(c) for i, c in enumerate(spec.name)) % (2**31)
        rngs = RngFactory(seed).child(name_key)
        mu = np.log(spec.mean_read_length) - 0.5 * spec.length_sigma**2
        lo_len = max(200, int(spec.mean_read_length / 8))
        hi_len = int(spec.mean_read_length * 8)
        n_reads = spec.n_reads
        read_lengths = np.empty(n_reads, dtype=np.int64)
        block = 1 << 16
        for b0 in range(0, n_reads, block):
            b1 = min(b0 + block, n_reads)
            rng = rngs.stream("workload-block", 1, b0 // block)
            lens = rng.lognormal(mu, spec.length_sigma, b1 - b0)
            read_lengths[b0:b1] = np.clip(lens, lo_len, hi_len).astype(np.int64)

        cost_dist = TaskCostDistribution(
            cost_model or AlignmentCostModel(), fp_rate=fp_rate
        )
        target = MEAN_TASK_COST.get(spec.name)
        if target is None:
            target = float(
                (cost_model or AlignmentCostModel()).task_seconds(
                    0.55 * spec.mean_read_length
                )
            )
        cost_dist.calibrate(
            spec.mean_read_length, spec.length_sigma, target,
            rngs.stream("workload-block", 0xC0DE),
        )

        # one generator block at a time; memoized so shards smaller than a
        # block do not regenerate it per shard during a sequential pass
        memo: dict = {"id": -1, "cols": None}

        def gen_block(block_id: int) -> dict:
            if memo["id"] == block_id:
                return memo["cols"]
            g0 = block_id * GEN_BLOCK
            m = min(GEN_BLOCK, spec.n_tasks - g0)
            rng = rngs.stream("task-shard", block_id)
            read_a = rng.integers(0, n_reads, m)
            read_b = rng.integers(0, n_reads, m)
            coin = rng.random(m)
            cost = cost_dist.sample_seconds(
                read_lengths[read_a].astype(np.float64),
                read_lengths[read_b].astype(np.float64),
                rng,
            )
            memo["id"] = block_id
            memo["cols"] = {
                "read_a": read_a, "read_b": read_b,
                "coin": coin, "cost": cost,
            }
            return memo["cols"]

        def build(_sid: int, lo: int, hi: int) -> dict:
            parts: dict[str, list] = {
                "read_a": [], "read_b": [], "coin": [], "cost": []
            }
            pos = lo
            while pos < hi:
                block_id = pos // GEN_BLOCK
                cols = gen_block(block_id)
                b0 = block_id * GEN_BLOCK
                s0, s1 = pos - b0, min(hi, b0 + GEN_BLOCK) - b0
                for key in parts:
                    parts[key].append(cols[key][s0:s1])
                pos = b0 + s1
            return {
                key: (vals[0].copy() if len(vals) == 1
                      else np.concatenate(vals))
                for key, vals in parts.items()
            }

        return cls(
            spec.name,
            read_lengths,
            spec.n_tasks,
            build,
            shard_tasks=shard_tasks,
            max_resident_shards=max_resident_shards,
            spill_dir=spill_dir,
            bytes_per_task=4 * 8,
            backing=None,
            greedy_assign=False,
        )

    # -- identity / delegation ----------------------------------------------

    @property
    def is_concrete(self) -> bool:
        """True when backed by a concrete workload (rows + sequences)."""
        return self._backing is not None

    @property
    def n_reads(self) -> int:
        return int(self.read_lengths.size)

    @property
    def n_tasks(self) -> int:
        return self._n_tasks

    def _need_backing(self, what: str) -> ConcreteWorkload:
        if self._backing is None:
            raise ConfigurationError(
                f"sharded workload {self.name!r} is synthetic "
                f"(aggregate-only); {what} needs a concrete backing — "
                f"build one with ShardedWorkload.from_workload"
            )
        return self._backing

    @property
    def reads(self):
        return self._need_backing("read sequences").reads

    @property
    def tasks(self):
        return self._need_backing("the task table").tasks

    @property
    def task_costs(self) -> np.ndarray:
        return self._need_backing("per-task costs").task_costs

    # -- per-P rendering ------------------------------------------------------

    def _partition(self, num_ranks: int):
        """(boundaries, reads_per_rank, partition_bytes), memoized per P."""

        def build():
            boundaries = partition_reads_by_size(self.read_lengths, num_ranks)
            if self._prefix is None:
                self._prefix = np.concatenate(
                    [[0], np.cumsum(self.read_lengths)]
                )
            return (
                boundaries,
                np.diff(boundaries).astype(np.float64),
                np.diff(self._prefix[boundaries]).astype(np.float64),
            )

        return self.partition_cache.get_or_create(num_ranks, build)

    def _shard_plan(self, columns: dict, boundaries: np.ndarray,
                    num_ranks: int, loads: np.ndarray):
        """One shard's (owner_a, owner_b, assigned, remote_read).

        Mirrors :meth:`ConcreteWorkload.micro_plan` element-for-element;
        ``loads`` carries the greedy stream state across shards.  The
        synthetic backing replaces the greedy loop with its per-task coin
        (drawn in the generator block, so it is shard-size independent).
        """
        read_a = columns["read_a"]
        read_b = columns["read_b"]
        owner_a = owners_from_boundaries(read_a, boundaries)
        owner_b = owners_from_boundaries(read_b, boundaries)
        if self._greedy:
            assigned = assign_tasks_balanced(owner_a, owner_b, num_ranks,
                                             loads=loads)
        else:
            assigned = np.where(columns["coin"] < 0.5, owner_a, owner_b)
        both_local = owner_a == owner_b
        a_local = owner_a == assigned
        remote_read = np.where(
            both_local, -1, np.where(a_local, read_b, read_a)
        ).astype(np.int64)
        return owner_a, owner_b, assigned, remote_read

    def micro_plan(self, num_ranks: int) -> MicroPlan:
        """Per-task rendering for the micro engines (concrete backing only).

        The full per-task arrays are what the message-level engines
        consume, so this necessarily materializes O(tasks) — but it is
        only reachable through a concrete backing, whose scale already
        fits; the arrays are assembled shard-at-a-time from the store.
        """
        self._need_backing("a micro plan")
        key = (num_ranks, self.shard_tasks)
        cached = self._plan_cache.get(key)
        if cached is not None:
            return cached
        boundaries, _, _ = self._partition(num_ranks)
        n = self.n_tasks
        owner_a = np.empty(n, dtype=np.int64)
        owner_b = np.empty(n, dtype=np.int64)
        assigned = np.empty(n, dtype=np.int64)
        remote_read = np.empty(n, dtype=np.int64)
        loads = np.zeros(num_ranks, dtype=np.float64)
        for sid, columns in self.store:
            lo, hi = self.store.shard_range(sid)
            oa, ob, asg, rem = self._shard_plan(columns, boundaries,
                                                num_ranks, loads)
            owner_a[lo:hi] = oa
            owner_b[lo:hi] = ob
            assigned[lo:hi] = asg
            remote_read[lo:hi] = rem
        plan = MicroPlan(
            num_ranks=num_ranks,
            boundaries=boundaries,
            assigned=assigned,
            owner_a=owner_a,
            owner_b=owner_b,
            remote_read=remote_read,
        )
        self._plan_cache.put(key, plan)
        return plan

    def assignment(self, num_ranks: int) -> WorkloadAssignment:
        """Per-rank arrays via streaming aggregation (LRU-cached).

        No global task array exists at any point: per-rank totals fold
        shard-by-shard, and the dedup walks on-disk key buckets.  For a
        concrete backing the result is bit-identical to the materialized
        :meth:`ConcreteWorkload.assignment`; for the synthetic backing it
        is bit-identical across shard sizes.
        """
        key = (num_ranks, self.shard_tasks)
        cached = self.assignment_cache.get(key)
        if cached is not None:
            return cached

        boundaries, reads_per_rank, partition_bytes = \
            self._partition(num_ranks)
        n_reads = self.n_reads
        tasks_count = np.zeros(num_ranks, dtype=np.int64)
        compute_seconds = np.zeros(num_ranks, dtype=np.float64)
        local_pair_seconds = np.zeros(num_ranks, dtype=np.float64)
        loads = np.zeros(num_ranks, dtype=np.float64)
        buckets = _KeyBuckets(num_ranks, n_reads, self.store._tmp.name)
        for _sid, columns in self.store:
            owner_a, owner_b, assigned, remote_read = self._shard_plan(
                columns, boundaries, num_ranks, loads
            )
            cost = columns["cost"]
            tasks_count += np.bincount(assigned, minlength=num_ranks)
            np.add.at(compute_seconds, assigned, cost)
            both_local = owner_a == owner_b
            np.add.at(local_pair_seconds, assigned[both_local],
                      cost[both_local])
            has_remote = remote_read >= 0
            buckets.add(
                assigned[has_remote].astype(np.int64) * n_reads
                + remote_read[has_remote]
            )

        lookups_count = np.zeros(num_ranks, dtype=np.int64)
        lookup_bytes = np.zeros(num_ranks, dtype=np.float64)
        incoming_count = np.zeros(num_ranks, dtype=np.int64)
        incoming_bytes = np.zeros(num_ranks, dtype=np.float64)
        for uniq in buckets.drain():
            req_rank = uniq // n_reads
            read_id = uniq % n_reads
            lengths = self.read_lengths[read_id].astype(np.float64)
            lookups_count += np.bincount(req_rank, minlength=num_ranks)
            np.add.at(lookup_bytes, req_rank, lengths)
            owner = owners_from_boundaries(read_id, boundaries)
            incoming_count += np.bincount(owner, minlength=num_ranks)
            np.add.at(incoming_bytes, owner, lengths)

        out = WorkloadAssignment(
            name=self.name,
            num_ranks=num_ranks,
            reads_per_rank=reads_per_rank,
            partition_bytes=partition_bytes,
            tasks_per_rank=tasks_count.astype(np.float64),
            compute_seconds=compute_seconds,
            local_pair_seconds=local_pair_seconds,
            lookups=lookups_count.astype(np.float64),
            lookup_bytes=lookup_bytes,
            incoming_lookups=incoming_count.astype(np.float64),
            incoming_bytes=incoming_bytes,
            total_reads=self.n_reads,
            total_tasks=self.n_tasks,
        )
        self.assignment_cache.put(key, out)
        return out

    def close(self) -> None:
        """Release spill files and resident shards (idempotent)."""
        self.store.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "concrete" if self.is_concrete else "synthetic"
        return (f"ShardedWorkload({self.name!r}, {kind}, "
                f"tasks={self.n_tasks:,}, shard={self.shard_tasks:,}, "
                f"resident<={self.max_resident_shards})")
