"""Tests for the KNL alignment cost model, including its empirical fit."""

import numpy as np
import pytest

from repro.align.cost import KNL_CELL_RATE, MEAN_TASK_COST, AlignmentCostModel
from repro.align.xdrop import XDropExtender
from repro.genome import alphabet
from repro.genome.synth import ErrorModel
from repro.utils.units import HOUR


def test_anchor_ecoli30x_one_hour():
    # paper 4.1: ~1 hour on one KNL core for 2,270,260 tasks
    total = MEAN_TASK_COST["ecoli30x"] * 2_270_260
    assert total == pytest.approx(1.0 * HOUR, rel=1e-6)


def test_anchor_ecoli100x_seven_hours():
    total = MEAN_TASK_COST["ecoli100x"] * 24_869_171
    assert total == pytest.approx(7.0 * HOUR, rel=1e-6)


def test_cells_to_seconds_linear():
    m = AlignmentCostModel()
    assert m.cells_to_seconds(KNL_CELL_RATE) == pytest.approx(1.0)
    assert m.cells_to_seconds(0) == 0.0


def test_band_width_grows_with_x():
    assert AlignmentCostModel(x_drop=50).band_width > AlignmentCostModel(x_drop=10).band_width


def test_estimate_cells_true_vs_false_positive():
    m = AlignmentCostModel()
    true_cells = m.estimate_cells(2000.0, early_terminated=False)
    fp_cells = m.estimate_cells(2000.0, early_terminated=True)
    assert fp_cells < true_cells
    assert float(fp_cells) == 600.0


def test_estimate_cells_vectorized():
    m = AlignmentCostModel()
    overlaps = np.array([1000.0, 2000.0, 3000.0])
    early = np.array([False, True, False])
    cells = m.estimate_cells(overlaps, early)
    assert cells.shape == (3,)
    assert cells[1] == 600.0
    assert cells[2] > cells[0]


def test_task_seconds_positive():
    m = AlignmentCostModel()
    t = m.task_seconds(np.array([500.0, 5000.0]))
    assert np.all(t > 0)
    assert t[1] > t[0]


def test_band_model_fits_real_kernel():
    """The analytic cells estimate must track the numpy kernel within 2x."""
    rng = np.random.default_rng(7)
    model = AlignmentCostModel(x_drop=15)
    em = ErrorModel(error_rate=0.15, n_rate=0.0)
    for core_len in (500, 1500):
        core = alphabet.random_sequence(core_len, rng)
        a = em.apply(core, rng)
        b = em.apply(core, rng)
        res = XDropExtender(x_drop=15).extend(a, b)
        overlap = (res.length_a + res.length_b) / 2  # per-read aligned length
        est = float(model.estimate_cells(overlap))
        assert 0.5 * res.cells < est < 2.0 * res.cells


def test_implied_mean_overlap_sane():
    m = AlignmentCostModel()
    for ds in ("ecoli30x", "ecoli100x", "human_ccs"):
        overlap = m.implied_mean_overlap(ds)
        # mean effective alignment sweep must be sub-read-scale
        assert 500 < overlap < 20_000


def test_mean_task_cost_lookup():
    m = AlignmentCostModel()
    assert m.mean_task_cost("human_ccs") == MEAN_TASK_COST["human_ccs"]
    with pytest.raises(KeyError):
        m.mean_task_cost("nope")
