"""Message-level (micro) SPMD implementations of both approaches.

These are genuine SPMD programs: one generator per rank, communicating
through :mod:`repro.runtime` — the rendezvous collectives for the BSP code,
the async RPC layer with a bounded outstanding window and a split-phase
barrier for the async code.  They move real data (global read ids, byte
volumes from real read lengths) and can run the real X-drop kernel per
task (``kernel="real"``) to produce actual :class:`Alignment` outputs.

They exist to (1) execute concrete workloads end-to-end, and (2) validate
the macro engines: ``tests/test_micro_macro_agreement.py`` checks that both
granularities tell the same performance story on the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.seedextend import SeedExtendAligner
from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.common import (
    ASYNC_BASE_MEMORY,
    ASYNC_TASK_RECORD_BYTES,
    BSP_BASE_MEMORY,
    BSP_TASK_RECORD_BYTES,
    bsp_num_rounds,
    internode_fraction,
)
from repro.engines.harness import finish_run, resolve_executor, resolve_tracer
from repro.engines.registry import MICRO, register_engine
from repro.engines.report import RunResult
from repro.errors import ConfigurationError, RankFailureError
from repro.machine.config import MachineSpec
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.workload import ConcreteWorkload
from repro.runtime.collectives import Collectives
from repro.runtime.context import SpmdContext
from repro.runtime.rpc import RpcLayer

__all__ = ["MicroBSPEngine", "MicroAsyncEngine"]


def _rank_task_lists(plan, num_ranks: int) -> list[np.ndarray]:
    order = np.argsort(plan.assigned, kind="stable")
    counts = np.bincount(plan.assigned, minlength=num_ranks)
    offsets = np.zeros(num_ranks + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return [order[offsets[r]: offsets[r + 1]] for r in range(num_ranks)]


@dataclass
class _MicroBase:
    config: EngineConfig = field(default_factory=EngineConfig)

    def run(self, workload: ConcreteWorkload, machine: MachineSpec,
            kernel: str = "model",
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        """Open the run's compute backend, then hand off to the engine body.

        ``kernel="real"`` builds a :class:`SeedExtendAligner` and routes
        every task batch through the configured backend
        (``config.backend``/``workers``/``chunk_tasks``, see
        docs/PARALLEL.md); ``kernel="model"`` charges modeled costs only.
        The ``with`` block guarantees pool + shared-memory teardown even
        when a fault plan kills a rank mid-run.
        """
        aligner = SeedExtendAligner() if kernel == "real" else None
        with resolve_executor(self.config, workload, aligner) as executor:
            return self._run(workload, machine, executor,
                             tracer=tracer, metrics=metrics, faults=faults)

    def _prepare(self, workload: ConcreteWorkload, machine: MachineSpec,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 faults=None):
        P = machine.total_ranks
        if P > 4096:
            raise ConfigurationError(
                "micro engines are message-level simulations; use the macro "
                "engines beyond a few thousand ranks"
            )
        tracer = resolve_tracer(tracer, self.name, workload.name, machine)
        plan = workload.micro_plan(P)
        ctx = SpmdContext(machine, tracer=tracer, metrics=metrics,
                          faults=faults)
        rank_tasks = _rank_task_lists(plan, P)
        return plan, ctx, rank_tasks

    def _check_deaths(self, ctx: SpmdContext) -> None:
        """Abort with a typed error once any rank's death time has passed.

        The micro engines are faithful SPMD programs without a work-stealing
        layer, so a dead rank cannot hand its tasks off; graceful
        redistribution is a macro-engine capability.
        """
        faults = ctx.faults
        if faults is None:
            return
        kill = faults.first_death_before(ctx.engine.now)
        if kill is not None:
            raise RankFailureError(
                f"rank {kill.rank} died at t={kill.time:.6g}s; micro "
                f"engines cannot redistribute work (use a macro engine "
                f"with 'redistribute' for graceful degradation)"
            )

    def _dilated(self, ctx: SpmdContext, rank: int, seconds: float) -> float:
        """Apply any active straggler window to a compute duration."""
        if ctx.faults is None or seconds == 0.0:
            return seconds
        return seconds * ctx.faults.straggle_factor(rank, ctx.engine.now)

    def _task_compute(self, workload, task_idx, executor):
        """(simulated seconds, alignment or None) for one task."""
        return self._tasks_compute(workload, [task_idx], executor)[0]

    def _tasks_compute(self, workload, task_indices, executor):
        """[(simulated seconds, alignment or None)] for a group of tasks.

        The whole group routes through the run's compute backend in one
        call: the serial backend makes a single batched wavefront call
        (amortizing per-antidiagonal dispatch overhead across the group),
        the process backend fans chunks of the group out to its worker
        pool.  Simulated seconds and per-task alignment outputs are
        identical either way — the backend only spends real wall-clock.
        """
        if self.config.mode is ExecutionMode.COMM_ONLY:
            return [(0.0, None)] * len(task_indices)
        costs = [float(workload.task_costs[i]) for i in task_indices]
        if executor.aligner is None:
            return [(c, None) for c in costs]
        return list(zip(costs, executor.align_tasks(task_indices)))

    def _finish(self, name, workload, machine, ctx, memory, rounds, alignments,
                details=None, wall_time=None, executor=None):
        if wall_time is None:
            wall_time = ctx.engine.now
        details = dict(details or {})
        if ctx.faults is not None:
            details["faults_injected"] = ctx.faults.total_injected
            details["fault_kinds"] = dict(ctx.faults.injected)
        if executor is not None and ctx.metrics is not None:
            # real wall-clock dispatch/wait/merge accounting: counters, not
            # RunResult details, so results stay bit-identical to serial.
            # A plain serial executor contributes nothing; a *downgraded*
            # one (process requested, model kernel) still surfaces
            # exec_backend_downgraded so the downgrade is never silent.
            stats = executor.stats()
            if executor.backend != "serial" or stats.get("backend_downgraded"):
                per_worker = stats.pop("per_worker", {})
                ctx.metrics.merge_scalars("exec_", stats)
                for slot, (_pid, wstats) in enumerate(
                        sorted(per_worker.items())):
                    ctx.metrics.merge_scalars(f"exec_w{slot}_", wstats)
        # the accumulator path reports through the conservation checker;
        # the trace re-sum runs inside finish_run when a tracer is attached
        return finish_run(
            name, machine, workload.name, wall_time, ctx.timers, ctx.tracer,
            memory=memory,
            exchange_rounds=rounds,
            alignments=alignments,
            details=details,
            accumulator_check=True,
        )


@register_engine("bsp-micro", kind=MICRO,
                 description="message-level BSP rendezvous exchange")
@dataclass
class MicroBSPEngine(_MicroBase):
    """Message-level BSP: rendezvous alltoallv rounds + per-round compute."""

    name: str = "bsp-micro"

    def _run(self, workload: ConcreteWorkload, machine: MachineSpec,
             executor, *,
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None,
             faults=None) -> RunResult:
        P = machine.total_ranks
        plan, ctx, rank_tasks = self._prepare(workload, machine,
                                              tracer, metrics, faults)
        coll = Collectives(ctx)
        lengths = workload.read_lengths
        assignment = workload.assignment(P)
        rounds = bsp_num_rounds(self.config, machine, assignment)
        eff_scale = self.config.multiround_efficiency if rounds > 1 else 1.0
        internode = internode_fraction(machine)

        # Static exchange plan: which (requester, read) pairs exist, and in
        # which round each read travels (deduplicated, §3.1).
        need: list[dict[int, list[int]]] = [dict() for _ in range(P)]
        # need[src][dst] = read ids src must send dst, split later by round
        per_rank_remote: list[np.ndarray] = []
        for r in range(P):
            remote = plan.remote_read[rank_tasks[r]]
            uniq = np.unique(remote[remote >= 0])
            per_rank_remote.append(uniq)
            owners = plan.owner_of_read(uniq)
            for read_id, owner in zip(uniq, owners):
                need[int(owner)].setdefault(r, []).append(int(read_id))

        alignments: list = []
        finish_times: dict[int, float] = {}

        def rank_main(rank: int):
            tasks = rank_tasks[rank]
            remote = plan.remote_read[tasks]
            local_tasks = tasks[remote < 0]

            for rnd in range(rounds):
                self._check_deaths(ctx)
                if ctx.tracer is not None:
                    ctx.tracer.instant(rank, "superstep", ctx.engine.now,
                                       round=rnd, rounds=rounds)
                send: dict[int, list] = {}
                for dst, read_ids in need[rank].items():
                    items = [
                        (rid, float(lengths[rid]))
                        for i, rid in enumerate(read_ids)
                        if min(i * rounds // max(1, len(read_ids)), rounds - 1) == rnd
                    ]
                    if items:
                        send[dst] = items
                send_bytes = sum(b for items in send.values() for _, b in items)
                received = yield from coll.alltoallv_resilient(
                    rank, send, send_bytes, round_idx=rnd, tag=f"xchg{rnd}",
                    efficiency_scale=eff_scale,
                )
                self._check_deaths(ctx)
                got = {rid for rid, _ in received}
                ctx.memory.allocate(rank, f"recv{rnd}",
                                    sum(b for _, b in received))

                # compute: local-local tasks in round 0, remote-read tasks
                # as their reads arrive
                todo = []
                if rnd == 0:
                    todo.extend(int(t) for t in local_tasks)
                for t, rid in zip(tasks, remote):
                    if rid >= 0 and int(rid) in got:
                        todo.append(int(t))
                # one batched wavefront call per round's ready set
                for t, (seconds, alignment) in zip(
                        todo, self._tasks_compute(workload, todo, executor)):
                    seconds = self._dilated(ctx, rank, seconds)
                    if seconds:
                        yield ctx.charge("compute_align", rank, seconds,
                                         name=f"task{t}")
                    ctx.metrics.inc("tasks", rank)
                    if alignment is not None:
                        ctx.metrics.inc("cells", rank, alignment.cells)
                        alignments.append(alignment)
                oh = self._dilated(ctx, rank, (
                    len(todo) * self.config.bsp_task_overhead
                    + len(got) * self.config.bsp_read_overhead * internode
                ))
                if oh:
                    yield ctx.charge("compute_overhead", rank, oh)
                ctx.memory.free(rank, f"recv{rnd}")

            yield from coll.barrier(rank, tag="exit")
            self._check_deaths(ctx)
            finish_times[rank] = ctx.engine.now

        for rank in range(P):
            ctx.memory.allocate(
                rank, "base",
                BSP_BASE_MEMORY
                + float(assignment.partition_bytes[rank])
                + len(rank_tasks[rank]) * BSP_TASK_RECORD_BYTES,
            )
        ctx.engine.spawn_all((rank_main(r) for r in range(P)), prefix="bsp-r")
        ctx.engine.run()
        return self._finish(
            self.name, workload, machine, ctx,
            ctx.memory.rank_high_water(), rounds,
            alignments if executor.aligner is not None else None,
            wall_time=max(finish_times.values(), default=ctx.engine.now),
            executor=executor,
        )


@register_engine("async-micro", kind=MICRO,
                 description="message-level async pulls over the RPC layer")
@dataclass
class MicroAsyncEngine(_MicroBase):
    """Message-level async: pull RPCs + callbacks + split-phase barrier."""

    name: str = "async-micro"

    def _run(self, workload: ConcreteWorkload, machine: MachineSpec,
             executor, *,
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None,
             faults=None) -> RunResult:
        P = machine.total_ranks
        plan, ctx, rank_tasks = self._prepare(workload, machine,
                                              tracer, metrics, faults)
        coll = Collectives(ctx)
        rpc = RpcLayer(ctx)
        lengths = workload.read_lengths
        assignment = workload.assignment(P)
        window = self.config.async_window
        internode = internode_fraction(machine)

        for r in range(P):
            # the handler returns the read (its id as a stand-in payload)
            # and its true byte size
            rpc.register(r, lambda rid: (rid, float(lengths[rid])))

        alignments: list = []
        finish_times: dict[int, float] = {}

        def rank_main(rank: int):
            tasks = rank_tasks[rank]
            remote = plan.remote_read[tasks]
            local_tasks = tasks[remote < 0]
            # index tasks under their remote read (§3.2)
            by_read: dict[int, list[int]] = {}
            for t, rid in zip(tasks, remote):
                if rid >= 0:
                    by_read.setdefault(int(rid), []).append(int(t))

            oh = (
                len(tasks) * self.config.async_task_overhead
                + len(by_read) * self.config.async_read_overhead * internode
                + self.config.async_base_overhead
            )
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * oh))

            # split-phase barrier overlapped with local-local tasks
            # (one batched wavefront call for the whole local group)
            coll.split_barrier_enter(rank)
            local_list = [int(t) for t in local_tasks]
            for t, (seconds, alignment) in zip(
                    local_list,
                    self._tasks_compute(workload, local_list, executor)):
                seconds = self._dilated(ctx, rank, seconds)
                if seconds:
                    yield ctx.charge("compute_align", rank, seconds,
                                     name=f"task{t}")
                ctx.metrics.inc("tasks", rank)
                if alignment is not None:
                    ctx.metrics.inc("cells", rank, alignment.cells)
                    alignments.append(alignment)
            yield from coll.split_barrier_wait(rank)
            self._check_deaths(ctx)

            # pull phase with a bounded outstanding window
            pending = list(by_read)
            outstanding = 0
            next_req = 0
            inbox = rpc.inboxes[rank]

            def issue_one():
                nonlocal next_req, outstanding
                rid = pending[next_req]
                owner = int(plan.owner_of_read(np.array([rid]))[0])
                rpc.call(rank, owner, rid)
                ctx.memory.allocate(rank, f"inflight{rid}", float(lengths[rid]))
                next_req += 1
                outstanding += 1
                ctx.metrics.observe_max("window_occupancy", rank, outstanding)
                if ctx.tracer is not None:
                    ctx.tracer.counter(rank, "outstanding", ctx.engine.now,
                                       outstanding)

            while next_req < len(pending) and outstanding < window:
                yield ctx.charge("comm", rank, rpc.injection_cost())
                issue_one()
            done = 0
            while done < len(pending):
                t0 = ctx.engine.now
                response = yield from inbox.get()
                # blocked time with no compute available = visible latency
                # (already elapsed while waiting: record, do not re-advance)
                ctx.record("comm", rank, ctx.engine.now - t0,
                           name="inbox-wait")
                self._check_deaths(ctx)
                ctx.memory.free(rank, f"inflight{response.token}")
                done += 1
                outstanding -= 1
                if ctx.tracer is not None:
                    ctx.tracer.counter(rank, "outstanding", ctx.engine.now,
                                       outstanding)
                if next_req < len(pending):
                    yield ctx.charge("comm", rank, rpc.injection_cost())
                    issue_one()
                # one batched wavefront call per callback group (the tasks
                # unblocked by this read's arrival)
                group = by_read[int(response.token)]
                for t, (seconds, alignment) in zip(
                        group, self._tasks_compute(workload, group, executor)):
                    seconds = self._dilated(ctx, rank, seconds)
                    if seconds:
                        yield ctx.charge("compute_align", rank, seconds,
                                         name=f"task{t}")
                    ctx.metrics.inc("tasks", rank)
                    if alignment is not None:
                        ctx.metrics.inc("cells", rank, alignment.cells)
                        alignments.append(alignment)
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * oh))

            yield from coll.barrier(rank, tag="exit")
            self._check_deaths(ctx)
            finish_times[rank] = ctx.engine.now
            # the rank is done for good: late duplicate responses must be
            # dropped by the RPC layer, not parked in a dead inbox
            inbox.close()

        for rank in range(P):
            ctx.memory.allocate(
                rank, "base",
                ASYNC_BASE_MEMORY
                + float(assignment.partition_bytes[rank])
                + len(rank_tasks[rank]) * ASYNC_TASK_RECORD_BYTES,
            )
        ctx.engine.spawn_all((rank_main(r) for r in range(P)), prefix="async-r")
        ctx.engine.run()
        return self._finish(
            self.name, workload, machine, ctx,
            ctx.memory.rank_high_water(), 0,
            alignments if executor.aligner is not None else None,
            details={
                "rpc_calls": rpc.total_calls,
                "rpc_retries": rpc.retries,
                "rpc_timeouts": rpc.timeouts,
                "rpc_dup_dropped": rpc.dups_dropped,
            },
            wall_time=max(finish_times.values(), default=ctx.engine.now),
            executor=executor,
        )
