"""The paper's parallelization approaches, plus their measurement.

* :class:`BSPEngine` — bulk-synchronous: aggregated irregular all-to-all
  read exchange, dynamically split into memory-limited supersteps (§3.1);
* :class:`AsyncEngine` — asynchronous: pull-based RPCs with callbacks,
  communication/computation overlap, bounded outstanding requests, and a
  split-phase barrier overlapping local-local work (§3.2);
* :class:`HybridEngine` — §5's anticipated hybrid: asynchronous pulls
  aggregated into batched RPCs.

The paper's two originals run at two granularities (DESIGN.md §6):
**macro** — analytic per-rank phase models over a
:class:`WorkloadAssignment`, used for the 32K-core figures — and **micro**
— real SPMD generator programs over the message-level runtime in
:mod:`repro.runtime`, used for validation and for actually computing
alignments on concrete workloads.

Every engine registers itself with :mod:`repro.engines.registry` at import
time; the driver API and the CLI derive their engine sets from that
registry (see ``docs/ARCHITECTURE.md`` for the how-to-add-one walkthrough).
"""

from repro.engines.report import RuntimeBreakdown, RunResult, PhaseTimers
from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.registry import (
    EngineInfo,
    available_engines,
    create_engine,
    get_engine,
    register_engine,
)
from repro.engines.harness import ExecutionContext

# engine modules self-register on import; keep registration order stable:
# bsp, async, bsp-micro, async-micro, hybrid
from repro.engines.bsp import BSPEngine
from repro.engines.async_ import AsyncEngine
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.engines.hybrid import HybridEngine

__all__ = [
    "RuntimeBreakdown",
    "RunResult",
    "PhaseTimers",
    "EngineConfig",
    "ExecutionMode",
    "EngineInfo",
    "ExecutionContext",
    "register_engine",
    "get_engine",
    "available_engines",
    "create_engine",
    "BSPEngine",
    "AsyncEngine",
    "MicroBSPEngine",
    "MicroAsyncEngine",
    "HybridEngine",
]
