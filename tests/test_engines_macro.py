"""Tests for the macro BSP/Async engines against a small workload."""

import numpy as np
import pytest

from repro.engines.async_ import AsyncEngine
from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.bsp import BSPEngine
from repro.errors import ConfigurationError
from repro.genome.datasets import DatasetSpec
from repro.machine.config import cori_knl
from repro.pipeline.workload import StatisticalWorkload


def small_spec(mean_len=2000.0):
    return DatasetSpec(
        name="engine_unit",
        species="synthetic",
        n_reads=4000,
        n_tasks=60_000,
        coverage=20.0,
        error_rate=0.1,
        mean_read_length=mean_len,
        length_sigma=0.3,
    )


@pytest.fixture(scope="module")
def wl():
    return StatisticalWorkload(small_spec(), seed=7)


@pytest.fixture(scope="module")
def machine():
    return cori_knl(2)


def test_bsp_run_basic(wl, machine):
    res = BSPEngine().run(wl.assignment(machine.total_ranks), machine)
    assert res.wall_time > 0
    assert res.exchange_rounds >= 1
    res.breakdown.validate()
    f = res.breakdown.fractions()
    assert abs(sum(f.values()) - 1.0) < 1e-6


def test_async_run_basic(wl, machine):
    res = AsyncEngine().run(wl.assignment(machine.total_ranks), machine)
    assert res.wall_time > 0
    assert res.exchange_rounds == 0
    res.breakdown.validate()


def test_rank_count_mismatch_rejected(wl, machine):
    bad = wl.assignment(8)
    with pytest.raises(ConfigurationError):
        BSPEngine().run(bad, machine)
    with pytest.raises(ConfigurationError):
        AsyncEngine().run(bad, machine)


def test_comm_only_mode_removes_alignment(wl, machine):
    a = wl.assignment(machine.total_ranks)
    cfg = EngineConfig().comm_only()
    assert cfg.mode is ExecutionMode.COMM_ONLY
    for engine in (BSPEngine(config=cfg), AsyncEngine(config=cfg)):
        res = engine.run(a, machine)
        assert res.breakdown.summary("compute_align").sum == 0.0
        assert res.wall_time > 0


def test_comm_only_faster_than_full(wl, machine):
    a = wl.assignment(machine.total_ranks)
    full = BSPEngine().run(a, machine)
    comm = BSPEngine(config=EngineConfig().comm_only()).run(a, machine)
    assert comm.wall_time < full.wall_time


def test_deterministic_runs(wl, machine):
    a = wl.assignment(machine.total_ranks)
    r1 = BSPEngine().run(a, machine)
    r2 = BSPEngine().run(a, machine)
    assert r1.wall_time == r2.wall_time
    assert np.array_equal(r1.breakdown.comm, r2.breakdown.comm)


def test_async_hides_communication(wl, machine):
    """Visible async comm must not exceed its raw pull latency."""
    a = wl.assignment(machine.total_ranks)
    res = AsyncEngine().run(a, machine)
    raw = res.details["raw_comm"]
    assert np.all(res.breakdown.comm <= raw + 1e-12)


def test_memory_accounting(wl, machine):
    """BSP footprint carries the exchange buffers; async only a window."""
    from repro.engines import async_ as async_mod
    from repro.engines import bsp as bsp_mod

    a = wl.assignment(machine.total_ranks)
    bsp = BSPEngine().run(a, machine)
    asy = AsyncEngine().run(a, machine)
    # BSP holds at least its per-round receive volume beyond fixed state
    assert bsp.max_memory_per_rank >= (
        bsp_mod.RUNTIME_BASE_MEMORY
        + float(a.recv_bytes.max()) / bsp.exchange_rounds
    )
    # async in-flight data is bounded by the window, independent of volume
    avg_read = a.lookup_bytes.sum() / a.lookups.sum()
    bound = (
        async_mod.RUNTIME_BASE_MEMORY
        + float(a.partition_bytes.max())
        + float(a.tasks_per_rank.max()) * async_mod.ASYNC_TASK_RECORD_BYTES
        + AsyncEngine().config.async_window * avg_read
    )
    assert asy.max_memory_per_rank <= bound * (1 + 1e-9)


def test_bsp_multi_round_when_memory_tight(wl):
    """Shrinking the exchange budget must force more rounds."""
    machine = cori_knl(2)
    a = wl.assignment(machine.total_ranks)
    one = BSPEngine(config=EngineConfig(exchange_memory_fraction=1.0))
    tight = BSPEngine(config=EngineConfig(exchange_memory_fraction=0.0001))
    assert tight.num_rounds(machine, a) > one.num_rounds(machine, a)


def test_bsp_round_sizing_respects_budget(wl, machine):
    a = wl.assignment(machine.total_ranks)
    engine = BSPEngine()
    rounds = engine.num_rounds(machine, a)
    budget = engine.exchange_budget(machine, a)
    assert a.recv_bytes.max() / rounds <= budget * (1 + 1e-9)


def test_engine_config_validation():
    with pytest.raises(ConfigurationError):
        EngineConfig(exchange_memory_fraction=0.0)
    with pytest.raises(ConfigurationError):
        EngineConfig(async_window=0)
    with pytest.raises(ConfigurationError):
        EngineConfig(bsp_task_overhead=-1.0)
    with pytest.raises(ConfigurationError):
        EngineConfig(async_min_visible=2.0)


def test_noise_increases_sync_without_isolation(wl):
    """68-core (non-isolated) runs absorb OS noise as synchronization."""
    iso = cori_knl(1, app_cores_per_node=64)
    noisy = cori_knl(1, app_cores_per_node=68)
    res_iso = BSPEngine().run(wl.assignment(64), iso)
    res_noisy = BSPEngine().run(wl.assignment(68), noisy)
    # per-rank compute drops with more cores...
    assert (res_noisy.breakdown.summary("compute_align").avg
            < res_iso.breakdown.summary("compute_align").avg)
    # ...but sync fraction grows
    assert (res_noisy.breakdown.fractions()["sync"]
            > res_iso.breakdown.fractions()["sync"])


def test_single_rank_machine(wl):
    machine = cori_knl(1, app_cores_per_node=1)
    res = BSPEngine().run(wl.assignment(1), machine)
    # no remote reads, no comm
    assert res.breakdown.summary("comm").sum == 0.0
    res2 = AsyncEngine().run(wl.assignment(1), machine)
    assert res2.breakdown.summary("comm").sum == 0.0


def test_sync_time_matches_between_engines(wl, machine):
    """Paper: 'the synchronization time between the two versions is
    practically the same across scales' (dominated by compute imbalance)."""
    a = wl.assignment(machine.total_ranks)
    bsp = BSPEngine().run(a, machine)
    asy = AsyncEngine().run(a, machine)
    s_b = bsp.breakdown.summary("sync").avg
    s_a = asy.breakdown.summary("sync").avg
    assert s_a == pytest.approx(s_b, rel=0.35)
