"""Byte/time unit constants and human-readable formatting.

The library stores sizes in bytes (floats allowed for model estimates) and
times in seconds, matching the paper's presentation (MB per core, seconds of
runtime, microsecond network latencies).
"""

from __future__ import annotations

__all__ = [
    "KB", "MB", "GB", "TB",
    "KIB", "MIB", "GIB",
    "US", "MS", "MINUTE", "HOUR",
    "fmt_bytes", "fmt_time",
]

# Decimal byte units (used for network bandwidth, e.g. GB/s).
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000
TB = 1_000_000_000_000

# Binary byte units (used for memory capacities, e.g. 96 GiB nodes).
KIB = 1024
MIB = 1024**2
GIB = 1024**3

# Time units, in seconds.
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def fmt_bytes(n: float) -> str:
    """Format a byte count with a binary suffix, e.g. ``fmt_bytes(3<<20)``."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, suffix in ((GIB, "GiB"), (MIB, "MiB"), (KIB, "KiB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def fmt_time(t: float) -> str:
    """Format a duration in seconds at a scale-appropriate unit."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= HOUR:
        return f"{sign}{t / HOUR:.2f} h"
    if t >= MINUTE:
        return f"{sign}{t / MINUTE:.2f} min"
    if t >= 1.0:
        return f"{sign}{t:.2f} s"
    if t >= MS:
        return f"{sign}{t / MS:.2f} ms"
    return f"{sign}{t / US:.2f} us"
