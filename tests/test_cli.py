"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _compare_verdict, build_parser, main


def test_datasets_command(capsys):
    assert main(["datasets"]) == 0
    out = capsys.readouterr().out
    assert "ecoli30x" in out and "human_ccs" in out
    assert "statistical" in out and "sequence-level" in out


def test_run_command(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--engine", "async", "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "async" in out and "wall" in out


def test_compare_command(capsys):
    rc = main(["compare", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bsp" in out and "async is" in out


def test_sweep_command(capsys):
    rc = main(["sweep", "--workload", "micro", "--nodes", "1", "2",
               "--cores-per-node", "8"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Strong scaling" in out


def test_comm_only_flag(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8", "--comm-only"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "align   0.0%" in out


def test_compare_verdict_wording():
    assert "faster" in _compare_verdict(2.0, 1.0)
    assert "33.3% slower" in _compare_verdict(1.5, 2.0)
    assert "+" not in _compare_verdict(1.5, 2.0)
    assert "tie" in _compare_verdict(1.0, 1.0)
    # zero wall times (reachable with --comm-only on tiny workloads)
    # must not divide by zero
    assert "too small" in _compare_verdict(0.0, 0.0)
    assert "too small" in _compare_verdict(1.0, 0.0)


def test_run_trace_and_metrics(tmp_path, capsys):
    trace = tmp_path / "t.json"
    rc = main(["run", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8", "--engine", "async",
               "--trace", str(trace), "--metrics"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "conservation OK [breakdown]" in out
    assert "conservation OK [trace]" in out
    assert "Per-rank counters" in out
    doc = json.loads(trace.read_text())
    events = doc["traceEvents"]
    lanes = {e["tid"] for e in events if e["ph"] == "X"}
    assert lanes == set(range(16))  # per-rank lanes
    cats = {e["cat"] for e in events if e["ph"] == "X"}
    assert {"comm", "sync"} <= cats


def test_compare_trace_two_runs(tmp_path, capsys):
    trace = tmp_path / "cmp.json"
    rc = main(["compare", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8", "--trace", str(trace)])
    assert rc == 0
    doc = json.loads(trace.read_text())
    pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    # bsp, async, hybrid as separate trace processes
    assert pids == {0, 1, 2}


def test_parser_rejects_unknown():
    parser = build_parser()
    with pytest.raises(SystemExit):
        parser.parse_args(["run", "--engine", "mpi"])
    with pytest.raises(SystemExit):
        parser.parse_args(["bogus"])


def test_bad_fault_spec_clean_error(capsys):
    """An unknown --faults key exits with code 2 and a one-line error on
    stderr — no traceback."""
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "8", "--faults", "bogus=1"])
    assert rc == 2
    captured = capsys.readouterr()
    assert "unknown fault spec key 'bogus'" in captured.err
    assert "known keys:" in captured.err
    assert "Traceback" not in captured.err


def test_bad_fault_spec_on_compare(capsys):
    rc = main(["compare", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "8", "--faults", "drop=nope"])
    assert rc == 2
    captured = capsys.readouterr()
    assert "error:" in captured.err
    assert "Traceback" not in captured.err


def test_run_with_faults_reports_plan(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8", "--engine", "async",
               "--faults", "drop=0.05,dup=0.02", "--fault-seed", "3",
               "--metrics"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "fault report (drop=0.05,dup=0.02)" in out
    assert "rpc_retries" in out


def test_run_kill_without_redistribute_typed_failure(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8",
               "--faults", "kill=r1@1ms"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "rank 1 died" in captured.err
    assert "Traceback" not in captured.err


def test_compare_degradation_section(capsys):
    rc = main(["compare", "--workload", "micro", "--nodes", "2",
               "--cores-per-node", "8",
               "--faults", "drop=0.05,xchg_drop=0.5", "--fault-seed", "1"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "Degradation under faults" in out
    assert "wall" in out and "->" in out


def test_fault_run_is_deterministic(capsys):
    args = ["run", "--workload", "micro", "--nodes", "2",
            "--cores-per-node", "8", "--engine", "bsp",
            "--faults", "xchg_drop=0.6,straggle=2@r1:0:1", "--fault-seed", "7"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out
    assert first == second


# -- compute-backend flags (docs/PARALLEL.md) --------------------------------


def test_invalid_backend_exits_2(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["run", "--workload", "micro", "--nodes", "1",
              "--engine", "bsp-micro", "--backend", "threads"])
    assert exc.value.code == 2
    assert "--backend" in capsys.readouterr().err


def test_workers_zero_exits_2(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "4", "--engine", "bsp-micro",
               "--kernel", "real", "--backend", "process", "--workers", "0"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "workers" in err


def test_negative_chunk_tasks_exits_2(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "4", "--engine", "bsp-micro",
               "--kernel", "real", "--backend", "process",
               "--chunk-tasks", "-1"])
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "chunk_tasks" in err


@pytest.mark.parametrize("extra", [
    ["--kernel", "real"],
    ["--backend", "process"],
    ["--workers", "2"],
    ["--chunk-tasks", "5"],
])
def test_backend_flags_rejected_for_macro_engines(capsys, extra):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "8", "--engine", "bsp"] + extra)
    assert rc == 2
    err = capsys.readouterr().err
    assert err.startswith("error:") and "micro engines only" in err
    assert "Traceback" not in err


def test_run_micro_with_process_backend(capsys):
    rc = main(["run", "--workload", "micro", "--nodes", "1",
               "--cores-per-node", "4", "--engine", "bsp-micro",
               "--kernel", "real", "--backend", "process", "--workers", "2",
               "--metrics"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "bsp-micro" in out and "wall" in out
    # executor wall-clock accounting surfaces as exec_* counters
    assert "exec_dispatch_s" in out and "exec_w0_chunks" in out


def test_run_micro_serial_vs_process_same_breakdown(capsys):
    base = ["run", "--workload", "micro", "--nodes", "1",
            "--cores-per-node", "4", "--engine", "async-micro",
            "--kernel", "real"]
    assert main(base) == 0
    serial_out = capsys.readouterr().out
    assert main(base + ["--backend", "process", "--workers", "2"]) == 0
    process_out = capsys.readouterr().out
    # identical simulated results => identical printed breakdowns
    assert serial_out == process_out


def test_run_micro_with_auto_backend(capsys):
    base = ["run", "--workload", "micro", "--nodes", "1",
            "--cores-per-node", "4", "--engine", "bsp-micro",
            "--kernel", "real"]
    assert main(base) == 0
    serial_out = capsys.readouterr().out
    rc = main(base + ["--backend", "auto", "--metrics"])
    assert rc == 0
    auto_out = capsys.readouterr().out
    # same simulated breakdown line, whatever auto committed to
    assert serial_out.splitlines()[1] in auto_out
    # the chooser's accounting surfaces as exec_* counters
    assert "exec_auto_chose_process" in auto_out


def test_model_kernel_process_downgrade_warns(capsys):
    import warnings

    with warnings.catch_warnings(record=True) as rec:
        warnings.simplefilter("always")
        rc = main(["run", "--workload", "micro", "--nodes", "1",
                   "--cores-per-node", "4", "--engine", "bsp-micro",
                   "--kernel", "model", "--backend", "process",
                   "--workers", "2"])
    assert rc == 0
    assert any("running serial" in str(w.message) for w in rec)
