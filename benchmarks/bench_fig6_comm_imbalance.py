"""Figure 6: BSP exchange load imbalance (received bytes per core).

Paper's claims checked in shape: "there is a large difference between the
minimum and maximum loads" at every scale; the absolute spread shrinks as
volume per core shrinks, while the relative spread (max/min) grows with
scale as fewer reads per rank average less.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig6_comm_imbalance


def test_fig6_comm_imbalance(benchmark, human_nodes):
    fig = run_once(benchmark, fig6_comm_imbalance, human_nodes)
    emit("fig6", fig)
    rows = fig["rows"]
    for r in rows:
        n, cores, mn, avg, mx, spread = r
        assert mx > mn >= 0
        assert spread == mx - mn or abs(spread - (mx - mn)) < 0.2
    # relative spread grows with scale
    rel_first = rows[0][4] / max(rows[0][2], 1e-9)
    rel_last = rows[-1][4] / max(rows[-1][2], 1e-9)
    assert rel_last > rel_first
    # absolute per-core volumes scale down
    assert rows[-1][3] < rows[0][3]
