"""Series builders for every table and figure of the paper's evaluation.

Each ``figN_*`` function regenerates the corresponding artifact's rows —
same axes, same series — from the simulator (DESIGN.md §4).  Benchmarks in
``benchmarks/`` call these, time them, and print/persist the output;
``EXPERIMENTS.md`` records the paper-vs-measured comparison.

Default node sweeps follow the paper: *E. coli* 100x strong-scales 1-128
nodes; *Human* CCS 8-512 nodes (its pipeline needs >= 8 nodes, §4.4).
"""

from __future__ import annotations

import numpy as np

from repro.core.api import compare_engines, get_workload, make_machine, run_alignment
from repro.engines.base import EngineConfig
from repro.genome.datasets import table1_rows
from repro.utils.stats import summarize
from repro.utils.units import MB

__all__ = [
    "ECOLI_NODES",
    "HUMAN_NODES",
    "table1_workloads",
    "fig3_intranode",
    "fig4_single_node",
    "fig5_load_imbalance",
    "fig6_comm_imbalance",
    "fig7_comm_latency",
    "fig8_ecoli_scaling",
    "fig9_10_human_scaling",
    "fig11_12_memory",
    "fig13_datastructure",
]

ECOLI_NODES = (1, 2, 4, 8, 16, 32, 64, 128)
HUMAN_NODES = (8, 16, 32, 64, 128, 256, 512)

#: the paper's figures compare exactly its two implementations — pin them
#: so newly registered engines (e.g. ``hybrid``) don't drift into the
#: reproduced artifacts
PAPER_ENGINES = ("bsp", "async")


def _breakdown_row(engine: str, nodes: int, cores: int, res) -> list:
    f = res.breakdown.fractions()
    return [
        engine, nodes, cores, round(res.wall_time, 3),
        round(100 * f["compute_align"], 1),
        round(100 * f["compute_overhead"], 1),
        round(100 * f["comm"], 1),
        round(100 * f["sync"], 1),
        res.exchange_rounds,
    ]


_BREAKDOWN_COLS = [
    "engine", "nodes", "cores", "wall_s",
    "align%", "overhead%", "comm%", "sync%", "rounds",
]


def table1_workloads(seed: int = 0) -> dict:
    """Table 1: the evaluation workloads (reads, tasks per dataset)."""
    rows = [
        [r["short_name"], r["species"], r["reads"], r["tasks"]]
        for r in table1_rows()
    ]
    # the reduced sequence-level equivalents actually synthesized offline
    for name in ("ecoli30x_tiny", "ecoli100x_tiny", "human_ccs_tiny"):
        wl = get_workload(name, seed=seed)
        rows.append([name + " (synthesized)", "synthetic", wl.n_reads, wl.n_tasks])
    return {
        "title": "Table 1: workloads used for evaluation",
        "columns": ["short_name", "species", "reads", "tasks"],
        "rows": rows,
    }


def fig3_intranode(workload: str = "ecoli30x", seed: int = 0,
                   scaling_cores: tuple = (1, 2, 4, 8, 16, 32, 64, 68)) -> dict:
    """Figure 3: single-node BSP vs Async, 64 vs 68 cores, E. coli 30x.

    Includes the intranode strong-scaling sweep behind the figure's text:
    near-perfect to 32 cores, tapering to ~62x at >= 64 cores.
    """
    wl = get_workload(workload, seed=seed)
    rows = []
    for cores in (68, 64):
        for engine, res in compare_engines(wl, 1, cores_per_node=cores,
                                         approaches=PAPER_ENGINES).items():
            rows.append(_breakdown_row(engine, 1, cores, res))

    scaling = []
    base = None
    for cores in scaling_cores:
        res = run_alignment(wl, 1, "bsp", cores_per_node=cores)
        if base is None:
            base = res.wall_time
        scaling.append([cores, round(res.wall_time, 2),
                        round(base / res.wall_time, 1)])
    return {
        "title": "Figure 3: 1-node breakdowns, 64 vs 68 cores (E. coli 30x)",
        "columns": _BREAKDOWN_COLS,
        "rows": rows,
        "scaling": {
            "columns": ["cores", "wall_s", "speedup_vs_1core"],
            "rows": scaling,
        },
    }


def fig4_single_node(seed: int = 0) -> dict:
    """Figure 4: 1-node breakdowns on E. coli 30x vs 100x (64 cores)."""
    rows = []
    for name in ("ecoli30x", "ecoli100x"):
        wl = get_workload(name, seed=seed)
        for engine, res in compare_engines(wl, 1, approaches=PAPER_ENGINES).items():
            row = _breakdown_row(engine, 1, 64, res)
            rows.append([name] + row)
    return {
        "title": "Figure 4: 1-node runtime breakdowns, E. coli 30x vs 100x",
        "columns": ["workload"] + _BREAKDOWN_COLS,
        "rows": rows,
    }


def fig5_load_imbalance(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figure 5: min/avg/max cumulative seed-and-extend time + imbalance."""
    wl = get_workload("human_ccs", seed=seed)
    rows = []
    for n in nodes:
        res = run_alignment(wl, n, "bsp")
        s = res.breakdown.summary("compute_align")
        rows.append([
            n, n * 64,
            round(s.min, 2), round(s.avg, 2), round(s.max, 2),
            round(s.imbalance, 3),
        ])
    return {
        "title": "Figure 5: seed-and-extend time min/avg/max and load "
                 "imbalance, strong scaling Human CCS",
        "columns": ["nodes", "cores", "min_s", "avg_s", "max_s",
                    "imbalance_max_over_avg"],
        "rows": rows,
    }


def fig6_comm_imbalance(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figure 6: max - min BSP exchange load (received bytes per core)."""
    wl = get_workload("human_ccs", seed=seed)
    rows = []
    for n in nodes:
        a = wl.assignment(n * 64)
        s = summarize(a.recv_bytes)
        rows.append([
            n, n * 64,
            round(s.min / MB, 1), round(s.avg / MB, 1), round(s.max / MB, 1),
            round(s.spread / MB, 1),
        ])
    return {
        "title": "Figure 6: BSP exchange load imbalance (received MB/core), "
                 "strong scaling Human CCS",
        "columns": ["nodes", "cores", "min_MB", "avg_MB", "max_MB",
                    "max_minus_min_MB"],
        "rows": rows,
    }


def fig7_comm_latency(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figure 7: total average communication latency, computation skipped.

    The §4.3 mode: both codes run everything except the alignment kernel.
    BSP's reported latency is the total exchange (collective) time; the
    async value is the mean across ranks of their pull time.
    """
    wl = get_workload("human_ccs", seed=seed)
    config = EngineConfig().comm_only()
    rows = []
    for n in nodes:
        bsp = run_alignment(wl, n, "bsp", config=config)
        asy = run_alignment(wl, n, "async", config=config)
        bsp_latency = bsp.details["exchange_time_total"]
        async_latency = float(np.mean(asy.details["raw_comm"]))
        rows.append([
            n, n * 64,
            round(bsp_latency, 3), round(async_latency, 3),
            "bsp" if bsp_latency < async_latency else "async",
        ])
    return {
        "title": "Figure 7: total average communication latency "
                 "(computation skipped), Human CCS",
        "columns": ["nodes", "cores", "bsp_latency_s", "async_latency_s",
                    "lower"],
        "rows": rows,
    }


def fig8_ecoli_scaling(nodes=ECOLI_NODES, seed: int = 0) -> dict:
    """Figure 8: strong-scaling breakdowns, E. coli 100x, 1-128 nodes."""
    wl = get_workload("ecoli100x", seed=seed)
    rows = []
    for n in nodes:
        results = compare_engines(wl, n, approaches=PAPER_ENGINES)
        norm = results["bsp"].wall_time
        for engine in ("bsp", "async"):
            res = results[engine]
            row = _breakdown_row(engine, n, n * 64, res)
            row.append(round(100 * res.wall_time / norm, 1))
            rows.append(row)
    return {
        "title": "Figure 8: runtime breakdown strong scaling E. coli 100x "
                 "(normalized to BSP)",
        "columns": _BREAKDOWN_COLS + ["normalized_to_bsp_%"],
        "rows": rows,
    }


def fig9_10_human_scaling(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figures 9-10: Human CCS breakdowns, 8-32 (multi-round) and
    64-512 nodes (single superstep)."""
    wl = get_workload("human_ccs", seed=seed)
    rows = []
    for n in nodes:
        results = compare_engines(wl, n, approaches=PAPER_ENGINES)
        norm = results["bsp"].wall_time
        for engine in ("bsp", "async"):
            res = results[engine]
            row = _breakdown_row(engine, n, n * 64, res)
            row.append(round(100 * res.wall_time / norm, 1))
            rows.append(row)
    return {
        "title": "Figures 9-10: runtime breakdown strong scaling Human CCS "
                 "(normalized to BSP)",
        "columns": _BREAKDOWN_COLS + ["normalized_to_bsp_%"],
        "rows": rows,
    }


def fig11_12_memory(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figures 11-12: per-core memory footprint and runtime, Human CCS."""
    wl = get_workload("human_ccs", seed=seed)
    budget = make_machine(1).app_memory_per_rank
    rows = []
    for n in nodes:
        results = compare_engines(wl, n, approaches=PAPER_ENGINES)
        a = wl.assignment(n * 64)
        rows.append([
            n, n * 64,
            round(results["bsp"].max_memory_per_rank / MB, 1),
            round(results["async"].max_memory_per_rank / MB, 1),
            round(a.single_exchange_estimate() / MB, 1),
            round(budget / MB, 1),
            results["bsp"].exchange_rounds,
            round(results["bsp"].wall_time, 2),
            round(results["async"].wall_time, 2),
        ])
    return {
        "title": "Figures 11-12: max memory footprint per core (MB) and "
                 "runtime (s), Human CCS",
        "columns": ["nodes", "cores", "bsp_MB", "async_MB",
                    "single_exchange_estimate_MB", "available_MB",
                    "bsp_rounds", "bsp_wall_s", "async_wall_s"],
        "rows": rows,
    }


def fig13_datastructure(nodes=HUMAN_NODES, seed: int = 0) -> dict:
    """Figure 13: local data-structure traversal overhead, Human CCS."""
    wl = get_workload("human_ccs", seed=seed)
    rows = []
    for n in nodes:
        results = compare_engines(wl, n, approaches=PAPER_ENGINES)
        bsp_oh = results["bsp"].breakdown.summary("compute_overhead").avg
        asy_oh = results["async"].breakdown.summary("compute_overhead").avg
        rows.append([
            n, n * 64,
            round(bsp_oh, 3), round(asy_oh, 3),
            round(100 * bsp_oh / results["bsp"].wall_time, 1),
            round(100 * asy_oh / results["async"].wall_time, 1),
        ])
    return {
        "title": "Figure 13: data-structure traversal overhead "
                 "(flat arrays vs pointer-based), Human CCS",
        "columns": ["nodes", "cores", "bsp_overhead_s", "async_overhead_s",
                    "bsp_%runtime", "async_%runtime"],
        "rows": rows,
    }
