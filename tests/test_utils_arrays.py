"""Tests for repro.utils.arrays (CSR helpers and segmented reductions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.arrays import (
    bincount_exact,
    chunked_ranges,
    counts_to_offsets,
    group_offsets_by_sorted_key,
    segment_max,
    segment_min,
    segment_sums,
)


def test_counts_to_offsets_basic():
    offsets = counts_to_offsets(np.array([2, 0, 3]))
    assert offsets.tolist() == [0, 2, 2, 5]


def test_counts_to_offsets_empty():
    assert counts_to_offsets(np.array([], dtype=np.int64)).tolist() == [0]


def test_group_offsets_by_sorted_key_matches_bincount():
    keys = np.sort(np.array([0, 0, 2, 2, 2, 5]))
    offsets = group_offsets_by_sorted_key(keys, 6)
    expected = counts_to_offsets(np.bincount(keys, minlength=6))
    assert np.array_equal(offsets, expected)


@given(
    st.lists(st.integers(min_value=0, max_value=9), max_size=200),
)
def test_group_offsets_property(keys):
    keys = np.sort(np.array(keys, dtype=np.int64))
    offsets = group_offsets_by_sorted_key(keys, 10)
    expected = counts_to_offsets(np.bincount(keys, minlength=10))
    assert np.array_equal(offsets, expected)


def test_bincount_exact_range_check():
    with pytest.raises(ValueError):
        bincount_exact(np.array([0, 5]), 5)
    assert bincount_exact(np.array([0, 1, 1]), 4).tolist() == [1, 2, 0, 0]


def test_segment_sums():
    vals = np.array([1.0, 2.0, 3.0, 4.0])
    keys = np.array([0, 1, 0, 1])
    assert segment_sums(vals, keys, 3).tolist() == [4.0, 6.0, 0.0]


def test_segment_sums_shape_mismatch():
    with pytest.raises(ValueError):
        segment_sums(np.array([1.0]), np.array([0, 1]), 2)


def test_segment_max_min():
    vals = np.array([1.0, 5.0, 3.0])
    keys = np.array([0, 0, 1])
    assert segment_max(vals, keys, 2).tolist() == [5.0, 3.0]
    assert segment_min(vals, keys, 2)[0] == 1.0


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=100),
    st.integers(min_value=1, max_value=5),
)
def test_segment_sums_total_preserved(vals, groups):
    vals = np.array(vals)
    keys = np.arange(len(vals)) % groups
    sums = segment_sums(vals, keys, groups)
    assert np.isclose(sums.sum(), vals.sum())


def test_chunked_ranges_cover_exactly():
    ranges = list(chunked_ranges(10, 3))
    assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]
    assert list(chunked_ranges(0, 3)) == []


def test_chunked_ranges_bad_chunk():
    with pytest.raises(ValueError):
        list(chunked_ranges(10, 0))


@given(st.integers(min_value=0, max_value=10_000), st.integers(min_value=1, max_value=997))
def test_chunked_ranges_partition_property(total, chunk):
    covered = 0
    prev_stop = 0
    for start, stop in chunked_ranges(total, chunk):
        assert start == prev_stop
        assert stop - start <= chunk
        assert stop > start
        covered += stop - start
        prev_stop = stop
    assert covered == total
