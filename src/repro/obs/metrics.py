"""Per-rank counter registry.

Counters complement the trace: where phase events answer *when* time went
somewhere, counters answer *how much* traffic and work each rank handled —
messages issued and serviced, bytes moved, alignment cells computed, and
high-water marks like outstanding-window occupancy.  Rollups use the same
min/avg/max/sum vocabulary as the paper's per-rank timing reductions.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.stats import Summary, summarize

__all__ = ["MetricsRegistry"]


class MetricsRegistry:
    """Named per-rank counters, created lazily on first touch."""

    def __init__(self, num_ranks: int):
        if num_ranks < 1:
            raise ConfigurationError("metrics registry needs >= 1 rank")
        self.num_ranks = num_ranks
        self._counters: dict[str, np.ndarray] = {}

    def _array(self, name: str) -> np.ndarray:
        arr = self._counters.get(name)
        if arr is None:
            arr = np.zeros(self.num_ranks, dtype=np.float64)
            self._counters[name] = arr
        return arr

    def inc(self, name: str, rank: int, value: float = 1.0) -> None:
        """Add ``value`` to counter ``name`` on ``rank``."""
        self._array(name)[rank] += value

    def add_array(self, name: str, values) -> None:
        """Add a per-rank vector at once (macro engines)."""
        self._array(name)[:] += np.asarray(values, dtype=np.float64)

    def merge_scalars(self, prefix: str, values: dict, rank: int = 0) -> None:
        """Fold a flat dict of scalar counters in under ``prefix``.

        Used for *real wall-clock* accounting that has no per-rank
        structure — e.g. the process-backend executor's
        dispatch/wait/merge split and per-worker timings
        (``exec_dispatch_s``, ``exec_wait_s``, ``exec_merge_s``,
        ``exec_w0_align_wall_s``, ...) or the auto backend's probe
        measurements and ``exec_backend_downgraded``.  Non-numeric values
        are skipped, so callers can pass a stats dict verbatim.
        """
        for name, value in values.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            self.inc(f"{prefix}{name}", rank, float(value))

    def observe_max(self, name: str, rank: int, value: float) -> None:
        """Track a high-water mark (e.g. window occupancy)."""
        arr = self._array(name)
        if value > arr[rank]:
            arr[rank] = value

    def get(self, name: str) -> np.ndarray:
        """Per-rank values for one counter (zeros if never touched)."""
        return self._array(name)

    def names(self) -> list[str]:
        return sorted(self._counters)

    def summary(self, name: str) -> Summary:
        return summarize(self._array(name))

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of every counter, keyed by name."""
        return {k: v.copy() for k, v in sorted(self._counters.items())}

    def rows(self) -> list[list]:
        """``[name, min, avg, max, sum]`` rows for table rendering."""
        out = []
        for name in self.names():
            s = self.summary(name)
            out.append([
                name, f"{s.min:.6g}", f"{s.avg:.6g}",
                f"{s.max:.6g}", f"{s.sum:.6g}",
            ])
        return out
