"""Tests for the observability subsystem: tracer, metrics, conservation."""

import json

import numpy as np
import pytest

from repro.core.api import get_workload, make_machine, run_alignment
from repro.engines.report import CATEGORIES, RuntimeBreakdown
from repro.errors import AccountingError, SimulationError
from repro.machine.config import cori_knl
from repro.obs import (
    ENGINE_LANE,
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_breakdown,
    check_trace,
    get_default_tracer,
    set_default_tracer,
)


# -- tracer ----------------------------------------------------------------

def test_tracer_records_typed_events():
    tr = Tracer()
    tr.begin_run("demo")
    tr.phase(0, "comm", 1.0, 2.5, name="exchange")
    tr.instant(1, "rpc_issue", 0.5, target=3)
    tr.counter(0, "outstanding", 0.7, 12)
    assert len(tr.events) == 4  # meta + phase + instant + counter
    assert tr.ranks() == [0, 1]
    [ph] = tr.phase_events()
    assert ph.category == "comm" and ph.end == 3.5


def test_tracer_disabled_records_nothing():
    tr = Tracer(enabled=False)
    tr.phase(0, "comm", 0.0, 1.0)
    tr.instant(0, "x", 0.0)
    tr.counter(0, "c", 0.0, 1)
    assert tr.events == []


def test_tracer_chrome_export_schema(tmp_path):
    tr = Tracer()
    tr.begin_run("run A")
    tr.phase(0, "comm", 1.0, 2.0, name="exchange")
    tr.instant(ENGINE_LANE, "superstep", 1.0, round=np.int64(0))
    tr.counter(2, "outstanding", 1.5, np.float64(3.0))
    path = tmp_path / "t.json"
    tr.write_chrome(str(path))
    doc = json.loads(path.read_text())  # must be valid JSON
    events = doc["traceEvents"]
    phases = [e for e in events if e["ph"] == "X"]
    assert phases == [{
        "name": "exchange", "cat": "comm", "ph": "X",
        "pid": 0, "tid": 0, "ts": 1.0e6, "dur": 2.0e6,
    }]
    # microseconds, metadata naming for process and every lane
    names = {(e["pid"], e.get("tid")): e["args"]["name"]
             for e in events if e["ph"] == "M"}
    assert names[(0, None)] == "run A"
    assert names[(0, 0)] == "rank 0"
    assert names[(0, 2)] == "rank 2"
    assert any(v == "engine" for v in names.values())
    # numpy scalars were coerced to plain JSON numbers
    inst = next(e for e in events if e["ph"] == "i")
    assert inst["args"]["round"] == 0


def test_tracer_multiple_runs_get_distinct_pids():
    tr = Tracer()
    a = tr.begin_run("bsp")
    tr.phase(0, "comm", 0.0, 1.0)
    b = tr.begin_run("async")
    tr.phase(0, "comm", 0.0, 2.0)
    assert a == 0 and b == 1
    assert [e.duration for e in tr.phase_events(pid=0)] == [1.0]
    assert [e.duration for e in tr.phase_events(pid=1)] == [2.0]


def test_default_tracer_install_and_clear():
    assert get_default_tracer() is None
    tr = Tracer()
    set_default_tracer(tr)
    try:
        assert get_default_tracer() is tr
    finally:
        set_default_tracer(None)
    assert get_default_tracer() is None


# -- metrics ---------------------------------------------------------------

def test_metrics_counters_and_rollups():
    m = MetricsRegistry(4)
    m.inc("messages", 0)
    m.inc("messages", 0)
    m.inc("bytes", 1, 512.0)
    m.observe_max("window", 2, 7)
    m.observe_max("window", 2, 3)  # lower value must not shrink high-water
    m.add_array("tasks", [1, 2, 3, 4])
    assert m.get("messages")[0] == 2
    assert m.get("bytes")[1] == 512.0
    assert m.get("window")[2] == 7
    assert m.summary("tasks").sum == 10
    assert m.names() == ["bytes", "messages", "tasks", "window"]
    assert all(len(row) == 5 for row in m.rows())
    snap = m.snapshot()
    snap["tasks"][0] = 99  # copies, not views
    assert m.get("tasks")[0] == 1


# -- conservation checker --------------------------------------------------

def _breakdown(wall, **cat):
    arrays = {c: np.asarray(cat.get(c, [0.0]), dtype=float)
              for c in CATEGORIES}
    return RuntimeBreakdown(
        engine="t", machine=cori_knl(1, app_cores_per_node=1),
        workload="t", wall_time=wall, **arrays,
    )


def test_check_breakdown_pass_and_fail():
    ok = _breakdown(3.0, compute_align=[1.0], comm=[1.0], sync=[1.0])
    assert check_breakdown(ok).ok
    bad = _breakdown(5.0, compute_align=[1.0])
    report = check_breakdown(bad)
    assert not report.ok
    assert report.max_abs_deviation == pytest.approx(4.0)
    with pytest.raises(AccountingError):
        assert_conserved(report)
    assert isinstance(AccountingError("x"), SimulationError)


def test_check_trace_catches_missing_phase():
    tr = Tracer()
    tr.begin_run("r")
    tr.phase(0, "comm", 0.0, 1.0)
    tr.phase(0, "sync", 1.0, 1.0)
    tr.phase(1, "comm", 0.0, 1.0)  # rank 1 is missing 1s of accounting
    good = check_trace(tr, 2.0, num_ranks=2)
    assert not good.ok and good.worst_rank == 1
    assert check_trace(tr, 1.0, num_ranks=None).ok is False  # rank 0 has 2s


def test_check_trace_counts_silent_ranks():
    tr = Tracer()
    tr.begin_run("r")
    tr.phase(0, "comm", 0.0, 2.0)
    # rank 1 emitted nothing: only an explicit num_ranks notices
    assert check_trace(tr, 2.0).ok
    assert not check_trace(tr, 2.0, num_ranks=2).ok


# -- zero-wall fractions contract (satellite bugfix) -----------------------

def test_fractions_zero_wall_contract():
    empty = _breakdown(0.0)
    f = empty.fractions()
    assert set(f) == set(CATEGORIES)
    assert all(v == 0.0 for v in f.values())
    # _print_result-style unconditional indexing must not raise
    assert f["comm"] == 0.0 and f["compute_align"] == 0.0


# -- end-to-end: traced macro run ------------------------------------------

def test_traced_macro_run_conserves_and_exports(tmp_path):
    wl = get_workload("ecoli100x", seed=0)
    tracer = Tracer()
    metrics = MetricsRegistry(make_machine(1, 8).total_ranks)
    res = run_alignment(wl, 1, "async", cores_per_node=8,
                        tracer=tracer, metrics=metrics)
    assert check_breakdown(res.breakdown).ok
    report = check_trace(tracer, res.wall_time, res.breakdown.machine.total_ranks)
    assert report.ok
    assert metrics.get("tasks").sum() > 0
    path = tmp_path / "macro.json"
    tracer.write_chrome(str(path))
    doc = json.loads(path.read_text())
    lanes = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
    assert lanes == set(range(8))  # one lane per rank
