"""Alignment-as-a-service: jobs, queue, cache, events, HTTP API.

The layer ROADMAP.md's production-scale story needs on top of the
engines: many clients submit runs, a bounded admission-controlled queue
multiplexes them over fixed compute, identical requests coalesce into a
single engine execution, completed results serve from a signature-stable
cache, and progress streams back over Server-Sent Events — all stdlib,
no new runtime dependency.  See docs/SERVICE.md for the API reference.
"""

from repro.service.cache import DEFAULT_CACHE_ENTRIES, ResultCache
from repro.service.events import (
    DEFAULT_EVENT_CAP,
    PROGRESS_EVERY,
    JobEventLog,
    ProgressTracer,
)
from repro.service.http import ServiceHandler, ServiceServer
from repro.service.jobs import (
    EXECUTION_ONLY_KNOBS,
    TERMINAL_STATES,
    Job,
    JobRequest,
    JobState,
    execute_request,
    known_engines,
)
from repro.service.queue import DEFAULT_SERVICE_MEMORY_BYTES, RunQueue

__all__ = [
    "DEFAULT_CACHE_ENTRIES",
    "DEFAULT_EVENT_CAP",
    "DEFAULT_SERVICE_MEMORY_BYTES",
    "EXECUTION_ONLY_KNOBS",
    "PROGRESS_EVERY",
    "Job",
    "JobEventLog",
    "JobRequest",
    "JobState",
    "ProgressTracer",
    "ResultCache",
    "RunQueue",
    "ServiceHandler",
    "ServiceServer",
    "TERMINAL_STATES",
    "execute_request",
    "known_engines",
]
