"""Read and task partitioning (DiBELLA stage 1 and the task redistribution).

* **Reads** are partitioned *uniformly by size* — "a data-independent
  strategy in that no characteristic other than size in memory is
  considered" (§3): contiguous runs of reads whose byte totals are as even
  as possible.
* **Tasks** are redistributed preserving the invariant that *each task is
  assigned to the owner of one or both of the required reads*, with task
  counts roughly balanced across processors (§3).  The implementation is
  the greedy heuristic: stream tasks, give each to the currently
  less-loaded of its two read owners.  The paper calls this "blind"
  partitioning; by-estimated-cost assignment is provided as the ablation
  the paper proposes as future work (§5).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PartitionError

__all__ = [
    "partition_reads_by_size",
    "assign_tasks_balanced",
    "check_ownership_invariant",
]


def partition_reads_by_size(lengths: np.ndarray, num_ranks: int) -> np.ndarray:
    """Contiguous byte-balanced partition of reads.

    Returns ``boundaries`` of length ``num_ranks + 1``: rank ``r`` owns
    reads ``[boundaries[r], boundaries[r+1])``.  Boundary ``r`` is placed at
    the read index whose byte prefix-sum first reaches ``r/P`` of the total,
    so every rank's byte load is within one read of the ideal.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    if num_ranks <= 0:
        raise PartitionError("num_ranks must be positive")
    n = lengths.size
    prefix = np.concatenate([[0], np.cumsum(lengths)])
    total = prefix[-1]
    targets = total * np.arange(num_ranks + 1, dtype=np.float64) / num_ranks
    boundaries = np.searchsorted(prefix, targets, side="left").astype(np.int64)
    boundaries[0] = 0
    boundaries[-1] = n
    # monotonicity can break only on pathological inputs (e.g. zero-length
    # runs); enforce it so every rank gets a valid (possibly empty) range
    np.maximum.accumulate(boundaries, out=boundaries)
    return boundaries


def owners_from_boundaries(read_ids: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Owner rank of each read id under a contiguous partition."""
    read_ids = np.asarray(read_ids, dtype=np.int64)
    owners = np.searchsorted(boundaries, read_ids, side="right") - 1
    return owners.astype(np.int64)


def assign_tasks_balanced(
    owner_a: np.ndarray,
    owner_b: np.ndarray,
    num_ranks: int,
    costs: np.ndarray | None = None,
    loads: np.ndarray | None = None,
) -> np.ndarray:
    """Assign each task to the owner of read a or read b, balancing load.

    With ``costs=None`` the load is the task *count* (the paper's
    heuristic); with per-task cost estimates it becomes the semi-static
    by-cost variant (§5 future work, exercised by the ablation bench).

    ``loads`` carries the greedy stream's only state (current per-rank
    load) and is mutated in place when given, so a caller can feed the
    task stream in shards — consecutive calls sharing one ``loads`` array
    produce exactly the assignment a single call over the concatenated
    stream would (the sharded workload path relies on this).

    Returns the assigned rank per task.  The greedy stream is O(T) with a
    Python loop — acceptable for concrete workloads (millions of tasks);
    statistical workloads model the assignment instead.
    """
    owner_a = np.asarray(owner_a, dtype=np.int64)
    owner_b = np.asarray(owner_b, dtype=np.int64)
    if owner_a.shape != owner_b.shape:
        raise PartitionError("owner arrays must have equal shape")
    if owner_a.size and (
        min(owner_a.min(), owner_b.min()) < 0
        or max(owner_a.max(), owner_b.max()) >= num_ranks
    ):
        raise PartitionError("owner rank out of range")
    weights = (
        np.ones(owner_a.size, dtype=np.float64)
        if costs is None
        else np.asarray(costs, dtype=np.float64)
    )
    if loads is None:
        loads = np.zeros(num_ranks, dtype=np.float64)
    elif loads.shape != (num_ranks,):
        raise PartitionError(
            f"loads must have shape ({num_ranks},), got {loads.shape}"
        )
    assigned = np.empty(owner_a.size, dtype=np.int64)
    for t in range(owner_a.size):
        a, b = owner_a[t], owner_b[t]
        pick = a if loads[a] <= loads[b] else b
        assigned[t] = pick
        loads[pick] += weights[t]
    return assigned


def check_ownership_invariant(
    assigned: np.ndarray, owner_a: np.ndarray, owner_b: np.ndarray
) -> None:
    """Raise PartitionError unless every task sits with one of its owners."""
    assigned = np.asarray(assigned)
    ok = (assigned == np.asarray(owner_a)) | (assigned == np.asarray(owner_b))
    if not ok.all():
        bad = int(np.count_nonzero(~ok))
        raise PartitionError(
            f"{bad} task(s) assigned to a rank owning neither read"
        )
