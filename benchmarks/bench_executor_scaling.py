"""Executor scaling: serial inline kernel vs the process-pool backend vs auto.

The process backend (docs/PARALLEL.md) exists to put the paper's
many-cores-per-node premise back into the micro engines: real-kernel task
batches fan out to persistent workers that write result rows straight
into a shared-memory output array.  This benchmark measures end-to-end
batch throughput — pairs/sec through ``TaskExecutor.align_tasks``
including dispatch, wait and rehydration — for the serial backend, worker
pools of 1, 2 and 4, and the measure-then-choose ``auto`` backend, and
verifies en route that every backend returns bit-identical alignments.

Speedup is reported against the machine actually running the benchmark:
``cpus`` in the JSON is ``os.cpu_count()``, and a single-core container
will honestly show ~1x no matter how many workers are configured (the CI
step that wants the >=2x-at-4-workers number runs on >=4 free cores and is
non-gating).  Per-pool stats carry the honest three-way accounting split:
``dispatch_s`` (submit only), ``wait_s`` (worker completion), ``merge_s``
(object rehydration only — the zero-copy return path keeps this tiny).
``auto`` must land within 10% of the better static choice — asserted when
the machine has >=2 cpus.  Writes ``BENCH_EXECUTOR.json`` at the repo
root.  Also runnable standalone:

    python benchmarks/bench_executor_scaling.py [--tiny] [--assert-auto]
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.align.seedextend import SeedExtendAligner
from repro.core.api import get_workload
from repro.runtime.executor import (
    AutoExecutor,
    ProcessExecutor,
    SerialExecutor,
)

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_EXECUTOR.json"

WORKER_COUNTS = (1, 2, 4)

#: auto may trail the better static backend by at most this factor
AUTO_TOLERANCE = 0.90

#: (workload seed, engine-style batch size, task cap) for the smoke run
TINY = (11, 64, 192)
FULL = (11, 256, None)


def _run_batches(executor, indices, batch: int):
    """Feed tasks through align_tasks in engine-sized batches, timed."""
    out = []
    t0 = time.perf_counter()
    for s in range(0, len(indices), batch):
        out.extend(executor.align_tasks(indices[s: s + batch]))
    return out, time.perf_counter() - t0


def _check_identical(got, base, label: str) -> None:
    if [(a.score, a.cells) for a in got] != \
            [(a.score, a.cells) for a in base]:
        raise AssertionError(f"{label} diverged from serial")


def sweep(seed: int = FULL[0], batch: int = FULL[1],
          max_tasks: int | None = FULL[2]) -> dict:
    workload = get_workload("micro", seed=seed)
    n = workload.n_tasks if max_tasks is None else min(workload.n_tasks,
                                                       max_tasks)
    indices = list(range(n))

    serial = SerialExecutor(workload, SeedExtendAligner())
    base, t_serial = _run_batches(serial, indices, batch)
    serial_pps = n / t_serial

    rows = [["serial", "-", round(serial_pps, 1), 1.0]]
    report: dict = {
        "workload": f"micro@{seed}",
        "tasks": n,
        "batch": batch,
        "cpus": os.cpu_count(),
        "serial_pairs_per_sec": serial_pps,
        "process": [],
    }
    for workers in WORKER_COUNTS:
        ex = ProcessExecutor(workload, SeedExtendAligner(), workers=workers)
        try:
            got, t_proc = _run_batches(ex, indices, batch)
            stats = ex.stats()
        finally:
            ex.close()
        _check_identical(got, base, f"process backend ({workers} workers)")
        pps = n / t_proc
        speedup = t_serial / t_proc
        report["process"].append({
            "workers": workers,
            "pairs_per_sec": pps,
            "speedup_vs_serial": speedup,
            "dispatch_s": stats["dispatch_s"],
            "wait_s": stats["wait_s"],
            "merge_s": stats["merge_s"],
            "merge_frac_of_wall": stats["merge_s"] / t_proc,
            "chunks": stats["chunks"],
        })
        rows.append(["process", workers, round(pps, 1), round(speedup, 2)])
    report["speedup_at_4_workers"] = report["process"][-1][
        "speedup_vs_serial"]

    # the adaptive backend: probes both sides, commits to the winner —
    # measured end-to-end like everything else (probe cost included)
    ex = AutoExecutor(workload, SeedExtendAligner(), workers=4)
    try:
        got, t_auto = _run_batches(ex, indices, batch)
        auto_stats = ex.stats()
    finally:
        ex.close()
    _check_identical(got, base, "auto backend")
    auto_pps = n / t_auto
    best_pps = max([serial_pps]
                   + [p["pairs_per_sec"] for p in report["process"]])
    report["auto"] = {
        "pairs_per_sec": auto_pps,
        "speedup_vs_serial": t_serial / t_auto,
        "chosen": auto_stats["chosen"],
        "reason": auto_stats["auto_reason"],
        "vs_best_static": auto_pps / best_pps,
    }
    rows.append(["auto", auto_stats["chosen"], round(auto_pps, 1),
                 round(t_serial / t_auto, 2)])
    return {
        "title": f"Executor scaling: {n} tasks, batch={batch}, "
                 f"{os.cpu_count()} cpus",
        "columns": ["backend", "workers", "pairs/s", "speedup"],
        "rows": rows,
        "report": report,
    }


def write_json(fig: dict) -> None:
    JSON_PATH.write_text(json.dumps(fig["report"], indent=2) + "\n")


def assert_auto_competitive(report: dict) -> None:
    """auto must stay within tolerance of the better static choice.

    Meaningless on a single-core runner (every backend ~ties and noise
    dominates), so callers gate on the recorded cpu count.
    """
    vs_best = report["auto"]["vs_best_static"]
    assert vs_best >= AUTO_TOLERANCE, (
        f"backend=auto reached only {vs_best:.2f}x of the best static "
        f"backend (chose {report['auto']['chosen']}: "
        f"{report['auto']['reason']})"
    )


def test_executor_scaling(benchmark):
    from conftest import FAST, emit, run_once

    fig = run_once(benchmark, sweep, *(TINY if FAST else ()))
    emit("executor_scaling", {k: fig[k] for k in ("title", "columns", "rows")})
    write_json(fig)
    report = fig["report"]
    assert report["speedup_at_4_workers"] > 0
    cpus = os.cpu_count() or 1
    if not FAST and cpus >= 2:
        assert_auto_competitive(report)
    # the >=2x target only makes sense with real spare cores under the
    # pool; single/dual-core runners record the honest number instead
    if not FAST and cpus >= 4:
        speedup = report["speedup_at_4_workers"]
        assert speedup >= 2.0, f"4-worker pool only {speedup:.2f}x serial"
        # the zero-copy return path: rehydration must stay a sliver
        merge_frac = report["process"][-1]["merge_frac_of_wall"]
        assert merge_frac < 0.10, (
            f"merge (rehydration) is {merge_frac:.0%} of executor wall")


if __name__ == "__main__":
    tiny = "--tiny" in sys.argv
    fig = sweep(*TINY) if tiny else sweep()
    widths = [max(len(str(r[i])) for r in [fig["columns"]] + fig["rows"])
              for i in range(len(fig["columns"]))]
    print(fig["title"])
    for row in [fig["columns"]] + fig["rows"]:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    write_json(fig)
    print(f"wrote {JSON_PATH}")
    if "--assert-auto" in sys.argv and (os.cpu_count() or 1) >= 2:
        assert_auto_competitive(fig["report"])
        print(f"auto within tolerance of best static backend "
              f"({fig['report']['auto']['vs_best_static']:.2f}x)")
