"""Tests for the full-DP reference kernels (NW / SW / extension score)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.dp import extension_score_full, needleman_wunsch, smith_waterman
from repro.align.scoring import ScoringScheme
from repro.genome import alphabet

dna = st.text(alphabet="ACGT", min_size=0, max_size=40)


def nw_reference(a, b, scoring):
    """Textbook O(nm) Needleman-Wunsch with explicit loops (oracle)."""
    m, n = len(a), len(b)
    S = np.zeros((m + 1, n + 1), dtype=np.int64)
    S[:, 0] = scoring.gap * np.arange(m + 1)
    S[0, :] = scoring.gap * np.arange(n + 1)
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = scoring.match if (a[i - 1] == b[j - 1] and a[i - 1] < 4) else scoring.mismatch
            S[i, j] = max(
                S[i - 1, j - 1] + sub,
                S[i - 1, j] + scoring.gap,
                S[i, j - 1] + scoring.gap,
            )
    return S


def test_nw_identical():
    a = alphabet.encode("ACGTACGT")
    assert needleman_wunsch(a, a) == 8


def test_nw_single_substitution():
    a = alphabet.encode("ACGTACGT")
    b = alphabet.encode("ACGTTCGT")
    assert needleman_wunsch(a, b) == 5  # 7 matches - one -2 mismatch


def test_nw_empty():
    a = alphabet.encode("ACG")
    e = alphabet.encode("")
    assert needleman_wunsch(a, e) == -6  # three -2 gaps
    assert needleman_wunsch(e, e) == 0


def test_n_never_matches():
    a = alphabet.encode("NNN")
    assert needleman_wunsch(a, a) == -6  # three -2 mismatches


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_nw_matches_loop_reference(sa, sb):
    scoring = ScoringScheme()
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    assert needleman_wunsch(a, b) == int(nw_reference(a, b, scoring)[-1, -1])


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_sw_matches_loop_reference(sa, sb):
    scoring = ScoringScheme()
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    m, n = len(a), len(b)
    S = np.zeros((m + 1, n + 1), dtype=np.int64)
    best = 0
    for i in range(1, m + 1):
        for j in range(1, n + 1):
            sub = scoring.match if (sa[i - 1] == sb[j - 1]) else scoring.mismatch
            S[i, j] = max(
                0,
                S[i - 1, j - 1] + sub,
                S[i - 1, j] + scoring.gap,
                S[i, j - 1] + scoring.gap,
            )
            best = max(best, S[i, j])
    assert smith_waterman(a, b) == best


def test_sw_nonnegative_and_substring():
    a = alphabet.encode("TTTTACGTACGTTTTT")
    b = alphabet.encode("ACGTACGT")
    assert smith_waterman(a, b) == 8
    assert smith_waterman(alphabet.encode("AAAA"), alphabet.encode("TTTT")) == 0


@settings(max_examples=60, deadline=None)
@given(dna, dna)
def test_extension_score_matches_prefix_max(sa, sb):
    scoring = ScoringScheme()
    a, b = alphabet.encode(sa), alphabet.encode(sb)
    S = nw_reference(a, b, scoring)
    score, bi, bj = extension_score_full(a, b)
    assert score == int(S.max())
    assert score == int(S[bi, bj])


def test_extension_score_nonnegative():
    # S(0,0) = 0 is always available
    score, i, j = extension_score_full(
        alphabet.encode("AAAA"), alphabet.encode("TTTT")
    )
    assert score == 0 and (i, j) == (0, 0)


def test_scoring_validation():
    from repro.errors import AlignmentError

    with pytest.raises(AlignmentError):
        ScoringScheme(match=0)
    with pytest.raises(AlignmentError):
        ScoringScheme(mismatch=1)
    with pytest.raises(AlignmentError):
        ScoringScheme(gap=0)


def test_scoring_substitution_vector():
    s = ScoringScheme(match=2, mismatch=-3, gap=-1)
    a = alphabet.encode("ACGN")
    b = alphabet.encode("AGGN")
    assert s.substitution(a, b).tolist() == [2, -3, 2, -3]
    assert s.perfect_score(5) == 10
