"""Stdlib HTTP front-end for the run queue: JSON control, SSE progress.

No framework, no new dependency — a
:class:`http.server.ThreadingHTTPServer` whose handler threads talk to one
shared :class:`~repro.service.queue.RunQueue`.  The API surface:

``POST /jobs``
    Submit a :class:`~repro.service.jobs.JobRequest` as JSON.  201 with
    the job's status body; 400 on an invalid request
    (:class:`~repro.errors.ConfigurationError`), 429 when the bounded
    backlog is full (:class:`~repro.errors.QueueFullError`, with a
    ``Retry-After`` hint), 503 once the queue has shut down.

``GET /jobs``
    Every known job (submission order) plus queue counters.

``GET /jobs/{id}``
    One job's status: state, cache/coalescing markers, typed error,
    admission budget, timestamps.

``GET /jobs/{id}/events[?since=N]``
    The job's event log as Server-Sent Events — ``state`` transitions,
    tracer-derived ``phase``/``fault``/``churn`` events, periodic
    ``progress`` estimates, and a terminal ``done`` event, after which
    the stream closes.  ``since`` replays from a sequence number, so a
    reconnecting client can resume where it dropped off.

``GET /jobs/{id}/result``
    The completed result: signature, wall clock, category fractions,
    engine details.  409 while the job is still live, 500 with the typed
    error for FAILED, 410 for CANCELLED.

``DELETE /jobs/{id}``
    Cancel: immediate for queued jobs, flagged (engine aborts at its next
    trace event) for running ones.  202 with the current status body.

``GET /healthz``
    Liveness probe for scripts and CI.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

from repro.errors import ConfigurationError, QueueFullError, ServiceError
from repro.service.jobs import Job, JobRequest, JobState
from repro.service.queue import RunQueue

__all__ = ["ServiceHandler", "ServiceServer"]


def _json_safe(value: Any) -> Any:
    """Recursively render engine detail payloads as JSON-encodable data."""
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):
        try:
            return _json_safe(value.item())  # numpy scalar
        except (ValueError, TypeError):
            pass
    if hasattr(value, "tolist"):
        return _json_safe(value.tolist())  # numpy array
    return str(value)


def result_payload(job: Job) -> dict:
    """The ``GET /jobs/{id}/result`` body for a DONE job."""
    result = job.result
    b = result.breakdown
    return {
        "id": job.id,
        "state": job.state,
        "cache_hit": job.cache_hit,
        "cache_source": job.cache_source,
        "signature": result.signature(),
        "engine": b.engine,
        "workload": b.workload,
        "wall_time": float(b.wall_time),
        "fractions": b.fractions(),
        "exchange_rounds": int(result.exchange_rounds),
        "max_memory_per_rank": result.max_memory_per_rank,
        "alignments": (None if result.alignments is None
                       else len(result.alignments)),
        "details": _json_safe(result.details),
    }


class ServiceHandler(BaseHTTPRequestHandler):
    """Routes the API onto the server's shared :class:`RunQueue`."""

    server_version = "repro-service/1.0"

    @property
    def queue(self) -> RunQueue:
        return self.server.queue

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # -- plumbing ------------------------------------------------------------

    def _send_json(self, status: int, payload: dict,
                   extra_headers: dict | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (extra_headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, exc_type: str, message: str,
               extra_headers: dict | None = None) -> None:
        self._send_json(status, {"error": exc_type, "message": message},
                        extra_headers)

    def _job_or_404(self, job_id: str) -> Job | None:
        try:
            return self.queue.get(job_id)
        except ConfigurationError as exc:
            self._error(404, "NotFound", str(exc))
            return None

    # -- verbs ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if urlsplit(self.path).path != "/jobs":
            self._error(404, "NotFound", f"no POST route {self.path!r}")
            return
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            self._error(400, "BadRequest", f"body is not JSON: {exc}")
            return
        if not isinstance(payload, dict):
            self._error(400, "BadRequest", "body must be a JSON object")
            return
        try:
            request = JobRequest.from_dict(payload)
            job = self.queue.submit(request)
        except QueueFullError as exc:
            self._error(429, "QueueFullError", str(exc),
                        {"Retry-After": "1"})
            return
        except ConfigurationError as exc:
            self._error(400, "ConfigurationError", str(exc))
            return
        except ServiceError as exc:
            self._error(503, "ServiceError", str(exc))
            return
        self._send_json(201, job.as_dict())

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        split = urlsplit(self.path)
        path = split.path.rstrip("/") or "/"
        if path == "/healthz":
            stats = self.queue.stats()
            self._send_json(200, {"ok": True, "jobs": stats["submitted"],
                                  "running": stats["running"]})
            return
        if path == "/jobs":
            self._send_json(200, {
                "jobs": [j.as_dict() for j in self.queue.jobs()],
                "stats": self.queue.stats(),
            })
            return
        parts = path.strip("/").split("/")
        if not parts or parts[0] != "jobs" or len(parts) not in (2, 3):
            self._error(404, "NotFound", f"no GET route {self.path!r}")
            return
        job = self._job_or_404(parts[1])
        if job is None:
            return
        if len(parts) == 2:
            self._send_json(200, job.as_dict())
            return
        if parts[2] == "events":
            query = parse_qs(split.query)
            try:
                since = int(query.get("since", ["0"])[0])
            except ValueError:
                self._error(400, "BadRequest", "since must be an integer")
                return
            self._stream_events(job, since)
            return
        if parts[2] == "result":
            self._send_result(job)
            return
        self._error(404, "NotFound", f"no GET route {self.path!r}")

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path).path.strip("/").split("/")
        if len(parts) != 2 or parts[0] != "jobs":
            self._error(404, "NotFound", f"no DELETE route {self.path!r}")
            return
        try:
            job = self.queue.cancel(parts[1])
        except ConfigurationError as exc:
            self._error(404, "NotFound", str(exc))
            return
        self._send_json(202, job.as_dict())

    # -- bodies --------------------------------------------------------------

    def _send_result(self, job: Job) -> None:
        if job.state == JobState.DONE:
            self._send_json(200, result_payload(job))
        elif job.state == JobState.FAILED:
            self._send_json(500, {"id": job.id, "state": job.state,
                                  "error": job.error})
        elif job.state == JobState.CANCELLED:
            self._send_json(410, {"id": job.id, "state": job.state,
                                  "error": job.error})
        else:
            self._error(
                409, "NotFinished",
                f"job {job.id} is {job.state}; stream "
                f"/jobs/{job.id}/events or poll until it is terminal",
            )

    def _stream_events(self, job: Job, since: int) -> None:
        """Tail the job's event log as an SSE stream until it closes.

        The log closes at the job's terminal transition, so the stream
        always ends with the ``done`` event; a vanished client surfaces
        as a broken pipe and simply ends the handler thread.
        """
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        try:
            for event in job.events.stream(since=since, poll=1.0):
                frame = (
                    f"event: {event['event']}\n"
                    f"id: {event['seq']}\n"
                    f"data: {json.dumps(event)}\n\n"
                )
                self.wfile.write(frame.encode())
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError, OSError):
            return


class _Server(ThreadingHTTPServer):
    daemon_threads = True  # SSE handler threads must not block exit
    queue: RunQueue
    verbose: bool


class ServiceServer:
    """One HTTP listener bound to one run queue.

    ``port=0`` binds an ephemeral port (tests read ``.port`` back).  When
    the server built its own queue it also owns its shutdown; a queue
    passed in stays the caller's to tear down.  Context-manager use gives
    start/stop; ``serve_forever()`` is the CLI's foreground mode.
    """

    def __init__(self, queue: RunQueue | None = None,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False, **queue_kwargs: Any):
        self.queue = queue if queue is not None else RunQueue(**queue_kwargs)
        self._owns_queue = queue is None
        self.httpd = _Server((host, port), ServiceHandler)
        self.httpd.queue = self.queue
        self.httpd.verbose = verbose
        self._thread: threading.Thread | None = None

    @property
    def host(self) -> str:
        return self.httpd.server_address[0]

    @property
    def port(self) -> int:
        return self.httpd.server_address[1]

    def url(self, path: str = "/") -> str:
        return f"http://{self.host}:{self.port}{path}"

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-service",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, cancel_running: bool = True) -> None:
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._owns_queue:
            self.queue.shutdown(cancel_running=cancel_running)

    def serve_forever(self) -> None:
        """Foreground mode (``python -m repro serve``); Ctrl-C returns."""
        try:
            self.httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.httpd.server_close()
            if self._owns_queue:
                self.queue.shutdown(cancel_running=True)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()
