"""Table 1: the evaluation workloads (reads and alignment-task counts).

Regenerates the paper's Table 1 rows (exact totals of the statistical
presets) and appends the reduced sequence-level datasets this repository
actually synthesizes and runs through the full pipeline offline.
"""

from conftest import emit, run_once

from repro.perf.figures import table1_workloads


def test_table1_workloads(benchmark):
    fig = run_once(benchmark, table1_workloads)
    emit("table1", fig)
    rows = {r[0]: r for r in fig["rows"]}
    # Table-1-exact totals
    assert rows["ecoli30x"][2:] == [16_890, 2_270_260]
    assert rows["ecoli100x"][2:] == [91_394, 24_869_171]
    assert rows["human_ccs"][2:] == [1_148_839, 87_621_409]
    # the synthesized reduced datasets produce nonzero pipelines
    for name in ("ecoli30x_tiny (synthesized)",):
        assert rows[name][2] > 0 and rows[name][3] > 0
