"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``      simulate one engine on a workload and print the breakdown
``compare``  run the macro engines on identical inputs (the paper's method)
``sweep``    strong-scaling sweep over node counts
``plan``     rank engine × knob candidates by predicted wall (no runs)
``datasets`` list the available workload presets
``engines``  list the registered engines

The ``--approach`` choices (``--engine`` is an alias) come straight from
the engine registry — registering a new engine makes it runnable here with
no CLI edits (docs/ARCHITECTURE.md).  ``--engine auto`` consults the
cost-model planner and runs only the predicted winner (docs/PLANNER.md);
``compare``/``sweep`` accept ``--parallel [N]`` to fan independent grid
points over a process pool, bit-identical to the serial path.

Examples
--------
::

    python -m repro datasets
    python -m repro run --workload ecoli100x --nodes 16 --approach async
    python -m repro run --workload ecoli100x --nodes 16 --engine auto
    python -m repro plan --workload ecoli100x --nodes 16
    python -m repro compare --workload human_ccs --nodes 8
    python -m repro sweep --workload ecoli100x --nodes 1 4 16 64 --parallel
"""

from __future__ import annotations

import argparse
import math
import sys

from repro.core.api import (
    compare_engines,
    get_workload,
    make_machine,
    run_alignment,
    scaling_sweep,
)
from repro.engines.base import EngineConfig
from repro.engines.registry import available_engines, get_engine
from repro.engines.report import churn_summary
from repro.runtime.executor import BACKENDS
from repro.errors import ConfigurationError, ExecutorError, FaultError
from repro.faults import parse_fault_spec
from repro.genome.datasets import DATASETS
from repro.obs import MetricsRegistry, Tracer, check_breakdown, check_trace
from repro.perf.format import render_breakdown_rows, render_table
from repro.utils.units import fmt_bytes, fmt_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulate the paper's BSP/Async many-to-many alignment "
                    "engines on a modeled Cori KNL.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", default="ecoli100x",
                       choices=sorted(DATASETS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shard-tasks", type=int, default=0, metavar="N",
                       help="generate/aggregate the task table in N-task "
                            "shards instead of one array (out-of-core "
                            "paper-scale mode; 0 = materialized). Pure "
                            "memory knob: results are bit-identical for "
                            "any value")
        p.add_argument("--max-resident-shards", type=int, default=4,
                       metavar="M",
                       help="with --shard-tasks: at most M shards resident "
                            "in memory; the rest spill to disk (or shared "
                            "memory via REPRO_SHARD_SPILL_DIR=/dev/shm)")
        p.add_argument("--cores-per-node", type=int, default=64)
        p.add_argument("--comm-only", action="store_true",
                       help="skip alignment computation (paper 4.3 mode)")
        p.add_argument("--trace", metavar="PATH", default=None,
                       help="write a Chrome trace-format JSON of the run(s) "
                            "(open in chrome://tracing or Perfetto)")
        p.add_argument("--metrics", action="store_true",
                       help="print per-rank counter rollups after the run")

    def fault_args(p):
        p.add_argument("--faults", metavar="SPEC", default=None,
                       help="inject faults, e.g. "
                            "'drop=0.05,straggle=2@r1:0:1,kill=r3@0.5' "
                            "(see docs/RESILIENCE.md for the grammar)")
        p.add_argument("--fault-seed", type=int, default=0,
                       help="seed for the deterministic fault realization")

    p_run = sub.add_parser("run", help="run one engine")
    common(p_run)
    fault_args(p_run)
    p_run.add_argument("--nodes", type=int, default=4)
    p_run.add_argument("--approach", "--engine", dest="approach",
                       default="bsp",
                       choices=list(available_engines()) + ["auto"],
                       help="registered engine to run (--engine is an "
                            "alias); 'auto' runs the planner's top "
                            "prediction (docs/PLANNER.md)")
    p_run.add_argument("--kernel", choices=("model", "real"), default="model",
                       help="micro engines only: 'real' runs the X-drop "
                            "alignment kernel; 'model' charges modeled costs")
    p_run.add_argument("--backend", choices=list(BACKENDS), default="serial",
                       help="compute backend for --kernel real task batches: "
                            "serial inline, process pool, or auto "
                            "(measures both, keeps the winner; "
                            "docs/PARALLEL.md)")
    p_run.add_argument("--workers", type=int, default=1,
                       help="worker-process count for --backend process")
    p_run.add_argument("--chunk-tasks", type=int, default=0,
                       help="tasks per dispatched chunk for --backend "
                            "process (0 = split batches evenly)")

    def parallel_arg(p):
        p.add_argument("--parallel", nargs="?", const=True, default=False,
                       type=int, metavar="N",
                       help="fan independent grid points over a process "
                            "pool (N workers; bare flag = one per core); "
                            "bit-identical to the serial path, but "
                            "--trace/--metrics cannot attach")

    p_cmp = sub.add_parser("compare",
                           help="run the macro engines side by side")
    common(p_cmp)
    fault_args(p_cmp)
    p_cmp.add_argument("--nodes", type=int, default=4)
    parallel_arg(p_cmp)

    p_sweep = sub.add_parser("sweep", help="strong-scaling sweep")
    common(p_sweep)
    fault_args(p_sweep)
    p_sweep.add_argument("--nodes", type=int, nargs="+",
                         default=[1, 4, 16, 64])
    parallel_arg(p_sweep)

    p_plan = sub.add_parser(
        "plan",
        help="rank engine x knob candidates by predicted wall clock "
             "without running anything (docs/PLANNER.md)",
    )
    common(p_plan)
    p_plan.add_argument("--nodes", type=int, default=4)
    p_plan.add_argument("--top", type=int, default=0, metavar="K",
                        help="print only the best K plans (0 = all)")
    p_plan.add_argument("--tiny", action="store_true",
                        help="shortcut for the smoke grid: "
                             "--workload micro --nodes 2 "
                             "--cores-per-node 8")

    p_faults = sub.add_parser("faults", help="fault-spec utilities")
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_val = faults_sub.add_parser(
        "validate",
        help="parse a fault spec and pretty-print the realized plan",
    )
    p_val.add_argument("spec",
                       help="fault spec string, e.g. "
                            "'evict=r1@5:grace=2,join=r3@10,redistribute'")

    p_serve = sub.add_parser(
        "serve",
        help="run the alignment-as-a-service HTTP API (docs/SERVICE.md)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="listen port (0 = ephemeral, printed at start)")
    p_serve.add_argument("--slots", type=int, default=2,
                         help="jobs allowed to run concurrently")
    p_serve.add_argument("--backlog", type=int, default=64,
                         help="queued-job bound; submissions beyond it are "
                              "rejected with HTTP 429")
    p_serve.add_argument("--total-workers", type=int, default=None,
                         help="summed process-pool workers admitted jobs may "
                              "hold (default: the machine's core count)")
    p_serve.add_argument("--memory-mb", type=int, default=2048,
                         help="admission memory ledger capacity (MiB)")
    p_serve.add_argument("--cache-entries", type=int, default=64,
                         help="result-cache size (whole RunResults)")
    p_serve.add_argument("--phase-stride", type=int, default=1,
                         help="forward every Nth phase event over SSE "
                              "(1 = all)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every HTTP request to stderr")

    sub.add_parser("datasets", help="list workload presets")
    sub.add_parser("engines", help="list registered engines")
    return parser


def _config(args) -> EngineConfig:
    cfg = EngineConfig(
        seed=args.seed,
        backend=getattr(args, "backend", "serial"),
        workers=getattr(args, "workers", 1),
        chunk_tasks=getattr(args, "chunk_tasks", 0),
    )
    return cfg.comm_only() if args.comm_only else cfg


def _observability(args) -> tuple[Tracer | None, MetricsRegistry | None]:
    tracer = Tracer() if args.trace else None
    metrics = None
    # counter registries are sized to one rank count, so --metrics only
    # applies to commands with a single --nodes value (run / compare)
    if args.metrics:
        if isinstance(getattr(args, "nodes", None), int):
            machine = make_machine(args.nodes, args.cores_per_node)
            metrics = MetricsRegistry(machine.total_ranks)
        else:
            print("metrics: skipped (rank count varies across a sweep; "
                  "use `run` or `compare` for counter rollups)")
    return tracer, metrics


def _finish_observability(args, tracer: Tracer | None,
                          metrics: MetricsRegistry | None,
                          results) -> int:
    """Write the trace, print conservation status and counter rollups.

    Returns a process exit code: nonzero when the trace file could not
    be written (the simulation results above it are still valid).
    """
    rc = 0
    if tracer is not None:
        for res in results:
            report = check_breakdown(res.breakdown)
            print(report.describe())
        # one check per traced run (one Chrome pid each)
        for pid in range(tracer.current_pid + 1):
            wall = results[pid].wall_time if pid < len(results) else None
            if wall is not None:
                print(check_trace(tracer, wall, pid=pid).describe())
        try:
            tracer.write_chrome(args.trace)
        except OSError as exc:
            print(f"error: cannot write trace {args.trace}: {exc}",
                  file=sys.stderr)
            rc = 1
        else:
            print(f"trace: {len(tracer.events)} events -> {args.trace}")
    if metrics is not None and metrics.names():
        print(render_table(
            "Per-rank counters",
            ["counter", "min", "avg", "max", "sum"],
            metrics.rows(),
        ))
    return rc


def _compare_verdict(bsp: float, asy: float) -> str:
    """Human verdict on the two wall times.

    Guards the degenerate cases reachable with ``--comm-only`` on tiny
    workloads: zero wall times (no division) and ties (no
    "+0.0% slower" nonsense).
    """
    if bsp <= 0 or asy <= 0:
        return (f"wall times too small to compare "
                f"(bsp={fmt_time(bsp)}, async={fmt_time(asy)})")
    if math.isclose(bsp, asy, rel_tol=1e-9):
        return f"engines tie (both {fmt_time(bsp)})"
    if asy < bsp:
        return f"async is {100 * (bsp / asy - 1):.1f}% faster"
    return f"async is {100 * (asy / bsp - 1):.1f}% slower"


def _print_result(name: str, res) -> None:
    f = res.breakdown.fractions()
    print(f"{name:6s} wall {fmt_time(res.wall_time):>10}  "
          f"align {100 * f['compute_align']:5.1f}%  "
          f"overhead {100 * f['compute_overhead']:4.1f}%  "
          f"comm {100 * f['comm']:5.1f}%  "
          f"sync {100 * f['sync']:5.1f}%  "
          f"rounds={res.exchange_rounds}  "
          f"mem/core {fmt_bytes(res.max_memory_per_rank)}")


def _fault_detail_bits(details: dict) -> list[str]:
    """Fault-path numbers worth a column in the degradation report."""
    bits = []
    for key, label in (("rpc_retries", "rpc_retries"),
                       ("exchange_retries", "xchg_retries"),
                       ("tasks_redistributed", "tasks_moved"),
                       ("ranks_lost", "ranks_lost")):
        val = details.get(key)
        if val:
            if key == "tasks_redistributed":
                bits.append(f"{label}={val:.0f}")
            elif key == "ranks_lost":
                bits.append(f"{label}={','.join(str(r) for r in val)}")
            else:
                bits.append(f"{label}={val}")
    return bits


def _degradation_section(clean: dict, faulty: dict, plan) -> None:
    """How much wall clock each engine lost to the injected faults."""
    print(f"Degradation under faults ({plan.describe()}):")
    for name in clean:
        c = clean[name].wall_time
        f = faulty[name].wall_time
        inflation = (f"{100 * (f / c - 1):+.1f}%" if c > 0 else "n/a")
        d = faulty[name].details
        bits = [f"faults={d.get('faults_injected', 0)}"]
        bits += _fault_detail_bits(d)
        print(f"  {name:6s} wall {fmt_time(c):>10} -> {fmt_time(f):>10}  "
              f"({inflation})  " + "  ".join(bits))
        summary = churn_summary(d)
        if summary:
            print(f"         churn: {summary}")


def _print_fault_plan(plan) -> None:
    """Pretty-print one parsed fault plan: clauses, policy, timeline."""
    print(f"plan: {plan.describe() or '(no-op: no fault clauses)'}")
    probs = [
        f"{label}={val:g}"
        for label, val in (("drop", plan.drop_prob),
                           ("delay", plan.delay_prob),
                           ("dup", plan.dup_prob),
                           ("xchg_drop", plan.exchange_drop_prob))
        if val
    ]
    if plan.delay_prob:
        probs.append(f"delay_seconds={plan.delay_seconds:g}")
    if probs:
        print("message faults: " + "  ".join(probs))
    policy = [f"redistribute={'on' if plan.redistribute else 'off'}"]
    if plan.message_faults_possible:
        timeout = ("auto" if plan.rpc_timeout is None
                   else f"{plan.rpc_timeout:g}s")
        policy.append(f"rpc_timeout={timeout}")
        policy.append(f"rpc_max_retries={plan.rpc_max_retries}")
    print("policy: " + "  ".join(policy))
    for w in plan.links:
        print(f"  [{w.start:g}s .. {w.end:g}s)  link degradation "
              f"bandwidth x{w.bandwidth_factor:g} "
              f"latency x{w.latency_factor:g}")
    for w in plan.stragglers:
        print(f"  [{w.start:g}s .. {w.end:g}s)  rank {w.rank} straggles "
              f"x{w.factor:g}")
    events = plan.schedule.membership_events()
    if events:
        print("membership timeline:")
        for ev in events:
            if ev.kind == "join":
                what = f"rank {ev.rank} joins"
            elif ev.kind == "evict_notice":
                what = (f"rank {ev.rank} receives eviction notice "
                        f"(grace {ev.grace:g}s: checkpoint + hand off)")
            elif ev.kind == "evict_depart":
                what = f"rank {ev.rank} departs (eviction honored)"
            else:
                what = f"rank {ev.rank} killed (abrupt)"
            print(f"  t={ev.time:<10g} {what}")
    if plan.has_churn:
        print("churn: runs rebalance work across membership changes; "
              "see docs/RESILIENCE.md")


def _cmd_serve(args) -> int:
    # imported lazily: the service layer sits above the CLI's usual
    # dependencies and only loads when asked for
    from repro.service import ResultCache, RunQueue, ServiceServer

    try:
        queue = RunQueue(
            slots=args.slots,
            backlog=args.backlog,
            total_workers=args.total_workers,
            memory_bytes=float(args.memory_mb) * 1024 ** 2,
            cache=ResultCache(entries=args.cache_entries),
            phase_stride=args.phase_stride,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        server = ServiceServer(queue=queue, host=args.host, port=args.port,
                               verbose=args.verbose)
    except OSError as exc:
        queue.shutdown()
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    print(f"repro service listening on http://{server.host}:{server.port} "
          f"({args.slots} slots, backlog {args.backlog}, "
          f"cache {args.cache_entries} entries); Ctrl-C to stop",
          flush=True)
    try:
        server.serve_forever()
    finally:
        queue.shutdown(cancel_running=True)
    print("service stopped; queue drained")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "serve":
        return _cmd_serve(args)

    if args.command == "plan" and args.tiny:
        # the smoke grid: small enough for CI, big enough to rank
        args.workload = "micro"
        args.nodes = 2
        args.cores_per_node = 8

    if args.command == "faults":
        try:
            plan = parse_fault_spec(args.spec)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _print_fault_plan(plan)
        return 0

    fault_plan = None
    if getattr(args, "faults", None):
        try:
            fault_plan = parse_fault_spec(args.faults)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    if args.command == "engines":
        rows = [
            [name, get_engine(name).kind, get_engine(name).description]
            for name in available_engines()
        ]
        print(render_table("Registered engines",
                           ["name", "kind", "description"], rows))
        return 0

    if args.command == "datasets":
        rows = [
            [name, spec.species,
             spec.n_reads or "synthesized", spec.n_tasks or "synthesized",
             "sequence-level" if spec.sequence_level else "statistical"]
            for name, spec in sorted(DATASETS.items())
        ]
        print(render_table("Workload presets",
                           ["name", "species", "reads", "tasks", "kind"],
                           rows))
        return 0

    try:
        workload = get_workload(args.workload, seed=args.seed,
                                shard_tasks=args.shard_tasks,
                                max_resident_shards=args.max_resident_shards)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    sharded = (f" ({args.shard_tasks:,}-task shards, "
               f"<= {args.max_resident_shards} resident)"
               if args.shard_tasks else "")
    print(f"{args.workload}: {workload.n_reads:,} reads, "
          f"{workload.n_tasks:,} tasks{sharded}")

    if args.command == "plan":
        from repro.perf.planner import plan as plan_grid

        try:
            points = plan_grid(workload, nodes=args.nodes,
                               cores_per_node=args.cores_per_node,
                               config=_config(args))
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        shown = points[:args.top] if args.top > 0 else points
        rows = [
            [i, p.engine, p.describe_knobs(),
             fmt_time(p.predicted_wall) if p.feasible else "-",
             fmt_bytes(p.predicted_memory) if p.feasible else "-",
             p.predicted_rounds if p.feasible else "-",
             "yes" if p.feasible else f"no ({p.reason})"]
            for i, p in enumerate(shown, 1)
        ]
        print(render_table(
            f"Ranked plans: {args.workload} @ {args.nodes} nodes "
            f"x {args.cores_per_node} cores",
            ["rank", "engine", "knobs", "pred_wall", "pred_mem",
             "rounds", "feasible"],
            rows,
        ))
        top = next((p for p in points if p.feasible), None)
        if top is not None:
            print(f"winner: {top.engine} ({top.describe_knobs()}) "
                  f"predicted {fmt_time(top.predicted_wall)} — execute with "
                  f"`repro run --workload {args.workload} "
                  f"--nodes {args.nodes} --engine auto`")
        else:
            print("no feasible analytic plan; `--engine auto` will fall "
                  "back to measuring every macro engine")
        return 0

    if args.command == "run":
        tracer, metrics = _observability(args)
        try:
            if args.approach == "auto":
                if (args.kernel != "model" or args.backend != "serial"
                        or args.workers != 1 or args.chunk_tasks != 0):
                    raise ConfigurationError(
                        "--kernel/--backend/--workers/--chunk-tasks apply "
                        "to micro engines only; --engine auto plans over "
                        "the macro engines (docs/PLANNER.md)"
                    )
            else:
                info = get_engine(args.approach)
                if not info.is_micro and (
                        args.kernel != "model" or args.backend != "serial"
                        or args.workers != 1 or args.chunk_tasks != 0):
                    raise ConfigurationError(
                        "--kernel/--backend/--workers/--chunk-tasks apply "
                        f"to micro engines only; {args.approach!r} is a "
                        f"{info.kind} engine (its analytic model never "
                        "invokes the kernel)"
                    )
            res = run_alignment(workload, args.nodes, args.approach,
                                config=_config(args),
                                cores_per_node=args.cores_per_node,
                                tracer=tracer, metrics=metrics,
                                fault_plan=fault_plan,
                                fault_seed=args.fault_seed,
                                kernel=args.kernel)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (FaultError, ExecutorError) as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        plan_info = res.details.get("plan")
        label = (plan_info["engine"] if args.approach == "auto"
                 else args.approach)
        _print_result(label, res)
        if plan_info is not None:
            if plan_info["mode"] == "predicted":
                knobs = ", ".join(f"{k}={v}" for k, v
                                  in plan_info["knobs"].items()) or "-"
                print(f"plan: predicted {plan_info['engine']} ({knobs}) at "
                      f"{fmt_time(plan_info['predicted_wall'])}; actual "
                      f"{fmt_time(plan_info['actual_wall'])} "
                      f"({100 * plan_info['prediction_error']:+.3f}% error "
                      f"over {plan_info['grid_points']} grid points)")
            else:
                walls = ", ".join(
                    f"{n}={fmt_time(w)}"
                    for n, w in plan_info["measured_walls"].items())
                print(f"plan: no feasible analytic plan; measured every "
                      f"macro engine ({walls}) and kept "
                      f"{plan_info['engine']}")
        if fault_plan is not None:
            bits = [f"faults={res.details.get('faults_injected', 0)}"]
            bits += _fault_detail_bits(res.details)
            print(f"fault report ({fault_plan.describe()}): "
                  + "  ".join(bits))
            summary = churn_summary(res.details)
            if summary:
                print(f"churn report: {summary}")
        return _finish_observability(args, tracer, metrics, [res])

    if args.command == "compare":
        tracer, metrics = _observability(args)
        try:
            results = compare_engines(workload, args.nodes,
                                      config=_config(args),
                                      cores_per_node=args.cores_per_node,
                                      tracer=tracer, metrics=metrics,
                                      fault_plan=fault_plan,
                                      fault_seed=args.fault_seed,
                                      parallel=args.parallel)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (FaultError, ExecutorError) as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        for name, res in results.items():
            _print_result(name, res)
        print(_compare_verdict(results["bsp"].wall_time,
                               results["async"].wall_time))
        if fault_plan is not None:
            # fault-free reference runs (same workload/config, no injector):
            # the spread between the two columns is the degradation story
            clean = compare_engines(workload, args.nodes,
                                    config=_config(args),
                                    cores_per_node=args.cores_per_node)
            _degradation_section(clean, results, fault_plan)
        return _finish_observability(args, tracer, metrics,
                                     list(results.values()))

    if args.command == "sweep":
        tracer = Tracer() if args.trace else None
        sweep_metrics: dict | None = {} if args.metrics else None
        try:
            results = scaling_sweep(workload, args.nodes,
                                    config=_config(args),
                                    cores_per_node=args.cores_per_node,
                                    tracer=tracer, metrics=sweep_metrics,
                                    fault_plan=fault_plan,
                                    fault_seed=args.fault_seed,
                                    parallel=args.parallel)
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except (FaultError, ExecutorError) as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 1
        print(render_table(
            f"Strong scaling {args.workload}",
            ["engine", "nodes", "wall_s", "comm%", "sync%", "align%",
             "overhead%", "rounds"],
            render_breakdown_rows(results),
        ))
        if sweep_metrics:
            # one registry per node count (rank counts differ across sizes)
            for nodes in args.nodes:
                reg = sweep_metrics.get(nodes)
                if reg is not None and reg.names():
                    print(render_table(
                        f"Per-rank counters ({nodes} nodes)",
                        ["counter", "min", "avg", "max", "sum"],
                        reg.rows(),
                    ))
        if tracer is not None:
            ordered = [results[a][n] for n in args.nodes for a in results]
            return _finish_observability(args, tracer, None, ordered)
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
