"""Time-windowed network/rank degradation schedules and cluster membership.

Real interconnects do not fail cleanly: links lose bandwidth for a while
(congestion, adaptive-routing storms, a flapping optical lane), individual
ranks straggle (thermal throttling, OS interference bursts), and at the
paper's scale (512 Cori nodes, multi-hour runs) a rank occasionally dies
outright.  Production clusters also change *membership* mid-run: spot
semantics evict ranks with a warning window, and elastic allocations add
ranks to a job already underway.  This module holds the *machine-side*
description of those anomalies — when a window is open, how much it dilates
time, and who is a member when — while :mod:`repro.faults` decides *which*
anomalies a given run experiences.

All factors are multiplicative time dilations (``>= 1`` slows things down):
``LinkWindow`` scales transfer time (inverse bandwidth) and message latency
inside ``[start, end)``; ``StraggleWindow`` dilates one rank's busy time
inside its window; ``RankKill`` removes a rank permanently at ``time``.
Windows may overlap — overlapping dilations multiply (the documented
precedence), the worst case on a real dragonfly where congestion and lane
failure compound.

Membership events change who is alive:

* ``RankJoin`` — the rank is *absent from the start* and joins at ``time``;
* ``RankEviction`` — the rank receives an eviction notice at ``time``,
  keeps working through a ``grace`` window (checkpointing its unfinished
  work for handoff), and departs at ``time + grace``.  ``grace=0``
  degenerates to :class:`RankKill` at the notice time: nothing can be
  checkpointed, the work is simply lost to the survivors to redo.

The queryable membership timeline (:meth:`DegradationSchedule.alive_set`,
:meth:`alive_mask`, :meth:`membership_events`, ...) is what the engines'
churn layer (:mod:`repro.engines.rebalance`) consumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "LinkWindow",
    "StraggleWindow",
    "RankKill",
    "RankJoin",
    "RankEviction",
    "MembershipEvent",
    "DegradationSchedule",
]


def _check_window(start: float, end: float, what: str) -> None:
    if start < 0 or end <= start:
        raise ConfigurationError(
            f"{what} window must satisfy 0 <= start < end "
            f"(got [{start}, {end}))"
        )


@dataclass(frozen=True)
class LinkWindow:
    """Bandwidth/latency degradation of the whole fabric over a window.

    ``bandwidth_factor`` is the fraction of nominal bandwidth available in
    ``[start, end)`` (0.5 = half speed, i.e. transfers take 2x as long);
    ``latency_factor`` multiplies per-message latency in the same window.
    """

    start: float
    end: float
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "link degradation")
        if not 0 < self.bandwidth_factor <= 1:
            raise ConfigurationError(
                f"bandwidth_factor must be in (0, 1] (got {self.bandwidth_factor})"
            )
        if self.latency_factor < 1:
            raise ConfigurationError(
                f"latency_factor must be >= 1 (got {self.latency_factor})"
            )


@dataclass(frozen=True)
class StraggleWindow:
    """One rank's busy time dilated by ``factor`` inside ``[start, end)``."""

    rank: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "straggler")
        if self.rank < 0:
            raise ConfigurationError(f"straggler rank must be >= 0 (got {self.rank})")
        if self.factor < 1:
            raise ConfigurationError(
                f"straggle factor must be >= 1 (got {self.factor})"
            )


@dataclass(frozen=True)
class RankKill:
    """Rank ``rank`` dies permanently at simulated ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"killed rank must be >= 0 (got {self.rank})")
        if self.time < 0:
            raise ConfigurationError(f"kill time must be >= 0 (got {self.time})")


@dataclass(frozen=True)
class RankJoin:
    """Rank ``rank`` is absent from the start and joins at simulated ``time``.

    A join at ``time=0`` is rejected: a rank present from the beginning is
    just a regular member, not a join — spelling it as one would silently
    change nothing.
    """

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"joining rank must be >= 0 (got {self.rank})")
        if self.time <= 0:
            raise ConfigurationError(
                f"join time must be > 0 (got {self.time}); a rank joining "
                f"at t=0 is an ordinary initial member, not a join"
            )


@dataclass(frozen=True)
class RankEviction:
    """Rank ``rank`` is notified at ``time`` and departs at ``time + grace``.

    During the grace window the rank keeps working and checkpoints its
    unfinished task ranges for handoff (spot-instance semantics).  A
    ``grace`` of 0 degenerates to :class:`RankKill` at ``time``: no
    checkpoint can be written, so survivors redo the lost work instead of
    receiving a migration.
    """

    rank: int
    time: float
    grace: float = 0.0

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"evicted rank must be >= 0 (got {self.rank})")
        if self.time < 0:
            raise ConfigurationError(
                f"eviction time must be >= 0 (got {self.time})"
            )
        if self.grace < 0:
            raise ConfigurationError(
                f"eviction grace must be >= 0 (got {self.grace})"
            )

    @property
    def departure(self) -> float:
        """When the evicted rank actually leaves: notice + grace."""
        return self.time + self.grace


@dataclass(frozen=True)
class MembershipEvent:
    """One change (or announced change) in the alive set.

    ``kind`` is ``"join"``, ``"evict_notice"``, ``"evict_depart"`` or
    ``"kill"``.  Notices do not change membership by themselves; they mark
    the start of a grace window.
    """

    time: float
    kind: str
    rank: int
    #: grace seconds for eviction events, 0.0 otherwise
    grace: float = 0.0


@dataclass(frozen=True)
class DegradationSchedule:
    """Queryable view over degradation windows, kills, and membership churn."""

    links: tuple[LinkWindow, ...] = ()
    stragglers: tuple[StraggleWindow, ...] = ()
    kills: tuple[RankKill, ...] = ()
    joins: tuple[RankJoin, ...] = ()
    evictions: tuple[RankEviction, ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for kill in self.kills:
            if kill.rank in seen:
                raise ConfigurationError(
                    f"rank {kill.rank} is killed more than once"
                )
            seen.add(kill.rank)
        evicted: set[int] = set()
        for ev in self.evictions:
            if ev.rank in evicted:
                raise ConfigurationError(
                    f"rank {ev.rank} is evicted more than once"
                )
            evicted.add(ev.rank)
        # a rank cannot be both killed and evicted: the eviction already
        # removes it, and a kill landing during (or after) its grace window
        # has no defined meaning in this model — reject loudly instead of
        # picking a silent precedence
        both = seen & evicted
        if both:
            r = min(both)
            raise ConfigurationError(
                f"rank {r} is both evicted and killed; a rank can leave "
                f"only once — drop one of the clauses (use kill for an "
                f"unannounced death, evict for a graced departure)"
            )
        joined: set[int] = set()
        for j in self.joins:
            if j.rank in joined:
                raise ConfigurationError(
                    f"rank {j.rank} joins more than once"
                )
            joined.add(j.rank)
        # a joining rank may later be killed or evicted (a spot instance
        # that arrives and is later reclaimed), but only strictly after it
        # joined — dying before arriving is a contradiction
        for kill in self.kills:
            join = self._join_of(kill.rank)
            if join is not None and kill.time <= join.time:
                raise ConfigurationError(
                    f"rank {kill.rank} is killed at t={kill.time:g} but "
                    f"only joins at t={join.time:g}; a rank cannot die "
                    f"before it arrives"
                )
        for ev in self.evictions:
            join = self._join_of(ev.rank)
            if join is not None and ev.time <= join.time:
                raise ConfigurationError(
                    f"rank {ev.rank} is evicted at t={ev.time:g} but "
                    f"only joins at t={join.time:g}; a rank cannot be "
                    f"evicted before it arrives"
                )

    def _join_of(self, rank: int) -> RankJoin | None:
        for j in self.joins:
            if j.rank == rank:
                return j
        return None

    # -- link state ---------------------------------------------------------

    def link_dilation(self, t: float) -> float:
        """Instantaneous transfer-time multiplier at ``t`` (>= 1)."""
        dil = 1.0
        for w in self.links:
            if w.start <= t < w.end:
                dil /= w.bandwidth_factor
        return dil

    def latency_factor(self, t: float) -> float:
        """Instantaneous message-latency multiplier at ``t`` (>= 1)."""
        f = 1.0
        for w in self.links:
            if w.start <= t < w.end:
                f *= w.latency_factor
        return f

    def mean_link_dilation(self, t0: float, t1: float) -> float:
        """Average transfer-time multiplier over ``[t0, t1]``.

        Used by the macro engines, which charge whole communication phases
        analytically rather than event by event.  Computed exactly by
        splitting the interval at window boundaries.
        """
        if t1 <= t0:
            return self.link_dilation(t0)
        cuts = {t0, t1}
        for w in self.links:
            if w.start < t1 and w.end > t0:
                cuts.add(max(t0, w.start))
                cuts.add(min(t1, w.end))
        points = sorted(cuts)
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += self.link_dilation(0.5 * (a + b)) * (b - a)
        return total / (t1 - t0)

    # -- rank state ---------------------------------------------------------

    def straggle_factor(self, rank: int, t: float) -> float:
        """Instantaneous busy-time multiplier for ``rank`` at ``t``."""
        f = 1.0
        for w in self.stragglers:
            if w.rank == rank and w.start <= t < w.end:
                f *= w.factor
        return f

    def mean_straggle_factor(self, rank: int, t0: float, t1: float) -> float:
        """Average busy-time multiplier for ``rank`` over ``[t0, t1]``."""
        if t1 <= t0:
            return self.straggle_factor(rank, t0)
        cuts = {t0, t1}
        for w in self.stragglers:
            if w.rank == rank and w.start < t1 and w.end > t0:
                cuts.add(max(t0, w.start))
                cuts.add(min(t1, w.end))
        points = sorted(cuts)
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += self.straggle_factor(rank, 0.5 * (a + b)) * (b - a)
        return total / (t1 - t0)

    def death_time(self, rank: int) -> float | None:
        """When ``rank`` dies, or ``None`` if it never does."""
        for kill in self.kills:
            if kill.rank == rank:
                return kill.time
        return None

    def dead(self, rank: int, t: float) -> bool:
        """Is ``rank`` dead at simulated time ``t``?"""
        dt = self.death_time(rank)
        return dt is not None and t >= dt

    def deaths_before(self, t: float) -> list[RankKill]:
        """All kills effective at or before ``t``, ordered by death time."""
        return sorted((k for k in self.kills if k.time <= t),
                      key=lambda k: (k.time, k.rank))

    # -- membership timeline -------------------------------------------------

    @property
    def has_churn(self) -> bool:
        """True when membership changes beyond plain kills are scheduled."""
        return bool(self.joins) or bool(self.evictions)

    def join_time(self, rank: int) -> float | None:
        """When ``rank`` joins, or ``None`` if present from the start."""
        j = self._join_of(rank)
        return None if j is None else j.time

    def departure_time(self, rank: int) -> float | None:
        """When ``rank`` leaves for good (kill time or eviction departure).

        ``None`` for ranks that stay to the end.
        """
        dt = self.death_time(rank)
        if dt is not None:
            return dt
        for ev in self.evictions:
            if ev.rank == rank:
                return ev.departure
        return None

    def eviction_of(self, rank: int) -> RankEviction | None:
        """The eviction scheduled for ``rank``, if any."""
        for ev in self.evictions:
            if ev.rank == rank:
                return ev
        return None

    def alive(self, rank: int, t: float) -> bool:
        """Is ``rank`` a member of the job at simulated time ``t``?

        A rank is alive from its join time (0 for initial members),
        inclusive, until its departure time (kill or eviction departure),
        exclusive-at-departure in the sense that at ``t == departure`` the
        rank is already gone — matching :meth:`dead` for plain kills.
        """
        jt = self.join_time(rank)
        if jt is not None and t < jt:
            return False
        dt = self.departure_time(rank)
        return dt is None or t < dt

    def alive_set(self, t: float, num_ranks: int) -> set[int]:
        """The set of member ranks at simulated time ``t``."""
        return {r for r in range(num_ranks) if self.alive(r, t)}

    def alive_mask(self, t: float, num_ranks: int):
        """Boolean numpy mask of shape ``(num_ranks,)``: alive at ``t``."""
        return np.fromiter(
            (self.alive(r, t) for r in range(num_ranks)),
            dtype=bool,
            count=num_ranks,
        )

    def membership_events(self) -> list[MembershipEvent]:
        """All membership events in deterministic (time, kind, rank) order.

        Eviction notices and departures appear as separate events; a
        ``grace=0`` eviction collapses to a single ``evict_depart`` (the
        notice would be simultaneous and carries no information).
        """
        events: list[MembershipEvent] = []
        for j in self.joins:
            events.append(MembershipEvent(j.time, "join", j.rank))
        for k in self.kills:
            events.append(MembershipEvent(k.time, "kill", k.rank))
        for ev in self.evictions:
            if ev.grace > 0:
                events.append(
                    MembershipEvent(ev.time, "evict_notice", ev.rank, ev.grace)
                )
            events.append(
                MembershipEvent(ev.departure, "evict_depart", ev.rank, ev.grace)
            )
        events.sort(key=lambda e: (e.time, e.kind, e.rank))
        return events

    def next_membership_change(self, t: float) -> float | None:
        """Earliest membership-*changing* event time strictly after ``t``.

        Notices are excluded — membership only changes at joins, kills,
        and eviction departures.
        """
        times = [
            e.time
            for e in self.membership_events()
            if e.kind != "evict_notice" and e.time > t
        ]
        return min(times) if times else None

    def last_membership_change(self) -> float:
        """Latest membership-changing event time (0.0 when there is none)."""
        times = [
            e.time
            for e in self.membership_events()
            if e.kind != "evict_notice"
        ]
        return max(times) if times else 0.0
