"""The paper's two parallelization approaches, plus their measurement.

* :class:`BSPEngine` — bulk-synchronous: aggregated irregular all-to-all
  read exchange, dynamically split into memory-limited supersteps (§3.1);
* :class:`AsyncEngine` — asynchronous: pull-based RPCs with callbacks,
  communication/computation overlap, bounded outstanding requests, and a
  split-phase barrier overlapping local-local work (§3.2).

Each engine runs at two granularities (DESIGN.md §6): **macro** — analytic
per-rank phase models over a :class:`WorkloadAssignment`, used for the
32K-core figures — and **micro** — real SPMD generator programs over the
message-level runtime in :mod:`repro.runtime`, used for validation and for
actually computing alignments on concrete workloads.
"""

from repro.engines.report import RuntimeBreakdown, RunResult, PhaseTimers
from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.bsp import BSPEngine
from repro.engines.async_ import AsyncEngine

__all__ = [
    "RuntimeBreakdown",
    "RunResult",
    "PhaseTimers",
    "EngineConfig",
    "ExecutionMode",
    "BSPEngine",
    "AsyncEngine",
]
