"""Public top-level API: build workloads, run engines, compare approaches."""

from repro.core.api import (
    get_workload,
    make_machine,
    run_alignment,
    compare_engines,
    scaling_sweep,
    clear_workload_cache,
)

__all__ = [
    "get_workload",
    "make_machine",
    "run_alignment",
    "compare_engines",
    "scaling_sweep",
    "clear_workload_cache",
]
