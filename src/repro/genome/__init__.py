"""Genomics substrate: sequences, synthetic long reads, FASTA IO, datasets.

The paper's workloads are real SRA long-read datasets; offline we substitute
a synthetic genome + long-read sampler with a PacBio-like error model (see
DESIGN.md §2).  Everything downstream (k-mer analysis, alignment, the two
parallel engines) consumes the same :class:`ReadSet` interface either way.
"""

from repro.genome.alphabet import (
    ALPHABET,
    A, C, G, T, N,
    encode,
    decode,
    complement_codes,
    reverse_complement,
    random_sequence,
)
from repro.genome.sequence import Read, ReadSet
from repro.genome.synth import (
    GenomeSimulator,
    ReadLengthModel,
    ErrorModel,
    LongReadSequencer,
    SequencingRun,
)
from repro.genome.fasta import write_fasta, read_fasta, write_fastq, read_fastq
from repro.genome.datasets import DatasetSpec, DATASETS, synthesize_dataset

__all__ = [
    "ALPHABET", "A", "C", "G", "T", "N",
    "encode", "decode", "complement_codes", "reverse_complement",
    "random_sequence",
    "Read", "ReadSet",
    "GenomeSimulator", "ReadLengthModel", "ErrorModel", "LongReadSequencer",
    "SequencingRun",
    "write_fasta", "read_fasta", "write_fastq", "read_fastq",
    "DatasetSpec", "DATASETS", "synthesize_dataset",
]
