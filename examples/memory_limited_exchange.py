#!/usr/bin/env python3
"""Memory-limited supersteps: the Figure 9/11 experiment.

The Human CCS workload's aggregated read exchange does not fit in per-node
memory below 64 nodes, so the bulk-synchronous engine must split it into
multiple dynamically-sized communication+computation rounds, while the
asynchronous engine's pull-based design keeps at most a bounded window of
reads in flight.  This example sweeps node counts and shows rounds, memory
footprints against the 1.4 GB/core budget, and the runtime cost.

Run:  python examples/memory_limited_exchange.py  [--nodes 8 16 32 64]
"""

import argparse

from repro.core import compare_engines, get_workload, make_machine
from repro.utils.units import MB, fmt_bytes, fmt_time


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, nargs="+",
                        default=[8, 16, 32, 64])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    workload = get_workload("human_ccs", seed=args.seed)
    budget = make_machine(1).app_memory_per_rank
    print(f"Human CCS: {workload.n_reads:,} reads, {workload.n_tasks:,} "
          f"tasks; per-core budget {fmt_bytes(budget)}\n")

    header = (f"{'nodes':>6} {'est/core':>10} {'rounds':>7} "
              f"{'bsp mem':>10} {'async mem':>10} {'bsp wall':>10} "
              f"{'async wall':>11}")
    print(header)
    print("-" * len(header))
    for nodes in args.nodes:
        results = compare_engines(workload, nodes)
        a = workload.assignment(nodes * 64)
        est = a.single_exchange_estimate()
        bsp, asy = results["bsp"], results["async"]
        print(f"{nodes:>6} {est / MB:>8.0f}MB {bsp.exchange_rounds:>7} "
              f"{bsp.max_memory_per_rank / MB:>8.0f}MB "
              f"{asy.max_memory_per_rank / MB:>8.0f}MB "
              f"{fmt_time(bsp.wall_time):>10} {fmt_time(asy.wall_time):>11}")

    print("\nWhen the single-exchange estimate exceeds the exchange budget, "
          "the BSP engine is forced into multiple rounds (paper Figs 9/11); "
          "the async footprint stays flat because only the outstanding-"
          "request window is ever in flight.")


if __name__ == "__main__":
    main()
