"""Structure-of-arrays helpers: group-by, offsets, segmented reductions.

These are the numpy idioms the library uses instead of Python-level loops
(see the hpc-parallel guides: vectorize, avoid copies, mind cache behaviour).
All helpers are pure functions over 1-D arrays.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = [
    "counts_to_offsets",
    "group_offsets_by_sorted_key",
    "segment_sums",
    "segment_max",
    "segment_min",
    "chunked_ranges",
    "bincount_exact",
]


def counts_to_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sum with a trailing total: ``len == len(counts)+1``.

    ``offsets[i]:offsets[i+1]`` then delimits segment ``i`` of a concatenated
    array, the standard CSR-style layout used throughout the library.
    """
    counts = np.asarray(counts)
    offsets = np.zeros(len(counts) + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def group_offsets_by_sorted_key(sorted_keys: np.ndarray, num_groups: int) -> np.ndarray:
    """Offsets of each key-group in an already-sorted key array.

    Equivalent to ``counts_to_offsets(bincount(sorted_keys, num_groups))`` but
    computed with ``searchsorted`` (O(G log N) instead of O(N)), which is
    faster when there are few groups over a huge key array.
    """
    sorted_keys = np.asarray(sorted_keys)
    bounds = np.arange(num_groups + 1, dtype=sorted_keys.dtype if sorted_keys.size else np.int64)
    return np.searchsorted(sorted_keys, bounds, side="left").astype(np.int64)


def bincount_exact(keys: np.ndarray, num_groups: int) -> np.ndarray:
    """``np.bincount`` pinned to exactly ``num_groups`` bins (int64)."""
    keys = np.asarray(keys)
    if keys.size and (keys.min() < 0 or keys.max() >= num_groups):
        raise ValueError("key out of range for bincount_exact")
    return np.bincount(keys, minlength=num_groups).astype(np.int64)


def segment_sums(values: np.ndarray, keys: np.ndarray, num_groups: int) -> np.ndarray:
    """Sum ``values`` grouped by integer ``keys`` (unsorted), as float64."""
    values = np.asarray(values, dtype=np.float64)
    keys = np.asarray(keys)
    if values.shape != keys.shape:
        raise ValueError("values and keys must have the same shape")
    out = np.zeros(num_groups, dtype=np.float64)
    np.add.at(out, keys, values)
    return out


def segment_max(values: np.ndarray, keys: np.ndarray, num_groups: int,
                initial: float = 0.0) -> np.ndarray:
    """Per-group maximum of ``values`` grouped by unsorted integer ``keys``."""
    values = np.asarray(values, dtype=np.float64)
    keys = np.asarray(keys)
    out = np.full(num_groups, initial, dtype=np.float64)
    np.maximum.at(out, keys, values)
    return out


def segment_min(values: np.ndarray, keys: np.ndarray, num_groups: int,
                initial: float = np.inf) -> np.ndarray:
    """Per-group minimum of ``values`` grouped by unsorted integer ``keys``."""
    values = np.asarray(values, dtype=np.float64)
    keys = np.asarray(keys)
    out = np.full(num_groups, initial, dtype=np.float64)
    np.minimum.at(out, keys, values)
    return out


def chunked_ranges(total: int, chunk: int) -> Iterator[tuple[int, int]]:
    """Yield ``(start, stop)`` half-open ranges covering ``[0, total)``.

    Used to stream over very large virtual arrays (e.g. the 87.6M-task Human
    CCS workload) without materializing them, keeping peak memory O(chunk).
    """
    if chunk <= 0:
        raise ValueError("chunk must be positive")
    start = 0
    while start < total:
        stop = min(start + chunk, total)
        yield start, stop
        start = stop
