"""Typed trace events — the observability vocabulary.

Every record a :class:`repro.obs.Tracer` collects is one of four immutable
event types, mirroring the Chrome trace-format phases they export to:

* :class:`PhaseEvent` — a duration on one rank's lane charged to one of the
  four breakdown categories (``ph: "X"``, a "complete" event).  Phase events
  are the atoms of the paper's stacked bars: summing a rank's phase
  durations must reproduce its per-rank breakdown exactly, which is what
  :mod:`repro.obs.conservation` checks.
* :class:`InstantEvent` — a point occurrence (rendezvous arrival, RPC
  issue/callback, superstep boundary, process lifecycle; ``ph: "i"``).
* :class:`CounterEvent` — a sampled value over time (outstanding-RPC window
  occupancy; ``ph: "C"``).
* :class:`MetaEvent` — run/lane naming metadata (``ph: "M"``).

Times are simulated seconds; the exporter converts to the microseconds
Chrome/Perfetto expect.  ``rank`` is the lane (``tid``); the sentinel
:data:`ENGINE_LANE` marks events from the discrete-event engine itself
rather than any simulated rank.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = [
    "ENGINE_LANE",
    "PhaseEvent",
    "InstantEvent",
    "CounterEvent",
    "MetaEvent",
]

#: lane id for events emitted by the simulation engine itself (no rank)
ENGINE_LANE = -1


@dataclass(frozen=True)
class PhaseEvent:
    """Time charged to a breakdown category on one rank's lane."""

    pid: int
    rank: int
    category: str
    start: float
    duration: float
    name: str = ""

    @property
    def end(self) -> float:
        return self.start + self.duration


@dataclass(frozen=True)
class InstantEvent:
    """A point occurrence on one lane (arrival, issue, callback, boundary)."""

    pid: int
    rank: int
    name: str
    time: float
    args: Mapping[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class CounterEvent:
    """A sampled counter value (rendered as a filled track in Perfetto)."""

    pid: int
    rank: int
    name: str
    time: float
    value: float


@dataclass(frozen=True)
class MetaEvent:
    """Process/thread naming metadata for the trace viewer."""

    pid: int
    rank: int | None
    name: str
