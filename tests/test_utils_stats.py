"""Tests for repro.utils.stats (the paper's min/avg/max/sum reductions)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.stats import load_imbalance, summarize
from repro.utils.units import fmt_bytes, fmt_time, GIB, MIB, HOUR, MS, US


def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0])
    assert s.min == 1.0 and s.max == 3.0
    assert s.avg == pytest.approx(2.0)
    assert s.sum == pytest.approx(6.0)
    assert s.count == 3


def test_summarize_empty():
    s = summarize([])
    assert s.count == 0 and s.sum == 0.0
    assert s.imbalance == 1.0


def test_imbalance_and_spread():
    s = summarize([1.0, 1.0, 4.0])
    assert s.imbalance == pytest.approx(2.0)
    assert s.spread == pytest.approx(3.0)
    assert load_imbalance([2.0, 2.0]) == pytest.approx(1.0)


def test_summary_scaled():
    s = summarize([1.0, 3.0]).scaled(2.0)
    assert (s.min, s.max, s.sum) == (2.0, 6.0, 8.0)


def test_summary_add_requires_same_count():
    a = summarize([1.0, 2.0])
    b = summarize([1.0, 2.0, 3.0])
    with pytest.raises(ValueError):
        _ = a + b
    c = a + summarize([10.0, 20.0])
    assert c.sum == pytest.approx(33.0)


@given(st.lists(st.floats(min_value=0.001, max_value=1e6), min_size=1, max_size=50))
def test_imbalance_at_least_one(values):
    s = summarize(values)
    assert s.imbalance >= 1.0 - 1e-9
    # np.mean can exceed max by an ulp on identical values
    assert s.min * (1 - 1e-9) <= s.avg <= s.max * (1 + 1e-9)


def test_fmt_bytes():
    assert fmt_bytes(512) == "512 B"
    assert fmt_bytes(3 * MIB) == "3.00 MiB"
    assert fmt_bytes(2 * GIB) == "2.00 GiB"
    assert fmt_bytes(-3 * MIB) == "-3.00 MiB"


def test_fmt_time():
    assert fmt_time(2 * HOUR) == "2.00 h"
    assert fmt_time(90) == "1.50 min"
    assert fmt_time(1.5) == "1.50 s"
    assert fmt_time(2 * MS) == "2.00 ms"
    assert fmt_time(3 * US) == "3.00 us"
