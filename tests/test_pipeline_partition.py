"""Tests for read partitioning and the task-ownership invariant."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import PartitionError
from repro.pipeline.partition import (
    assign_tasks_balanced,
    check_ownership_invariant,
    owners_from_boundaries,
    partition_reads_by_size,
)


def test_partition_balances_bytes():
    rng = np.random.default_rng(0)
    lengths = rng.integers(500, 20_000, 4000)
    bounds = partition_reads_by_size(lengths, 16)
    per_rank = np.array(
        [lengths[bounds[r]: bounds[r + 1]].sum() for r in range(16)]
    )
    assert per_rank.max() / per_rank.mean() < 1.05


def test_partition_covers_all_reads():
    lengths = np.array([10, 20, 30, 40, 50])
    bounds = partition_reads_by_size(lengths, 3)
    assert bounds[0] == 0 and bounds[-1] == 5
    assert np.all(np.diff(bounds) >= 0)


def test_partition_more_ranks_than_reads():
    lengths = np.array([100, 100])
    bounds = partition_reads_by_size(lengths, 8)
    assert bounds[0] == 0 and bounds[-1] == 2
    assert np.all(np.diff(bounds) >= 0)


def test_partition_single_rank():
    bounds = partition_reads_by_size(np.array([5, 5, 5]), 1)
    assert bounds.tolist() == [0, 3]


def test_partition_bad_ranks():
    with pytest.raises(PartitionError):
        partition_reads_by_size(np.array([1]), 0)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=10_000), min_size=1, max_size=500),
    st.integers(min_value=1, max_value=32),
)
def test_partition_property(lengths, ranks):
    lengths = np.array(lengths, dtype=np.int64)
    bounds = partition_reads_by_size(lengths, ranks)
    assert bounds.size == ranks + 1
    assert bounds[0] == 0 and bounds[-1] == lengths.size
    assert np.all(np.diff(bounds) >= 0)
    # byte loads within one max-read of the ideal
    ideal = lengths.sum() / ranks
    loads = np.array([lengths[bounds[r]: bounds[r + 1]].sum() for r in range(ranks)])
    assert loads.max() <= ideal + lengths.max()


def test_owners_from_boundaries():
    bounds = np.array([0, 3, 5, 9])
    owners = owners_from_boundaries(np.array([0, 2, 3, 4, 8]), bounds)
    assert owners.tolist() == [0, 0, 1, 1, 2]


def test_assign_tasks_invariant_and_balance():
    rng = np.random.default_rng(1)
    P = 8
    owner_a = rng.integers(0, P, 10_000)
    owner_b = rng.integers(0, P, 10_000)
    assigned = assign_tasks_balanced(owner_a, owner_b, P)
    check_ownership_invariant(assigned, owner_a, owner_b)
    counts = np.bincount(assigned, minlength=P)
    assert counts.max() / counts.mean() < 1.1


def test_assign_tasks_by_cost():
    rng = np.random.default_rng(2)
    P = 4
    n = 5000
    owner_a = rng.integers(0, P, n)
    owner_b = rng.integers(0, P, n)
    costs = rng.lognormal(0, 1.5, n)
    assigned = assign_tasks_balanced(owner_a, owner_b, P, costs=costs)
    check_ownership_invariant(assigned, owner_a, owner_b)
    loads = np.zeros(P)
    np.add.at(loads, assigned, costs)
    assert loads.max() / loads.mean() < 1.2


def test_assign_tasks_validation():
    with pytest.raises(PartitionError):
        assign_tasks_balanced(np.array([0]), np.array([0, 1]), 2)
    with pytest.raises(PartitionError):
        assign_tasks_balanced(np.array([0]), np.array([5]), 2)


def test_invariant_checker_catches_violation():
    with pytest.raises(PartitionError):
        check_ownership_invariant(
            np.array([2]), np.array([0]), np.array([1])
        )
    # valid case passes silently
    check_ownership_invariant(np.array([1]), np.array([0]), np.array([1]))


def test_assign_skew_to_one_owner():
    # all tasks involve rank 0: greedy must offload to the partner owners
    n = 1000
    owner_a = np.zeros(n, dtype=np.int64)
    owner_b = np.arange(n, dtype=np.int64) % 4
    assigned = assign_tasks_balanced(owner_a, owner_b, 4)
    check_ownership_invariant(assigned, owner_a, owner_b)
    counts = np.bincount(assigned, minlength=4)
    # rank 0 cannot end with everything
    assert counts[0] < 0.5 * n
