"""Tests for the synthetic genome / long-read sequencer simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.genome import alphabet
from repro.genome.synth import (
    ErrorModel,
    GenomeSimulator,
    LongReadSequencer,
    ReadLengthModel,
)
from repro.utils.rng import RngFactory


@pytest.fixture()
def rngs():
    return RngFactory(123)


def test_genome_size_and_alphabet(rngs):
    genome = GenomeSimulator(size=50_000, repeat_fraction=0.1).generate(
        rngs.stream("genome")
    )
    assert genome.size == 50_000
    assert alphabet.is_valid_codes(genome)
    assert not np.any(genome == alphabet.N)


def test_genome_repeats_raise_kmer_multiplicity(rngs):
    from repro.kmer.kmers import canonical_kmers

    flat = GenomeSimulator(size=60_000, repeat_fraction=0.0).generate(
        rngs.stream("genome", 0)
    )
    repetitive = GenomeSimulator(size=60_000, repeat_fraction=0.4).generate(
        rngs.stream("genome", 1)
    )

    def max_mult(genome):
        km, _ = canonical_kmers(genome, 17)
        _, counts = np.unique(km, return_counts=True)
        return counts.max()

    assert max_mult(repetitive) > max_mult(flat)


def test_genome_bad_size(rngs):
    with pytest.raises(ConfigurationError):
        GenomeSimulator(size=0).generate(rngs.stream("genome"))


def test_length_model_bounds(rngs):
    model = ReadLengthModel(mean_length=2000, sigma=0.5, min_len=500, max_len=4000)
    lengths = model.sample(5000, rngs.stream("read-sampler"))
    assert lengths.min() >= 500 and lengths.max() <= 4000
    # mean should be in the right ballpark despite clipping
    assert 1500 < lengths.mean() < 2600


def test_length_model_validation():
    with pytest.raises(ConfigurationError):
        ReadLengthModel(mean_length=-5)
    with pytest.raises(ConfigurationError):
        ReadLengthModel(min_len=100, max_len=50)


def test_error_model_rates(rngs):
    rng = rngs.stream("error-model")
    template = alphabet.random_sequence(200_000, rng)
    em = ErrorModel(error_rate=0.15, n_rate=0.0)
    out = em.apply(template, rng)
    # indel balance: insertions 0.4 vs deletions 0.35 of errors -> slight growth
    expected_len = 200_000 * (1 + 0.15 * (0.4 - 0.35))
    assert out.size == pytest.approx(expected_len, rel=0.02)
    # substituted+inserted bases should make sequences differ
    common = min(out.size, template.size)
    assert (out[:common] != template[:common]).mean() > 0.05


def test_error_model_zero_rate_identity(rngs):
    rng = rngs.stream("error-model")
    template = alphabet.random_sequence(1000, rng)
    em = ErrorModel(error_rate=0.0, n_rate=0.0)
    assert np.array_equal(em.apply(template, rng), template)


def test_error_model_emits_N(rngs):
    rng = rngs.stream("error-model")
    template = alphabet.random_sequence(50_000, rng)
    em = ErrorModel(error_rate=0.0, n_rate=0.01)
    out = em.apply(template, rng)
    frac_n = (out == alphabet.N).mean()
    assert 0.005 < frac_n < 0.02


def test_error_model_validation():
    with pytest.raises(ConfigurationError):
        ErrorModel(error_rate=0.1, insertion_frac=0.5, deletion_frac=0.5,
                   substitution_frac=0.5)
    with pytest.raises(ConfigurationError):
        ErrorModel(error_rate=1.5)


def test_sequencer_coverage_and_ground_truth(rngs):
    genome = GenomeSimulator(size=30_000).generate(rngs.stream("genome"))
    seq = LongReadSequencer(
        length_model=ReadLengthModel(mean_length=800, min_len=200, max_len=3000),
        error_model=ErrorModel(error_rate=0.05),
    )
    run = seq.sequence(genome, coverage=20, rng=rngs.stream("read-sampler"))
    assert run.depth_achieved == pytest.approx(20, rel=0.1)
    reads = run.reads
    assert len(reads) > 10
    # ground truth coordinates must be valid genome windows
    assert np.all(reads.origins >= 0)
    assert np.all(reads.origin_ends <= genome.size)
    assert np.all(reads.origin_ends > reads.origins)
    # both strands present
    assert set(np.unique(reads.strands)) == {-1, 1}


def test_sequencer_read_matches_genome_without_errors(rngs):
    genome = GenomeSimulator(size=10_000, repeat_fraction=0).generate(
        rngs.stream("genome")
    )
    seq = LongReadSequencer(
        length_model=ReadLengthModel(mean_length=500, min_len=100, max_len=2000),
        error_model=ErrorModel(error_rate=0.0, n_rate=0.0),
    )
    run = seq.sequence(genome, coverage=3, rng=rngs.stream("read-sampler"))
    for r in run.reads:
        template = genome[r.origin: r.origin_end]
        if r.strand < 0:
            template = alphabet.reverse_complement(template)
        assert np.array_equal(r.codes, template)


def test_sequencer_bad_coverage(rngs):
    genome = GenomeSimulator(size=1000).generate(rngs.stream("genome"))
    with pytest.raises(ConfigurationError):
        LongReadSequencer().sequence(genome, coverage=0, rng=rngs.stream("x"))
