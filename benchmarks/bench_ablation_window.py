"""Ablation: the async outstanding-request window (DESIGN.md §5).

The paper bounds in-flight RPCs per rank (§3.2) and speculates that tuning
"limits on outgoing requests" could improve latency (§4.3).  The
message-level engine exposes the trade-off directly: a window of 1
serializes round trips; a deep window pipelines them at the cost of more
in-flight memory.
"""

from conftest import emit, run_once

from repro.core.api import get_workload
from repro.engines.base import EngineConfig
from repro.engines.micro import MicroAsyncEngine
from repro.machine.config import cori_knl

WINDOWS = (1, 2, 8, 32, 128)


def sweep():
    wl = get_workload("micro", seed=2)
    machine = cori_knl(2, app_cores_per_node=8)
    rows = []
    for w in WINDOWS:
        res = MicroAsyncEngine(config=EngineConfig(async_window=w)).run(
            wl, machine
        )
        rows.append([
            w, round(res.wall_time * 1e3, 3),
            round(res.breakdown.summary("comm").avg * 1e3, 3),
            round(res.max_memory_per_rank / 1e6, 1),
        ])
    return {
        "title": "Ablation: async outstanding-request window (micro engine)",
        "columns": ["window", "wall_ms", "avg_visible_comm_ms", "max_mem_MB"],
        "rows": rows,
    }


def test_ablation_window(benchmark):
    fig = run_once(benchmark, sweep)
    emit("ablation_window", fig)
    rows = fig["rows"]
    # serialized pulls are slowest; pipelining helps monotonically-ish
    assert rows[0][1] >= rows[-1][1]
    assert rows[0][1] > rows[2][1]
