"""Sanity tests: exception hierarchy and public package exports."""

import pytest

import repro
from repro import errors


def test_exception_hierarchy():
    for exc in (errors.ConfigurationError, errors.SequenceError,
                errors.AlignmentError, errors.SimulationError,
                errors.PartitionError):
        assert issubclass(exc, errors.ReproError)
    assert issubclass(errors.DeadlockError, errors.SimulationError)
    assert issubclass(errors.MemoryLimitError, errors.SimulationError)
    assert issubclass(errors.AccountingError, errors.SimulationError)


def test_catching_family():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("x")


@pytest.mark.parametrize("module,names", [
    ("repro.genome", ["ReadSet", "LongReadSequencer", "DATASETS"]),
    ("repro.kmer", ["KmerExtractor", "BellaModel", "CandidateGenerator"]),
    ("repro.align", ["XDropExtender", "SeedExtendAligner",
                     "AlignmentCostModel"]),
    ("repro.machine", ["Engine", "MachineSpec", "cori_knl", "NetworkModel"]),
    ("repro.runtime", ["Collectives", "RpcLayer", "SpmdContext"]),
    ("repro.pipeline", ["TaskTable", "ConcreteWorkload",
                        "StatisticalWorkload"]),
    ("repro.engines", ["BSPEngine", "AsyncEngine", "EngineConfig"]),
    ("repro.core", ["get_workload", "run_alignment", "compare_engines"]),
    ("repro.obs", ["Tracer", "MetricsRegistry", "check_breakdown",
                   "check_trace", "assert_conserved"]),
    ("repro.perf", ["fig8_ecoli_scaling", "render_table"]),
])
def test_public_exports(module, names):
    import importlib

    mod = importlib.import_module(module)
    for name in names:
        assert hasattr(mod, name), f"{module} missing {name}"
        assert name in mod.__all__
