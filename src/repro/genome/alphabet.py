"""The 5-character long-read alphabet and its numpy codec.

Long-read sequencers emit ``{A, C, G, T}`` plus ``N`` for low-confidence base
calls (paper §2), so all sequence handling uses a 5-letter alphabet.  Reads
are stored as ``uint8`` code arrays (A=0, C=1, G=2, T=3, N=4): 2-bit packing
of the ACGT subset is done downstream in the k-mer extractor, where N-coded
positions are excluded from seeds exactly as real pipelines do.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SequenceError

__all__ = [
    "ALPHABET", "A", "C", "G", "T", "N",
    "encode", "decode", "complement_codes", "reverse_complement",
    "random_sequence", "is_valid_codes",
]

ALPHABET = "ACGTN"
A, C, G, T, N = range(5)

#: byte value -> code; 255 marks invalid characters.
_ENCODE_LUT = np.full(256, 255, dtype=np.uint8)
for _i, _ch in enumerate(ALPHABET):
    _ENCODE_LUT[ord(_ch)] = _i
    _ENCODE_LUT[ord(_ch.lower())] = _i

_DECODE_LUT = np.frombuffer(ALPHABET.encode("ascii"), dtype=np.uint8).copy()

#: Watson-Crick complement in code space; N complements to N.
_COMPLEMENT = np.array([T, G, C, A, N], dtype=np.uint8)


def encode(seq: str | bytes) -> np.ndarray:
    """Encode an ACGTN string (case-insensitive) to a uint8 code array."""
    if isinstance(seq, str):
        raw = seq.encode("ascii", errors="strict")
    else:
        raw = bytes(seq)
    codes = _ENCODE_LUT[np.frombuffer(raw, dtype=np.uint8)]
    if codes.size and codes.max() == 255:
        bad = chr(raw[int(np.argmax(codes == 255))])
        raise SequenceError(f"invalid sequence character {bad!r}")
    return codes


def decode(codes: np.ndarray) -> str:
    """Decode a uint8 code array back to an ACGTN string."""
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.size and codes.max() >= len(ALPHABET):
        raise SequenceError("code out of range for ACGTN alphabet")
    return _DECODE_LUT[codes].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Complement each base code (A<->T, C<->G, N->N)."""
    return _COMPLEMENT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(codes: np.ndarray) -> np.ndarray:
    """Reverse complement of a code array (the opposite-strand sequence)."""
    return complement_codes(codes)[::-1].copy()


def is_valid_codes(codes: np.ndarray) -> bool:
    """True if every element is a valid ACGTN code."""
    codes = np.asarray(codes)
    return bool(codes.size == 0 or (codes.dtype == np.uint8 and codes.max() < len(ALPHABET)))


def random_sequence(length: int, rng: np.random.Generator,
                    gc_content: float = 0.5) -> np.ndarray:
    """Draw a random ACGT code array with the given GC fraction.

    Used for synthetic genomes; ``N`` never appears in the reference genome,
    only in reads via the error model.
    """
    if not 0.0 <= gc_content <= 1.0:
        raise SequenceError(f"gc_content must be in [0,1], got {gc_content}")
    at = (1.0 - gc_content) / 2.0
    gc = gc_content / 2.0
    return rng.choice(
        np.array([A, C, G, T], dtype=np.uint8),
        size=length,
        p=[at, gc, gc, at],
    ).astype(np.uint8)
