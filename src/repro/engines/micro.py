"""Message-level (micro) SPMD implementations of both approaches.

These are genuine SPMD programs: one generator per rank, communicating
through :mod:`repro.runtime` — the rendezvous collectives for the BSP code,
the async RPC layer with a bounded outstanding window and a split-phase
barrier for the async code.  They move real data (global read ids, byte
volumes from real read lengths) and can run the real X-drop kernel per
task (``kernel="real"``) to produce actual :class:`Alignment` outputs.

They exist to (1) execute concrete workloads end-to-end, and (2) validate
the macro engines: ``tests/test_micro_macro_agreement.py`` checks that both
granularities tell the same performance story on the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.align.seedextend import SeedExtendAligner
from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.common import (
    ASYNC_BASE_MEMORY,
    ASYNC_TASK_RECORD_BYTES,
    BSP_BASE_MEMORY,
    BSP_TASK_RECORD_BYTES,
    bsp_num_rounds,
    internode_fraction,
)
from repro.engines.harness import finish_run, resolve_executor, resolve_tracer
from repro.engines.rebalance import (
    ChurnPool,
    MigrationLedger,
    PoolItem,
    executor_map,
)
from repro.engines.registry import MICRO, register_engine
from repro.engines.report import RunResult
from repro.errors import ConfigurationError, RankFailureError
from repro.machine.config import MachineSpec
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.workload import ConcreteWorkload
from repro.runtime.collectives import Collectives
from repro.runtime.context import SpmdContext
from repro.runtime.rpc import RpcLayer

__all__ = ["MicroBSPEngine", "MicroAsyncEngine"]


def _rank_task_lists(plan, num_ranks: int) -> list[np.ndarray]:
    order = np.argsort(plan.assigned, kind="stable")
    counts = np.bincount(plan.assigned, minlength=num_ranks)
    offsets = np.zeros(num_ranks + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return [order[offsets[r]: offsets[r + 1]] for r in range(num_ranks)]


@dataclass
class _MicroBase:
    config: EngineConfig = field(default_factory=EngineConfig)

    def run(self, workload: ConcreteWorkload, machine: MachineSpec,
            kernel: str = "model",
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        """Open the run's compute backend, then hand off to the engine body.

        ``kernel="real"`` builds a :class:`SeedExtendAligner` and routes
        every task batch through the configured backend
        (``config.backend``/``workers``/``chunk_tasks``, see
        docs/PARALLEL.md); ``kernel="model"`` charges modeled costs only.
        The ``with`` block guarantees pool + shared-memory teardown even
        when a fault plan kills a rank mid-run.
        """
        aligner = SeedExtendAligner() if kernel == "real" else None
        with resolve_executor(self.config, workload, aligner) as executor:
            return self._run(workload, machine, executor,
                             tracer=tracer, metrics=metrics, faults=faults)

    def _prepare(self, workload: ConcreteWorkload, machine: MachineSpec,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 faults=None):
        P = machine.total_ranks
        if P > 4096:
            raise ConfigurationError(
                "micro engines are message-level simulations; use the macro "
                "engines beyond a few thousand ranks"
            )
        tracer = resolve_tracer(tracer, self.name, workload.name, machine)
        plan = workload.micro_plan(P)
        ctx = SpmdContext(machine, tracer=tracer, metrics=metrics,
                          faults=faults)
        rank_tasks = _rank_task_lists(plan, P)
        return plan, ctx, rank_tasks

    def _check_deaths(self, ctx: SpmdContext) -> None:
        """Abort with a typed error once any rank's death time has passed.

        The micro engines are faithful SPMD programs without a work-stealing
        layer, so a dead rank cannot hand its tasks off; graceful
        redistribution is a macro-engine capability.
        """
        faults = ctx.faults
        if faults is None:
            return
        kill = faults.first_death_before(ctx.engine.now)
        if kill is not None:
            raise RankFailureError(
                f"rank {kill.rank} died at t={kill.time:.6g}s; micro "
                f"engines cannot redistribute work (use a macro engine "
                f"with 'redistribute' for graceful degradation)"
            )

    def _churn_epilogue(self, ctx: SpmdContext, ledger: MigrationLedger,
                        wall: float) -> dict:
        """Book the run's honored membership events; the ``churn`` details.

        The micro engines honor churn *implicitly* — membership is consulted
        at superstep boundaries (BSP) or claim time (async) — so the uniform
        accounting (injector counts, trace instants, ledger join/evict
        lists) is settled once, after the simulation drains.  An unflagged
        kill that took effect inside the run aborts here, mirroring the
        macro engines' redistribute requirement.
        """
        faults = ctx.faults
        plan = faults.plan
        for ev in plan.schedule.membership_events():
            if ev.time >= wall or ev.kind == "evict_notice":
                continue
            if ev.kind == "join":
                ledger.record_join(ev.rank)
                faults.note_join(ev.rank)
                if ctx.tracer is not None:
                    ctx.tracer.instant(ev.rank, "rank_join", ev.time)
            elif ev.kind == "evict_depart":
                ledger.record_evict(ev.rank)
                faults.note_evict(ev.rank)
                if ctx.tracer is not None:
                    ctx.tracer.instant(ev.rank, "rank_evict", ev.time,
                                       grace=ev.grace)
            else:  # kill
                if not plan.redistribute:
                    raise RankFailureError(
                        f"rank {ev.rank} died at t={ev.time:.6g}s; add "
                        f"'redistribute' to the fault plan for graceful "
                        f"degradation under churn"
                    )
                faults.note_kill(ev.rank)
                if ctx.tracer is not None:
                    ctx.tracer.instant(ev.rank, "fault_inject", ev.time,
                                       kind="rank_kill", victim=ev.rank)
            ctx.metrics.inc("faults_injected", ev.rank)
        return {"churn": ledger.churn_details()}

    def _dilated(self, ctx: SpmdContext, rank: int, seconds: float) -> float:
        """Apply any active straggler window to a compute duration."""
        if ctx.faults is None or seconds == 0.0:
            return seconds
        return seconds * ctx.faults.straggle_factor(rank, ctx.engine.now)

    def _task_compute(self, workload, task_idx, executor):
        """(simulated seconds, alignment or None) for one task."""
        return self._tasks_compute(workload, [task_idx], executor)[0]

    def _tasks_compute(self, workload, task_indices, executor):
        """[(simulated seconds, alignment or None)] for a group of tasks.

        The whole group routes through the run's compute backend in one
        call: the serial backend makes a single batched wavefront call
        (amortizing per-antidiagonal dispatch overhead across the group),
        the process backend fans chunks of the group out to its worker
        pool.  Simulated seconds and per-task alignment outputs are
        identical either way — the backend only spends real wall-clock.

        Sharded workloads dispatch shard-at-a-time: the group is split by
        shard id (``index // shard_tasks``) so each backend call touches
        one shard's rows — the process backend then publishes one compact
        per-shard read store instead of mapping the whole read set.
        Results are restitched into input order, and the batched kernel is
        bit-identical per pair regardless of batch composition, so the
        regrouping is invisible in the outputs (golden-pinned).
        """
        if self.config.mode is ExecutionMode.COMM_ONLY:
            return [(0.0, None)] * len(task_indices)
        costs = [float(workload.task_costs[i]) for i in task_indices]
        if executor.aligner is None:
            return [(c, None) for c in costs]
        shard = int(getattr(workload, "shard_tasks", 0))
        if shard and len(task_indices) > 1:
            idx = np.asarray(task_indices, dtype=np.int64)
            order = np.argsort(idx // shard, kind="stable")
            sids = idx[order] // shard
            results: list = [None] * idx.size
            for group in np.split(
                    order, np.flatnonzero(np.diff(sids)) + 1):
                for pos, al in zip(group,
                                   executor.align_tasks(idx[group])):
                    results[int(pos)] = al
            return list(zip(costs, results))
        return list(zip(costs, executor.align_tasks(task_indices)))

    def _finish(self, name, workload, machine, ctx, memory, rounds, alignments,
                details=None, wall_time=None, executor=None):
        if wall_time is None:
            wall_time = ctx.engine.now
        details = dict(details or {})
        if ctx.faults is not None:
            details["faults_injected"] = ctx.faults.total_injected
            details["fault_kinds"] = dict(ctx.faults.injected)
        if executor is not None and ctx.metrics is not None:
            # real wall-clock dispatch/wait/merge accounting: counters, not
            # RunResult details, so results stay bit-identical to serial.
            # A plain serial executor contributes nothing; a *downgraded*
            # one (process requested, model kernel) still surfaces
            # exec_backend_downgraded so the downgrade is never silent.
            stats = executor.stats()
            if executor.backend != "serial" or stats.get("backend_downgraded"):
                per_worker = stats.pop("per_worker", {})
                ctx.metrics.merge_scalars("exec_", stats)
                for slot, (_pid, wstats) in enumerate(
                        sorted(per_worker.items())):
                    ctx.metrics.merge_scalars(f"exec_w{slot}_", wstats)
        # the accumulator path reports through the conservation checker;
        # the trace re-sum runs inside finish_run when a tracer is attached
        return finish_run(
            name, machine, workload.name, wall_time, ctx.timers, ctx.tracer,
            memory=memory,
            exchange_rounds=rounds,
            alignments=alignments,
            details=details,
            accumulator_check=True,
        )


@register_engine("bsp-micro", kind=MICRO,
                 description="message-level BSP rendezvous exchange")
@dataclass
class MicroBSPEngine(_MicroBase):
    """Message-level BSP: rendezvous alltoallv rounds + per-round compute."""

    name: str = "bsp-micro"

    def _run(self, workload: ConcreteWorkload, machine: MachineSpec,
             executor, *,
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None,
             faults=None) -> RunResult:
        P = machine.total_ranks
        plan, ctx, rank_tasks = self._prepare(workload, machine,
                                              tracer, metrics, faults)
        coll = Collectives(ctx)
        lengths = workload.read_lengths
        assignment = workload.assignment(P)
        rounds = bsp_num_rounds(self.config, machine, assignment)
        eff_scale = self.config.multiround_efficiency if rounds > 1 else 1.0
        internode = internode_fraction(machine)

        # Static exchange plan: which (requester, read) pairs exist, and in
        # which round each read travels (deduplicated, §3.1).
        need: list[dict[int, list[int]]] = [dict() for _ in range(P)]
        # need[src][dst] = read ids src must send dst, split later by round
        per_rank_remote: list[np.ndarray] = []
        for r in range(P):
            remote = plan.remote_read[rank_tasks[r]]
            uniq = np.unique(remote[remote >= 0])
            per_rank_remote.append(uniq)
            owners = plan.owner_of_read(uniq)
            for read_id, owner in zip(uniq, owners):
                need[int(owner)].setdefault(r, []).append(int(read_id))

        alignments: list = []
        finish_times: dict[int, float] = {}

        # --- membership churn state (docs/RESILIENCE.md) -------------------
        # Ranks outside the current membership keep their generators running
        # as ghosts — they stay in the collectives (so the rendezvous always
        # completes and every rank agrees on superstep boundary times) but
        # send nothing and compute nothing.  An absent rank's task ranges are
        # rechunked onto members through `executor_map`, recomputed at every
        # superstep boundary from the common post-barrier clock.
        churn = faults is not None and faults.plan.has_churn
        sched = faults.plan.schedule if churn else None
        ledger = MigrationLedger() if churn else None
        members_by_round: dict[int, np.ndarray] = {}
        exec_by_round: dict[int, np.ndarray] = {}
        done_by_orig = np.zeros(P, dtype=np.int64)
        task_done: set[int] = set()

        def round_items(src: int, dst: int, rnd: int) -> list:
            read_ids = need[src].get(dst, [])
            return [
                (rid, float(lengths[rid]))
                for i, rid in enumerate(read_ids)
                if min(i * rounds // max(1, len(read_ids)), rounds - 1) == rnd
            ]

        def rank_main(rank: int):
            tasks = rank_tasks[rank]
            remote = plan.remote_read[tasks]
            local_tasks = tasks[remote < 0]

            for rnd in range(rounds):
                my_origs: list[int] = []
                if churn:
                    # membership barrier: every rank leaves at the same
                    # simulated time, so all agree on this round's members
                    yield from coll.barrier(rank, tag=f"member{rnd}")
                    if rnd not in exec_by_round:
                        mask = sched.alive_mask(ctx.engine.now, P)
                        if not mask.any():
                            raise RankFailureError(
                                "every rank left before the run finished; "
                                "nothing left to delegate work to"
                            )
                        members_by_round[rnd] = mask
                        exec_by_round[rnd] = executor_map(mask)
                    exec_map = exec_by_round[rnd]
                    my_origs = [int(o) for o in np.flatnonzero(exec_map == rank)]
                    if rnd > 0:
                        # checkpoint handoff: newly-delegated unfinished
                        # ranges ship to their new executor (graceful
                        # departures and join reclaims only — a killed
                        # rank's work is redone from the task list, with
                        # nothing to fetch)
                        prev = exec_by_round[rnd - 1]
                        for o in my_origs:
                            if int(prev[o]) == rank:
                                continue
                            rem = int(len(rank_tasks[o]) - done_by_orig[o])
                            if rem <= 0:
                                continue
                            ev = sched.eviction_of(o)
                            graceful = (o == rank
                                        or (ev is not None and ev.grace > 0))
                            if not graceful:
                                continue
                            nbytes = (rem * BSP_TASK_RECORD_BYTES
                                      + float(assignment.partition_bytes[o]))
                            s = ctx.net.ptp_time(nbytes)
                            yield ctx.charge("comm", rank, s,
                                             name=f"migrate-r{o}")
                            ledger.record_migration(rem, nbytes, s)
                            faults.note_migration(rem)
                            if ctx.tracer is not None:
                                ctx.tracer.instant(rank, "migrate",
                                                   ctx.engine.now,
                                                   orig=o, tasks=rem)
                else:
                    self._check_deaths(ctx)
                if ctx.tracer is not None:
                    ctx.tracer.instant(rank, "superstep", ctx.engine.now,
                                       round=rnd, rounds=rounds)
                send: dict[int, list] = {}
                if churn:
                    # send on behalf of every orig this rank executes, and
                    # route each destination to *its* current executor
                    for o in my_origs:
                        for dst in need[o]:
                            items = round_items(o, dst, rnd)
                            if items:
                                send.setdefault(
                                    int(exec_map[dst]), []
                                ).extend(items)
                else:
                    for dst, read_ids in need[rank].items():
                        items = round_items(rank, dst, rnd)
                        if items:
                            send[dst] = items
                send_bytes = sum(b for items in send.values() for _, b in items)
                received = yield from coll.alltoallv_resilient(
                    rank, send, send_bytes, round_idx=rnd, tag=f"xchg{rnd}",
                    efficiency_scale=eff_scale,
                )
                if not churn:
                    self._check_deaths(ctx)
                got = {rid for rid, _ in received}
                ctx.memory.allocate(rank, f"recv{rnd}",
                                    sum(b for _, b in received))

                # compute: local-local tasks in round 0, remote-read tasks
                # as their reads arrive
                todo = []
                if churn:
                    for o in my_origs:
                        o_tasks = rank_tasks[o]
                        o_remote = plan.remote_read[o_tasks]
                        if rnd == 0:
                            todo.extend(int(t) for t in o_tasks[o_remote < 0])
                        for t, rid in zip(o_tasks, o_remote):
                            if rid >= 0 and int(rid) in got:
                                todo.append(int(t))
                    # an executor holding a read for one of its origs may
                    # unblock another's identical need early; never twice
                    todo = [t for t in todo if t not in task_done]
                    task_done.update(todo)
                    for t in todo:
                        done_by_orig[int(plan.assigned[t])] += 1
                else:
                    if rnd == 0:
                        todo.extend(int(t) for t in local_tasks)
                    for t, rid in zip(tasks, remote):
                        if rid >= 0 and int(rid) in got:
                            todo.append(int(t))
                # one batched wavefront call per round's ready set
                for t, (seconds, alignment) in zip(
                        todo, self._tasks_compute(workload, todo, executor)):
                    seconds = self._dilated(ctx, rank, seconds)
                    if seconds:
                        yield ctx.charge("compute_align", rank, seconds,
                                         name=f"task{t}")
                    ctx.metrics.inc("tasks", rank)
                    if alignment is not None:
                        ctx.metrics.inc("cells", rank, alignment.cells)
                        alignments.append(alignment)
                oh = self._dilated(ctx, rank, (
                    len(todo) * self.config.bsp_task_overhead
                    + len(got) * self.config.bsp_read_overhead * internode
                ))
                if oh:
                    yield ctx.charge("compute_overhead", rank, oh)
                ctx.memory.free(rank, f"recv{rnd}")

            yield from coll.barrier(rank, tag="exit")
            if not churn:
                self._check_deaths(ctx)
            finish_times[rank] = ctx.engine.now

        for rank in range(P):
            ctx.memory.allocate(
                rank, "base",
                BSP_BASE_MEMORY
                + float(assignment.partition_bytes[rank])
                + len(rank_tasks[rank]) * BSP_TASK_RECORD_BYTES,
            )
        ctx.engine.spawn_all((rank_main(r) for r in range(P)), prefix="bsp-r")
        ctx.engine.run()
        wall = max(finish_times.values(), default=ctx.engine.now)
        details = self._churn_epilogue(ctx, ledger, wall) if churn else None
        return self._finish(
            self.name, workload, machine, ctx,
            ctx.memory.rank_high_water(), rounds,
            alignments if executor.aligner is not None else None,
            details=details,
            wall_time=wall,
            executor=executor,
        )


@register_engine("async-micro", kind=MICRO,
                 description="message-level async pulls over the RPC layer")
@dataclass
class MicroAsyncEngine(_MicroBase):
    """Message-level async: pull RPCs + callbacks + split-phase barrier."""

    name: str = "async-micro"

    def _run(self, workload: ConcreteWorkload, machine: MachineSpec,
             executor, *,
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None,
             faults=None) -> RunResult:
        P = machine.total_ranks
        plan, ctx, rank_tasks = self._prepare(workload, machine,
                                              tracer, metrics, faults)
        coll = Collectives(ctx)
        rpc = RpcLayer(ctx)
        lengths = workload.read_lengths
        assignment = workload.assignment(P)
        window = self.config.async_window
        internode = internode_fraction(machine)

        for r in range(P):
            # the handler returns the read (its id as a stand-in payload)
            # and its true byte size
            rpc.register(r, lambda rid: (rid, float(lengths[rid])))

        alignments: list = []
        finish_times: dict[int, float] = {}

        # --- membership churn state (docs/RESILIENCE.md) -------------------
        # Under churn the pull phase runs off a deterministic shared work
        # pool: every rank's task groups (its local-local group plus one
        # group per distinct remote read) stay queued under their original
        # owner, members drain their own queue first and then claim orphaned
        # groups — owner departed, or not yet joined — at pull granularity.
        # Claims of a foreign group charge the checkpoint-record transfer.
        # Reads of a departed owner stay servable: the grace-window
        # checkpoint (or the initial partition, for pre-join owners) remains
        # readable through the RPC layer.
        churn = faults is not None and faults.plan.has_churn
        sched = faults.plan.schedule if churn else None
        ledger = MigrationLedger() if churn else None
        pool = None
        if churn:
            items_by_orig: dict[int, list[PoolItem]] = {}
            for r in range(P):
                tasks_r = rank_tasks[r]
                remote_r = plan.remote_read[tasks_r]
                items: list[PoolItem] = []
                local = tuple(int(t) for t in tasks_r[remote_r < 0])
                if local:
                    items.append(PoolItem(r, -1, local))
                groups: dict[int, list[int]] = {}
                for t, rid in zip(tasks_r, remote_r):
                    if rid >= 0:
                        groups.setdefault(int(rid), []).append(int(t))
                for rid in sorted(groups):
                    items.append(PoolItem(r, rid, tuple(groups[rid])))
                if items:
                    items_by_orig[r] = items
            pool = ChurnPool(items_by_orig)

        def churn_rank_main(rank: int):
            jt = sched.join_time(rank)
            dep = sched.departure_time(rank)
            base_oh = self.config.async_base_overhead
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * base_oh))
            # everyone — joiners-to-be included — meets the split barrier at
            # start and the exit barrier at the end, so the collectives
            # always complete
            coll.split_barrier_enter(rank)
            yield from coll.split_barrier_wait(rank)
            inbox = rpc.inboxes[rank]

            def is_member(orig: int) -> bool:
                return sched.alive(orig, ctx.engine.now)

            while True:
                now = ctx.engine.now
                if dep is not None and now >= dep:
                    # departure: the group in flight finished (that is what
                    # the grace window bought); everything unclaimed is now
                    # orphaned for the members to pick up
                    break
                if jt is not None and now < jt:
                    yield ctx.charge("sync", rank, jt - now, name="pre-join")
                    continue
                item = pool.claim(rank, is_member)
                if item is None:
                    if not pool.pending_anywhere():
                        break
                    nxt = sched.next_membership_change(now)
                    if nxt is None:
                        break  # leftovers belong to present members
                    # a future departure may orphan work for this rank:
                    # sleep to the next membership change and re-check
                    yield ctx.charge("sync", rank, nxt - now,
                                     name="churn-drain")
                    continue
                ntasks = len(item.tasks)
                if item.orig != rank:
                    nbytes = ntasks * ASYNC_TASK_RECORD_BYTES
                    s = ctx.net.ptp_time(nbytes)
                    yield ctx.charge("comm", rank, s,
                                     name=f"migrate-r{item.orig}")
                    ledger.record_migration(ntasks, nbytes, s)
                    faults.note_migration(ntasks)
                    if ctx.tracer is not None:
                        ctx.tracer.instant(rank, "migrate", ctx.engine.now,
                                           orig=item.orig, tasks=ntasks)
                oh = ntasks * self.config.async_task_overhead
                if item.rid >= 0:
                    oh += self.config.async_read_overhead * internode
                yield ctx.charge("compute_overhead", rank,
                                 self._dilated(ctx, rank, oh))
                owner = (int(plan.owner_of_read(np.array([item.rid]))[0])
                         if item.rid >= 0 else rank)
                if item.rid >= 0 and owner != rank:
                    # a claimed foreign group may wait on a read this rank
                    # itself owns — that one is a local fetch, no pull
                    yield ctx.charge("comm", rank, rpc.injection_cost())
                    rpc.call(rank, owner, item.rid)
                    ctx.memory.allocate(rank, f"inflight{item.rid}",
                                        float(lengths[item.rid]))
                    t0 = ctx.engine.now
                    response = yield from inbox.get()
                    ctx.record("comm", rank, ctx.engine.now - t0,
                               name="inbox-wait")
                    ctx.memory.free(rank, f"inflight{response.token}")
                for t, (seconds, alignment) in zip(
                        item.tasks,
                        self._tasks_compute(workload, list(item.tasks),
                                            executor)):
                    seconds = self._dilated(ctx, rank, seconds)
                    if seconds:
                        yield ctx.charge("compute_align", rank, seconds,
                                         name=f"task{t}")
                    ctx.metrics.inc("tasks", rank)
                    if alignment is not None:
                        ctx.metrics.inc("cells", rank, alignment.cells)
                        alignments.append(alignment)
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * base_oh))
            yield from coll.barrier(rank, tag="exit")
            finish_times[rank] = ctx.engine.now
            inbox.close()

        def rank_main(rank: int):
            tasks = rank_tasks[rank]
            remote = plan.remote_read[tasks]
            local_tasks = tasks[remote < 0]
            # index tasks under their remote read (§3.2)
            by_read: dict[int, list[int]] = {}
            for t, rid in zip(tasks, remote):
                if rid >= 0:
                    by_read.setdefault(int(rid), []).append(int(t))

            oh = (
                len(tasks) * self.config.async_task_overhead
                + len(by_read) * self.config.async_read_overhead * internode
                + self.config.async_base_overhead
            )
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * oh))

            # split-phase barrier overlapped with local-local tasks
            # (one batched wavefront call for the whole local group)
            coll.split_barrier_enter(rank)
            local_list = [int(t) for t in local_tasks]
            for t, (seconds, alignment) in zip(
                    local_list,
                    self._tasks_compute(workload, local_list, executor)):
                seconds = self._dilated(ctx, rank, seconds)
                if seconds:
                    yield ctx.charge("compute_align", rank, seconds,
                                     name=f"task{t}")
                ctx.metrics.inc("tasks", rank)
                if alignment is not None:
                    ctx.metrics.inc("cells", rank, alignment.cells)
                    alignments.append(alignment)
            yield from coll.split_barrier_wait(rank)
            self._check_deaths(ctx)

            # pull phase with a bounded outstanding window
            pending = list(by_read)
            outstanding = 0
            next_req = 0
            inbox = rpc.inboxes[rank]

            def issue_one():
                nonlocal next_req, outstanding
                rid = pending[next_req]
                owner = int(plan.owner_of_read(np.array([rid]))[0])
                rpc.call(rank, owner, rid)
                ctx.memory.allocate(rank, f"inflight{rid}", float(lengths[rid]))
                next_req += 1
                outstanding += 1
                ctx.metrics.observe_max("window_occupancy", rank, outstanding)
                if ctx.tracer is not None:
                    ctx.tracer.counter(rank, "outstanding", ctx.engine.now,
                                       outstanding)

            while next_req < len(pending) and outstanding < window:
                yield ctx.charge("comm", rank, rpc.injection_cost())
                issue_one()
            done = 0
            while done < len(pending):
                t0 = ctx.engine.now
                response = yield from inbox.get()
                # blocked time with no compute available = visible latency
                # (already elapsed while waiting: record, do not re-advance)
                ctx.record("comm", rank, ctx.engine.now - t0,
                           name="inbox-wait")
                self._check_deaths(ctx)
                ctx.memory.free(rank, f"inflight{response.token}")
                done += 1
                outstanding -= 1
                if ctx.tracer is not None:
                    ctx.tracer.counter(rank, "outstanding", ctx.engine.now,
                                       outstanding)
                if next_req < len(pending):
                    yield ctx.charge("comm", rank, rpc.injection_cost())
                    issue_one()
                # one batched wavefront call per callback group (the tasks
                # unblocked by this read's arrival)
                group = by_read[int(response.token)]
                for t, (seconds, alignment) in zip(
                        group, self._tasks_compute(workload, group, executor)):
                    seconds = self._dilated(ctx, rank, seconds)
                    if seconds:
                        yield ctx.charge("compute_align", rank, seconds,
                                         name=f"task{t}")
                    ctx.metrics.inc("tasks", rank)
                    if alignment is not None:
                        ctx.metrics.inc("cells", rank, alignment.cells)
                        alignments.append(alignment)
            yield ctx.charge("compute_overhead", rank,
                             self._dilated(ctx, rank, 0.5 * oh))

            yield from coll.barrier(rank, tag="exit")
            self._check_deaths(ctx)
            finish_times[rank] = ctx.engine.now
            # the rank is done for good: late duplicate responses must be
            # dropped by the RPC layer, not parked in a dead inbox
            inbox.close()

        for rank in range(P):
            ctx.memory.allocate(
                rank, "base",
                ASYNC_BASE_MEMORY
                + float(assignment.partition_bytes[rank])
                + len(rank_tasks[rank]) * ASYNC_TASK_RECORD_BYTES,
            )
        body = churn_rank_main if churn else rank_main
        ctx.engine.spawn_all((body(r) for r in range(P)), prefix="async-r")
        ctx.engine.run()
        wall = max(finish_times.values(), default=ctx.engine.now)
        details = {
            "rpc_calls": rpc.total_calls,
            "rpc_retries": rpc.retries,
            "rpc_timeouts": rpc.timeouts,
            "rpc_dup_dropped": rpc.dups_dropped,
        }
        if churn:
            details.update(self._churn_epilogue(ctx, ledger, wall))
        return self._finish(
            self.name, workload, machine, ctx,
            ctx.memory.rank_high_water(), 0,
            alignments if executor.aligner is not None else None,
            details=details,
            wall_time=wall,
            executor=executor,
        )
