"""Tests for FASTA/FASTQ IO."""

import io

import pytest

from repro.errors import SequenceError
from repro.genome.fasta import read_fasta, read_fastq, write_fasta, write_fastq
from repro.genome.sequence import ReadSet


def roundtrip_fasta(rs):
    buf = io.StringIO()
    write_fasta(rs, buf)
    buf.seek(0)
    return read_fasta(buf)


def test_fasta_roundtrip():
    rs = ReadSet.from_strings(["ACGT", "GGN", "T" * 200], names=["a", "b", "c"])
    back = roundtrip_fasta(rs)
    assert [str(r) for r in back] == [str(r) for r in rs]
    assert back.names == ["a", "b", "c"]


def test_fasta_line_wrapping():
    rs = ReadSet.from_strings(["A" * 250])
    buf = io.StringIO()
    write_fasta(rs, buf)
    lines = buf.getvalue().splitlines()
    assert lines[0].startswith(">")
    assert max(len(l) for l in lines[1:]) <= 80
    buf.seek(0)
    assert str(read_fasta(buf).read(0)) == "A" * 250


def test_fasta_default_names():
    import numpy as np
    rs = ReadSet.from_strings(["AC"], ids=np.array([17]))
    buf = io.StringIO()
    write_fasta(rs, buf)
    assert buf.getvalue().startswith(">read_17\n")


def test_fasta_malformed():
    with pytest.raises(SequenceError):
        read_fasta(io.StringIO("ACGT\n>late_header\nAC\n"))


def test_fasta_file_paths(tmp_path):
    rs = ReadSet.from_strings(["ACGTACGT"], names=["x"])
    path = tmp_path / "reads.fa"
    write_fasta(rs, path)
    back = read_fasta(path)
    assert str(back.read(0)) == "ACGTACGT"


def test_fastq_roundtrip():
    rs = ReadSet.from_strings(["ACGT", "NNN"], names=["q1", "q2"])
    buf = io.StringIO()
    write_fastq(rs, buf)
    buf.seek(0)
    back = read_fastq(buf)
    assert [str(r) for r in back] == ["ACGT", "NNN"]
    assert back.names == ["q1", "q2"]


def test_fastq_malformed_header():
    with pytest.raises(SequenceError):
        read_fastq(io.StringIO("ACGT\nACGT\n+\nIIII\n"))


def test_fastq_quality_length_mismatch():
    with pytest.raises(SequenceError):
        read_fastq(io.StringIO("@r\nACGT\n+\nII\n"))


def test_fastq_truncated():
    with pytest.raises(SequenceError):
        read_fastq(io.StringIO("@r\nACGT\n+\n"))
