"""Tests for Read/ReadSet structure-of-arrays containers."""

import numpy as np
import pytest

from repro.errors import SequenceError
from repro.genome import alphabet
from repro.genome.sequence import Read, ReadSet


def make_set():
    return ReadSet.from_strings(["ACGT", "GG", "TTTTT"])


def test_lengths_and_total():
    rs = make_set()
    assert len(rs) == 3
    assert rs.lengths.tolist() == [4, 2, 5]
    assert rs.total_bases == 11


def test_codes_view_is_zero_copy():
    rs = make_set()
    view = rs.codes(1)
    assert view.base is rs.buffer or view.base is not None
    assert alphabet.decode(view) == "GG"


def test_read_materialization():
    rs = make_set()
    r = rs.read(2)
    assert isinstance(r, Read)
    assert str(r) == "TTTTT"
    assert len(r) == 5
    assert r.id == 2


def test_iteration_order():
    rs = make_set()
    assert [str(r) for r in rs] == ["ACGT", "GG", "TTTTT"]


def test_custom_ids_and_index_of():
    rs = ReadSet.from_strings(["AC", "GT"], ids=np.array([10, 42]))
    assert rs.index_of(42) == 1
    with pytest.raises(SequenceError):
        rs.index_of(7)


def test_subset_preserves_metadata():
    reads = [
        Read(id=5, codes=alphabet.encode("ACGT"), name="a", origin=100,
             origin_end=104, strand=-1),
        Read(id=9, codes=alphabet.encode("GG"), name="b", origin=7,
             origin_end=9, strand=1),
    ]
    rs = ReadSet.from_reads(reads)
    sub = rs.subset(np.array([1]))
    r = sub.read(0)
    assert r.id == 9 and r.name == "b" and r.origin == 7 and r.strand == 1


def test_from_reads_roundtrip():
    reads = [Read(id=i, codes=alphabet.encode(s)) for i, s in
             enumerate(["A", "CC", "GGG"])]
    rs = ReadSet.from_reads(reads)
    assert [str(r) for r in rs] == ["A", "CC", "GGG"]
    assert rs.ids.tolist() == [0, 1, 2]


def test_invalid_offsets_rejected():
    with pytest.raises(SequenceError):
        ReadSet(np.zeros(4, dtype=np.uint8), np.array([0, 2]))  # wrong end
    with pytest.raises(SequenceError):
        ReadSet(np.zeros(4, dtype=np.uint8), np.array([1, 4]))  # wrong start
    with pytest.raises(SequenceError):
        ReadSet(np.zeros(4, dtype=np.uint8), np.array([0, 3, 2, 4]))  # decreasing


def test_ids_length_mismatch():
    with pytest.raises(SequenceError):
        ReadSet.from_strings(["AC", "GT"], ids=np.array([1]))


def test_empty_readset():
    rs = ReadSet.from_strings([])
    assert len(rs) == 0
    assert rs.total_bases == 0
    assert list(rs) == []
