"""Workloads: the fixed inputs of the paper's experiments, in two forms.

A *workload* is (reads, alignment tasks, per-task costs).  For any machine
size ``P`` it renders a :class:`WorkloadAssignment` — the per-rank arrays
both engines consume:

* DiBELLA stage-1 read partition (contiguous, byte-balanced);
* task assignment respecting the ownership invariant, balanced by count;
* per-rank alignment compute seconds (the variable-cost kernel work);
* the communication structure: per rank, the *distinct* remote reads it
  must obtain (each retrieved exactly once, §3.2), their byte volume, and
  the mirror image — lookups/bytes it must serve to others.  The BSP
  exchange moves exactly the same deduplicated bytes, just aggregated
  (§3.1), so ``recv_bytes == lookup_bytes`` and ``send_bytes ==
  incoming_bytes``.

:class:`ConcreteWorkload` computes all of this exactly from real reads and
candidate tasks.  :class:`StatisticalWorkload` generates it from calibrated
distributions with totals matching Table 1 exactly, deterministically from a
seed — the substitution for the unavailable SRA datasets (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.align.cost import MEAN_TASK_COST, AlignmentCostModel
from repro.errors import ConfigurationError
from repro.genome.datasets import DatasetSpec
from repro.genome.sequence import ReadSet
from repro.pipeline.partition import (
    assign_tasks_balanced,
    owners_from_boundaries,
    partition_reads_by_size,
)
from repro.pipeline.tasks import TaskTable
from repro.utils.arrays import segment_sums
from repro.utils.cache import LruCache
from repro.utils.rng import RngFactory

#: per-workload cap on cached per-P renderings (assignments / micro plans);
#: a sweep revisits each P many times, but rarely needs more than a handful
#: of distinct rank counts live at once
ASSIGNMENT_CACHE_CAP = 16

__all__ = ["WorkloadAssignment", "MicroPlan", "ConcreteWorkload", "StatisticalWorkload"]


@dataclass(frozen=True)
class WorkloadAssignment:
    """Per-rank arrays of one workload rendered onto ``num_ranks`` ranks.

    All arrays have length ``num_ranks``.  Byte quantities are bytes; time
    quantities are seconds of simulated KNL-core work.
    """

    name: str
    num_ranks: int
    # reads (stage-1 partition)
    reads_per_rank: np.ndarray
    partition_bytes: np.ndarray
    # tasks
    tasks_per_rank: np.ndarray
    compute_seconds: np.ndarray
    local_pair_seconds: np.ndarray
    # communication structure (deduplicated remote reads)
    lookups: np.ndarray
    lookup_bytes: np.ndarray
    incoming_lookups: np.ndarray
    incoming_bytes: np.ndarray
    # totals
    total_reads: int
    total_tasks: int

    def __post_init__(self) -> None:
        for name in (
            "reads_per_rank", "partition_bytes", "tasks_per_rank",
            "compute_seconds", "local_pair_seconds", "lookups",
            "lookup_bytes", "incoming_lookups", "incoming_bytes",
        ):
            arr = getattr(self, name)
            if arr.shape != (self.num_ranks,):
                raise ConfigurationError(
                    f"assignment array {name} has shape {arr.shape}, "
                    f"expected ({self.num_ranks},)"
                )

    # -- derived quantities used by the engines and figures ----------------

    @property
    def recv_bytes(self) -> np.ndarray:
        """BSP exchange: bytes received per rank (== async pull volume)."""
        return self.lookup_bytes

    @property
    def send_bytes(self) -> np.ndarray:
        """BSP exchange: bytes sent per rank (== async serve volume)."""
        return self.incoming_bytes

    @property
    def total_exchange_bytes(self) -> float:
        return float(self.lookup_bytes.sum())

    def single_exchange_estimate(self) -> float:
        """Figure 11's dashed line: memory to exchange all reads at once.

        "The estimate is calculated from the total exchange load, divided by
        the number of processors, plus the average input partition sizes."
        """
        return (
            self.total_exchange_bytes / self.num_ranks
            + float(self.partition_bytes.mean())
        )

    @property
    def mean_task_cost(self) -> float:
        total = self.tasks_per_rank.sum()
        return float(self.compute_seconds.sum() / total) if total else 0.0


def _dedup_remote(
    assigned: np.ndarray,
    remote_read: np.ndarray,
    read_lengths: np.ndarray,
    boundaries: np.ndarray,
    num_ranks: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-rank distinct remote reads and the mirrored serve-side load.

    ``remote_read`` is -1 for both-local tasks.  Deduplication is global:
    one (requester, read) pair counts once — "parallel processors retrieve
    remote reads no more than once" (§3.2), and the aggregated BSP exchange
    ships each read at most once per requester (§3.1).
    """
    n_reads = read_lengths.size
    has_remote = remote_read >= 0
    keys = assigned[has_remote].astype(np.int64) * n_reads + remote_read[has_remote]
    uniq = np.unique(keys)
    req_rank = uniq // n_reads
    read_id = uniq % n_reads
    lengths = read_lengths[read_id].astype(np.float64)

    lookups = np.bincount(req_rank, minlength=num_ranks).astype(np.float64)
    lookup_bytes = segment_sums(lengths, req_rank, num_ranks)
    owner = owners_from_boundaries(read_id, boundaries)
    incoming = np.bincount(owner, minlength=num_ranks).astype(np.float64)
    incoming_bytes = segment_sums(lengths, owner, num_ranks)
    return lookups, lookup_bytes, incoming, incoming_bytes


@dataclass(frozen=True)
class MicroPlan:
    """Per-task detail of a concrete workload rendered onto P ranks.

    Used by the micro (message-level) engines, which need each task's
    assignment and remote read rather than per-rank aggregates.
    """

    num_ranks: int
    boundaries: np.ndarray        # read partition boundaries (P+1)
    assigned: np.ndarray          # task -> rank
    owner_a: np.ndarray           # task -> owner of read a
    owner_b: np.ndarray           # task -> owner of read b
    remote_read: np.ndarray       # task -> remote read id (-1 if both local)

    def owner_of_read(self, read_ids: np.ndarray) -> np.ndarray:
        return owners_from_boundaries(read_ids, self.boundaries)


class ConcreteWorkload:
    """A workload materialized from real reads and a real task table.

    ``task_costs`` are per-task simulated seconds (from the cost model, or
    measured from the real kernel's cell counts).
    """

    def __init__(
        self,
        name: str,
        reads: ReadSet,
        tasks: TaskTable,
        task_costs: np.ndarray,
    ):
        if len(tasks) != np.asarray(task_costs).size:
            raise ConfigurationError("task_costs length must match task count")
        self.name = name
        self.reads = reads
        self.tasks = tasks
        self.task_costs = np.asarray(task_costs, dtype=np.float64)
        self.read_lengths = reads.lengths.astype(np.int64)
        self.assignment_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        self._plan_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)

    @property
    def n_reads(self) -> int:
        return len(self.reads)

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @classmethod
    def from_pipeline(
        cls,
        name: str,
        reads: ReadSet,
        k: int = 17,
        bella_model=None,
        bounds: tuple[int, int] | None = None,
        cost_model: AlignmentCostModel | None = None,
        measure_sample: int = 200,
        x_drop: int = 15,
        seed: int = 0,
    ) -> "ConcreteWorkload":
        """Run the full seed pipeline on real reads and cost the tasks.

        Candidates come from shared reliable k-mers (BELLA band); per-task
        costs are estimated from seed geometry with the cost model, then
        rescaled by running the real X-drop kernel on ``measure_sample``
        random tasks and matching the measured mean cell count (so the
        simulated seconds track the actual kernel work on this input).
        """
        from repro.align.seedextend import SeedExtendAligner
        from repro.kmer.seeds import CandidateGenerator

        gen = CandidateGenerator(k=k, model=bella_model, bounds=bounds)
        candidates = gen.generate(reads)
        tasks = TaskTable.from_candidates(candidates, k=k)
        cm = cost_model or AlignmentCostModel(x_drop=x_drop)

        # geometric estimate: the seed caps how far each extension can run
        la = reads.lengths[tasks.read_a]
        lb = reads.lengths[tasks.read_b]
        pos_b_oriented = np.where(
            tasks.reverse, lb - (tasks.pos_b + k), tasks.pos_b
        )
        max_left = np.minimum(tasks.pos_a, pos_b_oriented)
        max_right = np.minimum(la - tasks.pos_a - k, lb - pos_b_oriented - k)
        est_overlap = (max_left + max_right + k).astype(np.float64)
        est_cells = cm.estimate_cells(est_overlap)

        scale = 1.0
        if measure_sample and len(tasks):
            rng = np.random.default_rng(seed)
            aligner = SeedExtendAligner(x_drop=x_drop)
            idx = rng.choice(
                len(tasks), size=min(measure_sample, len(tasks)), replace=False
            )
            # one batched wavefront pass over the whole measurement sample
            measured = np.array(
                [
                    al.cells
                    for al in aligner.align_candidates(
                        reads, [candidates[int(i)] for i in idx]
                    )
                ],
                dtype=np.float64,
            )
            est_mean = float(est_cells[idx].mean())
            if est_mean > 0 and measured.mean() > 0:
                scale = float(measured.mean()) / est_mean

        costs = cm.cells_to_seconds(est_cells * scale)
        return cls(name, reads, tasks, np.asarray(costs, dtype=np.float64))

    def micro_plan(self, num_ranks: int) -> MicroPlan:
        """Per-task rendering for the message-level engines (cached)."""
        cached = self._plan_cache.get(num_ranks)
        if cached is not None:
            return cached
        boundaries = partition_reads_by_size(self.read_lengths, num_ranks)
        owner_a = owners_from_boundaries(self.tasks.read_a, boundaries)
        owner_b = owners_from_boundaries(self.tasks.read_b, boundaries)
        assigned = assign_tasks_balanced(owner_a, owner_b, num_ranks)
        both_local = owner_a == owner_b
        a_local = owner_a == assigned
        remote_read = np.where(
            both_local, -1, np.where(a_local, self.tasks.read_b, self.tasks.read_a)
        )
        plan = MicroPlan(
            num_ranks=num_ranks,
            boundaries=boundaries,
            assigned=assigned,
            owner_a=owner_a,
            owner_b=owner_b,
            remote_read=remote_read.astype(np.int64),
        )
        self._plan_cache.put(num_ranks, plan)
        return plan

    def assignment(self, num_ranks: int) -> WorkloadAssignment:
        """Render the per-rank arrays for ``num_ranks`` ranks (LRU-cached)."""
        cached = self.assignment_cache.get(num_ranks)
        if cached is not None:
            return cached

        plan = self.micro_plan(num_ranks)
        boundaries = plan.boundaries
        owner_a, owner_b, assigned = plan.owner_a, plan.owner_b, plan.assigned

        reads_per_rank = np.diff(boundaries).astype(np.float64)
        partition_bytes = np.array(
            [
                self.read_lengths[boundaries[r]: boundaries[r + 1]].sum()
                for r in range(num_ranks)
            ],
            dtype=np.float64,
        )
        tasks_per_rank = np.bincount(assigned, minlength=num_ranks).astype(np.float64)
        compute_seconds = segment_sums(self.task_costs, assigned, num_ranks)

        both_local = owner_a == owner_b
        local_pair_seconds = segment_sums(
            self.task_costs[both_local], assigned[both_local], num_ranks
        )

        lookups, lookup_bytes, incoming, incoming_bytes = _dedup_remote(
            assigned, plan.remote_read, self.read_lengths, boundaries, num_ranks
        )

        out = WorkloadAssignment(
            name=self.name,
            num_ranks=num_ranks,
            reads_per_rank=reads_per_rank,
            partition_bytes=partition_bytes,
            tasks_per_rank=tasks_per_rank,
            compute_seconds=compute_seconds,
            local_pair_seconds=local_pair_seconds,
            lookups=lookups,
            lookup_bytes=lookup_bytes,
            incoming_lookups=incoming,
            incoming_bytes=incoming_bytes,
            total_reads=self.n_reads,
            total_tasks=self.n_tasks,
        )
        self.assignment_cache.put(num_ranks, out)
        return out


@dataclass
class TaskCostDistribution:
    """Mixture model of per-task alignment cost (DESIGN.md §2).

    With probability ``fp_rate`` the candidate is a false positive and the
    X-drop extension dies after a handful of antidiagonals (a small constant
    cost).  Otherwise the pair truly overlaps: the aligned length is a
    uniform fraction of the shorter read and the kernel sweeps its band
    along it.  A final ``scale`` calibrates the mixture's mean to the
    paper's single-core anchors (``MEAN_TASK_COST``).
    """

    cost_model: AlignmentCostModel
    fp_rate: float = 0.3
    min_overlap_frac: float = 0.1
    scale: float = 1.0
    #: lognormal sigma of the per-task cost multiplier: beyond overlap-length
    #: variation, individual extensions vary with error placement, X-drop
    #: wander, and early-termination depth (§4.2 "cannot be easily
    #: determined before runtime").
    task_sigma: float = 1.0

    def sample_seconds(
        self,
        len_a: np.ndarray,
        len_b: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        n = len_a.size
        fp = rng.random(n) < self.fp_rate
        frac = rng.uniform(self.min_overlap_frac, 1.0, n)
        overlap = frac * np.minimum(len_a, len_b)
        seconds = self.cost_model.task_seconds(overlap, fp)
        if self.task_sigma > 0:
            mu = -0.5 * self.task_sigma**2  # mean-one multiplier
            seconds = seconds * rng.lognormal(mu, self.task_sigma, n)
        return self.scale * seconds

    def calibrate(self, mean_len: float, sigma: float, target_mean: float,
                  rng: np.random.Generator, sample: int = 200_000) -> None:
        """Set ``scale`` so the mixture's mean cost equals ``target_mean``."""
        mu = np.log(mean_len) - 0.5 * sigma**2
        la = rng.lognormal(mu, sigma, sample)
        lb = rng.lognormal(mu, sigma, sample)
        self.scale = 1.0
        empirical = float(self.sample_seconds(la, lb, rng).mean())
        self.scale = target_mean / empirical


class StatisticalWorkload:
    """Table-1-exact workload generated from calibrated distributions.

    Read lengths are materialized once (block-deterministic).  Per machine
    size ``P``, per-rank task aggregates are drawn from per-``(P, rank)``
    RNG streams: task counts are balanced exactly (the paper's by-count
    partitioning), task partners are uniform over reads (SRA read order is
    unstructured relative to genome position, so the stage-1 partition sees
    an unstructured interaction graph — the "no inherent locality" property
    of §1), and costs come from :class:`TaskCostDistribution`.

    Determinism: identical ``(spec, seed, P)`` reproduce bit-identical
    assignments; totals (reads, tasks, bytes moved) are P-independent.
    """

    #: reads generated per RNG block (keeps draws P-independent)
    BLOCK = 1 << 16

    #: Cluster dispersion coefficients.  Task costs and remote-read demand
    #: are not independent across a rank's tasks: reads from the same genome
    #: region (repeats, high-error stretches, hubs of the overlap graph)
    #: cluster on the rank that owns them, so per-rank sums fluctuate like
    #: sums of T/P *correlated clusters* rather than T/P independent tasks.
    #: The net effect is a mean-one lognormal per-rank multiplier with
    #: ``sigma = kappa * sqrt(P / T)`` — shrinking as more tasks average out
    #: (1 node) and growing toward the strong-scaling limit, which is
    #: exactly the behaviour of the paper's load imbalance (Figure 5) and
    #: exchange-load spread (Figure 6).
    cost_kappa: float = 6.0
    comm_kappa: float = 8.0

    def __init__(
        self,
        spec: DatasetSpec,
        seed: int = 0,
        cost_model: AlignmentCostModel | None = None,
        fp_rate: float = 0.3,
    ):
        if spec.n_reads <= 0 or spec.n_tasks <= 0:
            raise ConfigurationError(
                f"dataset {spec.name!r} has no statistical totals; "
                "sequence-level presets must go through the real pipeline"
            )
        self.spec = spec
        self.name = spec.name
        self.seed = seed
        # stable (non-salted) name hash so runs reproduce across processes
        name_key = sum((i + 1) * ord(c) for i, c in enumerate(spec.name)) % (2**31)
        self.rngs = RngFactory(seed).child(name_key)
        self.cost_model = cost_model or AlignmentCostModel()
        self.read_lengths = self._generate_read_lengths()
        self.cost_dist = TaskCostDistribution(self.cost_model, fp_rate=fp_rate)
        target = MEAN_TASK_COST.get(spec.name)
        if target is None:
            # datasets without a paper anchor: extrapolate from read scale
            target = float(
                self.cost_model.task_seconds(0.55 * spec.mean_read_length)
            )
        self.cost_dist.calibrate(
            spec.mean_read_length,
            spec.length_sigma,
            target,
            self.rngs.stream("workload-block", 0xC0DE),
        )
        self.assignment_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        # stage-1 partition memo: boundaries and byte shares depend only on
        # (read_lengths, P), and the byte prefix not even on P — recomputing
        # both on every assignment-cache miss was pure waste (hit counters
        # observable via partition_cache.stats())
        self.partition_cache: LruCache = LruCache(ASSIGNMENT_CACHE_CAP)
        self._prefix: np.ndarray | None = None

    # -- reads ---------------------------------------------------------------

    def _generate_read_lengths(self) -> np.ndarray:
        spec = self.spec
        mu = np.log(spec.mean_read_length) - 0.5 * spec.length_sigma**2
        n = spec.n_reads
        out = np.empty(n, dtype=np.int64)
        lo = max(200, int(spec.mean_read_length / 8))
        hi = int(spec.mean_read_length * 8)
        for b0 in range(0, n, self.BLOCK):
            b1 = min(b0 + self.BLOCK, n)
            rng = self.rngs.stream("workload-block", 1, b0 // self.BLOCK)
            lengths = rng.lognormal(mu, spec.length_sigma, b1 - b0)
            out[b0:b1] = np.clip(lengths, lo, hi).astype(np.int64)
        return out

    @property
    def n_reads(self) -> int:
        return self.spec.n_reads

    @property
    def n_tasks(self) -> int:
        return self.spec.n_tasks

    @property
    def total_read_bytes(self) -> int:
        return int(self.read_lengths.sum())

    # -- per-P rendering -------------------------------------------------------

    def _partition(self, num_ranks: int):
        """Memoized stage-1 shares: (boundaries, reads/rank, bytes/rank)."""

        def build():
            boundaries = partition_reads_by_size(self.read_lengths, num_ranks)
            if self._prefix is None:
                self._prefix = np.concatenate(
                    [[0], np.cumsum(self.read_lengths)]
                )
            return (
                boundaries,
                np.diff(boundaries).astype(np.float64),
                np.diff(self._prefix[boundaries]).astype(np.float64),
            )

        return self.partition_cache.get_or_create(num_ranks, build)

    def assignment(self, num_ranks: int) -> WorkloadAssignment:
        """Render the per-rank arrays for ``num_ranks`` ranks (LRU-cached)."""
        cached = self.assignment_cache.get(num_ranks)
        if cached is not None:
            return cached

        n_reads = self.n_reads
        n_tasks = self.n_tasks
        lengths = self.read_lengths
        boundaries, reads_per_rank, partition_bytes = \
            self._partition(num_ranks)

        base, extra = divmod(n_tasks, num_ranks)
        tasks_per_rank = np.full(num_ranks, base, dtype=np.float64)
        tasks_per_rank[:extra] += 1

        compute_seconds = np.zeros(num_ranks)
        local_pair_seconds = np.zeros(num_ranks)
        lookups = np.zeros(num_ranks)
        lookup_bytes = np.zeros(num_ranks)
        incoming = np.zeros(num_ranks)
        incoming_bytes = np.zeros(num_ranks)

        cluster_scale = np.sqrt(num_ranks / n_tasks)
        cost_sigma = self.cost_kappa * cluster_scale
        comm_sigma = self.comm_kappa * cluster_scale

        for rank in range(num_ranks):
            n_r = int(tasks_per_rank[rank])
            if n_r == 0:
                continue
            rng = self.rngs.stream("workload-block", 2, num_ranks, rank)
            # local read of each task: one of this rank's reads (by byte
            # weight a longer read seeds more tasks, but uniform-by-read is
            # an adequate model for cost purposes)
            lo_r, hi_r = int(boundaries[rank]), int(boundaries[rank + 1])
            if hi_r > lo_r:
                local_reads = rng.integers(lo_r, hi_r, n_r)
            else:
                local_reads = rng.integers(0, n_reads, n_r)
            partners = rng.integers(0, n_reads, n_r)

            len_local = lengths[local_reads].astype(np.float64)
            len_partner = lengths[partners].astype(np.float64)
            costs = self.cost_dist.sample_seconds(len_local, len_partner, rng)
            if cost_sigma > 0:
                costs = costs * float(
                    rng.lognormal(-0.5 * cost_sigma**2, cost_sigma)
                )
            compute_seconds[rank] = costs.sum()

            partner_local = (partners >= lo_r) & (partners < hi_r)
            local_pair_seconds[rank] = costs[partner_local].sum()

            remote = np.unique(partners[~partner_local])
            lookups[rank] = remote.size
            remote_lengths = lengths[remote].astype(np.float64)
            lookup_bytes[rank] = remote_lengths.sum()
            owners = owners_from_boundaries(remote, boundaries)
            # O(n_r) scatter-adds, not O(P) temporaries: at 32K ranks an
            # O(P)-per-rank accumulation would be quadratic in P
            np.add.at(incoming, owners, 1.0)
            np.add.at(incoming_bytes, owners, remote_lengths)

        if comm_sigma > 0 and num_ranks > 1:
            # per-rank demand clustering (Figure 6's exchange-load spread);
            # the serve side is rescaled so requester/server totals match
            rng = self.rngs.stream("workload-block", 3, num_ranks)
            factor = rng.lognormal(-0.5 * comm_sigma**2, comm_sigma, num_ranks)
            old_lookups, old_bytes = lookups.sum(), lookup_bytes.sum()
            lookups *= factor
            lookup_bytes *= factor
            if old_lookups > 0:
                incoming *= lookups.sum() / old_lookups
                incoming_bytes *= lookup_bytes.sum() / old_bytes

        out = WorkloadAssignment(
            name=self.name,
            num_ranks=num_ranks,
            reads_per_rank=reads_per_rank,
            partition_bytes=partition_bytes,
            tasks_per_rank=tasks_per_rank,
            compute_seconds=compute_seconds,
            local_pair_seconds=local_pair_seconds,
            lookups=lookups,
            lookup_bytes=lookup_bytes,
            incoming_lookups=incoming,
            incoming_bytes=incoming_bytes,
            total_reads=n_reads,
            total_tasks=n_tasks,
        )
        self.assignment_cache.put(num_ranks, out)
        return out
