"""The bulk-synchronous (BSP) engine (§3.1).

Reads are exchanged in an irregular all-to-all (``MPI_Alltoall`` +
``MPI_Alltoallv`` in the original), maximally aggregated; pairwise
alignments for each received read are computed when the read is taken from
the message buffer.  When the aggregated exchange does not fit in per-node
memory, the engine performs **multiple dynamically-sized communication and
computation rounds** — the paper's refactoring of DiBELLA's third stage, and
the mechanism behind Figures 9 and 11.

Timeline of one run (macro model, per round ``i`` of ``R``)::

    [ exchange_i (comm) ][ compute_i | wait for slowest (sync) ] ... repeat

The exchange is a blocking collective: every rank experiences the full
round duration, split into its personal send/recv cost (comm) and waiting
on more-loaded ranks (sync) — exchange load imbalance (Figure 6) surfaces
as BSP synchronization/latency.  Compute phases end at the slowest rank
(task-cost load imbalance, Figure 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.report import PhaseTimers, RunResult, RuntimeBreakdown
from repro.errors import ConfigurationError, RankFailureError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.machine.noise import NoiseModel
from repro.obs import (
    ENGINE_LANE,
    MetricsRegistry,
    Tracer,
    assert_conserved,
    check_trace,
    get_default_tracer,
)
from repro.pipeline.workload import WorkloadAssignment
from repro.utils.rng import RngFactory
from repro.utils.units import MB

__all__ = ["BSPEngine"]

#: fixed per-rank footprint: program image + MPI runtime + output buffers
RUNTIME_BASE_MEMORY = 100 * MB
#: flat-array task record: read ids, positions, flags, cost (BSP layout)
BSP_TASK_RECORD_BYTES = 40.0


@dataclass
class BSPEngine:
    """Macro-granularity simulator of the bulk-synchronous implementation."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "bsp"

    # -- round sizing (the §3.1 dynamic superstep logic) --------------------

    def exchange_budget(self, machine: MachineSpec,
                        assignment: WorkloadAssignment) -> float:
        """Receive-buffer bytes one rank may devote to a single round."""
        fixed = (
            RUNTIME_BASE_MEMORY
            + float(assignment.partition_bytes.max(initial=0.0))
            + float(assignment.tasks_per_rank.max(initial=0.0))
            * BSP_TASK_RECORD_BYTES
        )
        free = machine.app_memory_per_rank - fixed
        if free <= 0:
            raise ConfigurationError(
                "per-rank memory cannot hold even the input partition; "
                "use more nodes (the paper needs >= 8 nodes for Human CCS)"
            )
        return self.config.exchange_memory_fraction * free

    def num_rounds(self, machine: MachineSpec,
                   assignment: WorkloadAssignment) -> int:
        """Rounds needed so every rank's round receive fits its budget."""
        budget = self.exchange_budget(machine, assignment)
        max_recv = float(assignment.recv_bytes.max(initial=0.0))
        return max(1, int(np.ceil(max_recv / budget)))

    # -- simulation ----------------------------------------------------------

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        if assignment.num_ranks != machine.total_ranks:
            raise ConfigurationError(
                f"assignment is for {assignment.num_ranks} ranks but machine "
                f"has {machine.total_ranks}"
            )
        P = machine.total_ranks
        tracer = tracer if tracer is not None else get_default_tracer()
        if tracer is not None:
            tracer.begin_run(
                f"{self.name} {assignment.name} nodes={machine.nodes} P={P}"
            )
        net = NetworkModel(machine)
        noise = NoiseModel(machine, RngFactory(self.config.seed),
                           noise_fraction=self.config.noise_fraction)
        timers = PhaseTimers(P)

        rounds = self.num_rounds(machine, assignment)
        send = assignment.send_bytes
        recv = assignment.recv_bytes
        # how many peers a typical rank exchanges nonempty messages with:
        # bounded by its distinct remote reads and by P-1
        avg_sources = float(np.minimum(assignment.lookups, P - 1).mean()) if P > 1 else 1.0

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        compute = np.zeros(P) if comm_only else assignment.compute_seconds
        internode = 1.0 - 1.0 / machine.nodes
        overhead = (
            assignment.tasks_per_rank * self.config.bsp_task_overhead
            + assignment.lookups * self.config.bsp_read_overhead * internode
        )

        eff_scale = self.config.multiround_efficiency if rounds > 1 else 1.0
        factors = noise.factors(P)
        wall = 0.0
        exchange_total = 0.0
        # fault bookkeeping: survivors absorb dead ranks' per-round quotas
        alive = np.ones(P, dtype=bool)
        ranks_lost: list[int] = []
        tasks_redistributed = 0.0
        redist_counts = np.zeros(P)
        retry_counts = np.zeros(P)
        for r in range(rounds):
            t0 = wall  # superstep start
            if tracer is not None:
                tracer.instant(ENGINE_LANE, "superstep", t0,
                               round=r, rounds=rounds)
            if faults is not None:
                for kill in faults.plan.kills:
                    if not (alive[kill.rank] and kill.time <= t0):
                        continue
                    if not faults.plan.redistribute:
                        raise RankFailureError(
                            f"rank {kill.rank} died at t={kill.time:.6g}s "
                            f"before BSP round {r}; add 'redistribute' to "
                            f"the fault plan for graceful degradation"
                        )
                    alive[kill.rank] = False
                    ranks_lost.append(kill.rank)
                    faults.note_kill(kill.rank)
                    if tracer is not None:
                        tracer.instant(ENGINE_LANE, "fault_inject", t0,
                                       kind="rank_kill", victim=kill.rank,
                                       round=r)
                    if metrics is not None:
                        metrics.inc("faults_injected", kill.rank)
                if not alive.any():
                    raise RankFailureError(
                        "every rank died before the run finished; nothing "
                        "left to redistribute to"
                    )
            n_alive = int(alive.sum())

            def spread(x: np.ndarray) -> np.ndarray:
                """This round's per-rank quota of x, dead ranks' share
                redistributed equally over the survivors."""
                xr = x / rounds
                if n_alive == P:
                    return xr
                lost = float(xr[~alive].sum())
                return np.where(alive, xr + lost / n_alive, 0.0)

            round_send = spread(send)
            round_recv = spread(recv)
            if n_alive < P:
                moved = float(
                    (assignment.tasks_per_rank / rounds)[~alive].sum()
                )
                tasks_redistributed += moved
                redist_counts[alive] += moved / n_alive

            # --- exchange phase (blocking collective) ---
            # a rank exchanges with roughly the same peer set every round;
            # splitting volume across rounds shrinks per-source messages
            round_sources = avg_sources
            duration = net.alltoallv_time(
                round_send.max(initial=0.0),
                round_recv.max(initial=0.0),
                round_sources,
                efficiency_scale=eff_scale,
            )
            personal = np.array([
                net.alltoallv_rank_time(
                    float(round_send[i]), float(round_recv[i]),
                    round_sources,
                    efficiency_scale=eff_scale,
                )
                for i in range(P)
            ])
            if faults is not None:
                # degraded links dilate the whole exchange window
                dil = faults.mean_link_dilation(t0, t0 + duration)
                duration *= dil
                personal *= dil
            personal = np.minimum(personal, duration)
            comm_round = np.where(alive, personal, 0.0)

            attempts = faults.exchange_attempts(r) if faults is not None else 1
            for a in range(attempts):
                ta = wall
                timers.add_array("comm", comm_round)
                timers.add_array("sync", duration - comm_round)
                wall += duration
                exchange_total += duration
                retried = a < attempts - 1
                if retried:
                    retry_counts[alive] += 1
                    if metrics is not None:
                        for i in np.flatnonzero(alive):
                            metrics.inc("exchange_retries", int(i))
                if tracer is not None:
                    if retried:
                        tracer.instant(ENGINE_LANE, "exchange_retry", ta,
                                       round=r, attempt=a + 1)
                    label = (f"exchange[{r}]!a{a}" if retried
                             else f"exchange[{r}]")
                    for i in range(P):
                        p_comm = float(comm_round[i])
                        if p_comm > 0:
                            tracer.phase(i, "comm", ta, p_comm, name=label)
                        if duration - p_comm > 0:
                            tracer.phase(i, "sync", ta + p_comm,
                                         duration - p_comm,
                                         name=f"exchange-skew[{r}]")

            # --- compute phase (ends at the slowest rank) ---
            tc = wall
            align_part = factors * spread(compute)
            phase = align_part + factors * spread(overhead)
            if faults is not None:
                # stragglers dilate busy time inside their windows
                straggle = np.array([
                    faults.mean_straggle_factor(i, tc, tc + float(phase[i]))
                    if alive[i] else 1.0
                    for i in range(P)
                ])
                align_part = align_part * straggle
                phase = phase * straggle
            phase_end = float(phase.max(initial=0.0))
            timers.add_array("compute_align", align_part)
            timers.add_array("compute_overhead", phase - align_part)
            timers.add_array("sync", phase_end - phase)
            wall += phase_end

            if tracer is not None:
                for i in range(P):
                    a_ = float(align_part[i])
                    o = float(phase[i]) - a_
                    for cat, start, dur, label in (
                        ("compute_align", tc, a_, f"align[{r}]"),
                        ("compute_overhead", tc + a_, o, f"overhead[{r}]"),
                        ("sync", tc + float(phase[i]),
                         phase_end - float(phase[i]), f"compute-wait[{r}]"),
                    ):
                        if dur > 0:
                            tracer.phase(i, cat, start, dur, name=label)

        # final barrier closing the last superstep
        bar = net.barrier_time()
        timers.add_array("sync", np.full(P, bar))
        if tracer is not None:
            for i in range(P):
                tracer.phase(i, "sync", wall, bar, name="exit-barrier")
        wall += bar

        # deaths inside the final superstep surface at the exit barrier:
        # the rank's last contribution already merged, so in redistribute
        # mode there is nothing left to redo — the run just records the loss
        if faults is not None:
            for kill in faults.plan.kills:
                if not (alive[kill.rank] and kill.time < wall):
                    continue
                if not faults.plan.redistribute:
                    raise RankFailureError(
                        f"rank {kill.rank} died at t={kill.time:.6g}s during "
                        f"the final superstep (detected at the exit "
                        f"barrier); add 'redistribute' to the fault plan "
                        f"for graceful degradation"
                    )
                alive[kill.rank] = False
                ranks_lost.append(kill.rank)
                faults.note_kill(kill.rank)
                if tracer is not None:
                    tracer.instant(ENGINE_LANE, "fault_inject", kill.time,
                                   kind="rank_kill", victim=kill.rank)
                if metrics is not None:
                    metrics.inc("faults_injected", kill.rank)

        breakdown = RuntimeBreakdown(
            engine=self.name,
            machine=machine,
            workload=assignment.name,
            wall_time=wall,
            compute_align=timers.get("compute_align"),
            compute_overhead=timers.get("compute_overhead"),
            comm=timers.get("comm"),
            sync=timers.get("sync"),
        )
        breakdown.validate()
        if tracer is not None:
            # the emitted event stream must independently tile the wall clock
            assert_conserved(check_trace(tracer, wall, P))
        if metrics is not None:
            metrics.add_array("tasks", assignment.tasks_per_rank)
            metrics.add_array("lookups", assignment.lookups)
            metrics.add_array("bytes_sent", send)
            metrics.add_array("bytes_recv", recv)
            if faults is not None and tasks_redistributed:
                metrics.add_array("tasks_redistributed", redist_counts)

        memory = (
            RUNTIME_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * BSP_TASK_RECORD_BYTES
            + (recv + send) / rounds  # receive buffer + send staging
        )
        details = {
            "exchange_budget": self.exchange_budget(machine, assignment),
            "avg_sources": avg_sources,
            "exchange_time_total": exchange_total,
        }
        if faults is not None:
            details["fault_plan"] = faults.plan.describe()
            details["faults_injected"] = faults.total_injected
            details["fault_kinds"] = dict(faults.injected)
            details["exchange_retries"] = int(retry_counts.max(initial=0.0))
            details["tasks_redistributed"] = tasks_redistributed
            details["ranks_lost"] = ranks_lost
        return RunResult(
            breakdown=breakdown,
            memory_high_water=memory,
            exchange_rounds=rounds,
            details=details,
        )
