"""Tests for the message-level (micro) engines on a concrete workload."""

import numpy as np
import pytest

from repro.core.api import get_workload
from repro.engines.base import EngineConfig
from repro.engines.micro import MicroAsyncEngine, MicroBSPEngine
from repro.errors import ConfigurationError
from repro.machine.config import cori_knl


@pytest.fixture(scope="module")
def wl():
    return get_workload("micro", seed=11)


@pytest.fixture(scope="module")
def machine():
    return cori_knl(2, app_cores_per_node=8)  # 16 ranks


def test_micro_bsp_runs(wl, machine):
    res = MicroBSPEngine().run(wl, machine)
    assert res.wall_time > 0
    res.breakdown.validate(rtol=0.05)
    assert res.breakdown.summary("compute_align").sum == pytest.approx(
        wl.task_costs.sum(), rel=1e-9
    )


def test_micro_async_runs(wl, machine):
    res = MicroAsyncEngine().run(wl, machine)
    assert res.wall_time > 0
    assert res.breakdown.summary("compute_align").sum == pytest.approx(
        wl.task_costs.sum(), rel=1e-9
    )
    # every distinct (rank, remote read) pair pulled exactly once
    a = wl.assignment(machine.total_ranks)
    assert res.details["rpc_calls"] == int(a.lookups.sum())


def test_micro_engines_reject_huge_rank_counts(wl):
    with pytest.raises(ConfigurationError):
        MicroBSPEngine().run(wl, cori_knl(128))


def test_micro_real_kernel_produces_alignments():
    wl = get_workload("micro", seed=11)
    machine = cori_knl(1, app_cores_per_node=4)
    res = MicroAsyncEngine().run(wl, machine, kernel="real")
    assert res.alignments is not None
    assert len(res.alignments) == wl.n_tasks
    scores = np.array([a.score for a in res.alignments])
    assert np.all(scores >= 0)
    # true 30x-coverage overlaps: most alignments should extend well past
    # the bare 13-mer seed
    assert np.mean(scores > 13) > 0.5


def test_micro_bsp_and_async_compute_identical_work(wl, machine):
    bsp = MicroBSPEngine().run(wl, machine)
    asy = MicroAsyncEngine().run(wl, machine)
    assert bsp.breakdown.summary("compute_align").sum == pytest.approx(
        asy.breakdown.summary("compute_align").sum
    )


def test_micro_comm_only_mode(wl, machine):
    cfg = EngineConfig().comm_only()
    bsp = MicroBSPEngine(config=cfg).run(wl, machine)
    asy = MicroAsyncEngine(config=cfg).run(wl, machine)
    assert bsp.breakdown.summary("compute_align").sum == 0
    assert asy.breakdown.summary("compute_align").sum == 0
    assert bsp.wall_time > 0 and asy.wall_time > 0


def test_micro_async_window_respected(wl, machine):
    # a window of 1 serializes pulls: strictly more visible latency than a
    # wide window
    narrow = MicroAsyncEngine(config=EngineConfig(async_window=1)).run(wl, machine)
    wide = MicroAsyncEngine(config=EngineConfig(async_window=256)).run(wl, machine)
    assert narrow.wall_time >= wide.wall_time


def test_micro_deterministic(wl, machine):
    r1 = MicroAsyncEngine().run(wl, machine)
    r2 = MicroAsyncEngine().run(wl, machine)
    assert r1.wall_time == r2.wall_time
