"""Setup shim for environments without PEP-660 editable-install support.

All real metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` works with older pip/setuptools (no `wheel` package),
falling back to the legacy ``setup.py develop`` code path.
"""
from setuptools import setup

setup()
