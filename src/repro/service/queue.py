"""Admission-controlled run queue: many jobs, fixed compute.

The multiplexing layer between the job API and the engines.  A
:class:`RunQueue` owns:

* a **bounded backlog** — submissions beyond ``backlog`` queued jobs are
  rejected with the typed :class:`~repro.errors.QueueFullError` (the HTTP
  layer maps it to 429), so overload produces backpressure instead of an
  unbounded queue;
* **FIFO-with-priority scheduling** — a heap ordered by
  ``(-priority, submission_seq)``; only the head is ever considered for
  admission (no low-priority bypass when the head is waiting on
  resources), which makes admission order a testable contract;
* **admission control** — ``slots`` worker threads, plus a per-job budget
  of worker processes and bytes charged against a
  :class:`~repro.machine.memory.NodeMemory` ledger, so concurrent jobs
  cannot oversubscribe the process pool or the node: a job is admitted
  only when both its worker count and its memory estimate fit what is
  currently free.  Budgets that could *never* fit are rejected at submit
  (fail fast, not deadlock);
* **single-flight execution** — submissions whose
  :meth:`~repro.service.jobs.JobRequest.cache_key` matches an in-flight
  job coalesce onto it as followers: the engine runs **once** and every
  follower receives the same :class:`~repro.engines.report.RunResult`
  object (bit-identical signatures), marked ``cache_source="coalesced"``;
* a **result cache** — completed results publish to the
  :class:`~repro.service.cache.ResultCache` under the request's canonical
  key, so an identical later submission completes instantly with
  ``cache_hit=True`` and the exact cached result;
* **cancellation** — QUEUED jobs cancel immediately (a cancelled leader
  promotes its oldest follower to a fresh queue entry); RUNNING jobs get
  a flag the :class:`~repro.service.events.ProgressTracer` checks at
  every trace event, aborting the engine mid-run with
  :class:`~repro.errors.JobCancelledError` while its ``with``-held
  executors tear down cleanly (no shared-memory leak — the stress test
  asserts ``active_shm_segments()`` empties);
* **clean shutdown** — jobs still QUEUED are cancelled with the typed
  :class:`~repro.errors.JobCancelledError` (never silently dropped, never
  hanging the server thread), running jobs either finish or — with
  ``cancel_running=True`` — abort via the same flag, and the worker
  threads are joined.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading

from repro.engines.report import RunResult
from repro.errors import (
    ConfigurationError,
    JobCancelledError,
    MemoryLimitError,
    QueueFullError,
    ServiceError,
)
from repro.machine.memory import NodeMemory
from repro.service.cache import ResultCache
from repro.service.jobs import Job, JobRequest, JobState, execute_request
from repro.utils.units import fmt_bytes

__all__ = ["RunQueue", "DEFAULT_SERVICE_MEMORY_BYTES",
           "BASE_JOB_BYTES", "PER_WORKER_BYTES", "REAL_KERNEL_BYTES"]

#: default service memory budget jobs are admitted against (2 GiB)
DEFAULT_SERVICE_MEMORY_BYTES = 2 * 1024 ** 3

#: admission estimate: every job charges this floor (workload columns,
#: assignment arrays, result vectors)
BASE_JOB_BYTES = 32 * 1024 ** 2

#: admission estimate: each process-backend worker adds a forked
#: interpreter plus its shared-memory attachments
PER_WORKER_BYTES = 16 * 1024 ** 2

#: admission estimate: real-kernel runs additionally hold the read store
#: and the shared output array
REAL_KERNEL_BYTES = 64 * 1024 ** 2


class RunQueue:
    """Bounded, budgeted, single-flight job queue over the engines.

    ``slots`` is the number of concurrently *running* jobs (one worker
    thread each); ``total_workers`` bounds the summed process-pool
    workers of admitted jobs (defaults to the machine's core count);
    ``memory_bytes`` is the admission ledger capacity.  Use as a context
    manager, or call :meth:`shutdown` — queued jobs are then cancelled
    with the typed error rather than left to hang.
    """

    def __init__(
        self,
        slots: int = 2,
        backlog: int = 64,
        total_workers: int | None = None,
        memory_bytes: float = DEFAULT_SERVICE_MEMORY_BYTES,
        cache: ResultCache | None = None,
        phase_stride: int = 1,
        start: bool = True,
    ):
        if slots < 1:
            raise ConfigurationError("RunQueue needs slots >= 1")
        if backlog < 1:
            raise ConfigurationError("RunQueue needs backlog >= 1")
        self.slots = slots
        self.backlog = backlog
        self.phase_stride = phase_stride
        self.cache = cache if cache is not None else ResultCache()
        self._cond = threading.Condition()
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._jobs: dict[str, Job] = {}
        self._keys: dict[str, str] = {}
        self._inflight: dict[str, Job] = {}
        self._followers: dict[str, list[Job]] = {}
        self._mem = NodeMemory(capacity=float(memory_bytes))
        self._workers_total = total_workers or (os.cpu_count() or 1)
        self._workers_free = self._workers_total
        self._shutdown = False
        #: job ids in the order admission granted them resources — the
        #: observable priority contract (tests assert on it)
        self.admission_order: list[str] = []
        self._executions: dict[str, int] = {}
        self._counters = {
            "submitted": 0, "executed": 0, "cache_hits": 0,
            "coalesced": 0, "failed": 0, "cancelled": 0, "rejected": 0,
        }
        self._threads: list[threading.Thread] = []
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            return
        self._threads = [
            threading.Thread(target=self._worker_loop,
                             name=f"runqueue-slot{i}", daemon=True)
            for i in range(self.slots)
        ]
        for t in self._threads:
            t.start()

    def __enter__(self) -> "RunQueue":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def shutdown(self, cancel_running: bool = False,
                 timeout: float = 60.0) -> None:
        """Stop accepting, cancel the backlog, join the workers.

        Every job still QUEUED — heap leaders and their followers alike —
        is moved to CANCELLED with a typed
        :class:`~repro.errors.JobCancelledError` recorded, so no client
        is left streaming a job that will never run.  Running jobs finish
        normally unless ``cancel_running`` flags them for the tracer
        abort.  Idempotent.
        """
        with self._cond:
            self._shutdown = True
            drained: list[Job] = []
            while self._heap:
                _, _, job = heapq.heappop(self._heap)
                if job.done:
                    continue
                drained.append(job)
            for job in drained:
                followers = [f for f in self._followers.pop(job.id, [])
                             if not f.done]
                key = self._keys[job.id]
                if self._inflight.get(key) is job:
                    del self._inflight[key]
                for j in (job, *followers):
                    j.cancelled(
                        "queue shut down before the job was admitted "
                        "(JobCancelledError)"
                    )
                    self._counters["cancelled"] += 1
            if cancel_running:
                for job in self._jobs.values():
                    if job.state in (JobState.ADMITTED, JobState.RUNNING):
                        job.request_cancel()
            self._cond.notify_all()
        for t in self._threads:
            t.join(timeout)

    # -- submission ----------------------------------------------------------

    def _budget(self, request: JobRequest) -> dict:
        """Admission estimate: worker processes + bytes for one request.

        Mirrors the executor's sizing rules: serial and model-kernel jobs
        hold one worker (the slot thread itself); ``process`` holds its
        configured pool; ``auto`` with the default ``workers=1`` would
        build a one-per-core pool capped at 8
        (:class:`~repro.runtime.executor.AutoExecutor`), so that is what
        admission reserves.
        """
        cfg = request.engine_config()
        workers = 1
        if request.kernel == "real" and cfg.backend != "serial":
            if cfg.backend == "auto" and cfg.workers == 1:
                workers = max(1, min(os.cpu_count() or 1, 8))
            else:
                workers = max(1, cfg.workers)
        nbytes = BASE_JOB_BYTES + workers * PER_WORKER_BYTES
        if request.kernel == "real":
            nbytes += REAL_KERNEL_BYTES
        return {"workers": workers, "bytes": float(nbytes)}

    def submit(self, request: JobRequest) -> Job:
        """Validate, dedupe, admit-or-queue one request; returns its Job.

        Raises :class:`~repro.errors.QueueFullError` when the backlog is
        at capacity (HTTP 429), :class:`~repro.errors.ConfigurationError`
        on an invalid or never-admittable request, and
        :class:`~repro.errors.ServiceError` after shutdown.
        """
        request.validate()
        key = request.cache_key()
        budget = self._budget(request)
        if budget["workers"] > self._workers_total:
            raise ConfigurationError(
                f"request needs {budget['workers']} pool workers but the "
                f"queue budget is {self._workers_total}; lower workers= or "
                f"raise total_workers"
            )
        if budget["bytes"] > self._mem.capacity:
            raise ConfigurationError(
                f"request is budgeted at {fmt_bytes(budget['bytes'])} but "
                f"the queue's memory ledger holds "
                f"{fmt_bytes(self._mem.capacity)}; it could never be "
                f"admitted"
            )
        job = Job(request)
        job.budget = budget
        with self._cond:
            if self._shutdown:
                raise ServiceError("queue is shut down; not accepting jobs")
            self._jobs[job.id] = job
            self._keys[job.id] = key
            self._counters["submitted"] += 1
            cached = self.cache.get(key)
            if cached is not None:
                self._counters["cache_hits"] += 1
                job.finish(cached, cache_hit=True, source="cache")
                return job
            leader = self._inflight.get(key)
            if leader is not None and not leader.done:
                job.coalesced_into = leader.id
                self._followers.setdefault(leader.id, []).append(job)
                self._counters["coalesced"] += 1
                return job
            if len(self._heap) >= self.backlog:
                del self._jobs[job.id]
                del self._keys[job.id]
                self._counters["submitted"] -= 1
                self._counters["rejected"] += 1
                raise QueueFullError(
                    f"backlog full ({self.backlog} queued jobs); "
                    f"retry after the queue drains"
                )
            heapq.heappush(self._heap, (-job.priority, next(self._seq), job))
            self._inflight[key] = job
            self._cond.notify()
        return job

    # -- queries -------------------------------------------------------------

    def get(self, job_id: str) -> Job:
        with self._cond:
            job = self._jobs.get(job_id)
        if job is None:
            raise ConfigurationError(f"unknown job {job_id!r}")
        return job

    def jobs(self) -> list[Job]:
        """All known jobs, submission-ordered."""
        with self._cond:
            return list(self._jobs.values())

    def executions(self, key: str) -> int:
        """Engine executions performed for one cache key (dedup oracle)."""
        with self._cond:
            return self._executions.get(key, 0)

    def stats(self) -> dict:
        with self._cond:
            running = sum(
                1 for j in self._jobs.values()
                if j.state in (JobState.ADMITTED, JobState.RUNNING)
            )
            return {
                **self._counters,
                "backlog": len(self._heap),
                "running": running,
                "slots": self.slots,
                "workers_free": self._workers_free,
                "workers_total": self._workers_total,
                "memory_used": self._mem.used,
                "memory_capacity": self._mem.capacity,
                "memory_high_water": self._mem.high_water,
                "cache": self.cache.stats(),
            }

    # -- cancellation --------------------------------------------------------

    def cancel(self, job_id: str) -> Job:
        """Cancel one job; immediate when QUEUED, flagged when RUNNING.

        A queued leader with coalesced followers promotes its oldest
        live follower to a fresh queue entry, so one client's DELETE
        never discards another client's work.  Cancelling a running
        leader *does* cancel its followers — the single execution they
        were riding is aborted (documented in docs/SERVICE.md).
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ConfigurationError(f"unknown job {job_id!r}")
            if job.done:
                return job
            if job.state == JobState.QUEUED:
                if job.coalesced_into is not None:
                    peers = self._followers.get(job.coalesced_into, [])
                    if job in peers:
                        peers.remove(job)
                else:
                    self._promote_followers(job)
                job.cancelled("cancelled by client request")
                self._counters["cancelled"] += 1
                self._cond.notify_all()
                return job
            job.request_cancel()
            return job

    def _promote_followers(self, leader: Job) -> None:
        """Re-queue the oldest live follower of a cancelled queued leader."""
        key = self._keys[leader.id]
        if self._inflight.get(key) is leader:
            del self._inflight[key]
        followers = [f for f in self._followers.pop(leader.id, [])
                     if not f.done]
        if not followers:
            return
        new_leader, *rest = followers
        new_leader.coalesced_into = None
        new_leader.budget = dict(leader.budget)
        self._inflight[key] = new_leader
        for f in rest:
            f.coalesced_into = new_leader.id
        if rest:
            self._followers[new_leader.id] = rest
        heapq.heappush(
            self._heap, (-new_leader.priority, next(self._seq), new_leader)
        )

    # -- the worker loop -----------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            with self._cond:
                job = self._pop_admittable()
                while job is None:
                    if self._shutdown:
                        return
                    self._cond.wait(timeout=1.0)
                    job = self._pop_admittable()
            self._run_job(job)

    def _pop_admittable(self) -> Job | None:
        """Admit the heap head if its budget fits; None otherwise.

        Only the head is considered — FIFO-with-priority means a large
        head waiting for resources is *not* bypassed by a smaller later
        job.  Called under the condition lock.
        """
        while self._heap:
            _, _, job = self._heap[0]
            if job.done:
                heapq.heappop(self._heap)
                continue
            if job.budget["workers"] > self._workers_free:
                return None
            try:
                self._mem.allocate(job.id, job.budget["bytes"])
            except MemoryLimitError:
                return None
            self._workers_free -= job.budget["workers"]
            heapq.heappop(self._heap)
            job.mark_admitted()
            self.admission_order.append(job.id)
            return job
        return None

    def _collect_followers(self, job: Job, key: str) -> list[Job]:
        """Detach a finishing leader's followers; called under the lock."""
        followers = [f for f in self._followers.pop(job.id, [])
                     if not f.done]
        if self._inflight.get(key) is job:
            del self._inflight[key]
        return followers

    def _run_job(self, job: Job) -> None:
        key = self._keys[job.id]
        try:
            try:
                job.mark_running()
                result: RunResult = execute_request(
                    job, phase_stride=self.phase_stride
                )
            except JobCancelledError as exc:
                with self._cond:
                    followers = self._collect_followers(job, key)
                job.cancelled(str(exc))
                with self._cond:
                    self._counters["cancelled"] += 1 + len(followers)
                for f in followers:
                    f.cancelled(
                        f"coalesced leader {job.id} was cancelled mid-run"
                    )
            except Exception as exc:
                with self._cond:
                    followers = self._collect_followers(job, key)
                job.fail(exc)
                with self._cond:
                    self._counters["failed"] += 1 + len(followers)
                for f in followers:
                    f.fail(exc)
            else:
                with self._cond:
                    self.cache.put(key, result)
                    followers = self._collect_followers(job, key)
                    self._counters["executed"] += 1
                    self._executions[key] = self._executions.get(key, 0) + 1
                job.finish(result)
                for f in followers:
                    f.finish(result, cache_hit=True, source="coalesced")
        finally:
            with self._cond:
                self._mem.free(job.id)
                self._workers_free += job.budget["workers"]
                self._cond.notify_all()
