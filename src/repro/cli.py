"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``run``      simulate one engine on a workload and print the breakdown
``compare``  run both engines on identical inputs (the paper's method)
``sweep``    strong-scaling sweep over node counts
``datasets`` list the available workload presets

Examples
--------
::

    python -m repro datasets
    python -m repro run --workload ecoli100x --nodes 16 --engine async
    python -m repro compare --workload human_ccs --nodes 8
    python -m repro sweep --workload ecoli100x --nodes 1 4 16 64
"""

from __future__ import annotations

import argparse
import sys

from repro.core.api import (
    compare_engines,
    get_workload,
    run_alignment,
    scaling_sweep,
)
from repro.engines.base import EngineConfig
from repro.genome.datasets import DATASETS
from repro.perf.format import render_breakdown_rows, render_table
from repro.utils.units import fmt_bytes, fmt_time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulate the paper's BSP/Async many-to-many alignment "
                    "engines on a modeled Cori KNL.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--workload", default="ecoli100x",
                       choices=sorted(DATASETS))
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--cores-per-node", type=int, default=64)
        p.add_argument("--comm-only", action="store_true",
                       help="skip alignment computation (paper 4.3 mode)")

    p_run = sub.add_parser("run", help="run one engine")
    common(p_run)
    p_run.add_argument("--nodes", type=int, default=4)
    p_run.add_argument("--engine", default="bsp", choices=["bsp", "async"])

    p_cmp = sub.add_parser("compare", help="run both engines side by side")
    common(p_cmp)
    p_cmp.add_argument("--nodes", type=int, default=4)

    p_sweep = sub.add_parser("sweep", help="strong-scaling sweep")
    common(p_sweep)
    p_sweep.add_argument("--nodes", type=int, nargs="+",
                         default=[1, 4, 16, 64])

    sub.add_parser("datasets", help="list workload presets")
    return parser


def _config(args) -> EngineConfig:
    cfg = EngineConfig(seed=args.seed)
    return cfg.comm_only() if args.comm_only else cfg


def _print_result(name: str, res) -> None:
    f = res.breakdown.fractions()
    print(f"{name:6s} wall {fmt_time(res.wall_time):>10}  "
          f"align {100 * f['compute_align']:5.1f}%  "
          f"overhead {100 * f['compute_overhead']:4.1f}%  "
          f"comm {100 * f['comm']:5.1f}%  "
          f"sync {100 * f['sync']:5.1f}%  "
          f"rounds={res.exchange_rounds}  "
          f"mem/core {fmt_bytes(res.max_memory_per_rank)}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if args.command == "datasets":
        rows = [
            [name, spec.species,
             spec.n_reads or "synthesized", spec.n_tasks or "synthesized",
             "sequence-level" if spec.sequence_level else "statistical"]
            for name, spec in sorted(DATASETS.items())
        ]
        print(render_table("Workload presets",
                           ["name", "species", "reads", "tasks", "kind"],
                           rows))
        return 0

    workload = get_workload(args.workload, seed=args.seed)
    print(f"{args.workload}: {workload.n_reads:,} reads, "
          f"{workload.n_tasks:,} tasks")

    if args.command == "run":
        res = run_alignment(workload, args.nodes, args.engine,
                            config=_config(args),
                            cores_per_node=args.cores_per_node)
        _print_result(args.engine, res)
        return 0

    if args.command == "compare":
        results = compare_engines(workload, args.nodes, config=_config(args),
                                  cores_per_node=args.cores_per_node)
        for name, res in results.items():
            _print_result(name, res)
        bsp, asy = results["bsp"].wall_time, results["async"].wall_time
        print(f"async is {100 * (bsp / asy - 1):+.1f}% "
              f"{'faster' if asy < bsp else 'slower'}")
        return 0

    if args.command == "sweep":
        results = scaling_sweep(workload, args.nodes, config=_config(args),
                                cores_per_node=args.cores_per_node)
        print(render_table(
            f"Strong scaling {args.workload}",
            ["engine", "nodes", "wall_s", "comm%", "sync%", "align%",
             "overhead%", "rounds"],
            render_breakdown_rows(results),
        ))
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
