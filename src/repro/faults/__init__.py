"""Deterministic fault injection: plans, seeded injectors, spec parsing.

The paper's central claim — asynchrony tolerates irregularity better than
bulk synchrony — is only half-testable on a runtime that can express the
happy path alone.  This package makes the unhappy path a first-class,
*reproducible* input:

* :class:`FaultPlan` — a validated declaration of everything that goes
  wrong (dropped/delayed/duplicated RPC responses, failed exchange rounds,
  link-degradation windows, stragglers, rank deaths) plus the retry policy;
* :class:`FaultInjector` — a ``(plan, seed)`` pairing that realizes the
  plan through dedicated :class:`~repro.utils.rng.RngFactory` streams, so
  identical seeds give bit-identical fault sequences and fault randomness
  never perturbs the workload;
* :func:`parse_fault_spec` — the CLI's ``--faults`` mini-grammar.

The runtime reacts rather than crashes: :class:`repro.runtime.rpc.RpcLayer`
grows timeouts, bounded exponential-backoff retries, and duplicate
deduplication; the BSP engine retries failed exchange supersteps; and on a
permanent rank death engines either redistribute the lost work
(``redistribute``) or raise a typed
:class:`repro.errors.RankFailureError`.  See ``docs/RESILIENCE.md``.
"""

from __future__ import annotations

from repro.faults.injector import (
    DELAY,
    DELIVER,
    DROP,
    DUPLICATE,
    FaultInjector,
    MAX_EXCHANGE_ATTEMPTS,
)
from repro.faults.plan import FaultPlan
from repro.faults.spec import parse_fault_spec
from repro.machine.degradation import (
    DegradationSchedule,
    LinkWindow,
    RankEviction,
    RankJoin,
    RankKill,
    StraggleWindow,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "parse_fault_spec",
    "LinkWindow",
    "StraggleWindow",
    "RankKill",
    "RankJoin",
    "RankEviction",
    "DegradationSchedule",
    "DELIVER",
    "DROP",
    "DELAY",
    "DUPLICATE",
    "MAX_EXCHANGE_ATTEMPTS",
]
