"""Per-node simulated memory accounting.

The paper's central memory story: per-node memory limits the BSP exchange
(message buffer) sizes, forcing multiple supersteps at small node counts on
Human CCS (Figures 9, 11), while the Async code keeps at most a bounded set
of in-flight remote reads (<256 MB/core across scales).  The tracker charges
named allocations against each node's application-available budget, records
per-rank high-water marks (what NERSC's job logs report, §4.5), and raises
:class:`MemoryLimitError` on oversubscription so engines must size their
rounds honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import MemoryLimitError
from repro.machine.config import MachineSpec
from repro.utils.units import fmt_bytes

__all__ = ["NodeMemory", "MemoryTracker"]


@dataclass
class NodeMemory:
    """Allocation ledger of one node."""

    capacity: float
    used: float = 0.0
    high_water: float = 0.0
    allocations: dict[str, float] = field(default_factory=dict)

    def allocate(self, label: str, nbytes: float) -> None:
        if nbytes < 0:
            raise MemoryLimitError(f"negative allocation {label!r}")
        new_used = self.used + nbytes
        if new_used > self.capacity * (1 + 1e-9):
            raise MemoryLimitError(
                f"allocation {label!r} of {fmt_bytes(nbytes)} exceeds node "
                f"budget ({fmt_bytes(self.used)} used of "
                f"{fmt_bytes(self.capacity)})"
            )
        self.used = new_used
        self.allocations[label] = self.allocations.get(label, 0.0) + nbytes
        self.high_water = max(self.high_water, self.used)

    def free(self, label: str, nbytes: float | None = None) -> None:
        held = self.allocations.get(label, 0.0)
        amount = held if nbytes is None else float(nbytes)
        if amount > held * (1 + 1e-9):
            raise MemoryLimitError(
                f"freeing {fmt_bytes(amount)} of {label!r} but only "
                f"{fmt_bytes(held)} allocated"
            )
        self.allocations[label] = held - amount
        if self.allocations[label] <= 1e-9:
            del self.allocations[label]
        self.used -= amount


class MemoryTracker:
    """Memory ledgers for every node of a machine.

    Rank-level convenience methods charge a rank's node; per-*rank*
    high-water marks are also tracked because the paper reports footprints
    per core (Figure 11).
    """

    def __init__(self, machine: MachineSpec):
        self.machine = machine
        per_node_budget = (
            machine.node.app_memory_per_core * machine.app_cores_per_node
        )
        self.nodes = [NodeMemory(capacity=per_node_budget) for _ in range(machine.nodes)]
        self._rank_used = np.zeros(machine.total_ranks, dtype=np.float64)
        self._rank_high_water = np.zeros(machine.total_ranks, dtype=np.float64)

    def node_of(self, rank: int) -> NodeMemory:
        return self.nodes[self.machine.node_of_rank(rank)]

    def allocate(self, rank: int, label: str, nbytes: float) -> None:
        self.node_of(rank).allocate(f"r{rank}:{label}", nbytes)
        self._rank_used[rank] += nbytes
        self._rank_high_water[rank] = max(
            self._rank_high_water[rank], self._rank_used[rank]
        )

    def free(self, rank: int, label: str, nbytes: float | None = None) -> None:
        node = self.node_of(rank)
        key = f"r{rank}:{label}"
        amount = node.allocations.get(key, 0.0) if nbytes is None else float(nbytes)
        node.free(key, amount)
        self._rank_used[rank] -= amount

    def rank_high_water(self) -> np.ndarray:
        """Per-rank peak footprint (bytes) — Figure 11's quantity."""
        return self._rank_high_water.copy()

    def max_rank_high_water(self) -> float:
        return float(self._rank_high_water.max(initial=0.0))

    def node_high_water(self) -> np.ndarray:
        return np.array([n.high_water for n in self.nodes])

    @property
    def per_rank_budget(self) -> float:
        return self.machine.node.app_memory_per_core
