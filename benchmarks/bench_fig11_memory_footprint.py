"""Figure 11: maximum per-core memory footprint, Human CCS.

Paper's claims checked in shape:
* everything stays under the ~1.4 GB application-available line;
* at 8-32 nodes the BSP footprint is capped by available memory (multiple
  rounds) and exceeds the async footprint severalfold;
* from 64 nodes the BSP footprint tracks the single-exchange estimate;
* the async footprint stays low (<256 MB) and nearly flat across scales.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig11_12_memory


def test_fig11_memory_footprint(benchmark, human_nodes):
    fig = run_once(benchmark, fig11_12_memory, human_nodes)
    emit("fig11", fig)
    rows = {r[0]: r for r in fig["rows"]}

    for n, r in rows.items():
        _, cores, bsp_mb, async_mb, est_mb, avail_mb, rounds, *_ = r
        assert bsp_mb <= avail_mb * 1.001
        assert async_mb <= 256.0
        if rounds == 1:
            # single-exchange regime: footprint tracks the estimate
            # (plus fixed runtime state and send staging)
            assert bsp_mb >= est_mb * 0.9
            assert bsp_mb <= est_mb * 2.5 + 150.0

    first, last = rows[min(rows)], rows[max(rows)]
    # async flat across scales
    assert abs(first[3] - last[3]) < 100.0
    # BSP well above async in the memory-capped regime
    assert first[2] > 3 * first[3]
