"""Planner quality and parallel-grid speedup: predict, then run only the winner.

The cost-model planner (docs/PLANNER.md) exists so a sweep does not have
to measure every engine x knob combination before picking one.  This
benchmark quantifies the two claims behind ``--engine auto``:

* **Regret** — at each node count, rank the full knob grid with
  ``plan()``, then measure *every* point exhaustively and compare the
  planner's top pick against the true best.  ``top1_regret`` is
  ``measured(top-1) / min(measured) - 1``; the acceptance bound is 10%
  and on the noise-isolated default allocation the predictions are
  bit-exact, so the recorded regret is 0.
* **Parallel grid speedup** — the exhaustive ground-truth pass runs the
  grid twice, serial and through ``run_plan_points(parallel=...)``, and
  checks the fanned-out results are bit-identical (same ``signature()``)
  before reporting the wall-clock ratio.  A single-core container will
  honestly show ~1x (the CI step that wants the multi-core number is
  non-gating).

Also records ``plan_seconds`` (the cost of planning itself — it must be
tiny next to a single measured run) and the machine-cache hit counters.
Writes ``BENCH_PLANNER.json`` at the repo root.  Also runnable
standalone:

    python benchmarks/bench_planner.py [--tiny] [--assert-regret]
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.core.api import (
    clear_machine_cache,
    get_workload,
    machine_cache_stats,
    run_plan_points,
)
from repro.perf.planner import plan

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_PLANNER.json"

#: top-1 regret bound from the acceptance criteria: auto must land within
#: 10% of the best engine x knob combination found exhaustively
REGRET_BOUND = 0.10

#: (workload, node counts, cores per node) per profile
TINY = ("micro", (1, 2), 8)
FULL = ("ecoli100x", (1, 4, 16, 64), 64)


def _grid_pass(workload, nodes: int, cores: int, workers: int) -> dict:
    """Plan one node count, then measure the whole grid twice (serial,
    parallel) as ground truth for regret and the fan-out speedup."""
    t0 = time.perf_counter()
    points = plan(workload, nodes=nodes, cores_per_node=cores)
    plan_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    serial = run_plan_points(workload, nodes, points, cores_per_node=cores)
    t_serial = time.perf_counter() - t0

    t0 = time.perf_counter()
    par = run_plan_points(workload, nodes, points, cores_per_node=cores,
                          parallel=workers)
    t_par = time.perf_counter() - t0

    for a, b in zip(serial, par):
        if (a is None) != (b is None) or \
                (a is not None and a.signature() != b.signature()):
            raise AssertionError(
                f"parallel grid diverged from serial at {nodes} nodes")

    measured = {i: r.breakdown.wall_time
                for i, r in enumerate(serial) if r is not None}
    if not measured:
        raise AssertionError(f"no feasible grid point at {nodes} nodes")
    best_wall = min(measured.values())
    top_idx = next(i for i, p in enumerate(points) if p.feasible)
    top = points[top_idx]
    top_wall = measured[top_idx]

    grid = []
    for i, p in enumerate(points):
        row = p.as_dict()
        if i in measured:
            row["actual_wall"] = measured[i]
            row["prediction_error"] = (
                measured[i] / p.predicted_wall - 1.0
                if p.predicted_wall > 0 else 0.0)
            row["regret"] = measured[i] / best_wall - 1.0
        grid.append(row)

    return {
        "nodes": nodes,
        "grid_points": len(points),
        "feasible_points": len(measured),
        "plan_seconds": plan_s,
        "top1": {"engine": top.engine,
                 "knobs": dict(top.knobs),
                 "predicted_wall": top.predicted_wall,
                 "actual_wall": top_wall},
        "top1_regret": top_wall / best_wall - 1.0,
        "prediction_error_top1": (top_wall / top.predicted_wall - 1.0
                                  if top.predicted_wall > 0 else 0.0),
        "exhaustive_serial_seconds": t_serial,
        "exhaustive_parallel_seconds": t_par,
        "parallel_speedup": t_serial / t_par if t_par > 0 else 1.0,
        "parallel_workers": workers,
        "grid": grid,
    }


def sweep(name: str = FULL[0], node_counts=FULL[1],
          cores: int = FULL[2]) -> dict:
    workload = get_workload(name)
    workers = min(4, os.cpu_count() or 1)
    clear_machine_cache()

    per_nodes = [_grid_pass(workload, n, cores, workers)
                 for n in node_counts]
    cache = machine_cache_stats()

    rows = [[r["nodes"], r["top1"]["engine"],
             ",".join(f"{k}={v}" for k, v in r["top1"]["knobs"].items())
             or "-",
             f"{r['top1_regret']:.4f}",
             f"{r['plan_seconds'] * 1e3:.1f}ms",
             f"{r['parallel_speedup']:.2f}x"]
            for r in per_nodes]
    report = {
        "workload": name,
        "cores_per_node": cores,
        "cpus": os.cpu_count(),
        "parallel_workers": workers,
        "regret_bound": REGRET_BOUND,
        "max_top1_regret": max(r["top1_regret"] for r in per_nodes),
        "max_abs_prediction_error": max(
            abs(r["prediction_error_top1"]) for r in per_nodes),
        "machine_cache": cache,
        "per_nodes": per_nodes,
    }
    return {
        "title": f"Planner regret: {name}, nodes={list(node_counts)}, "
                 f"{os.cpu_count()} cpus",
        "columns": ["nodes", "winner", "knobs", "regret", "plan",
                    "grid speedup"],
        "rows": rows,
        "report": report,
    }


def write_json(fig: dict) -> None:
    JSON_PATH.write_text(json.dumps(fig["report"], indent=2) + "\n")


def assert_regret_bounded(report: dict) -> None:
    """The planner's pick must land within REGRET_BOUND of the true best."""
    worst = report["max_top1_regret"]
    assert worst <= REGRET_BOUND, (
        f"planner top-1 regret {worst:.3f} exceeds the "
        f"{REGRET_BOUND:.0%} acceptance bound")


def test_planner_regret(benchmark):
    from conftest import FAST, emit, run_once

    fig = run_once(benchmark, sweep, *(TINY if FAST else ()))
    emit("planner_regret", {k: fig[k] for k in ("title", "columns", "rows")})
    write_json(fig)
    report = fig["report"]
    assert_regret_bounded(report)
    # planning must be cheap relative to the exhaustive pass it replaces
    # (meaningless on the tiny profile, where micro runs are ~free)
    if not FAST:
        for r in report["per_nodes"]:
            assert r["plan_seconds"] < r["exhaustive_serial_seconds"]
    # the multi-core speedup claim only means something with spare cores
    if not FAST and (os.cpu_count() or 1) >= 4:
        best = max(r["parallel_speedup"] for r in report["per_nodes"])
        assert best > 1.0, f"parallel grid never beat serial ({best:.2f}x)"


if __name__ == "__main__":
    tiny = "--tiny" in sys.argv
    fig = sweep(*TINY) if tiny else sweep()
    widths = [max(len(str(r[i])) for r in [fig["columns"]] + fig["rows"])
              for i in range(len(fig["columns"]))]
    print(fig["title"])
    for row in [fig["columns"]] + fig["rows"]:
        print("  ".join(str(v).rjust(w) for v, w in zip(row, widths)))
    write_json(fig)
    print(f"wrote {JSON_PATH}")
    if "--assert-regret" in sys.argv:
        assert_regret_bounded(fig["report"])
        print(f"top-1 regret within bound "
              f"(max {fig['report']['max_top1_regret']:.4f} "
              f"<= {REGRET_BOUND})")
