"""Shared macro-engine math: constants, round sizing, and the pull model.

Everything here used to be duplicated across (or cross-imported between)
the engine implementations: the per-rank memory-footprint constants, the
BSP round-sizing logic, the redistribute-to-survivors quota helper, and
the entire asynchronous pull phase model — which the ``hybrid`` engine
(§5's aggregated pulls) shares with the plain ``async`` engine, differing
only in how many pulls coalesce into one RPC.

The functions are deliberately *pure over their inputs* (arrays in, arrays
out) so that moving them here preserved bit-identical results: the same
floating-point operations run in the same order as before the refactor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.harness import ExecutionContext
from repro.engines.rebalance import MigrationLedger
from repro.errors import ConfigurationError, RankFailureError
from repro.machine.config import MachineSpec
from repro.machine.network import NetworkModel
from repro.obs import ENGINE_LANE
from repro.pipeline.workload import WorkloadAssignment
from repro.utils.units import MB

__all__ = [
    "BSP_BASE_MEMORY",
    "BSP_TASK_RECORD_BYTES",
    "ASYNC_BASE_MEMORY",
    "ASYNC_TASK_RECORD_BYTES",
    "internode_fraction",
    "exchange_budget",
    "bsp_num_rounds",
    "survivor_share",
    "membership_share",
    "mean_read_bytes",
    "split_pull_compute",
    "pull_overheads",
    "pull_comm",
    "PullFaultOutcome",
    "apply_pull_faults",
    "assemble_pull_phases",
    "predict_pull_wall",
]

#: fixed per-rank footprint: program image + MPI runtime + output buffers
BSP_BASE_MEMORY = 100 * MB
#: flat-array task record: read ids, positions, flags, cost (BSP layout)
BSP_TASK_RECORD_BYTES = 40.0
#: fixed per-rank footprint: program + UPC++/GASNet runtime segments
ASYNC_BASE_MEMORY = 120 * MB
#: pointer-based task record (std containers: node + pointers + payload)
ASYNC_TASK_RECORD_BYTES = 96.0


def internode_fraction(machine: MachineSpec) -> float:
    """Fraction of remote reads that cross the network (1 - 1/nodes).

    Intranode pulls resolve through the shared-memory segment without
    serialization or callback deferral, so per-read overheads and
    internode-only penalties scale by this factor.
    """
    return 1.0 - 1.0 / machine.nodes


# -- BSP round sizing (the §3.1 dynamic superstep logic) --------------------

def exchange_budget(config: EngineConfig, machine: MachineSpec,
                    assignment: WorkloadAssignment) -> float:
    """Receive-buffer bytes one rank may devote to a single round."""
    fixed = (
        BSP_BASE_MEMORY
        + float(assignment.partition_bytes.max(initial=0.0))
        + float(assignment.tasks_per_rank.max(initial=0.0))
        * BSP_TASK_RECORD_BYTES
    )
    free = machine.app_memory_per_rank - fixed
    if free <= 0:
        raise ConfigurationError(
            "per-rank memory cannot hold even the input partition; "
            "use more nodes (the paper needs >= 8 nodes for Human CCS)"
        )
    return config.exchange_memory_fraction * free


def bsp_num_rounds(config: EngineConfig, machine: MachineSpec,
                   assignment: WorkloadAssignment) -> int:
    """Rounds needed so every rank's round receive fits its budget."""
    budget = exchange_budget(config, machine, assignment)
    max_recv = float(assignment.recv_bytes.max(initial=0.0))
    return max(1, int(np.ceil(max_recv / budget)))


def survivor_share(x: np.ndarray, rounds: int, alive: np.ndarray,
                   n_alive: int) -> np.ndarray:
    """One round's per-rank quota of ``x``, dead ranks' share redistributed
    equally over the survivors."""
    xr = x / rounds
    if n_alive == alive.size:
        return xr
    lost = float(xr[~alive].sum())
    return np.where(alive, xr + lost / n_alive, 0.0)


def membership_share(x: np.ndarray, rounds: int, schedule,
                     t: float) -> np.ndarray:
    """One round's per-rank quota of ``x`` under an arbitrary membership
    timeline: absent ranks' (dead, evicted-and-departed, not-yet-joined)
    share is carried equally by the ranks that are members at ``t``.

    This is :func:`survivor_share` generalized from a static kill set to
    the full :class:`~repro.machine.degradation.DegradationSchedule`
    timeline — redistribute-to-survivors and redistribute-to-joiners are
    the same piecewise math, only the mask changes.
    """
    member = schedule.alive_mask(t, x.size)
    n_member = int(member.sum())
    if n_member == 0:
        raise RankFailureError(
            f"no member ranks at t={t:.6g}s; nothing left to carry the work"
        )
    return survivor_share(x, rounds, member, n_member)


def mean_read_bytes(assignment: WorkloadAssignment) -> float:
    """Average size of one pulled read (0 when nothing is pulled)."""
    return (
        assignment.lookup_bytes.sum() / assignment.lookups.sum()
        if assignment.lookups.sum() > 0
        else 0.0
    )


# -- the asynchronous pull model (shared by async and hybrid) ---------------

def split_pull_compute(assignment: WorkloadAssignment, factors: np.ndarray,
                       comm_only: bool) -> tuple[np.ndarray, np.ndarray]:
    """Noise-dilated (local-pair, remote-pair) compute seconds per rank."""
    P = assignment.num_ranks
    if comm_only:
        return np.zeros(P), np.zeros(P)
    local_compute = factors * assignment.local_pair_seconds
    remote_compute = factors * (
        assignment.compute_seconds - assignment.local_pair_seconds
    )
    return local_compute, remote_compute


def pull_overheads(config: EngineConfig, assignment: WorkloadAssignment,
                   machine: MachineSpec) -> np.ndarray:
    """Per-rank traversal/callback overhead of the pull-based engines."""
    internode = internode_fraction(machine)
    return (
        assignment.tasks_per_rank * config.async_task_overhead
        + assignment.lookups * config.async_read_overhead * internode
        + config.async_base_overhead
    )


def pull_comm(net: NetworkModel, assignment: WorkloadAssignment,
              agg: float) -> np.ndarray:
    """Per-rank pull time with ``agg`` reads coalesced per RPC.

    Aggregation keeps the bytes and halves nothing — it divides the
    *message counts* (injection gaps, service-queue depth, window slots).
    """
    P = assignment.num_ranks
    return np.array([
        net.rpc_pull_time(
            float(assignment.lookups[i]) / agg,
            float(assignment.lookup_bytes[i]),
            float(assignment.incoming_lookups[i]) / agg,
            float(assignment.incoming_bytes[i]),
        )
        for i in range(P)
    ])


def predict_pull_wall(config: EngineConfig, assignment: WorkloadAssignment,
                      machine: MachineSpec, agg: float, *,
                      batch_fill_stall: bool = False) -> float:
    """Closed-form fault-free, noise-free wall clock of the pull engines.

    The exact arithmetic of :func:`assemble_pull_phases` with unit noise
    factors and no injector, evaluated without timers or trace emission —
    the shared body of the ``async`` and ``hybrid`` cost hooks (the two
    differ only in ``agg`` and in the batch-fill stall, just like the
    engines themselves).  On an isolated machine (the default Cori
    configuration leaves 4 cores to the OS, so noise is off) the
    prediction reproduces the engine's fault-free wall clock to the last
    bit: the same float operations run in the same association order.
    """
    P = assignment.num_ranks
    net = NetworkModel(machine)
    comm_only = config.mode is ExecutionMode.COMM_ONLY
    if comm_only:
        local_compute = np.zeros(P)
        remote_compute = np.zeros(P)
    else:
        local_compute = assignment.local_pair_seconds
        remote_compute = assignment.compute_seconds - assignment.local_pair_seconds
    overhead = pull_overheads(config, assignment, machine)
    overhead_pre = 0.5 * overhead
    overhead_cb = overhead - overhead_pre
    bar = net.barrier_time()
    comm = net.rpc_pull_time_batch(
        assignment.lookups / agg,
        assignment.lookup_bytes,
        assignment.incoming_lookups / agg,
        assignment.incoming_bytes,
    )
    if batch_fill_stall:
        n_batches = np.ceil(assignment.lookups / agg)
        comm = comm + n_batches * (agg - 1.0) * machine.network.msg_gap
    phase_a_end = np.maximum(local_compute + overhead_pre, bar)
    busy = remote_compute + overhead_cb
    visible_comm = np.maximum(comm - busy, config.async_min_visible * comm)
    phase_b = busy + visible_comm
    finish = phase_a_end + phase_b
    return float(finish.max(initial=0.0)) + bar


@dataclass
class PullFaultOutcome:
    """Fault-adjusted phase arrays plus degradation bookkeeping."""

    local_compute: np.ndarray
    remote_compute: np.ndarray
    overhead_pre: np.ndarray
    overhead_cb: np.ndarray
    comm: np.ndarray
    fault_stall: np.ndarray
    retry_counts: np.ndarray
    tasks_redistributed: float
    redist_counts: np.ndarray
    ranks_lost: list[int]
    #: churn accounting (``None`` unless the plan has membership churn)
    ledger: MigrationLedger | None = None
    #: per-rank pre-join idle seconds (``None`` = everyone starts at t=0,
    #: which keeps :func:`assemble_pull_phases` on its original code path)
    start_delay: np.ndarray | None = None


def apply_pull_faults(
    ctx: ExecutionContext,
    assignment: WorkloadAssignment,
    agg: float,
    min_visible: float,
    bar: float,
    local_compute: np.ndarray,
    remote_compute: np.ndarray,
    overhead_pre: np.ndarray,
    overhead_cb: np.ndarray,
    comm: np.ndarray,
) -> PullFaultOutcome:
    """Fault adjustments of the pull model (analytic; docs/RESILIENCE.md).

    Places degradation windows and kills on the fault-free analytic
    timeline, then dilates busy time (stragglers), dilates traffic
    (degraded links), stalls callers (message faults), and redistributes
    dead ranks' unfinished work over the survivors.
    """
    P = assignment.num_ranks
    faults = ctx.faults
    fault_stall = np.zeros(P)
    retry_counts = np.zeros(P)
    tasks_redistributed = 0.0
    redist_counts = np.zeros(P)
    ranks_lost: list[int] = []
    if faults is None:
        return PullFaultOutcome(
            local_compute, remote_compute, overhead_pre, overhead_cb, comm,
            fault_stall, retry_counts, tasks_redistributed, redist_counts,
            ranks_lost,
        )

    net = ctx.net
    machine = ctx.machine
    plan = faults.plan
    # fault-free horizon: where each rank *would* finish — places
    # degradation windows and kills on this analytic timeline
    busy0 = remote_compute + overhead_cb
    visible0 = np.maximum(comm - busy0, min_visible * comm)
    finish0 = (
        np.maximum(local_compute + overhead_pre, bar)
        + busy0 + visible0
    )
    wall0 = float(finish0.max(initial=0.0)) + bar

    # stragglers dilate every busy second inside their windows
    straggle = np.array([
        faults.mean_straggle_factor(i, 0.0, float(finish0[i]))
        for i in range(P)
    ])
    local_compute = local_compute * straggle
    remote_compute = remote_compute * straggle
    overhead_pre = overhead_pre * straggle
    overhead_cb = overhead_cb * straggle

    # degraded links dilate the pull traffic
    comm = comm * faults.mean_link_dilation(0.0, wall0)

    # message faults: a dropped pull stalls its caller for the
    # timeout plus the first backoff before the retry lands; a
    # delayed pull stalls for the injected delay — pure visible
    # latency, compute cannot hide a response that never came
    timeout = (plan.rpc_timeout if plan.rpc_timeout is not None
               else net.suggested_rpc_timeout())
    backoff = (plan.rpc_backoff if plan.rpc_backoff is not None
               else 10.0 * machine.network.rtt)
    for i in range(P):
        n_calls = int(np.ceil(float(assignment.lookups[i]) / agg))
        drops, delays, dups = faults.rank_rpc_fault_counts(i, n_calls)
        fault_stall[i] = (
            drops * (timeout + backoff)
            + delays * plan.delay_seconds
        )
        retry_counts[i] = drops
        injected = drops + delays + dups
        if ctx.metrics is not None:
            if drops:
                ctx.metrics.inc("rpc_retries", i, drops)
            if injected:
                ctx.metrics.inc("faults_injected", i, injected)
        if ctx.tracer is not None and injected:
            ctx.tracer.instant(i, "fault_inject", 0.0, kind="rpc_macro",
                               drops=drops, delays=delays, dups=dups)

    if plan.has_churn:
        # membership churn: joins, graced evictions, and kills processed
        # in one time-ordered event loop (see _pull_churn_events)
        ledger = MigrationLedger()
        start_delay = np.zeros(P)
        tasks_redistributed, redist_counts, ranks_lost = _pull_churn_events(
            ctx, assignment, finish0, wall0,
            local_compute, remote_compute, overhead_pre, overhead_cb, comm,
            fault_stall, ledger, start_delay,
        )
        return PullFaultOutcome(
            local_compute, remote_compute, overhead_pre, overhead_cb, comm,
            fault_stall, retry_counts, tasks_redistributed, redist_counts,
            ranks_lost, ledger=ledger, start_delay=start_delay,
        )

    # rank deaths: the killed rank stops at its death time; the
    # survivors absorb its unfinished work as extra callback-phase
    # compute and pull traffic
    alive = np.ones(P, dtype=bool)
    for kill in sorted(plan.kills, key=lambda k: (k.time, k.rank)):
        if kill.time >= wall0 or not alive[kill.rank]:
            continue
        if not plan.redistribute:
            raise RankFailureError(
                f"rank {kill.rank} died at t={kill.time:.6g}s during "
                f"the async pull phase; add 'redistribute' to the "
                f"fault plan for graceful degradation"
            )
        d = kill.rank
        alive[d] = False
        ranks_lost.append(d)
        faults.note_kill(d)
        if not alive.any():
            raise RankFailureError(
                "every rank died before the run finished; nothing "
                "left to redistribute to"
            )
        if ctx.tracer is not None:
            ctx.tracer.instant(ENGINE_LANE, "fault_inject", kill.time,
                               kind="rank_kill", victim=d)
        if ctx.metrics is not None:
            ctx.metrics.inc("faults_injected", d)
        done = (min(1.0, kill.time / float(finish0[d]))
                if finish0[d] > 0 else 1.0)
        n_alive = int(alive.sum())
        # unfinished local pairs are redone remotely by survivors
        lost_align = (1.0 - done) * (local_compute[d]
                                     + remote_compute[d])
        lost_oh = (1.0 - done) * (overhead_pre[d] + overhead_cb[d])
        lost_comm = (1.0 - done) * (comm[d] + fault_stall[d])
        for arr in (local_compute, remote_compute, overhead_pre,
                    overhead_cb, comm, fault_stall):
            arr[d] = arr[d] * done
        remote_compute[alive] += lost_align / n_alive
        overhead_cb[alive] += lost_oh / n_alive
        comm[alive] += lost_comm / n_alive
        moved = (1.0 - done) * float(assignment.tasks_per_rank[d])
        tasks_redistributed += moved
        redist_counts[alive] += moved / n_alive

    return PullFaultOutcome(
        local_compute, remote_compute, overhead_pre, overhead_cb, comm,
        fault_stall, retry_counts, tasks_redistributed, redist_counts,
        ranks_lost,
    )


def _pull_churn_events(
    ctx: ExecutionContext,
    assignment: WorkloadAssignment,
    finish0: np.ndarray,
    wall0: float,
    local_compute: np.ndarray,
    remote_compute: np.ndarray,
    overhead_pre: np.ndarray,
    overhead_cb: np.ndarray,
    comm: np.ndarray,
    fault_stall: np.ndarray,
    ledger: MigrationLedger,
    start_delay: np.ndarray,
) -> tuple[float, np.ndarray, list[int]]:
    """Process joins, evictions, and kills on the analytic pull timeline.

    Joiner work is *loaned* to the initial members at t=0; a join reclaims
    the unfinished fraction (``1 - t/wall0``) of the loan plus a migration
    transfer of the joiner's partition and remaining task records.  A
    graced eviction hands its unfinished work off at the departure time as
    a checkpoint (same piecewise math as a redistributed kill, plus the
    checkpoint's transfer cost, accounted as migration); ``grace=0``
    degenerates to exactly the redistributed-kill arithmetic.  Kills keep
    requiring the ``redistribute`` flag; announced departures never do.

    Events at or beyond the fault-free horizon ``wall0`` are not honored,
    matching the existing kill semantics.
    """
    P = assignment.num_ranks
    faults = ctx.faults
    plan = faults.plan
    net = ctx.net
    tasks_redistributed = 0.0
    redist_counts = np.zeros(P)
    ranks_lost: list[int] = []

    alive = np.ones(P, dtype=bool)
    arrays = (local_compute, remote_compute, overhead_pre, overhead_cb, comm)
    for j in plan.joins:
        alive[j.rank] = False
    if not alive.any():
        raise RankFailureError(
            "every rank joins mid-run; at least one initial member is "
            "required"
        )
    # loan not-yet-joined ranks' work equally to the initial members,
    # remembering the original totals for reclaim at join time
    n_init = int(alive.sum())
    loans: dict[int, tuple[float, ...]] = {}
    for j in sorted(plan.joins, key=lambda j: j.rank):
        jr = j.rank
        loans[jr] = tuple(float(a[jr]) for a in arrays)
        for a, total in zip(arrays, loans[jr]):
            a[alive] += total / n_init
            a[jr] = 0.0

    def depart(d: int, t: float, checkpointed: bool) -> None:
        nonlocal tasks_redistributed
        alive[d] = False
        if not alive.any():
            raise RankFailureError(
                "every rank left before the run finished; nothing "
                "left to hand the work to"
            )
        n_alive = int(alive.sum())
        done = (min(1.0, t / float(finish0[d]))
                if finish0[d] > 0 else 1.0)
        lost_align = (1.0 - done) * (local_compute[d] + remote_compute[d])
        lost_oh = (1.0 - done) * (overhead_pre[d] + overhead_cb[d])
        lost_comm = (1.0 - done) * (comm[d] + fault_stall[d])
        for arr in (local_compute, remote_compute, overhead_pre,
                    overhead_cb, comm, fault_stall):
            arr[d] = arr[d] * done
        remote_compute[alive] += lost_align / n_alive
        overhead_cb[alive] += lost_oh / n_alive
        comm[alive] += lost_comm / n_alive
        moved = (1.0 - done) * float(assignment.tasks_per_rank[d])
        if checkpointed:
            # the remaining task records + the partition travel as a
            # checkpoint; every member receives an equal slice in parallel
            mbytes = (moved * ASYNC_TASK_RECORD_BYTES
                      + float(assignment.partition_bytes[d]))
            msec = net.ptp_time(mbytes / n_alive)
            comm[alive] += msec
            ledger.record_migration(moved, mbytes, msec * n_alive)
            faults.note_migration(int(round(moved)))
        else:
            tasks_redistributed += moved
            redist_counts[alive] += moved / n_alive

    events = sorted(
        [(j.time, 0, j.rank, 0.0) for j in plan.joins]
        + [(e.departure, 1, e.rank, e.grace) for e in plan.evictions]
        + [(k.time, 2, k.rank, 0.0) for k in plan.kills]
    )
    for t, kind, r, grace in events:
        if t >= wall0:
            continue
        if kind == 0:  # join
            if alive[r]:
                continue
            n_members = int(alive.sum())
            u = max(0.0, 1.0 - t / wall0) if wall0 > 0 else 0.0
            members = np.flatnonzero(alive)
            for a, total in zip(arrays, loans.get(r, (0.0,) * len(arrays))):
                want = u * total
                if want <= 0.0 or n_members == 0:
                    continue
                # reclaim equal slices, clamped so a member already drained
                # by its own departure never goes negative
                per = want / n_members
                take = np.minimum(a[members], per)
                a[members] -= take
                a[r] += float(take.sum())
            alive[r] = True
            start_delay[r] = t
            moved = u * float(assignment.tasks_per_rank[r])
            mbytes = (float(assignment.partition_bytes[r])
                      + moved * ASYNC_TASK_RECORD_BYTES)
            msec = net.ptp_time(mbytes)
            comm[r] += msec
            ledger.record_join(r)
            ledger.record_migration(moved, mbytes, msec)
            faults.note_join(r)
            faults.note_migration(int(round(moved)))
            if ctx.tracer is not None:
                ctx.tracer.instant(ENGINE_LANE, "rank_join", t, joiner=r)
            if ctx.metrics is not None:
                ctx.metrics.inc("faults_injected", r)
        elif kind == 1:  # eviction departure
            if not alive[r]:
                continue
            depart(r, t, checkpointed=grace > 0)
            ledger.record_evict(r)
            faults.note_evict(r)
            if ctx.tracer is not None:
                ctx.tracer.instant(ENGINE_LANE, "rank_evict", t, victim=r,
                                   grace=grace)
            if ctx.metrics is not None:
                ctx.metrics.inc("faults_injected", r)
        else:  # kill
            if not alive[r]:
                continue
            if not plan.redistribute:
                raise RankFailureError(
                    f"rank {r} died at t={t:.6g}s during "
                    f"the async pull phase; add 'redistribute' to the "
                    f"fault plan for graceful degradation"
                )
            ranks_lost.append(r)
            faults.note_kill(r)
            if ctx.tracer is not None:
                ctx.tracer.instant(ENGINE_LANE, "fault_inject", t,
                                   kind="rank_kill", victim=r)
            if ctx.metrics is not None:
                ctx.metrics.inc("faults_injected", r)
            depart(r, t, checkpointed=False)
    return tasks_redistributed, redist_counts, ranks_lost


def assemble_pull_phases(
    ctx: ExecutionContext,
    local_compute: np.ndarray,
    overhead_pre: np.ndarray,
    remote_compute: np.ndarray,
    overhead_cb: np.ndarray,
    comm: np.ndarray,
    fault_stall: np.ndarray,
    min_visible: float,
    bar: float,
    start_delay: np.ndarray | None = None,
) -> tuple[float, np.ndarray, np.ndarray]:
    """Charge the three pull phases to the timers and emit their trace.

    Timeline per rank (§3.2): local-pair compute overlapped with the
    split-phase barrier, then pulls with callback compute (visible comm =
    whatever compute could not hide, floored at ``min_visible``), then the
    exit-barrier wait.  Returns ``(wall, busy, visible_comm)`` where
    ``busy`` is the callback-phase compute available for hiding.

    ``start_delay`` (churn runs only) is per-rank idle time before phase A
    can begin — a joiner waits out its pre-join window at the (split)
    barrier, charged as sync.  ``None`` keeps the original code path.
    """
    P = ctx.num_ranks
    timers = ctx.timers

    # --- phase A: local-pair compute overlapped with split barrier ---
    phase_a_busy = local_compute + overhead_pre
    if start_delay is None:
        phase_a_end = np.maximum(phase_a_busy, bar)
    else:
        phase_a_end = np.maximum(start_delay + phase_a_busy, bar)
    timers.add_array("compute_align", local_compute)
    timers.add_array("compute_overhead", overhead_pre)
    timers.add_array("sync", phase_a_end - phase_a_busy)

    # --- phase B: pull remote reads, compute from callbacks ---
    busy = remote_compute + overhead_cb
    # even abundant computation cannot hide everything: callbacks bunch
    # between application-level polls (§3.2), leaving a floor of
    # visible latency
    visible_comm = np.maximum(
        comm - busy, min_visible * comm
    ) + fault_stall
    phase_b = busy + visible_comm
    timers.add_array("compute_align", remote_compute)
    timers.add_array("compute_overhead", overhead_cb)
    timers.add_array("comm", visible_comm)

    # --- exit barrier: everyone waits for the slowest rank ---
    finish = phase_a_end + phase_b
    wall = float(finish.max(initial=0.0)) + bar
    timers.add_array("sync", wall - finish)

    if ctx.tracer is not None:
        ctx.tracer.instant(ENGINE_LANE, "split_barrier_release", bar)
        ctx.tracer.instant(ENGINE_LANE, "exit_barrier",
                           float(finish.max(initial=0.0)))
        for i in range(P):
            # phase A: local pairs + pre-overhead overlapped with the
            # split barrier, idle gap (if any) is sync
            sd = 0.0 if start_delay is None else float(start_delay[i])
            la = float(local_compute[i])
            pre = float(overhead_pre[i])
            a_busy = float(phase_a_busy[i])
            a_end = float(phase_a_end[i])
            # phase B: callbacks + visible comm, then exit-barrier wait
            rc = float(remote_compute[i])
            cb = float(overhead_cb[i])
            vis = float(visible_comm[i])
            for cat, start, dur, label in (
                ("sync", 0.0, sd, "pre-join-idle"),
                ("compute_align", sd, la, "local-pairs"),
                ("compute_overhead", sd + la, pre, "index-build"),
                ("sync", sd + a_busy, a_end - sd - a_busy,
                 "split-barrier-wait"),
                ("compute_align", a_end, rc, "callback-align"),
                ("compute_overhead", a_end + rc, cb, "callback-overhead"),
                ("comm", a_end + rc + cb, vis, "visible-pull"),
                ("sync", float(finish[i]), wall - float(finish[i]),
                 "exit-barrier"),
            ):
                if dur > 0:
                    ctx.tracer.phase(i, cat, start, dur, name=label)

    return wall, busy, visible_comm
