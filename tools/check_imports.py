#!/usr/bin/env python3
"""Static import-hygiene check for ``src/repro``.

Two classes of violation, both enforced in CI (and mirrored by
``tests/test_import_hygiene.py``):

1. **Import cycles** anywhere in the package — found on the module-level
   import graph built from the AST (function-local imports are ignored;
   deferring an import inside a function is the sanctioned way to break a
   genuine runtime cycle).

2. **Banned cross-imports** that the engine refactor removed and must not
   creep back:

   * engine implementation modules (``bsp``, ``async_``, ``micro``,
     ``hybrid``) may not import one another — shared math belongs in
     ``engines.common``, shared wiring in ``engines.harness``;
   * ``repro.utils`` is the bottom layer: it may import only itself and
     ``repro.errors``.

Usage: ``python tools/check_imports.py [src-root]`` — exits nonzero and
prints one line per violation.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

PACKAGE = "repro"

#: engine implementation modules that must stay siblings (no cross-imports)
ENGINE_IMPLS = {
    "repro.engines.bsp",
    "repro.engines.async_",
    "repro.engines.micro",
    "repro.engines.hybrid",
}


def module_name(path: Path, src_root: Path) -> str:
    rel = path.relative_to(src_root).with_suffix("")
    parts = list(rel.parts)
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def module_level_imports(
    tree: ast.Module, current: str
) -> list[tuple[str, tuple[str, ...]]]:
    """Module-level import statements as ``(module, imported_names)``.

    ``imported_names`` is empty for plain ``import X`` statements.
    """
    out: list[tuple[str, tuple[str, ...]]] = []
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == PACKAGE:
                    out.append((alias.name, ()))
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = current.split(".")
                base = base[: len(base) - node.level + 1]
                mod = ".".join(base + ([node.module] if node.module else []))
            else:
                mod = node.module or ""
            if mod.split(".")[0] == PACKAGE:
                out.append((mod, tuple(a.name for a in node.names)))
    return out


def build_graph(src_root: Path) -> dict[str, set[str]]:
    raw: dict[str, list[tuple[str, tuple[str, ...]]]] = {}
    for path in sorted((src_root / PACKAGE).rglob("*.py")):
        name = module_name(path, src_root)
        tree = ast.parse(path.read_text(), filename=str(path))
        raw[name] = module_level_imports(tree, name)
    known = set(raw)
    graph: dict[str, set[str]] = {}
    for name, statements in raw.items():
        deps: set[str] = set()
        for mod, imported in statements:
            if not imported:
                if mod in known:
                    deps.add(mod)
                continue
            for sym in imported:
                # `from X import name` importing the submodule X.name
                # depends on that submodule, not on package X's __init__
                sub = f"{mod}.{sym}"
                deps.add(sub if sub in known else mod)
        graph[name] = {d for d in deps if d in known and d != name}
    return graph


def find_cycles(graph: dict[str, set[str]]) -> list[list[str]]:
    """All elementary cycles reachable via DFS (reported once each)."""
    cycles: list[list[str]] = []
    seen_cycles: set[tuple[str, ...]] = set()
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in graph}
    stack: list[str] = []

    def visit(m: str) -> None:
        color[m] = GREY
        stack.append(m)
        for dep in sorted(graph[m]):
            if color[dep] == GREY:
                cycle = stack[stack.index(dep):] + [dep]
                key = tuple(sorted(set(cycle)))
                if key not in seen_cycles:
                    seen_cycles.add(key)
                    cycles.append(cycle)
            elif color[dep] == WHITE:
                visit(dep)
        stack.pop()
        color[m] = BLACK

    for m in sorted(graph):
        if color[m] == WHITE:
            visit(m)
    return cycles


def banned_imports(graph: dict[str, set[str]]) -> list[str]:
    problems: list[str] = []
    for name, deps in sorted(graph.items()):
        if name in ENGINE_IMPLS:
            for dep in sorted(deps & ENGINE_IMPLS):
                problems.append(
                    f"{name} imports sibling engine {dep}; move shared code "
                    f"into repro.engines.common or repro.engines.harness"
                )
        if name.startswith("repro.utils"):
            for dep in sorted(deps):
                if not (dep.startswith("repro.utils")
                        or dep == "repro.errors"):
                    problems.append(
                        f"{name} imports {dep}; repro.utils is the bottom "
                        f"layer and may only import repro.errors"
                    )
        if not name.startswith("repro.service"):
            for dep in sorted(deps):
                if dep.startswith("repro.service"):
                    problems.append(
                        f"{name} imports {dep}; repro.service is the top "
                        f"layer — only the CLI may reach it, and lazily"
                    )
    return problems


def run(src_root: Path) -> list[str]:
    graph = build_graph(src_root)
    problems = [
        "import cycle: " + " -> ".join(c) for c in find_cycles(graph)
    ]
    problems += banned_imports(graph)
    return problems


def main(argv: list[str]) -> int:
    src_root = Path(argv[1]) if len(argv) > 1 else Path("src")
    problems = run(src_root)
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    if not problems:
        graph = build_graph(src_root)
        print(f"import hygiene OK: {len(graph)} modules, no cycles, "
              f"no banned imports")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
