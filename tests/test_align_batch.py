"""Batched wavefront kernel: bit-identity with the scalar path.

The batch kernel is an execution strategy, not an approximation — the cost
model and every paper figure consume its cells / early-termination numbers,
so ``align_batch`` must equal per-pair ``align`` field-by-field.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.align.batch import BatchedXDropExtender
from repro.align.scoring import ScoringScheme
from repro.align.seedextend import SeedExtendAligner
from repro.align.xdrop import XDropExtender
from repro.errors import AlignmentError
from repro.genome import alphabet

dna = st.text(alphabet="ACGTN", min_size=0, max_size=40)


def _ext_tuple(r):
    return (r.score, r.length_a, r.length_b, r.cells, r.antidiagonals,
            r.terminated_early)


@st.composite
def seeded_pair(draw):
    """(codes_a, codes_b, pos_a, pos_b, k, reverse) with a valid seed."""
    k = draw(st.integers(min_value=1, max_value=8))
    sa = draw(st.text(alphabet="ACGTN", min_size=k, max_size=60))
    sb = draw(st.text(alphabet="ACGTN", min_size=k, max_size=60))
    pos_a = draw(st.integers(min_value=0, max_value=len(sa) - k))
    pos_b = draw(st.integers(min_value=0, max_value=len(sb) - k))
    reverse = draw(st.booleans())
    return (alphabet.encode(sa), alphabet.encode(sb), pos_a, pos_b, k,
            reverse)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(dna, dna), min_size=1, max_size=12),
       st.integers(min_value=0, max_value=25))
def test_extend_batch_matches_scalar(pairs_txt, x):
    pairs = [(alphabet.encode(a), alphabet.encode(b)) for a, b in pairs_txt]
    scalar = XDropExtender(x_drop=x)
    batch = BatchedXDropExtender(x_drop=x).extend_batch(pairs)
    assert len(batch) == len(pairs)
    for (a, b), got in zip(pairs, batch):
        assert _ext_tuple(got) == _ext_tuple(scalar.extend(a, b))


@settings(max_examples=60, deadline=None)
@given(st.lists(seeded_pair(), min_size=1, max_size=10),
       st.integers(min_value=0, max_value=25))
def test_align_batch_matches_align_fieldwise(pairs, x):
    aligner = SeedExtendAligner(x_drop=x)
    got = aligner.align_batch(
        [(*p, 7, 9) for p in pairs]  # exercise read-id passthrough too
    )
    for p, g in zip(pairs, got):
        want = aligner.align(*p[:5], reverse=p[5], read_a=7, read_b=9)
        assert want == g  # frozen dataclass: full field-by-field equality


def test_batch_size_one():
    rng = np.random.default_rng(0)
    a = alphabet.random_sequence(300, rng)
    b = a.copy()
    aligner = SeedExtendAligner(x_drop=10)
    (got,) = aligner.align_batch([(a, b, 50, 50, 17)])
    assert got == aligner.align(a, b, 50, 50, 17)


def test_empty_suffix_and_prefix_extensions():
    # seed flush at either end: one direction gets an empty sequence
    a = alphabet.encode("ACGTACGTACGTACGT")
    aligner = SeedExtendAligner(x_drop=5)
    pairs = [
        (a, a.copy(), 0, 0, 16),                 # nothing on either flank
        (a, a.copy(), 0, 0, 4),                  # empty left extensions
        (a, a.copy(), 12, 12, 4),                # empty right extensions
    ]
    for want, got in zip(
        [aligner.align(*p) for p in pairs], aligner.align_batch(pairs)
    ):
        assert want == got


def test_all_n_reads():
    # N never matches anything, including N: pure-mismatch extensions
    n_read = np.full(30, alphabet.N, dtype=np.uint8)
    aligner = SeedExtendAligner(x_drop=6)
    pairs = [(n_read, n_read.copy(), 10, 10, 5),
             (n_read, n_read.copy(), 0, 25, 5, True)]
    got = aligner.align_batch(pairs)
    want = [aligner.align(*pairs[0]),
            aligner.align(*pairs[1][:5], reverse=True)]
    assert want == got
    assert all(g.score == aligner.scoring.perfect_score(5) for g in got)


def test_mixed_early_termination_within_batch():
    # a long true overlap and an immediately-dying false positive share the
    # batch: compaction must keep both results exact
    rng = np.random.default_rng(3)
    core = alphabet.random_sequence(800, rng)
    truthy = (core, core.copy(), 100, 100, 17)
    fp = (alphabet.random_sequence(800, rng),
          alphabet.random_sequence(800, rng), 400, 400, 17)
    aligner = SeedExtendAligner(x_drop=10)
    got = aligner.align_batch([truthy, fp, truthy])
    want = [aligner.align(*truthy), aligner.align(*fp),
            aligner.align(*truthy)]
    assert want == got
    assert not got[0].terminated_early
    assert got[1].terminated_early


def test_empty_batch():
    assert SeedExtendAligner().align_batch([]) == []
    assert BatchedXDropExtender().extend_batch([]) == []


def test_batch_validates_seed_bounds():
    a = alphabet.encode("ACGT")
    with pytest.raises(AlignmentError):
        SeedExtendAligner().align_batch([(a, a, 2, 0, 4)])


def test_batch_rejects_negative_x():
    with pytest.raises(AlignmentError):
        BatchedXDropExtender(x_drop=-1)


def test_substitution_table_matches_predicate():
    s = ScoringScheme(match=2, mismatch=-3, gap=-1)
    table = s.substitution_table
    assert table.shape == (5, 5) and table.dtype == np.int64
    for a in range(5):
        for b in range(5):
            want = s.match if (a == b and a < 4 and b < 4) else s.mismatch
            assert table[a, b] == want
    with pytest.raises(ValueError):
        table[0, 0] = 99  # read-only: shared by every kernel call


def test_extenders_are_cached_per_aligner():
    aligner = SeedExtendAligner(x_drop=9)
    assert aligner._extender is aligner._extender
    assert aligner._batch_extender is aligner._batch_extender
    assert aligner._extender.x_drop == 9
    assert aligner._batch_extender.scoring is aligner.scoring
