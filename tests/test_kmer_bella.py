"""Tests for the BELLA reliable-k-mer frequency model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kmer.bella import BellaModel, reliable_bounds


def test_p_correct():
    m = BellaModel(coverage=30, error_rate=0.15, k=17)
    assert m.p_correct == pytest.approx(0.85**17)
    assert m.expected_multiplicity == pytest.approx(30 * 0.85**17)


def test_bounds_order_and_floor():
    lo, hi = BellaModel(coverage=30, error_rate=0.15, k=17).bounds()
    assert lo == 2
    assert hi >= lo


def test_upper_bound_grows_with_coverage():
    hi30 = BellaModel(coverage=30, error_rate=0.15).upper_bound()
    hi100 = BellaModel(coverage=100, error_rate=0.15).upper_bound()
    assert hi100 > hi30


def test_upper_bound_grows_with_accuracy():
    # more accurate reads -> correct k-mers seen more often -> higher cutoff
    raw = BellaModel(coverage=30, error_rate=0.15).upper_bound()
    ccs = BellaModel(coverage=30, error_rate=0.01).upper_bound()
    assert ccs > raw


def test_upper_bound_is_binomial_tail():
    from scipy import stats

    m = BellaModel(coverage=30, error_rate=0.10, k=17, tail_prob=0.001)
    hi = m.upper_bound()
    d = 30
    p = m.p_correct
    assert stats.binom.sf(hi - 1, d, p) < 0.001
    if hi > m.min_count:
        assert stats.binom.sf(hi - 2, d, p) >= 0.001


def test_retention_probability_band():
    m = BellaModel(coverage=30, error_rate=0.15)
    lo, hi = m.bounds()
    mult = np.array([lo - 1, lo, hi, hi + 1])
    assert m.retention_probability(mult).tolist() == [0.0, 1.0, 1.0, 0.0]


def test_describe_keys():
    d = BellaModel(coverage=30, error_rate=0.15).describe()
    assert {"coverage", "error_rate", "k", "p_correct",
            "expected_multiplicity", "lo", "hi"} <= set(d)


def test_reliable_bounds_wrapper():
    assert reliable_bounds(30, 0.15) == BellaModel(30, 0.15).bounds()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(coverage=0, error_rate=0.1),
        dict(coverage=30, error_rate=1.0),
        dict(coverage=30, error_rate=0.1, k=0),
        dict(coverage=30, error_rate=0.1, tail_prob=0.0),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ConfigurationError):
        BellaModel(**kwargs)


def test_error_free_bound_just_above_coverage():
    # p == 1: a correct single-copy k-mer appears exactly `coverage` times,
    # so the smallest multiplicity with vanishing tail mass is coverage+1 —
    # everything up to coverage is retained, true repeats are cut.
    m = BellaModel(coverage=10, error_rate=0.0, k=1, tail_prob=1e-300)
    assert m.upper_bound() == 11
