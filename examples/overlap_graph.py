#!/usr/bin/env python3
"""Downstream use: build and analyze the overlap graph.

The paper motivates many-to-many alignment as the substrate for *de novo*
assembly and direct read-set analysis (§2): reads are vertices, and
sufficiently-scoring alignments are edges whose structure (dovetails,
containments) determines how the genome can be reconstructed.  This example
runs the full pipeline on a synthetic dataset, filters alignments by score,
builds the overlap graph with networkx, and reports its assembly-relevant
structure — with the synthetic genome's ground truth as a sanity check.

Run:  python examples/overlap_graph.py
"""

import networkx as nx

from repro.align.seedextend import SeedExtendAligner
from repro.genome.datasets import DATASETS, synthesize_dataset
from repro.kmer.bella import BellaModel
from repro.kmer.seeds import CandidateGenerator


def main() -> None:
    spec = DATASETS["micro"]
    run = synthesize_dataset(spec, seed=9)
    reads = run.reads
    print(f"{len(reads)} reads at {run.depth_achieved:.1f}x depth, "
          f"genome {run.genome.size} bp")

    model = BellaModel(coverage=spec.coverage, error_rate=spec.error_rate, k=13)
    candidates = CandidateGenerator(k=13, model=model).generate(reads)
    aligner = SeedExtendAligner(x_drop=20)
    # all candidates extend together in one batched wavefront pass
    alignments = aligner.align_candidates(reads, candidates)
    print(f"{len(candidates)} candidates aligned (one batch)")

    # keep alignments that clearly extend beyond the seed ("only those
    # alignments which meet or exceed the scoring criteria are saved")
    min_score = 3 * 13
    graph = nx.Graph()
    graph.add_nodes_from(range(len(reads)))
    kept = 0
    for c, a in zip(candidates, alignments):
        if a.score < min_score:
            continue
        la, lb = int(reads.lengths[c.read_a]), int(reads.lengths[c.read_b])
        graph.add_edge(
            c.read_a, c.read_b,
            score=a.score,
            kind=a.overlap_class(la, lb, slack=30),
            reverse=a.reverse,
        )
        kept += 1
    print(f"{kept} alignments pass score >= {min_score}")

    kinds = {}
    for _, _, data in graph.edges(data=True):
        kinds[data["kind"]] = kinds.get(data["kind"], 0) + 1
    print("overlap classes:", dict(sorted(kinds.items())))

    components = sorted(nx.connected_components(graph), key=len, reverse=True)
    giant = components[0]
    print(f"connected components: {len(components)}; "
          f"giant component covers {len(giant)}/{len(reads)} reads")

    # ground truth: at >=8x coverage over one genome, nearly all reads
    # should fall into one connected overlap component
    assert len(giant) > 0.8 * len(reads), "overlap graph is fragmented"

    # assembly-style sanity: order the giant component's reads by their true
    # genome coordinates and verify neighbours in that order are connected
    members = sorted(giant, key=lambda i: int(reads.origins[i]))
    connected_neighbours = sum(
        1 for a, b in zip(members, members[1:]) if graph.has_edge(a, b)
    )
    print(f"{connected_neighbours}/{len(members) - 1} genome-adjacent read "
          "pairs share an edge (contiguity of the layout)")


if __name__ == "__main__":
    main()
