"""The hybrid engine: aggregated asynchronous pulls (§5).

The paper's §5 anticipates that "a hybrid of the two approaches — issuing
asynchronous but *aggregated* requests — may suit high-latency networks":
keep the async code's one-sided pull structure and callback compute, but
coalesce pulls destined for the same owner into batches of
``hybrid_aggregation`` reads per RPC.  Fewer messages amortize injection
and service gaps (the BSP advantage) while the split-phase barrier and
callback overlap are retained (the async advantage).

The model is the shared pull model of :mod:`repro.engines.common` with two
deltas against the plain ``async`` engine:

* the RPC service model runs at ``lookups / aggregation`` messages — that
  is where the win comes from;
* each batch waits until it *fills* before it can be injected: a rank
  issuing ``B`` batches pays ``B * (aggregation - 1)`` extra injection
  gaps of accumulation stall, and in-flight staging memory grows by the
  batch factor.  At ``hybrid_aggregation=1`` both deltas vanish and the
  engine degenerates to ``async`` exactly.

This file is also the registry's proof of extensibility: a complete fifth
engine in ~100 lines, with zero edits to the driver API or the CLI (see
``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engines.base import EngineConfig, ExecutionMode
from repro.engines.common import (
    ASYNC_BASE_MEMORY,
    ASYNC_TASK_RECORD_BYTES,
    apply_pull_faults,
    assemble_pull_phases,
    mean_read_bytes,
    predict_pull_wall,
    pull_comm,
    pull_overheads,
    split_pull_compute,
)
from repro.engines.harness import ExecutionContext
from repro.engines.registry import register_cost_hook, register_engine
from repro.engines.report import RunResult
from repro.machine.config import MachineSpec
from repro.obs import MetricsRegistry, Tracer
from repro.pipeline.workload import WorkloadAssignment

__all__ = ["HybridEngine"]


@register_engine("hybrid", description="asynchronous pulls aggregated into "
                                       "batched RPCs (§5)")
@dataclass
class HybridEngine:
    """Macro-granularity simulator of §5's aggregated-async strategy."""

    config: EngineConfig = field(default_factory=EngineConfig)
    name: str = "hybrid"

    def run(self, assignment: WorkloadAssignment,
            machine: MachineSpec,
            tracer: Tracer | None = None,
            metrics: MetricsRegistry | None = None,
            faults=None) -> RunResult:
        ctx = ExecutionContext.open(self.name, assignment, machine,
                                    self.config, tracer=tracer,
                                    metrics=metrics, faults=faults)
        P = ctx.num_ranks

        comm_only = self.config.mode is ExecutionMode.COMM_ONLY
        factors = ctx.noise.factors(P)
        local_compute, remote_compute = split_pull_compute(
            assignment, factors, comm_only
        )
        overhead = pull_overheads(self.config, assignment, machine)
        overhead_pre = 0.5 * overhead
        overhead_cb = overhead - overhead_pre

        bar = ctx.net.barrier_time()
        agg = float(self.config.hybrid_aggregation)
        n_batches = np.ceil(assignment.lookups / agg)
        # fewer, larger messages through the same service model ...
        comm = pull_comm(ctx.net, assignment, agg)
        # ... but a batch must fill before it injects: (agg-1) pulls'
        # worth of accumulation stall per batch (zero at agg=1)
        msg_gap = ctx.net.machine.network.msg_gap
        comm = comm + n_batches * (agg - 1.0) * msg_gap

        fo = apply_pull_faults(
            ctx, assignment, agg, self.config.async_min_visible, bar,
            local_compute, remote_compute, overhead_pre, overhead_cb, comm,
        )

        wall, busy, _visible = assemble_pull_phases(
            ctx, fo.local_compute, fo.overhead_pre, fo.remote_compute,
            fo.overhead_cb, fo.comm, fo.fault_stall,
            self.config.async_min_visible, bar,
            start_delay=fo.start_delay,
        )

        avg_read = mean_read_bytes(assignment)
        memory = (
            ASYNC_BASE_MEMORY
            + assignment.partition_bytes
            + assignment.tasks_per_rank * ASYNC_TASK_RECORD_BYTES
            # each window slot stages a whole batch, not a single read
            + self.config.async_window * agg * avg_read
        )
        details = {
            "aggregation": int(agg),
            "rpc_messages": float(n_batches.sum()),
            "hidden_comm": float(np.minimum(fo.comm, busy).sum()),
            "raw_comm": fo.comm,
        }
        if faults is not None:
            details.update(ctx.fault_details(
                {
                    "rpc_retries": int(fo.retry_counts.sum()),
                    "rpc_stall_total": float(fo.fault_stall.sum()),
                },
                fo.tasks_redistributed, fo.ranks_lost, ledger=fo.ledger,
            ))
        return ctx.finalize(
            assignment, wall,
            memory=memory,
            exchange_rounds=0,
            details=details,
            extra_counters=(
                ("rpc_issued", n_batches),
                ("rpc_bytes", assignment.lookup_bytes),
            ),
            redist_counts=fo.redist_counts,
            tasks_redistributed=fo.tasks_redistributed,
        )


@register_cost_hook("hybrid")
def _predict_hybrid(assignment: WorkloadAssignment, machine: MachineSpec,
                    config: EngineConfig) -> dict:
    """Analytic fault-free wall clock of :class:`HybridEngine`.

    The shared pull predictor at ``hybrid_aggregation`` with the
    batch-fill accumulation stall enabled — bit-equal to the engine's
    measured wall on a noise-free machine.
    """
    agg = float(config.hybrid_aggregation)
    wall = predict_pull_wall(config, assignment, machine, agg,
                             batch_fill_stall=True)
    avg_read = mean_read_bytes(assignment)
    memory = (
        ASYNC_BASE_MEMORY
        + assignment.partition_bytes
        + assignment.tasks_per_rank * ASYNC_TASK_RECORD_BYTES
        + config.async_window * agg * avg_read
    )
    return {
        "wall": wall,
        "peak_memory": float(memory.max(initial=0.0)),
        "rounds": 0,
    }
