"""The ``--faults`` spec mini-grammar.

A spec is a comma-separated list of clauses::

    drop=P                 drop each RPC response with probability P
    delay=P:D              delay a response by duration D with probability P
    dup=P                  deliver a response twice with probability P
    xchg_drop=P            a BSP exchange round attempt fails with prob. P
    degrade=F@T0:T1        link bandwidth scaled by F in [T0, T1)   (F in (0,1])
    lag=L@T0:T1            message latency scaled by L in [T0, T1)  (L >= 1)
    straggle=F@rR:T0:T1    rank R busy time dilated by F in [T0, T1)
    kill=rR@T              rank R dies permanently at time T
    join=rR@T              rank R is absent from the start, joins at time T
    evict=rR@T:grace=D     rank R gets an eviction notice at T, keeps
                           working for a grace window D (checkpointing its
                           unfinished work for handoff), departs at T+D;
                           ``:grace=D`` may be omitted (grace 0 == kill
                           semantics, nothing can be checkpointed)
    redistribute           survivors absorb a dead rank's remaining work
    timeout=D              RPC retransmission timeout
    retries=N              max RPC retransmissions before RpcTimeoutError
    backoff=D              base retry backoff (doubles per attempt)
    jitter=F               +/- fraction of seeded jitter on each backoff

Durations accept ``s``/``ms``/``us`` suffixes (default seconds); ``degrade``,
``lag``, ``straggle``, ``kill``, ``join`` and ``evict`` clauses may repeat.
Errors raise :class:`repro.errors.ConfigurationError` echoing the offending
clause *and its character position* in the spec — the CLI turns that into a
clean exit-code-2 message, never a traceback.

Example::

    --faults "drop=0.02,evict=r3@20:grace=5,join=r7@10,kill=r1@30,redistribute"
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.machine.degradation import (
    LinkWindow,
    RankEviction,
    RankJoin,
    RankKill,
    StraggleWindow,
)
from repro.utils.units import MS, US

__all__ = ["parse_fault_spec"]

_KNOWN_KEYS = (
    "drop", "delay", "dup", "xchg_drop", "degrade", "lag", "straggle",
    "kill", "join", "evict", "redistribute", "timeout", "retries",
    "backoff", "jitter",
)


def _seconds(text: str, clause: str) -> float:
    """Parse a duration with an optional s/ms/us suffix."""
    t = text.strip()
    scale = 1.0
    for suffix, s in (("us", US), ("ms", MS), ("s", 1.0)):
        if t.endswith(suffix):
            t = t[: -len(suffix)]
            scale = s
            break
    try:
        value = float(t)
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause}: {text!r} is not a duration "
            f"(use e.g. 0.5, 2ms, 30us)"
        ) from None
    return value * scale


def _number(text: str, clause: str) -> float:
    try:
        return float(text)
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause}: {text!r} is not a number"
        ) from None


def _rank(text: str, clause: str) -> int:
    t = text.strip()
    if not t.startswith("r"):
        raise ConfigurationError(
            f"fault spec clause {clause}: expected a rank like 'r3', "
            f"got {text!r}"
        )
    try:
        return int(t[1:])
    except ValueError:
        raise ConfigurationError(
            f"fault spec clause {clause}: {text!r} is not a rank"
        ) from None


def _split(text: str, sep: str, n: int, clause: str, what: str) -> list[str]:
    parts = text.split(sep)
    if len(parts) != n:
        raise ConfigurationError(
            f"fault spec clause {clause}: expected {what}"
        )
    return parts


def _rank_at_time(value: str, key: str, clause: str) -> tuple[int, str]:
    """Parse the shared ``rR@T...`` head of kill/join/evict clauses."""
    rank_s, _, when = value.partition("@")
    if not when:
        raise ConfigurationError(
            f"fault spec clause {clause}: expected {key}=rR@T "
            f"(e.g. {key}=r3@30)"
        )
    return _rank(rank_s, clause), when


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse a ``--faults`` spec string into a validated :class:`FaultPlan`."""
    kwargs: dict = {}
    links: list[LinkWindow] = []
    stragglers: list[StraggleWindow] = []
    kills: list[RankKill] = []
    joins: list[RankJoin] = []
    evictions: list[RankEviction] = []

    if not spec.strip():
        raise ConfigurationError(
            "empty fault spec; expected comma-separated clauses like "
            "'drop=0.02,kill=r3@30' (known keys: "
            f"{', '.join(_KNOWN_KEYS)})"
        )

    offset = 0
    for raw in spec.split(","):
        clause_text = raw.strip()
        pos = offset + (len(raw) - len(raw.lstrip()))
        offset += len(raw) + 1  # +1 for the consumed comma
        if not clause_text:
            continue
        # every error echoes the offending token and where it sits
        clause = f"{clause_text!r} (at char {pos})"
        key, _, value = clause_text.partition("=")
        key = key.strip()
        value = value.strip()
        if key not in _KNOWN_KEYS:
            raise ConfigurationError(
                f"unknown fault spec key {key!r} in clause {clause}; "
                f"known keys: {', '.join(_KNOWN_KEYS)}"
            )
        if key == "redistribute":
            if value:
                raise ConfigurationError(
                    f"fault spec clause {clause}: 'redistribute' takes "
                    f"no value"
                )
            kwargs["redistribute"] = True
            continue
        if not value:
            raise ConfigurationError(
                f"fault spec clause {clause}: {key!r} needs a value"
            )
        if key == "drop":
            kwargs["drop_prob"] = _number(value, clause)
        elif key == "dup":
            kwargs["dup_prob"] = _number(value, clause)
        elif key == "xchg_drop":
            kwargs["exchange_drop_prob"] = _number(value, clause)
        elif key == "delay":
            prob, dur = _split(value, ":", 2, clause, "delay=P:D (e.g. 0.05:2ms)")
            kwargs["delay_prob"] = _number(prob, clause)
            kwargs["delay_seconds"] = _seconds(dur, clause)
        elif key in ("degrade", "lag"):
            factor, _, window = value.partition("@")
            t0, t1 = _split(window, ":", 2, clause,
                            f"{key}=F@T0:T1 (e.g. {key}=0.5@10:20)")
            f = _number(factor, clause)
            links.append(
                LinkWindow(
                    start=_seconds(t0, clause), end=_seconds(t1, clause),
                    bandwidth_factor=f if key == "degrade" else 1.0,
                    latency_factor=f if key == "lag" else 1.0,
                )
            )
        elif key == "straggle":
            factor, _, window = value.partition("@")
            rank_s, t0, t1 = _split(window, ":", 3, clause,
                                    "straggle=F@rR:T0:T1 (e.g. 3@r2:5:15)")
            stragglers.append(
                StraggleWindow(
                    rank=_rank(rank_s, clause),
                    start=_seconds(t0, clause), end=_seconds(t1, clause),
                    factor=_number(factor, clause),
                )
            )
        elif key == "kill":
            rank, when = _rank_at_time(value, "kill", clause)
            kills.append(RankKill(rank=rank, time=_seconds(when, clause)))
        elif key == "join":
            rank, when = _rank_at_time(value, "join", clause)
            joins.append(RankJoin(rank=rank, time=_seconds(when, clause)))
        elif key == "evict":
            rank, when = _rank_at_time(value, "evict", clause)
            when, _, grace_part = when.partition(":")
            grace = 0.0
            if grace_part:
                gkey, _, gval = grace_part.partition("=")
                if gkey.strip() != "grace" or not gval.strip():
                    raise ConfigurationError(
                        f"fault spec clause {clause}: expected "
                        f"evict=rR@T:grace=D (e.g. evict=r3@20:grace=5); "
                        f"got trailing {grace_part!r}"
                    )
                grace = _seconds(gval, clause)
            evictions.append(
                RankEviction(rank=rank, time=_seconds(when, clause),
                             grace=grace)
            )
        elif key == "timeout":
            kwargs["rpc_timeout"] = _seconds(value, clause)
        elif key == "retries":
            n = _number(value, clause)
            if n != int(n):
                raise ConfigurationError(
                    f"fault spec clause {clause}: retries must be an integer"
                )
            kwargs["rpc_max_retries"] = int(n)
        elif key == "backoff":
            kwargs["rpc_backoff"] = _seconds(value, clause)
        elif key == "jitter":
            kwargs["rpc_backoff_jitter"] = _number(value, clause)

    return FaultPlan(
        links=tuple(links), stragglers=tuple(stragglers), kills=tuple(kills),
        joins=tuple(joins), evictions=tuple(evictions),
        source=spec.strip(), **kwargs,
    )
