"""Figure 5: min/avg/max cumulative seed-and-extend time + load imbalance.

Paper's claims checked in shape: the per-rank alignment-time spread widens
relative to the mean as Human CCS strong-scales (static by-count
partitioning of variable-cost tasks), so the max/avg imbalance factor
grows with scale.
"""

from conftest import emit, human_nodes, run_once

from repro.perf.figures import fig5_load_imbalance


def test_fig5_load_imbalance(benchmark, human_nodes):
    fig = run_once(benchmark, fig5_load_imbalance, human_nodes)
    emit("fig5", fig)
    rows = fig["rows"]
    imb = [r[5] for r in rows]
    assert all(x >= 1.0 for x in imb)
    # imbalance grows with scale
    assert imb[-1] > imb[0]
    # min <= avg <= max on every row
    for r in rows:
        assert r[2] <= r[3] <= r[4]
    # cumulative averages scale down with P (strong scaling)
    avgs = [r[3] for r in rows]
    assert avgs[-1] < avgs[0]
