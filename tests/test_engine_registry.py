"""Registry coverage: every registered engine runs, conserves, and is
reachable from the CLI; config validation; workload-cache accounting."""

import pytest

from repro.cli import build_parser
from repro.core.api import (
    ENGINES,
    clear_workload_cache,
    get_workload,
    run_alignment,
    scaling_sweep,
    set_workload_cache_cap,
    workload_cache_stats,
)
from repro.engines import (
    AsyncEngine,
    BSPEngine,
    EngineConfig,
    HybridEngine,
    MicroAsyncEngine,
    MicroBSPEngine,
)
from repro.engines.registry import (
    MACRO,
    MICRO,
    available_engines,
    create_engine,
    get_engine,
    register_engine,
)
from repro.errors import ConfigurationError
from repro.faults import parse_fault_spec
from repro.machine.config import cori_knl
from repro.obs import MetricsRegistry, assert_conserved, check_breakdown
from repro.utils.cache import LruCache

ALL_ENGINES = ("bsp", "async", "bsp-micro", "async-micro", "hybrid")


# -- registry contents ------------------------------------------------------

def test_registration_order_and_kinds():
    assert available_engines() == ALL_ENGINES
    assert available_engines(kind=MACRO) == ("bsp", "async", "hybrid")
    assert available_engines(kind=MICRO) == ("bsp-micro", "async-micro")
    assert get_engine("bsp").factory is BSPEngine
    assert get_engine("async").factory is AsyncEngine
    assert get_engine("hybrid").factory is HybridEngine
    assert get_engine("bsp-micro").factory is MicroBSPEngine
    assert get_engine("async-micro").factory is MicroAsyncEngine


def test_engines_view_tracks_registry():
    assert set(ENGINES) == set(ALL_ENGINES)
    assert len(ENGINES) == len(ALL_ENGINES)
    assert ENGINES["hybrid"] is HybridEngine
    with pytest.raises(KeyError):
        ENGINES["mpi"]


def test_unknown_name_clean_error():
    with pytest.raises(ConfigurationError, match="unknown approach 'mpi'"):
        get_engine("mpi")
    with pytest.raises(ConfigurationError, match="choose from"):
        create_engine("upc")
    wl = get_workload("micro", seed=0)
    with pytest.raises(ConfigurationError, match="unknown approach"):
        run_alignment(wl, 1, approach="openmp", cores_per_node=4)


def test_duplicate_registration_raises():
    with pytest.raises(ConfigurationError, match="already registered"):
        @register_engine("bsp")
        class Impostor:
            pass


def test_bad_kind_raises():
    with pytest.raises(ConfigurationError, match="kind"):
        register_engine("novel", kind="quantum")


def test_create_engine_passes_config():
    cfg = EngineConfig(seed=42)
    eng = create_engine("hybrid", cfg)
    assert isinstance(eng, HybridEngine)
    assert eng.config.seed == 42
    assert isinstance(create_engine("bsp").config, EngineConfig)


# -- every engine runs a tiny workload, conserved, same task count ----------

@pytest.mark.parametrize("name", ALL_ENGINES)
def test_every_engine_runs_and_conserves(name):
    wl = get_workload("micro", seed=0)
    machine = cori_knl(2, app_cores_per_node=4)
    metrics = MetricsRegistry(machine.total_ranks)
    res = run_alignment(wl, nodes=2, approach=name, cores_per_node=4,
                        metrics=metrics)
    assert res.wall_time > 0
    assert_conserved(check_breakdown(res.breakdown))
    # identical inputs: every strategy processes exactly the same tasks
    assert int(metrics.get("tasks").sum()) == wl.n_tasks


@pytest.mark.parametrize("name", ALL_ENGINES)
def test_every_engine_in_cli_choices(name):
    args = build_parser().parse_args(
        ["run", "--workload", "micro", "--approach", name]
    )
    assert args.approach == name


def test_cli_engine_alias_and_rejection():
    args = build_parser().parse_args(["run", "--engine", "hybrid"])
    assert args.approach == "hybrid"
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--approach", "mpi"])


# -- EngineConfig validation -------------------------------------------------

@pytest.mark.parametrize("kwargs", [
    {"multiround_efficiency": 0.0},
    {"multiround_efficiency": -0.5},
    {"multiround_efficiency": 1.2},
    {"noise_fraction": -0.01},
    {"hybrid_aggregation": 0},
    {"hybrid_aggregation": -4},
])
def test_config_validation_rejects(kwargs):
    with pytest.raises(ConfigurationError):
        EngineConfig(**kwargs)


def test_config_validation_accepts_boundaries():
    EngineConfig(multiround_efficiency=1.0, noise_fraction=0.0,
                 hybrid_aggregation=1)


# -- LRU cache + sweep reuse -------------------------------------------------

def test_lru_cache_semantics():
    c = LruCache(maxsize=2)
    c.put("a", 1)
    c.put("b", 2)
    assert c.get("a") == 1            # refreshes 'a'
    c.put("c", 3)                     # evicts 'b' (LRU)
    assert c.get("b") is None
    assert c.get("a") == 1 and c.get("c") == 3
    assert c.stats() == {"size": 2, "maxsize": 2, "hits": 3, "misses": 1,
                         "evictions": 1}
    c.resize(1)
    assert len(c) == 1 and c.evictions == 2
    c.clear()
    assert c.stats()["hits"] == 0 and len(c) == 0
    with pytest.raises(ConfigurationError):
        LruCache(maxsize=0)


def test_workload_cache_bounded_and_counted():
    clear_workload_cache()
    set_workload_cache_cap(2)
    try:
        get_workload("micro", seed=0)
        get_workload("micro", seed=0)      # hit
        get_workload("micro", seed=1)
        get_workload("micro", seed=2)      # evicts seed=0
        stats = workload_cache_stats()
        assert stats["maxsize"] == 2
        assert stats["size"] == 2
        assert stats["hits"] == 1
        assert stats["evictions"] == 1
    finally:
        clear_workload_cache()
        set_workload_cache_cap(8)


def test_sweep_computes_each_assignment_once():
    wl = get_workload("ecoli30x", seed=0)
    wl.assignment_cache.clear()
    node_counts = [1, 2, 4]
    metrics: dict = {}
    plan = parse_fault_spec("drop=0.01,xchg_drop=0.1")
    out = scaling_sweep(wl, node_counts, cores_per_node=4,
                        metrics=metrics, fault_plan=plan, fault_seed=1)
    approaches = available_engines(kind=MACRO)
    assert set(out) == set(approaches)
    stats = wl.assignment_cache.stats()
    # one render per node count; every other approach reuses it
    assert stats["misses"] == len(node_counts)
    assert stats["hits"] == len(node_counts) * (len(approaches) - 1)
    # the caller-supplied dict got one correctly sized registry per size
    assert set(metrics) == set(node_counts)
    for nodes, reg in metrics.items():
        assert reg.num_ranks == nodes * 4
        assert reg.get("tasks").sum() > 0


def test_sweep_rejects_unknown_approach_before_running():
    wl = get_workload("micro", seed=0)
    with pytest.raises(ConfigurationError, match="unknown approach"):
        scaling_sweep(wl, [1], approaches=("bsp", "nope"), cores_per_node=4)
