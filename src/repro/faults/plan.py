"""Declarative fault plans.

A :class:`FaultPlan` is a frozen, validated description of every anomaly a
run should experience — message-level faults (drop/delay/duplicate RPC
responses, failed exchange rounds), time-windowed link degradation, rank
stragglers, and permanent rank deaths — plus the retry policy the runtime
uses to absorb them.  Plans carry no randomness themselves: pairing a plan
with a seed in :class:`repro.faults.FaultInjector` produces the concrete,
bit-reproducible fault realization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import ConfigurationError
from repro.machine.degradation import (
    DegradationSchedule,
    LinkWindow,
    RankEviction,
    RankJoin,
    RankKill,
    StraggleWindow,
)

__all__ = ["FaultPlan"]


def _check_prob(value: float, name: str) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1] (got {value})")


@dataclass(frozen=True)
class FaultPlan:
    """Everything that can go wrong in one run, and how hard to fight it.

    Message-level faults
    --------------------
    drop_prob : probability an RPC response is lost in the network (the
        caller's timeout/retry machinery recovers it).
    delay_prob / delay_seconds : probability a response is delayed, and by
        how long.  A delay pushing the response past the caller's timeout
        triggers a retransmission; the late original is then deduplicated.
    dup_prob : probability a response is delivered twice (retransmission
        race); the second copy is dropped by per-call idempotency tokens.
    exchange_drop_prob : probability one BSP exchange superstep attempt
        fails and the round must be retried wholesale.

    Windowed degradation (see :mod:`repro.machine.degradation`)
    -----------------------------------------------------------
    links : bandwidth/latency degradation windows over the whole fabric.
    stragglers : per-rank busy-time dilation windows.
    kills : permanent rank deaths.

    Membership churn (see :mod:`repro.machine.degradation`)
    -------------------------------------------------------
    joins : ranks absent from the start that join mid-run; their initial
        work share is loaned to the initial members and migrated back when
        they arrive.
    evictions : announced departures.  During the grace window the rank
        keeps working and checkpoints unfinished task ranges for handoff;
        ``grace=0`` degenerates to a :class:`RankKill`.  Evictions are
        inherently graceful and never require ``redistribute``.

    Reaction policy
    ---------------
    redistribute : on rank death, surviving ranks absorb the dead rank's
        remaining work (macro engines only) instead of the run aborting
        with :class:`repro.errors.RankFailureError`.
    rpc_timeout : seconds before an unanswered RPC is retransmitted
        (``None`` = derive from the network model).
    rpc_max_retries : retransmissions before :class:`RpcTimeoutError`.
    rpc_backoff : base backoff before the first retry; doubles per attempt
        (``None`` = derive from the network round trip).
    rpc_backoff_jitter : +/- fraction of deterministic seeded jitter applied
        to each backoff so retry storms decorrelate across ranks.
    """

    drop_prob: float = 0.0
    delay_prob: float = 0.0
    delay_seconds: float = 0.0
    dup_prob: float = 0.0
    exchange_drop_prob: float = 0.0
    links: tuple[LinkWindow, ...] = ()
    stragglers: tuple[StraggleWindow, ...] = ()
    kills: tuple[RankKill, ...] = ()
    joins: tuple[RankJoin, ...] = ()
    evictions: tuple[RankEviction, ...] = ()
    redistribute: bool = False
    rpc_timeout: float | None = None
    rpc_max_retries: int = 4
    rpc_backoff: float | None = None
    rpc_backoff_jitter: float = 0.25
    #: original spec string, when parsed from one (display only)
    source: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        _check_prob(self.drop_prob, "drop_prob")
        _check_prob(self.delay_prob, "delay_prob")
        _check_prob(self.dup_prob, "dup_prob")
        _check_prob(self.exchange_drop_prob, "exchange_drop_prob")
        if self.drop_prob + self.delay_prob + self.dup_prob > 1.0:
            raise ConfigurationError(
                "drop_prob + delay_prob + dup_prob must not exceed 1"
            )
        if self.delay_prob > 0 and self.delay_seconds <= 0:
            raise ConfigurationError(
                "delay_prob > 0 requires a positive delay_seconds"
            )
        if self.delay_seconds < 0:
            raise ConfigurationError("delay_seconds must be >= 0")
        if self.rpc_timeout is not None and self.rpc_timeout <= 0:
            raise ConfigurationError("rpc_timeout must be positive")
        if self.rpc_max_retries < 0:
            raise ConfigurationError("rpc_max_retries must be >= 0")
        if self.rpc_backoff is not None and self.rpc_backoff < 0:
            raise ConfigurationError("rpc_backoff must be >= 0")
        if not 0.0 <= self.rpc_backoff_jitter < 1.0:
            raise ConfigurationError("rpc_backoff_jitter must be in [0, 1)")
        # materialize the schedule once; also validates windows/kills/churn
        object.__setattr__(
            self, "_schedule",
            DegradationSchedule(self.links, self.stragglers, self.kills,
                                self.joins, self.evictions),
        )

    @property
    def schedule(self) -> DegradationSchedule:
        """The windowed-degradation view of this plan."""
        return self._schedule  # type: ignore[attr-defined]

    @property
    def message_faults_possible(self) -> bool:
        """Do RPCs need timeout/retry machinery under this plan?"""
        return bool(
            self.drop_prob > 0
            or self.delay_prob > 0
            or self.dup_prob > 0
            or self.kills
        )

    @property
    def has_churn(self) -> bool:
        """Does this plan change cluster membership beyond plain kills?

        Everything churn-specific in the engines is gated on this flag, so
        non-churn plans take bit-identical code paths to before churn
        existed.
        """
        return bool(self.joins) or bool(self.evictions)

    @property
    def active(self) -> bool:
        """Does this plan inject anything at all?"""
        return bool(
            self.message_faults_possible
            or self.exchange_drop_prob > 0
            or self.links
            or self.stragglers
            or self.has_churn
        )

    def with_redistribute(self, on: bool = True) -> "FaultPlan":
        return replace(self, redistribute=on)

    def describe(self) -> str:
        if self.source:
            return self.source
        parts = []
        if self.drop_prob:
            parts.append(f"drop={self.drop_prob:g}")
        if self.delay_prob:
            parts.append(f"delay={self.delay_prob:g}:{self.delay_seconds:g}s")
        if self.dup_prob:
            parts.append(f"dup={self.dup_prob:g}")
        if self.exchange_drop_prob:
            parts.append(f"xchg_drop={self.exchange_drop_prob:g}")
        parts.extend(
            f"degrade={w.bandwidth_factor:g}@{w.start:g}:{w.end:g}"
            for w in self.links
        )
        parts.extend(
            f"straggle={w.factor:g}@r{w.rank}:{w.start:g}:{w.end:g}"
            for w in self.stragglers
        )
        parts.extend(f"kill=r{k.rank}@{k.time:g}" for k in self.kills)
        parts.extend(f"join=r{j.rank}@{j.time:g}" for j in self.joins)
        parts.extend(
            f"evict=r{e.rank}@{e.time:g}:grace={e.grace:g}"
            for e in self.evictions
        )
        if self.redistribute:
            parts.append("redistribute")
        return ",".join(parts) if parts else "<no faults>"
