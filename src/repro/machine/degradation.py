"""Time-windowed network/rank degradation schedules.

Real interconnects do not fail cleanly: links lose bandwidth for a while
(congestion, adaptive-routing storms, a flapping optical lane), individual
ranks straggle (thermal throttling, OS interference bursts), and at the
paper's scale (512 Cori nodes, multi-hour runs) a rank occasionally dies
outright.  This module holds the *machine-side* description of those
anomalies — when a window is open and how much it dilates time — while
:mod:`repro.faults` decides *which* anomalies a given run experiences.

All factors are multiplicative time dilations (``>= 1`` slows things down):
``LinkWindow`` scales transfer time (inverse bandwidth) and message latency
inside ``[start, end)``; ``StraggleWindow`` dilates one rank's busy time
inside its window; ``RankKill`` removes a rank permanently at ``time``.
Windows may overlap — overlapping dilations multiply, the worst case on a
real dragonfly where congestion and lane failure compound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "LinkWindow",
    "StraggleWindow",
    "RankKill",
    "DegradationSchedule",
]


def _check_window(start: float, end: float, what: str) -> None:
    if start < 0 or end <= start:
        raise ConfigurationError(
            f"{what} window must satisfy 0 <= start < end "
            f"(got [{start}, {end}))"
        )


@dataclass(frozen=True)
class LinkWindow:
    """Bandwidth/latency degradation of the whole fabric over a window.

    ``bandwidth_factor`` is the fraction of nominal bandwidth available in
    ``[start, end)`` (0.5 = half speed, i.e. transfers take 2x as long);
    ``latency_factor`` multiplies per-message latency in the same window.
    """

    start: float
    end: float
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "link degradation")
        if not 0 < self.bandwidth_factor <= 1:
            raise ConfigurationError(
                f"bandwidth_factor must be in (0, 1] (got {self.bandwidth_factor})"
            )
        if self.latency_factor < 1:
            raise ConfigurationError(
                f"latency_factor must be >= 1 (got {self.latency_factor})"
            )


@dataclass(frozen=True)
class StraggleWindow:
    """One rank's busy time dilated by ``factor`` inside ``[start, end)``."""

    rank: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "straggler")
        if self.rank < 0:
            raise ConfigurationError(f"straggler rank must be >= 0 (got {self.rank})")
        if self.factor < 1:
            raise ConfigurationError(
                f"straggle factor must be >= 1 (got {self.factor})"
            )


@dataclass(frozen=True)
class RankKill:
    """Rank ``rank`` dies permanently at simulated ``time``."""

    rank: int
    time: float

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ConfigurationError(f"killed rank must be >= 0 (got {self.rank})")
        if self.time < 0:
            raise ConfigurationError(f"kill time must be >= 0 (got {self.time})")


@dataclass(frozen=True)
class DegradationSchedule:
    """Queryable view over a set of degradation windows and kills."""

    links: tuple[LinkWindow, ...] = ()
    stragglers: tuple[StraggleWindow, ...] = ()
    kills: tuple[RankKill, ...] = ()

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for kill in self.kills:
            if kill.rank in seen:
                raise ConfigurationError(
                    f"rank {kill.rank} is killed more than once"
                )
            seen.add(kill.rank)

    # -- link state ---------------------------------------------------------

    def link_dilation(self, t: float) -> float:
        """Instantaneous transfer-time multiplier at ``t`` (>= 1)."""
        dil = 1.0
        for w in self.links:
            if w.start <= t < w.end:
                dil /= w.bandwidth_factor
        return dil

    def latency_factor(self, t: float) -> float:
        """Instantaneous message-latency multiplier at ``t`` (>= 1)."""
        f = 1.0
        for w in self.links:
            if w.start <= t < w.end:
                f *= w.latency_factor
        return f

    def mean_link_dilation(self, t0: float, t1: float) -> float:
        """Average transfer-time multiplier over ``[t0, t1]``.

        Used by the macro engines, which charge whole communication phases
        analytically rather than event by event.  Computed exactly by
        splitting the interval at window boundaries.
        """
        if t1 <= t0:
            return self.link_dilation(t0)
        cuts = {t0, t1}
        for w in self.links:
            if w.start < t1 and w.end > t0:
                cuts.add(max(t0, w.start))
                cuts.add(min(t1, w.end))
        points = sorted(cuts)
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += self.link_dilation(0.5 * (a + b)) * (b - a)
        return total / (t1 - t0)

    # -- rank state ---------------------------------------------------------

    def straggle_factor(self, rank: int, t: float) -> float:
        """Instantaneous busy-time multiplier for ``rank`` at ``t``."""
        f = 1.0
        for w in self.stragglers:
            if w.rank == rank and w.start <= t < w.end:
                f *= w.factor
        return f

    def mean_straggle_factor(self, rank: int, t0: float, t1: float) -> float:
        """Average busy-time multiplier for ``rank`` over ``[t0, t1]``."""
        if t1 <= t0:
            return self.straggle_factor(rank, t0)
        cuts = {t0, t1}
        for w in self.stragglers:
            if w.rank == rank and w.start < t1 and w.end > t0:
                cuts.add(max(t0, w.start))
                cuts.add(min(t1, w.end))
        points = sorted(cuts)
        total = 0.0
        for a, b in zip(points, points[1:]):
            total += self.straggle_factor(rank, 0.5 * (a + b)) * (b - a)
        return total / (t1 - t0)

    def death_time(self, rank: int) -> float | None:
        """When ``rank`` dies, or ``None`` if it never does."""
        for kill in self.kills:
            if kill.rank == rank:
                return kill.time
        return None

    def dead(self, rank: int, t: float) -> bool:
        """Is ``rank`` dead at simulated time ``t``?"""
        dt = self.death_time(rank)
        return dt is not None and t >= dt

    def deaths_before(self, t: float) -> list[RankKill]:
        """All kills effective at or before ``t``, ordered by death time."""
        return sorted((k for k in self.kills if k.time <= t),
                      key=lambda k: (k.time, k.rank))
