"""Structured event tracer with Chrome trace-format export.

One :class:`Tracer` can hold several *runs* (e.g. both engines of a
``compare``): each :meth:`begin_run` opens a new Chrome "process" (pid)
whose lanes (tids) are the simulated ranks, so a comparison loads into
Perfetto as stacked per-engine timelines.

Recording is allocation-light — one frozen dataclass per event — and every
record method is a no-op when the tracer is disabled, so instrumented code
paths cost one attribute check when tracing is off.  Export converts
simulated seconds to the microseconds Chrome expects and adds
process/thread naming metadata for every lane it has seen.
"""

from __future__ import annotations

import json
from typing import Any, TextIO

import numpy as np

from repro.obs.events import (
    ENGINE_LANE,
    CounterEvent,
    InstantEvent,
    MetaEvent,
    PhaseEvent,
)

__all__ = ["Tracer"]

#: Chrome tids must be nonnegative; the engine lane maps to this tid
_ENGINE_TID = 999_999


def _jsonable(value: Any) -> Any:
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Collects typed events; exports Chrome trace-format JSON."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.events: list = []
        self.current_pid = -1

    # -- recording ---------------------------------------------------------

    def begin_run(self, label: str) -> int:
        """Open a new run (one Chrome pid); returns the pid."""
        self.current_pid += 1
        if self.enabled:
            self.events.append(MetaEvent(self.current_pid, None, label))
        return self.current_pid

    def _pid(self) -> int:
        # events recorded before any begin_run land in pid 0
        if self.current_pid < 0:
            self.current_pid = 0
        return self.current_pid

    def phase(self, rank: int, category: str, start: float,
              duration: float, name: str = "") -> None:
        """A duration charged to one breakdown category on ``rank``'s lane."""
        if not self.enabled:
            return
        self.events.append(
            PhaseEvent(self._pid(), rank, category, start, duration, name)
        )

    def instant(self, rank: int, name: str, time: float, **args: Any) -> None:
        """A point occurrence (arrival, RPC issue/callback, boundary)."""
        if not self.enabled:
            return
        self.events.append(InstantEvent(self._pid(), rank, name, time, args))

    def counter(self, rank: int, name: str, time: float, value: float) -> None:
        """A sampled counter value (e.g. outstanding-window occupancy)."""
        if not self.enabled:
            return
        self.events.append(CounterEvent(self._pid(), rank, name, time, value))

    # -- queries (used by the conservation checker and tests) --------------

    def phase_events(self, pid: int | None = None) -> list[PhaseEvent]:
        """All phase events, optionally restricted to one run's pid."""
        return [
            e for e in self.events
            if isinstance(e, PhaseEvent) and (pid is None or e.pid == pid)
        ]

    def ranks(self, pid: int | None = None) -> list[int]:
        """Sorted rank lanes that appear in (one run of) the trace."""
        seen = {
            e.rank for e in self.events
            if getattr(e, "rank", None) is not None
            and e.rank != ENGINE_LANE
            and (pid is None or e.pid == pid)
        }
        return sorted(seen)

    # -- export ------------------------------------------------------------

    def to_chrome(self) -> dict:
        """Chrome trace-format dict (``chrome://tracing`` / Perfetto)."""
        out: list[dict] = []
        lanes: set[tuple[int, int]] = set()
        named_pids: set[int] = set()
        for e in self.events:
            if isinstance(e, MetaEvent):
                out.append({
                    "name": "process_name", "ph": "M", "pid": e.pid,
                    "args": {"name": e.name},
                })
                named_pids.add(e.pid)
                continue
            tid = _ENGINE_TID if e.rank == ENGINE_LANE else e.rank
            lanes.add((e.pid, e.rank))
            if isinstance(e, PhaseEvent):
                out.append({
                    "name": e.name or e.category, "cat": e.category,
                    "ph": "X", "pid": e.pid, "tid": tid,
                    "ts": e.start * 1e6, "dur": e.duration * 1e6,
                })
            elif isinstance(e, InstantEvent):
                out.append({
                    "name": e.name, "ph": "i", "s": "t",
                    "pid": e.pid, "tid": tid, "ts": e.time * 1e6,
                    "args": {k: _jsonable(v) for k, v in e.args.items()},
                })
            elif isinstance(e, CounterEvent):
                out.append({
                    "name": e.name, "ph": "C", "pid": e.pid,
                    "tid": tid, "ts": e.time * 1e6,
                    "args": {"value": _jsonable(e.value)},
                })
        for pid, rank in sorted(lanes):
            out.append({
                "name": "thread_name", "ph": "M", "pid": pid,
                "tid": _ENGINE_TID if rank == ENGINE_LANE else rank,
                "args": {
                    "name": "engine" if rank == ENGINE_LANE else f"rank {rank}"
                },
            })
        for pid in sorted({p for p, _ in lanes} - named_pids):
            out.append({
                "name": "process_name", "ph": "M", "pid": pid,
                "args": {"name": f"run {pid}"},
            })
        return {"traceEvents": out, "displayTimeUnit": "ms"}

    def write_chrome(self, path_or_file: str | TextIO) -> None:
        """Write the Chrome trace JSON to a path or open file."""
        doc = self.to_chrome()
        if hasattr(path_or_file, "write"):
            json.dump(doc, path_or_file, default=_jsonable)
        else:
            with open(path_or_file, "w") as f:
                json.dump(doc, f, default=_jsonable)
