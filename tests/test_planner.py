"""Cost-model planner: predictions, ranking, regret, and the parallel grid."""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.api import (
    clear_machine_cache,
    compare_engines,
    get_workload,
    machine_cache_stats,
    make_machine,
    run_alignment,
    run_plan_points,
    scaling_sweep,
)
from repro.cli import main
from repro.engines.base import EngineConfig
from repro.engines.registry import (
    MACRO,
    available_engines,
    engines_with_cost_hooks,
    get_cost_hook,
    register_cost_hook,
)
from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.perf.planner import (
    DEFAULT_KNOB_GRID,
    WorkloadStats,
    knob_grid_points,
    plan,
    predict,
)

SLOW = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

NODES = 2
CORES = 4


@pytest.fixture(scope="module")
def workload():
    return get_workload("micro")


@pytest.fixture(scope="module")
def machine():
    return make_machine(NODES, CORES)


@pytest.fixture(scope="module")
def stats(workload, machine):
    return WorkloadStats.from_workload(workload, machine)


# -- registry ----------------------------------------------------------------


def test_macro_engines_all_have_cost_hooks():
    hooked = set(engines_with_cost_hooks())
    for name in available_engines(kind=MACRO):
        assert name in hooked
        assert get_cost_hook(name) is not None


def test_micro_engines_have_no_cost_hooks():
    assert get_cost_hook("bsp-micro") is None
    assert get_cost_hook("async-micro") is None


def test_duplicate_cost_hook_rejected():
    with pytest.raises(ConfigurationError, match="already registered"):
        @register_cost_hook("bsp")
        def _dup(assignment, machine, config):  # pragma: no cover
            return {"wall": 0.0}


# -- predictions -------------------------------------------------------------


@SLOW
@given(
    emf=st.floats(min_value=0.05, max_value=1.0,
                  allow_nan=False, allow_infinity=False),
    agg=st.integers(min_value=1, max_value=256),
    hagg=st.integers(min_value=1, max_value=256),
    engine=st.sampled_from(("bsp", "async", "hybrid")),
)
def test_predicted_wall_finite_positive_over_knob_space(
        stats, machine, emf, agg, hagg, engine):
    cfg = EngineConfig(exchange_memory_fraction=emf,
                       async_aggregation=agg, hybrid_aggregation=hagg)
    point = predict(stats, machine, engine, config=cfg)
    assert point.feasible
    assert point.predicted_wall > 0.0
    assert point.predicted_wall < float("inf")
    assert point.predicted_memory > 0.0


@pytest.mark.parametrize("engine", available_engines(kind=MACRO))
def test_prediction_matches_engine_exactly(workload, machine, stats, engine):
    """Noise is off on the default allocation: predictions are bit-equal."""
    point = predict(stats, machine, engine)
    res = run_alignment(workload, NODES, engine, cores_per_node=CORES)
    assert point.predicted_wall == res.breakdown.wall_time
    assert point.predicted_memory == res.max_memory_per_rank


def test_predict_unknown_engine_fails_fast(stats, machine):
    with pytest.raises(ConfigurationError, match="unknown approach"):
        predict(stats, machine, "bps")


def test_predict_without_hook_raises(stats, machine):
    with pytest.raises(ConfigurationError, match="no registered cost hook"):
        predict(stats, machine, "bsp-micro")


def test_knob_grid_covers_default_grid():
    for engine, knobs in DEFAULT_KNOB_GRID.items():
        points = knob_grid_points(engine)
        expected = 1
        for values in knobs.values():
            expected *= len(values)
        assert len(points) == expected
    assert knob_grid_points("not-in-grid") == [()]


# -- ranking -----------------------------------------------------------------


def test_plan_ranking_deterministic(workload, machine):
    a = plan(workload, machine=machine)
    b = plan(workload, machine=machine)
    assert a == b
    walls = [p.predicted_wall for p in a]
    assert walls == sorted(walls)


def test_plan_ranking_independent_of_engine_order(workload, machine):
    names = list(available_engines(kind=MACRO))
    shuffled = names[:]
    random.Random(7).shuffle(shuffled)
    assert plan(workload, machine=machine, engines=names) == \
        plan(workload, machine=machine, engines=shuffled)


def test_plan_fails_fast_on_typo(workload, machine):
    with pytest.raises(ConfigurationError, match="unknown approach"):
        plan(workload, machine=machine, engines=["bsp", "asycn"])


def test_plan_lists_hookless_engine_as_measure_instead(workload, machine):
    points = plan(workload, machine=machine, engines=["bsp", "bsp-micro"])
    micro = [p for p in points if p.engine == "bsp-micro"]
    assert len(micro) == 1
    assert not micro[0].feasible
    assert "measure instead" in micro[0].reason
    assert micro[0].predicted_wall == float("inf")
    assert points[-1] is micro[0]  # infeasible sorts last


def test_infeasible_grid_point_recorded_not_raised(
        workload, machine, monkeypatch):
    from repro.engines import registry as reg

    def _boom(assignment, machine, config):
        raise ConfigurationError("per-rank memory cannot hold the partition")

    monkeypatch.setitem(reg._COST_HOOKS, "bsp", _boom)
    points = plan(workload, machine=machine, engines=["bsp"])
    assert all(not p.feasible for p in points)
    assert all(p.predicted_wall == float("inf") for p in points)
    assert all("memory" in p.reason for p in points)


# -- regret ------------------------------------------------------------------


def test_top1_regret_below_bound_on_tiny_grid(workload):
    points = plan(workload, nodes=NODES, cores_per_node=CORES)
    results = run_plan_points(workload, NODES, points,
                              cores_per_node=CORES)
    measured = [r.breakdown.wall_time for r in results if r is not None]
    top = next(p for p in points if p.feasible)
    top_measured = results[points.index(top)].breakdown.wall_time
    regret = top_measured / min(measured) - 1.0
    assert regret <= 0.10
    # stronger: predictions are exact here, so regret is exactly zero
    assert regret == 0.0


def test_auto_runs_top_plan_and_records_regret(workload):
    res = run_alignment(workload, NODES, "auto", cores_per_node=CORES)
    info = res.details["plan"]
    assert info["mode"] == "predicted"
    assert info["engine"] in available_engines(kind=MACRO)
    assert info["predicted_wall"] == info["actual_wall"]
    assert info["prediction_error"] == 0.0
    assert info["grid_points"] >= 11
    assert info["ranked"][0]["engine"] == info["engine"]
    # within 10% of the best engine found exhaustively (acceptance bound)
    exhaustive = compare_engines(workload, NODES, cores_per_node=CORES)
    best = min(r.breakdown.wall_time for r in exhaustive.values())
    assert info["actual_wall"] <= 1.10 * best


def test_run_plan_points_aligns_with_points(workload, machine):
    points = plan(workload, machine=machine, engines=["bsp", "bsp-micro"])
    results = run_plan_points(workload, NODES, points, cores_per_node=CORES)
    assert len(results) == len(points)
    for p, r in zip(points, results):
        assert (r is None) == (not p.feasible)


# -- parallel grid ------------------------------------------------------------


@pytest.mark.parametrize("engine", available_engines(kind=MACRO))
def test_parallel_sweep_bit_identical_per_engine(workload, engine):
    serial = scaling_sweep(workload, [1, NODES], approaches=[engine],
                           cores_per_node=CORES)
    par = scaling_sweep(workload, [1, NODES], approaches=[engine],
                        cores_per_node=CORES, parallel=2)
    for nodes in (1, NODES):
        assert serial[engine][nodes].signature() == \
            par[engine][nodes].signature()


def test_parallel_compare_bit_identical(workload):
    serial = compare_engines(workload, NODES, cores_per_node=CORES)
    par = compare_engines(workload, NODES, cores_per_node=CORES,
                          parallel=True)
    assert set(serial) == set(par)
    for name in serial:
        assert serial[name].signature() == par[name].signature()


def test_parallel_run_plan_points_bit_identical(workload):
    points = plan(workload, nodes=NODES, cores_per_node=CORES)
    serial = run_plan_points(workload, NODES, points, cores_per_node=CORES)
    par = run_plan_points(workload, NODES, points, cores_per_node=CORES,
                          parallel=2)
    for a, b in zip(serial, par):
        assert (a is None) == (b is None)
        if a is not None:
            assert a.signature() == b.signature()


def test_parallel_rejects_tracer_and_micro(workload):
    with pytest.raises(ConfigurationError, match="tracer"):
        compare_engines(workload, NODES, cores_per_node=CORES,
                        tracer=Tracer(), parallel=True)
    with pytest.raises(ConfigurationError, match="micro"):
        compare_engines(workload, 1, cores_per_node=2,
                        approaches=["bsp-micro"], parallel=True)


def test_parallel_worker_count_validation(workload):
    with pytest.raises(ConfigurationError, match="worker count >= 1"):
        compare_engines(workload, NODES, cores_per_node=CORES, parallel=-2)


def test_compare_engines_fails_fast_on_typo(workload):
    """A typo'd approach fails before any engine runs (not after)."""
    with pytest.raises(ConfigurationError, match="unknown approach"):
        compare_engines(workload, NODES, cores_per_node=CORES,
                        approaches=["bsp", "asycn"])


# -- machine cache ------------------------------------------------------------


def test_machine_cache_hits_across_grid_points(workload):
    clear_machine_cache()
    base = machine_cache_stats()
    assert base["size"] == 0
    m1 = make_machine(NODES, CORES)
    m2 = make_machine(NODES, CORES)
    assert m1 is m2
    stats = machine_cache_stats()
    assert stats["hits"] >= 1
    assert stats["misses"] >= 1
    scaling_sweep(workload, [NODES], cores_per_node=CORES)
    assert machine_cache_stats()["hits"] > stats["hits"]


# -- CLI ----------------------------------------------------------------------


def test_cli_plan_tiny(capsys):
    assert main(["plan", "--tiny"]) == 0
    out = capsys.readouterr().out
    assert "Ranked plans" in out
    assert "winner:" in out


def test_cli_run_auto(capsys):
    assert main(["run", "--workload", "micro", "--nodes", "2",
                 "--cores-per-node", "8", "--engine", "auto"]) == 0
    out = capsys.readouterr().out
    assert "plan: predicted" in out
    assert "+0.000% error" in out


def test_cli_sweep_parallel_rejects_trace(tmp_path):
    rc = main(["sweep", "--workload", "micro", "--nodes", "1", "2",
               "--cores-per-node", "4", "--parallel",
               "--trace", str(tmp_path / "t.json")])
    assert rc == 2
